// Ablations for the paper's §8 future-work directions implemented in this
// repository:
//   (a) device feature caching (GNS-style, Dong et al. 2021): cache capacity
//       vs hit rate vs host->device transfer volume;
//   (b) streaming graph partitioning (LDG vs random): edge cut, balance, and
//       the distributed-sampling communication fraction the paper says a
//       partitioning objective should account for.
#include "bench_common.h"
#include "core/system.h"
#include "train/inference.h"
#include "prep/feature_cache.h"
#include "graph/partition.h"
#include "prep/batch.h"
#include "prep/slicing.h"
#include "sampling/distributed.h"
#include "sampling/fast_sampler.h"
#include "util/timer.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = 0.1 * env_scale();

  Dataset ds = generate_dataset(preset_config("products-sim", scale));
  const std::vector<std::int64_t> fanouts{15, 10, 5};
  std::cout << "dataset " << ds.name << ": " << ds.graph.num_nodes()
            << " nodes, " << ds.graph.num_edges() << " adjacency entries\n";

  heading("(a) Device feature cache: capacity vs hit rate vs transfer volume");
  {
    FastSampler sampler(ds.graph, fanouts);
    // Sample a fixed set of batches once; evaluate each cache against them.
    std::vector<Mfg> mfgs;
    const std::int64_t bs = 512;
    for (int b = 0; b < 6; ++b) {
      if ((b + 1) * bs > static_cast<std::int64_t>(ds.train_idx.size())) {
        break;
      }
      mfgs.push_back(sampler.sample(
          {ds.train_idx.data() + b * bs, static_cast<std::size_t>(bs)},
          100 + static_cast<unsigned>(b)));
    }
    TablePrinter t({"cache capacity", "device MB", "hit rate",
                    "feature MB/batch", "saved"});
    double base_mb = 0;
    for (const double frac : {0.0, 0.01, 0.05, 0.10, 0.25}) {
      FeatureCache cache(
          ds, static_cast<std::int64_t>(frac * static_cast<double>(
                                                   ds.graph.num_nodes())));
      double hit = 0, mb = 0;
      for (const auto& mfg : mfgs) {
        const CachePlan plan = plan_cached_batch(mfg, cache);
        hit += plan.hit_rate();
        mb += static_cast<double>(plan.num_missing) *
              static_cast<double>(ds.feature_dim) * 2 / 1e6;
      }
      hit /= static_cast<double>(mfgs.size());
      mb /= static_cast<double>(mfgs.size());
      if (frac == 0.0) base_mb = mb;
      t.add_row({fmt(100 * frac, 0) + "% of nodes",
                 fmt(static_cast<double>(cache.device_bytes()) / 1e6, 1),
                 fmt(100 * hit, 1) + "%", fmt(mb, 2),
                 fmt(100 * (1 - mb / base_mb), 1) + "%"});
    }
    t.print();
    std::cout << "(degree-ordered static cache; hit rate exceeds the "
                 "capacity fraction because sampling favours hubs)\n";
  }

  heading("(b) Trainer-integrated cache: per-epoch transfer volume");
  {
    TablePrinter t({"cache", "epoch transfer", "epoch time", "final loss"});
    for (const std::int64_t frac_pct : {0, 10, 25}) {
      SystemConfig cfg;
      DatasetConfig dc = preset_config("products-sim", scale);
      Dataset dsc = generate_dataset(dc);
      cfg.hidden_channels = 16;
      cfg.batch_size = 512;
      cfg.num_workers = 2;
      cfg.feature_cache_nodes =
          frac_pct * dsc.graph.num_nodes() / 100;
      System sys(std::move(dsc), cfg);
      const EpochStats s = sys.train_epoch();
      t.add_row({std::to_string(frac_pct) + "% of nodes",
                 fmt(static_cast<double>(s.transfer_bytes) / 1e6, 1) + "MB",
                 fmt(s.epoch_seconds, 2) + "s", fmt(s.mean_loss, 3)});
    }
    t.print();
    std::cout << "(transfer_bytes counts staged bytes; cached rows never "
                 "leave the device)\n";
  }

  heading("(c) Lazy sampling schedule (LazyGCN, paper 2.2): period vs "
          "prep cost vs accuracy");
  {
    TablePrinter t({"period", "mean epoch", "prep-free epochs", "test acc"});
    DatasetConfig dc = preset_config("products-sim", scale);
    dc.train_frac = 0.3;
    dc.val_frac = 0.05;
    dc.test_frac = 0.3;
    dc.feature_signal = 0.12;
    Dataset dsl = generate_dataset(dc);
    for (const int period : {1, 3, 5}) {
      nn::ModelConfig mc;
      mc.in_channels = dsl.feature_dim;
      mc.hidden_channels = 32;
      mc.out_channels = dsl.num_classes;
      mc.num_layers = 3;
      mc.seed = 5;
      auto model = nn::make_model("sage", mc);
      DeviceSim device;
      TrainConfig tc;
      tc.loader.batch_size = 512;
      tc.loader.fanouts = {15, 10, 5};
      tc.loader.num_workers = 2;
      tc.sampling_period = period;
      Trainer trainer(dsl, model, device, tc);
      double total = 0;
      int prep_free = 0;
      const int epochs = 6;
      for (int e = 0; e < epochs; ++e) {
        const EpochStats s = trainer.train_epoch(e);
        total += s.epoch_seconds;
        prep_free += (period > 1 && e % period != 0);
      }
      const std::vector<std::int64_t> fan{20, 20, 20};
      const double acc =
          evaluate_sampled(*model, dsl, dsl.test_idx, fan, 512, 3).accuracy;
      t.add_row({std::to_string(period), fmt(total / epochs, 3) + "s",
                 std::to_string(prep_free) + "/" + std::to_string(epochs),
                 fmt(acc, 4)});
    }
    t.print();
    std::cout << "(longer periods skip preparation on replay epochs at a "
                 "small accuracy cost — the LazyGCN tradeoff)\n";
  }

  heading("(d) Graph partitioning: LDG vs random (4 and 8 parts)");
  {
    TablePrinter t({"parts", "method", "edge cut", "balance",
                    "sampling comm", "partition time"});
    for (const int parts : {4, 8}) {
      WallTimer timer;
      GraphPartition random = partition_random(ds.graph, parts, 7);
      const double t_rand = timer.seconds();
      timer.reset();
      GraphPartition ldg = partition_ldg(ds.graph, parts);
      const double t_ldg = timer.seconds();
      for (const auto& [name, p, secs] :
           {std::tuple<const char*, const GraphPartition&, double>{
                "random", random, t_rand},
            {"LDG", ldg, t_ldg}}) {
        const double comm = estimate_sampling_comm_fraction(
            ds.graph, p, ds.train_idx, fanouts, 512, 4, 17);
        t.add_row({std::to_string(parts), name,
                   fmt(100 * edge_cut_fraction(ds.graph, p), 1) + "%",
                   fmt(balance_factor(p), 3),
                   fmt(100 * comm, 1) + "%", fmt(secs * 1e3, 1) + "ms"});
      }
    }
    t.print();
    std::cout << "(sampling comm = fraction of sampled MFG edges crossing "
                 "partitions,\n i.e. remote neighbor fetches a distributed "
                 "sampler would pay — §8)\n";
  }
  return 0;
}
