// Ablation for the §4.2 load-balancing claim: "Threads balance load
// dynamically via a lock-free input queue ... We find that dynamic load
// balancing generally performs better than static partitioning schemes such
// as those in the PyTorch DataLoader due to the variation in final
// neighborhood size across mini-batches."
//
// Method: measure REAL per-batch preparation times (sampling + slicing) for
// a full epoch, quantify their dispersion, then compute the epoch makespan
// across P workers under (a) the DataLoader's static round-robin assignment
// and (b) SALIENT's dynamic work queue (greedy list scheduling over the
// same measured times). The per-batch times are real; only the multi-worker
// schedule is computed (one core cannot run P workers in parallel).
#include <algorithm>
#include <cmath>
#include <queue>

#include "bench_common.h"
#include "graph/dataset.h"
#include "prep/slicing.h"
#include "sampling/fast_sampler.h"
#include "util/timer.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = 0.2 * env_scale();

  Dataset ds = generate_dataset(preset_config("products-sim", scale));
  const std::vector<std::int64_t> fanouts{15, 10, 5};
  const std::int64_t bs = 256;  // smaller batches: more of them to schedule
  const auto n = static_cast<std::int64_t>(ds.train_idx.size());
  const std::int64_t num_batches = n / bs;
  std::cout << "dataset " << ds.name << ": " << ds.graph.num_nodes()
            << " nodes, " << num_batches << " batches of " << bs << "\n";

  // Measure real end-to-end preparation time per batch.
  FastSampler sampler(ds.graph, fanouts);
  std::vector<double> prep(static_cast<std::size_t>(num_batches));
  double sum = 0, sum_sq = 0;
  for (std::int64_t b = 0; b < num_batches; ++b) {
    WallTimer t;
    Mfg mfg = sampler.sample(
        {ds.train_idx.data() + b * bs, static_cast<std::size_t>(bs)},
        500 + static_cast<unsigned>(b));
    Tensor x({mfg.num_input_nodes(), ds.feature_dim}, DType::kF16, true);
    slice_rows_serial(ds.features, mfg.n_ids, x);
    prep[static_cast<std::size_t>(b)] = t.seconds();
    sum += prep[static_cast<std::size_t>(b)];
    sum_sq += prep[static_cast<std::size_t>(b)] *
              prep[static_cast<std::size_t>(b)];
  }
  const double mean = sum / static_cast<double>(num_batches);
  const double cv =
      std::sqrt(sum_sq / static_cast<double>(num_batches) - mean * mean) /
      mean;
  std::cout << "\nmeasured per-batch prep: mean " << fmt(mean * 1e3, 2)
            << "ms, coefficient of variation " << fmt(cv, 2)
            << " (the neighborhood-size variation of 4.2)\n";

  // Schedule the measured times across P workers.
  auto static_makespan = [&](int workers) {
    std::vector<double> load(static_cast<std::size_t>(workers), 0.0);
    for (std::int64_t b = 0; b < num_batches; ++b) {
      load[static_cast<std::size_t>(b % workers)] +=
          prep[static_cast<std::size_t>(b)];
    }
    return *std::max_element(load.begin(), load.end());
  };
  auto dynamic_makespan = [&](int workers) {
    // Greedy: each batch (in queue order) goes to the earliest-free worker —
    // exactly what popping a shared work queue produces.
    std::priority_queue<double, std::vector<double>, std::greater<>> free;
    for (int w = 0; w < workers; ++w) free.push(0.0);
    double makespan = 0;
    for (std::int64_t b = 0; b < num_batches; ++b) {
      const double start = free.top();
      free.pop();
      const double end = start + prep[static_cast<std::size_t>(b)];
      free.push(end);
      makespan = std::max(makespan, end);
    }
    return makespan;
  };

  heading("Epoch batch-preparation makespan: static round-robin vs dynamic "
          "queue (4.2)");
  TablePrinter t({"workers", "static", "dynamic", "dynamic speedup",
                  "ideal"});
  for (const int workers : {2, 4, 8, 16}) {
    const double st = static_makespan(workers);
    const double dy = dynamic_makespan(workers);
    t.add_row({std::to_string(workers), fmt(st * 1e3, 1) + "ms",
               fmt(dy * 1e3, 1) + "ms", fmt(st / dy, 3) + "x",
               fmt(sum / workers * 1e3, 1) + "ms"});
  }
  t.print();
  std::cout << "(dynamic tracks the ideal balanced makespan; static "
               "round-robin strands work on whichever worker drew the "
               "heavy batches)\n";
  return 0;
}
