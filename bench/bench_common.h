// Shared helpers for the table/figure regeneration benches.
//
// Every bench prints (a) the paper's published numbers for the experiment it
// regenerates and (b) this reproduction's numbers — measured on this machine
// where the experiment is CPU-feasible, or produced by the calibrated
// cluster simulator where it needs the paper's testbed (see DESIGN.md §2).
//
// Environment knobs:
//   SALIENT_BENCH_SCALE  — dataset scale multiplier (default 1.0; presets
//                          are already sized for a small machine)
//   SALIENT_BENCH_EPOCHS — training epochs for accuracy benches
#pragma once

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace salient::benchutil {

inline double env_scale(double def = 1.0) {
  const char* s = std::getenv("SALIENT_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : def;
}

inline int env_epochs(int def) {
  const char* s = std::getenv("SALIENT_BENCH_EPOCHS");
  return s != nullptr ? std::atoi(s) : def;
}

/// Minimal fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  void add_row(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os = std::cout) const {
    print_row(os, headers_);
    std::string sep;
    for (const auto w : widths_) sep += std::string(w + 2, '-') + "+";
    os << sep << "\n";
    for (const auto& r : rows_) print_row(os, r);
  }

 private:
  void print_row(std::ostream& os, const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths_[i]))
         << cells[i] << " |";
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

inline void heading(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace salient::benchutil
