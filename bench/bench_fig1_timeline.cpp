// Figure 1: timeline of mini-batch operations per training epoch — the
// standard PyTorch workflow (a) versus SALIENT (b). Regenerated as ASCII art
// from the cluster simulator's span trace: green/yellow/orange/blue boxes of
// the paper map to 's' (sample), 'Y' (slice), 'x' (transfer), 't' (train).
#include "bench_common.h"
#include "sim/pipeline_model.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;

  // A short epoch (12 batches, 4 workers) renders legibly.
  sim::WorkloadModel w = sim::paper_workload("products");
  w.num_batches = 12;
  sim::HwProfile hw;

  heading("Figure 1(a): standard PyTorch workflow (blocking pipeline)");
  {
    const auto r =
        sim::simulate_epoch(w, hw, sim::SystemOptions::pyg(), 4, 1);
    std::cout << r.timeline.render_ascii(110)
              << "epoch: " << fmt(r.epoch_seconds, 3) << "s  blocked: prep "
              << fmt(r.blocked_prep_s, 3) << "s, transfer "
              << fmt(r.blocked_transfer_s, 3) << "s, train "
              << fmt(r.blocked_train_s, 3) << "s\n";
  }

  heading("Figure 1(b): SALIENT (end-to-end workers + overlapped transfers)");
  {
    const auto r =
        sim::simulate_epoch(w, hw, sim::SystemOptions::salient(), 4, 1);
    std::cout << r.timeline.render_ascii(110)
              << "epoch: " << fmt(r.epoch_seconds, 3) << "s  blocked: prep "
              << fmt(r.blocked_prep_s, 3) << "s, transfer "
              << fmt(r.blocked_transfer_s, 3) << "s, train "
              << fmt(r.blocked_train_s, 3) << "s\n";
  }
  std::cout << "\nkey: s=sampling Y=slicing x=CPU->GPU transfer t=GPU train;"
            << "\nlanes: w<gpu>.<worker>=preparation worker, main=Python main"
            << "\nthread, pcie=DMA engine, gpu=compute stream\n";
  return 0;
}
