// Figure 2: exhaustive exploration of the sampler design space — 96
// parameterized instantiations timed on a reference hop-by-hop trace, each
// reported relative to the PyG baseline configuration.
//
// This experiment is fully REAL on this machine: it is a single-thread
// microbenchmark by construction (the paper benchmarks "each individual hop
// of the reference trace" to suppress sampling variability).
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "graph/dataset.h"
#include "sampling/parameterized.h"
#include "sampling/trace.h"
#include "util/timer.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = 0.2 * env_scale();

  Dataset ds = generate_dataset(preset_config("products-sim", scale));
  const std::vector<std::int64_t> fanouts{15, 10, 5};
  std::vector<NodeId> batch(ds.train_idx.begin(),
                            ds.train_idx.begin() +
                                std::min<std::size_t>(512,
                                                      ds.train_idx.size()));
  const SampleTrace trace = record_trace(ds.graph, batch, fanouts, 42);
  std::cout << "reference trace on " << ds.name << ": ";
  for (const auto& hop : trace.hops) {
    std::cout << hop.frontier.size() << " nodes @fanout " << hop.fanout
              << "  ";
  }
  std::cout << "\n";

  // Time every variant over all hops of the fixed trace; several repetitions,
  // best-of to suppress scheduler noise.
  const auto variants = all_sampler_variants();
  constexpr int kReps = 3;
  struct Result {
    SamplerVariant v;
    double seconds;
  };
  std::vector<Result> results;
  double baseline_s = 0;
  for (const auto& v : variants) {
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      WallTimer t;
      std::int64_t sink = 0;
      for (const auto& hop : trace.hops) {
        sink += run_hop_with_variant(v, ds.graph, hop.frontier, hop.fanout,
                                     1234 + rep);
      }
      if (sink < 0) std::abort();  // keep the work observable
      best = std::min(best, t.seconds());
    }
    if (v.is_baseline()) baseline_s = best;
    results.push_back({v, best});
  }

  heading("Figure 2 (REAL): 96 sampler variants, speedup vs PyG baseline");
  std::sort(results.begin(), results.end(),
            [](const Result& a, const Result& b) {
              return a.seconds < b.seconds;
            });
  TablePrinter t({"rank", "variant", "time", "speedup", "notes"});
  int rank = 1;
  for (const auto& r : results) {
    std::string notes;
    if (r.v.is_baseline()) notes = "<= PyG NeighborSampler config";
    if (r.v.is_salient()) notes = "<= SALIENT production config";
    const bool show = rank <= 12 || rank > 92 || !notes.empty();
    if (show) {
      t.add_row({std::to_string(rank), r.v.name(),
                 fmt(r.seconds * 1e3, 2) + "ms",
                 fmt(baseline_s / r.seconds, 2) + "x", notes});
    }
    ++rank;
  }
  t.print();
  std::cout << "(middle ranks elided; all 96 were measured)\n";

  // The paper's two headline observations.
  auto geo_speedup = [&](auto pred) {
    double log_sum = 0;
    int n = 0;
    for (const auto& r : results) {
      if (!pred(r.v)) continue;
      log_sum += std::log(baseline_s / r.seconds);
      ++n;
    }
    return std::exp(log_sum / std::max(1, n));
  };
  // Compare maps holding the set structure fixed (array set), as the paper
  // does when attributing the 2x to the hash-map swap.
  const double flat_gain =
      geo_speedup([](const SamplerVariant& v) {
        return v.map == 1 && v.set == 2;
      }) /
      geo_speedup([](const SamplerVariant& v) {
        return v.map == 0 && v.set == 2;
      });
  const double array_gain =
      geo_speedup([](const SamplerVariant& v) {
        return v.map == 1 && v.set == 2;
      }) /
      geo_speedup([](const SamplerVariant& v) {
        return v.map == 1 && v.set == 1;
      });
  heading("Headline effects (paper: flat map ~2x; array set +17% over "
          "flat set)");
  std::cout << "  flat map vs std map (geomean): " << fmt(flat_gain, 2)
            << "x\n  array set vs flat set (flat-map variants, geomean): "
            << fmt(array_gain, 2) << "x\n";
  return 0;
}
