// Figure 3: test accuracy and node count versus node degree on
// ogbn-products (GraphSAGE), for full-neighborhood inference and sampling
// fanouts 5/10/20. The paper's observation: high-degree nodes are few and
// predicted less accurately under full neighborhoods, and growing fanout
// approximates the full-neighborhood accuracy profile from the left
// (low-degree) side first.
//
// Fully REAL: per-node predictions from the actual inference paths, bucketed
// by (log-scaled) test-node degree.
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/system.h"
#include "train/inference.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = 0.05 * env_scale();
  const int epochs = env_epochs(8);

  // Harder low-SNR features + denser train split (see bench_table6 note).
  DatasetConfig dc = preset_config("products-sim", scale);
  dc.feature_signal = 0.12;
  dc.feature_noise = 1.0;
  dc.train_frac = 0.3;
  dc.val_frac = 0.05;
  dc.test_frac = 0.3;
  SystemConfig cfg;
  cfg.hidden_channels = 64;
  cfg.num_layers = 3;
  cfg.train_fanouts = {15, 10, 5};
  cfg.batch_size = 512;
  cfg.num_workers = 2;
  System sys(generate_dataset(dc), cfg);
  std::cout << "training GraphSAGE on " << sys.dataset().name << " ("
            << sys.dataset().graph.num_nodes() << " nodes) for " << epochs
            << " epochs...\n";
  sys.train(epochs);

  const Dataset& ds = sys.dataset();
  const auto& test = ds.test_idx;

  // Predictions per fanout setting.
  struct Series {
    std::string label;
    std::vector<std::int64_t> pred;
  };
  std::vector<Series> series;
  series.push_back(
      {"all", evaluate_layerwise(*sys.model(), ds, test).predictions});
  for (const std::int64_t f : {20, 10, 5}) {
    const std::vector<std::int64_t> fan{f, f, f};
    series.push_back({std::to_string(f),
                      evaluate_sampled(*sys.model(), ds, test, fan, 512, 7)
                          .predictions});
  }

  // Degree buckets: powers of two.
  const int kBuckets = 12;
  auto bucket_of = [](std::int64_t deg) {
    int b = 0;
    while (deg > 1 && b < kBuckets - 1) {
      deg >>= 1;
      ++b;
    }
    return b;
  };
  std::vector<std::int64_t> count(kBuckets, 0);
  std::vector<std::vector<std::int64_t>> hits(
      series.size(), std::vector<std::int64_t>(kBuckets, 0));
  const std::int64_t* labels = ds.labels.data<std::int64_t>();
  for (std::size_t i = 0; i < test.size(); ++i) {
    const int b = bucket_of(ds.graph.degree(test[i]));
    ++count[static_cast<std::size_t>(b)];
    for (std::size_t s = 0; s < series.size(); ++s) {
      hits[s][static_cast<std::size_t>(b)] +=
          (series[s].pred[i] == labels[test[i]]);
    }
  }

  heading("Figure 3 (REAL): accuracy and node count vs degree (" +
          ds.name + ")");
  TablePrinter t({"degree", "#nodes", "acc(all)", "acc(20)", "acc(10)",
                  "acc(5)"});
  for (int b = 0; b < kBuckets; ++b) {
    if (count[static_cast<std::size_t>(b)] == 0) continue;
    std::vector<std::string> row;
    const std::int64_t lo = b == 0 ? 0 : (1LL << b);
    row.push_back("[" + std::to_string(lo) + "," +
                  std::to_string((2LL << b) - 1) + "]");
    row.push_back(std::to_string(count[static_cast<std::size_t>(b)]));
    for (std::size_t s = 0; s < series.size(); ++s) {
      row.push_back(fmt(
          static_cast<double>(hits[s][static_cast<std::size_t>(b)]) /
              static_cast<double>(count[static_cast<std::size_t>(b)]),
          3));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::cout << "\n(high-degree buckets hold few nodes; small fanouts track"
               "\n the full-neighborhood profile on low-degree nodes first,"
               "\n larger fanouts close the gap on the right — Figure 3)\n";
  return 0;
}
