// Figure 4: performance improvement of SALIENT over the standard PyG
// workflow, one machine / one GPU, GraphSAGE fanout (15,10,5).
//
// REAL rows: full end-to-end epochs of both systems (this repository's real
// loaders, device streams, training loops) on scaled datasets on this
// machine. The measured speedup here is dominated by the sampler and the
// IPC emulation (one core: worker parallelism and transfer/compute overlap
// cannot manifest as wall-clock gains).
// SIMULATED rows: the calibrated cluster simulator with the paper-testbed
// profile, where all three optimizations contribute, reproducing the 3x.
#include "bench_common.h"
#include "core/system.h"
#include "sim/pipeline_model.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = env_scale();

  heading("Figure 4 (paper): per-epoch time, PyG vs SALIENT (1 GPU)");
  {
    TablePrinter t({"Data Set", "PyG", "SALIENT", "Speedup"});
    t.add_row({"arxiv", "1.7s", "0.5s", "3.4x"});
    t.add_row({"products", "8.6s", "2.8s", "3.1x"});
    t.add_row({"papers", "50.4s", "16.5s", "3.1x"});
    t.print();
  }

  heading("Figure 4 (REAL, this machine, scaled datasets)");
  {
    TablePrinter t({"Data Set", "PyG-style", "SALIENT", "Speedup"});
    struct Spec {
      const char* preset;
      double scale;
    };
    for (const Spec spec : {Spec{"arxiv-sim", 0.2 * scale},
                            Spec{"products-sim", 0.1 * scale}}) {
      auto run = [&](LoaderKind kind, ExecutionMode mode) {
        SystemConfig cfg;
        cfg.dataset = spec.preset;
        cfg.dataset_scale = spec.scale;
        // A narrow hidden layer keeps the epoch preparation-bound, which is
        // the regime where the real (single-core-visible) SALIENT gains —
        // faster sampler, no IPC copies — show up in wall clock.
        cfg.hidden_channels = 16;
        cfg.batch_size = 512;
        cfg.num_workers = 2;
        cfg.loader_kind = kind;
        cfg.execution = mode;
        System sys(cfg);
        sys.train_epoch();  // warm-up
        return sys.train_epoch().epoch_seconds;
      };
      const double pyg =
          run(LoaderKind::kBaseline, ExecutionMode::kBlocking);
      const double sal =
          run(LoaderKind::kSalient, ExecutionMode::kPipelined);
      t.add_row({spec.preset, fmt(pyg, 2) + "s", fmt(sal, 2) + "s",
                 fmt(pyg / sal, 2) + "x"});
    }
    t.print();
  }

  heading("Figure 4 (SIMULATED, paper testbed, full-scale workloads)");
  {
    TablePrinter t({"Data Set", "PyG", "SALIENT", "Speedup"});
    for (const char* name : {"arxiv", "products", "papers"}) {
      const sim::WorkloadModel w = sim::paper_workload(name);
      const double pyg =
          sim::simulate_epoch(w, sim::HwProfile{}, sim::SystemOptions::pyg(),
                              20, 1)
              .epoch_seconds;
      const double sal = sim::simulate_epoch(w, sim::HwProfile{},
                                             sim::SystemOptions::salient(),
                                             20, 1)
                             .epoch_seconds;
      t.add_row({name, fmt(pyg, 2) + "s", fmt(sal, 2) + "s",
                 fmt(pyg / sal, 2) + "x"});
    }
    t.print();
  }
  return 0;
}
