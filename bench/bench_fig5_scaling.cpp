// Figure 5: epoch time when scaling to multiple GPUs (1..16, two per
// machine) with proportionally scaled effective batch size, SAGE (15,10,5).
//
// REAL rows: the in-process DDP trainer (real ring all-reduce across
// replica threads) on a scaled dataset — validating the distributed
// *mechanics*; on one core the wall clock cannot show parallel speedup.
// SIMULATED rows: the calibrated cluster simulator on the paper-testbed
// profile, reproducing the scaling curves (larger graphs scale better;
// 4.5x-8x at 16 GPUs).
#include "bench_common.h"
#include "dist/ddp.h"
#include "graph/dataset.h"
#include "sim/pipeline_model.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = env_scale();

  heading("Figure 5 (paper): 16-GPU speedups 4.45x (arxiv) .. 8.05x (papers)");

  heading("Figure 5 (REAL DDP mechanics, this machine, products-sim scaled)");
  {
    Dataset ds = generate_dataset(preset_config("products-sim",
                                                0.1 * scale));
    TablePrinter t({"replicas", "epoch", "batches/replica", "loss",
                    "in sync"});
    for (const int world : {1, 2, 4}) {
      DdpConfig cfg;
      cfg.world_size = world;
      cfg.model.in_channels = ds.feature_dim;
      cfg.model.hidden_channels = 32;
      cfg.model.out_channels = ds.num_classes;
      cfg.model.num_layers = 3;
      cfg.loader.batch_size = 128;
      cfg.loader.fanouts = {15, 10, 5};
      DdpTrainer trainer(ds, cfg);
      const auto r = trainer.train_epoch(0);
      t.add_row({std::to_string(world), fmt(r.epoch_seconds, 2) + "s",
                 std::to_string(r.batches_per_replica), fmt(r.mean_loss, 3),
                 trainer.replicas_in_sync() ? "yes" : "NO"});
    }
    t.print();
  }

  heading("Figure 5 (SIMULATED, paper testbed, full-scale workloads)");
  {
    TablePrinter t({"GPUs", "arxiv", "products", "papers", "papers speedup"});
    const sim::HwProfile hw;
    double papers_base = 0;
    for (const int gpus : {1, 2, 4, 8, 16}) {
      std::vector<std::string> row{std::to_string(gpus)};
      double papers_t = 0;
      for (const char* name : {"arxiv", "products", "papers"}) {
        const auto r = sim::simulate_epoch(sim::paper_workload(name), hw,
                                           sim::SystemOptions::salient(), 20,
                                           gpus);
        row.push_back(fmt(r.epoch_seconds, 2) + "s");
        if (std::string(name) == "papers") papers_t = r.epoch_seconds;
      }
      if (gpus == 1) papers_base = papers_t;
      row.push_back(fmt(papers_base / papers_t, 2) + "x");
      t.add_row(std::move(row));
    }
    t.print();
  }
  return 0;
}
