// Figure 6: per-epoch training time and test accuracy for four GNN
// architectures (SAGE, GAT, GIN, SAGE-RI) on ogbn-papers100M, 16 GPUs —
// demonstrating that SALIENT's performance engineering is architecture-
// independent (the GNN code is untouched PyG-style model code).
//
// REAL: each architecture trains on a scaled papers-sim dataset through the
// full SALIENT pipeline on this machine; accuracy and per-epoch time are
// measured. SIMULATED: per-architecture train cost is calibrated from the
// real model step and projected to the paper-testbed 16-GPU configuration.
#include "bench_common.h"
#include "core/system.h"
#include "sim/calibration.h"
#include "sim/pipeline_model.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = 0.02 * env_scale();
  const int epochs = env_epochs(5);

  heading("Figure 6 (paper): papers100M, 16 GPUs, 25 epochs");
  {
    TablePrinter t({"Model", "s/epoch (SALIENT)", "vs PyG", "accuracy"});
    t.add_row({"SAGE (15,10,5)", "2.0", "~2.3x", "64.6%"});
    t.add_row({"GAT (15,10,5)", "~4", ">1.4x", "~64%"});
    t.add_row({"GIN (20,20,20)", "~5", "~1.6x", "~63%"});
    t.add_row({"SAGE-RI (12,12,12)", "~8", ">1.4x", "~66%"});
    t.print();
  }

  // papers-sim at small scale has too few train nodes with the paper's 1.1%
  // split; bump the split for a learnable run and say so.
  DatasetConfig dc = preset_config("papers-sim", scale);
  dc.train_frac = 0.3;
  dc.val_frac = 0.05;
  dc.test_frac = 0.3;
  Dataset ds = generate_dataset(dc);
  std::cout << "dataset " << ds.name << ": " << ds.graph.num_nodes()
            << " nodes (train split raised to 30% at this scale so every"
            << " architecture sees enough batches)\n";

  struct Arch {
    const char* name;
    std::vector<std::int64_t> fanouts;
    std::int64_t hidden;
  };
  const std::vector<Arch> archs = {
      {"sage", {15, 10, 5}, 64},
      {"gat", {15, 10, 5}, 64},
      {"gin", {20, 20, 20}, 64},
      {"sage-ri", {12, 12, 12}, 96},
  };

  heading("Figure 6 (REAL training on this machine + 16-GPU projection)");
  TablePrinter t({"Model", "epoch (real, 1 core)", "test acc",
                  "16-GPU projection"});
  for (const auto& arch : archs) {
    SystemConfig cfg;
    cfg.arch = arch.name;
    cfg.hidden_channels = arch.hidden;
    cfg.num_layers = 3;
    cfg.train_fanouts = arch.fanouts;
    cfg.infer_fanouts = {20, 20, 20};
    cfg.batch_size = 512;
    cfg.num_workers = 2;
    Dataset copy = ds;  // Dataset is copyable (tensor storage shared)
    System sys(std::move(copy), cfg);
    double epoch_s = 0;
    for (int e = 0; e < epochs; ++e) {
      epoch_s = sys.train_epoch().epoch_seconds;
    }
    const double acc = sys.test_accuracy();

    // Project to the paper testbed: calibrate this architecture's costs and
    // run the simulator at 16 GPUs.
    sim::CalibrationConfig cc;
    cc.batch_size = 512;
    cc.fanouts = arch.fanouts;
    cc.arch = arch.name;
    cc.hidden_channels = arch.hidden;
    cc.measure_batches = 2;
    sim::WorkloadModel w = sim::calibrate(ds, cc);
    sim::HwProfile hw;
    hw.gpu_relative_speed = 40.0;
    const auto r =
        sim::simulate_epoch(w, hw, sim::SystemOptions::salient(), 20, 16);
    t.add_row({arch.name, fmt(epoch_s, 2) + "s", fmt(acc, 4),
               fmt(r.epoch_seconds, 3) + "s/epoch"});
  }
  t.print();
  std::cout << "\n(the reproduced shape: SAGE is fastest; GAT/GIN cost more"
               "\n per epoch; SAGE-RI costs the most and reaches the best"
               "\n accuracy — Figure 6)\n";
  return 0;
}
