// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// sampler variants (baseline vs SALIENT, and individual design choices),
// ID-map implementations, slicing, half conversion, SpMM, matmul, and the
// lock-free queue. These are the building blocks behind Tables 2-3 and
// Figure 2; run with --benchmark_filter=... to focus.
#include <benchmark/benchmark.h>

#include <numeric>

#include "graph/dataset.h"
#include "prep/slicing.h"
#include "sampling/baseline_sampler.h"
#include "sampling/fast_sampler.h"
#include "sampling/id_map.h"
#include "sampling/parameterized.h"
#include "tensor/kernel_config.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"
#include "util/half.h"
#include "util/mpmc_queue.h"
#include "util/thread_pool.h"
#include "util/rng.h"

namespace {

using namespace salient;

const Dataset& bench_dataset() {
  static Dataset ds = [] {
    DatasetConfig c;
    c.name = "bench";
    c.num_nodes = 60000;
    c.feature_dim = 100;
    c.num_classes = 16;
    c.avg_degree = 20;
    c.max_degree = 2000;
    c.seed = 99;
    return generate_dataset(c);
  }();
  return ds;
}

std::vector<NodeId> bench_batch(std::size_t n) {
  const auto& ds = bench_dataset();
  std::vector<NodeId> batch(ds.train_idx.begin(),
                            ds.train_idx.begin() +
                                std::min(n, ds.train_idx.size()));
  return batch;
}

void BM_SamplerBaseline(benchmark::State& state) {
  const auto& ds = bench_dataset();
  BaselineSampler sampler(ds.graph, {15, 10, 5});
  const auto batch = bench_batch(256);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Mfg mfg = sampler.sample(batch, ++seed);
    benchmark::DoNotOptimize(mfg.n_ids.data());
    state.counters["edges"] = static_cast<double>(mfg.total_edges());
  }
}
BENCHMARK(BM_SamplerBaseline)->Unit(benchmark::kMillisecond);

void BM_SamplerFast(benchmark::State& state) {
  const auto& ds = bench_dataset();
  FastSampler sampler(ds.graph, {15, 10, 5});
  const auto batch = bench_batch(256);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Mfg mfg = sampler.sample(batch, ++seed);
    benchmark::DoNotOptimize(mfg.n_ids.data());
    state.counters["edges"] = static_cast<double>(mfg.total_edges());
  }
}
BENCHMARK(BM_SamplerFast)->Unit(benchmark::kMillisecond);

void BM_IdMapFlat(benchmark::State& state) {
  Xoshiro256ss rng(5);
  std::vector<NodeId> keys(100000);
  for (auto& k : keys) k = static_cast<NodeId>(bounded_rand(rng, 1000000));
  for (auto _ : state) {
    FlatIdMap map;
    std::vector<NodeId> locals;
    for (const NodeId k : keys) {
      benchmark::DoNotOptimize(map.get_or_insert(k, locals));
    }
  }
}
BENCHMARK(BM_IdMapFlat)->Unit(benchmark::kMillisecond);

void BM_IdMapStd(benchmark::State& state) {
  Xoshiro256ss rng(5);
  std::vector<NodeId> keys(100000);
  for (auto& k : keys) k = static_cast<NodeId>(bounded_rand(rng, 1000000));
  for (auto _ : state) {
    StdIdMap map;
    std::vector<NodeId> locals;
    for (const NodeId k : keys) {
      benchmark::DoNotOptimize(map.get_or_insert(k, locals));
    }
  }
}
BENCHMARK(BM_IdMapStd)->Unit(benchmark::kMillisecond);

void BM_SliceRows(benchmark::State& state) {
  const auto& ds = bench_dataset();
  Xoshiro256ss rng(7);
  std::vector<NodeId> ids(20000);
  for (auto& v : ids) {
    v = static_cast<NodeId>(
        bounded_rand(rng, static_cast<std::uint64_t>(ds.graph.num_nodes())));
  }
  Tensor out({static_cast<std::int64_t>(ids.size()), ds.feature_dim},
             DType::kF16);
  for (auto _ : state) {
    slice_rows_serial(ds.features, ids, out);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.nbytes()));
}
BENCHMARK(BM_SliceRows)->Unit(benchmark::kMillisecond);

void BM_HalfToFloat(benchmark::State& state) {
  std::vector<Half> src(1 << 18);
  std::vector<float> dst(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = float_to_half(static_cast<float>(i) * 0.001f);
  }
  for (auto _ : state) {
    half_to_float_n(src.data(), dst.data(), src.size());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size() * 2));
}
BENCHMARK(BM_HalfToFloat)->Unit(benchmark::kMillisecond);

void BM_FloatToHalf(benchmark::State& state) {
  std::vector<float> src(1 << 18);
  std::vector<Half> dst(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<float>(i) * 0.001f - 100.0f;
  }
  for (auto _ : state) {
    float_to_half_n(src.data(), dst.data(), src.size());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size() * 4));
}
BENCHMARK(BM_FloatToHalf)->Unit(benchmark::kMillisecond);

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Tensor a = Tensor::uniform({n, n}, 1, -1, 1);
  Tensor b = Tensor::uniform({n, n}, 2, -1, 1);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.raw());
  }
  state.counters["GFLOPs"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Matmul)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SpmmMean(benchmark::State& state) {
  const auto& ds = bench_dataset();
  FastSampler sampler(ds.graph, {15, 10});
  const auto batch = bench_batch(256);
  Mfg mfg = sampler.sample(batch, 3);
  const auto& level = mfg.levels[0];
  Tensor x = Tensor::uniform({level.num_src, 64}, 4, -1, 1);
  for (auto _ : state) {
    Tensor y = ops::spmm_mean(*level.indptr, *level.indices, x,
                              level.num_dst);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_SpmmMean)->Unit(benchmark::kMillisecond);

// --- kernel-layer A/B benchmarks (tensor/kernel_config.h) -------------------
//
// Each benchmark takes Args({opt, threads}): opt selects the reference (0)
// or optimized (1) kernels, threads sizes a private pool the kernels run on.
// Shapes are ogbn-like MFG sizes, matching tools/bench_gate.cpp — use the
// gate for regression checks and these for interactive profiling.

/// Scoped kernel-kind + private-pool override (restored on destruction).
class KernelABGuard {
 public:
  KernelABGuard(bool opt, int threads)
      : saved_(ops::kernel_kind()), pool_(static_cast<std::size_t>(threads)) {
    ops::set_kernel_kind(opt ? ops::KernelKind::kOpt : ops::KernelKind::kRef);
    ops::set_kernel_pool(&pool_);
  }
  ~KernelABGuard() {
    ops::set_kernel_pool(nullptr);
    ops::set_kernel_kind(saved_);
  }

 private:
  ops::KernelKind saved_;
  ThreadPool pool_;
};

#define KERNEL_AB_ARGS                               \
  ->ArgNames({"opt", "threads"})                     \
      ->Args({0, 1})                                 \
      ->Args({1, 1})                                 \
      ->Args({1, 4})                                 \
      ->Args({1, 8})                                 \
      ->Unit(benchmark::kMillisecond)

void BM_GemmKernel(benchmark::State& state) {
  KernelABGuard guard(state.range(0) != 0, static_cast<int>(state.range(1)));
  Tensor a = Tensor::uniform({512, 128}, 1, -1, 1);
  Tensor b = Tensor::uniform({128, 256}, 2, -1, 1);
  for (auto _ : state) {
    Tensor c = ops::matmul(a, b);
    benchmark::DoNotOptimize(c.raw());
  }
  state.counters["GFLOPs"] = benchmark::Counter(
      2.0 * 512 * 128 * 256 * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmKernel) KERNEL_AB_ARGS;

/// Shapes shared by the fused-epilogue / compressed-GEMM A/B benchmarks: a
/// hidden-layer Linear forward (x [4096,64] @ w^T [256,64], the
/// tools/bench_gate.cpp fusion-gate shape).
struct LinearFixture {
  Tensor x = Tensor::uniform({4096, 64}, 31, -1, 1);
  Tensor w = Tensor::uniform({256, 64}, 32, -1, 1);
  Tensor bias = Tensor::uniform({256}, 33, -1, 1);
  Tensor x16 = x.to(DType::kF16);
  Tensor xq, scale, zero;
  LinearFixture() { xq = ops::quantize_rows(x, &scale, &zero); }
};

const LinearFixture& linear_fixture() {
  static LinearFixture f;
  return f;
}

void BM_LinearUnfusedKernel(benchmark::State& state) {
  KernelABGuard guard(state.range(0) != 0, static_cast<int>(state.range(1)));
  const auto& f = linear_fixture();
  for (auto _ : state) {
    Tensor h = ops::matmul(f.x, f.w, false, true);
    Tensor hb = ops::add_row_broadcast(h, f.bias);
    Tensor y = ops::relu(hb);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_LinearUnfusedKernel) KERNEL_AB_ARGS;

void BM_LinearFusedKernel(benchmark::State& state) {
  KernelABGuard guard(state.range(0) != 0, static_cast<int>(state.range(1)));
  const auto& f = linear_fixture();
  for (auto _ : state) {
    Tensor y = ops::gemm_epilogue(f.x, f.w, f.bias, ops::Epilogue::kBiasRelu,
                                  0.0, 0, nullptr);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_LinearFusedKernel) KERNEL_AB_ARGS;

void BM_GemmF16AKernel(benchmark::State& state) {
  KernelABGuard guard(state.range(0) != 0, static_cast<int>(state.range(1)));
  const auto& f = linear_fixture();
  for (auto _ : state) {
    Tensor y = ops::matmul(f.x16, f.w, false, true);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_GemmF16AKernel) KERNEL_AB_ARGS;

void BM_GemmInt8QKernel(benchmark::State& state) {
  KernelABGuard guard(state.range(0) != 0, static_cast<int>(state.range(1)));
  const auto& f = linear_fixture();
  for (auto _ : state) {
    Tensor y = ops::matmul_compressed(f.xq, f.scale, f.zero, f.w, true);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_GemmInt8QKernel) KERNEL_AB_ARGS;

/// MFG-shaped CSR shared by the SpMM kernel benchmarks: one fanout-15 level
/// sampled from the bench dataset (~8k dst, ~20-30k src).
struct SpmmFixture {
  Mfg mfg;
  Tensor x;
  Tensor grad;
  SpmmFixture() {
    const auto& ds = bench_dataset();
    FastSampler sampler(ds.graph, {15});
    mfg = sampler.sample(bench_batch(8192), 11);
    const auto& level = mfg.levels[0];
    x = Tensor::uniform({level.num_src, 128}, 12, -1, 1);
    grad = Tensor::uniform({level.num_dst, 128}, 13, -1, 1);
  }
};

const SpmmFixture& spmm_fixture() {
  static SpmmFixture f;
  return f;
}

void BM_SpmmMeanKernel(benchmark::State& state) {
  KernelABGuard guard(state.range(0) != 0, static_cast<int>(state.range(1)));
  const auto& f = spmm_fixture();
  const auto& level = f.mfg.levels[0];
  for (auto _ : state) {
    Tensor y =
        ops::spmm_mean(*level.indptr, *level.indices, f.x, level.num_dst);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_SpmmMeanKernel) KERNEL_AB_ARGS;

void BM_SpmmMeanBackwardKernel(benchmark::State& state) {
  KernelABGuard guard(state.range(0) != 0, static_cast<int>(state.range(1)));
  const auto& f = spmm_fixture();
  const auto& level = f.mfg.levels[0];
  for (auto _ : state) {
    Tensor gx = ops::spmm_mean_backward(*level.indptr, *level.indices, f.grad,
                                        level.num_src);
    benchmark::DoNotOptimize(gx.raw());
  }
}
BENCHMARK(BM_SpmmMeanBackwardKernel) KERNEL_AB_ARGS;

void BM_SpmmMaxKernel(benchmark::State& state) {
  KernelABGuard guard(state.range(0) != 0, static_cast<int>(state.range(1)));
  const auto& f = spmm_fixture();
  const auto& level = f.mfg.levels[0];
  for (auto _ : state) {
    Tensor y = ops::spmm_max(*level.indptr, *level.indices, f.x,
                             level.num_dst, nullptr);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_SpmmMaxKernel) KERNEL_AB_ARGS;

void BM_ElementwiseKernel(benchmark::State& state) {
  KernelABGuard guard(state.range(0) != 0, static_cast<int>(state.range(1)));
  Tensor a = Tensor::uniform({8192, 256}, 21, -1, 1);
  Tensor b = Tensor::uniform({8192, 256}, 22, -1, 1);
  for (auto _ : state) {
    Tensor c = ops::add(a, b);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 3 *
                          8192 * 256 * 4);
}
BENCHMARK(BM_ElementwiseKernel) KERNEL_AB_ARGS;

void BM_LogSoftmaxKernel(benchmark::State& state) {
  KernelABGuard guard(state.range(0) != 0, static_cast<int>(state.range(1)));
  Tensor logits = Tensor::uniform({8192, 48}, 23, -4, 4);
  for (auto _ : state) {
    Tensor y = ops::log_softmax_rows(logits);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_LogSoftmaxKernel) KERNEL_AB_ARGS;

void BM_MpmcQueuePingPong(benchmark::State& state) {
  MpmcQueue<int> q(1024);
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      benchmark::DoNotOptimize(q.try_push(i));
    }
    int v;
    for (int i = 0; i < 256; ++i) {
      benchmark::DoNotOptimize(q.try_pop(v));
    }
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_MpmcQueuePingPong);

}  // namespace

BENCHMARK_MAIN();
