// Table 1: per-operation performance breakdown of the baseline PyG training
// code — the blocking time the main thread spends in batch preparation,
// transfer, and GPU training.
//
// Two reproductions are printed:
//   1. REAL: an actual epoch of this repository's baseline pipeline
//     (multiprocessing-style loader, blocking transfer, blocking train) on
//     scaled synthetic datasets, measured on this machine.
//   2. SIMULATED: the calibrated cluster simulator replaying the same
//     pipeline with the paper's testbed profile (20 workers, V100-class
//     GPU), using per-batch costs distilled from the paper's published
//     measurements — the full-scale validation.
#include "bench_common.h"
#include "core/system.h"
#include "sim/pipeline_model.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = env_scale();

  heading("Table 1 (paper): baseline PyG per-operation breakdown");
  {
    TablePrinter t({"Data Set", "Epoch", "Batch Prep.", "Transfer",
                    "Train (GPU)"});
    t.add_row({"arxiv", "1.7s", "1.0s (58%)", "0.3s (15%)", "0.5s (27%)"});
    t.add_row({"products", "8.6s", "4.0s (46%)", "2.2s (26%)", "2.4s (28%)"});
    t.add_row({"papers", "50.4s", "18.6s (37%)", "17.9s (35%)",
               "13.9s (28%)"});
    t.print();
  }

  heading("Table 1 (REAL, this machine): baseline pipeline, scaled datasets");
  {
    TablePrinter t({"Data Set", "Epoch", "Batch Prep.", "Transfer",
                    "Train", "Batches"});
    struct Spec {
      const char* name;
      double scale;
    };
    for (const Spec spec : {Spec{"arxiv-sim", 0.2 * scale},
                            Spec{"products-sim", 0.1 * scale}}) {
      SystemConfig cfg;
      cfg.dataset = spec.name;
      cfg.dataset_scale = spec.scale;
      // Narrow hidden layer: keeps the single-core epoch in the paper's
      // regime (preparation + transfer dominate the GPU-train share).
      cfg.hidden_channels = 16;
      cfg.batch_size = 512;
      cfg.num_workers = 2;
      cfg.loader_kind = LoaderKind::kBaseline;
      cfg.execution = ExecutionMode::kBlocking;
      System sys(cfg);
      sys.train_epoch();  // warm-up (first-touch, pool population)
      const EpochStats s = sys.train_epoch();
      const double prep = s.blocking.total(Phase::kSample) +
                          s.blocking.total(Phase::kSlice);
      const double xfer = s.blocking.total(Phase::kTransfer);
      const double train = s.blocking.total(Phase::kTrain);
      const double total = prep + xfer + train;
      auto pct = [total](double v) {
        return fmt(v, 2) + "s (" + fmt(100 * v / total, 0) + "%)";
      };
      t.add_row({spec.name, fmt(s.epoch_seconds, 2) + "s", pct(prep),
                 pct(xfer), pct(train), std::to_string(s.num_batches)});
    }
    t.print();
    std::cout
        << "\n(blocking-time attribution on ONE CPU core: the sampling"
           "\n workers time-slice against the main thread, so their cycles"
           "\n surface inside the train phase's wall time rather than as"
           "\n prep blocking — the same overlap effect the paper notes for"
           "\n its blocking measurements, §3.1. The per-component costs are"
           "\n isolated in bench_table2_batchprep; the multi-core blocking"
           "\n shape is reproduced by the simulated table below.)\n";
  }

  heading("Table 1 (SIMULATED, paper testbed profile, full-scale workloads)");
  {
    TablePrinter t({"Data Set", "Epoch", "Batch Prep.", "Transfer",
                    "Train (GPU)"});
    for (const char* name : {"arxiv", "products", "papers"}) {
      const sim::WorkloadModel w = sim::paper_workload(name);
      const auto r = sim::simulate_epoch(w, sim::HwProfile{},
                                         sim::SystemOptions::pyg(), 20, 1);
      const double total =
          r.blocked_prep_s + r.blocked_transfer_s + r.blocked_train_s;
      auto pct = [total](double v) {
        return fmt(v, 2) + "s (" + fmt(100 * v / total, 0) + "%)";
      };
      t.add_row({name, fmt(r.epoch_seconds, 2) + "s", pct(r.blocked_prep_s),
                 pct(r.blocked_transfer_s), pct(r.blocked_train_s)});
    }
    t.print();
  }
  return 0;
}
