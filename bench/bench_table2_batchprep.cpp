// Table 2: breakdown of an ogbn-products epoch batch-preparation time for
// PyG vs SALIENT with P threads.
//
// REAL rows: the actual samplers and slicing kernels of this repository are
// timed over one epoch's mini-batches on a scaled products-sim graph; the
// serial (P=1) columns are direct wall-clock measurements on this machine.
// P=10/20 rows come from the calibrated parallel-efficiency model (this
// machine has one core; the caps themselves are the paper's measured
// scaling, Table 2). The key reproduced quantity is the measured
// PyG/SALIENT sampling ratio (paper: 71.1/28.3 = 2.5x serial).
#include <algorithm>
#include <cstring>

#include "bench_common.h"
#include "graph/dataset.h"
#include "prep/batch.h"
#include "prep/slicing.h"
#include "sampling/baseline_sampler.h"
#include "sampling/fast_sampler.h"
#include "util/timer.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = 0.3 * env_scale();

  Dataset ds = generate_dataset(preset_config("products-sim", scale));
  const std::vector<std::int64_t> fanouts{15, 10, 5};
  const std::int64_t batch_size = 1024;
  const auto n = static_cast<std::int64_t>(ds.train_idx.size());
  const std::int64_t num_batches = std::max<std::int64_t>(1, n / batch_size);

  std::cout << "dataset: " << ds.name << " at scale " << scale << " ("
            << ds.graph.num_nodes() << " nodes, " << ds.graph.num_edges()
            << " adjacency entries, " << num_batches
            << " batches of " << batch_size << ")\n";

  heading("Table 2 (paper): products epoch batch prep, P threads on 20 cores");
  {
    TablePrinter t({"P", "PyG Sampling", "PyG Slicing", "PyG Both",
                    "SALIENT Sampling", "SALIENT Slicing", "SALIENT Both"});
    t.add_row({"1", "71.1s", "7.6s", "72.7s", "28.3s", "7.3s", "35.6s"});
    t.add_row({"10", "11.4s", "1.6s", "11.5s", "3.3s", "0.8s", "4.1s"});
    t.add_row({"20", "7.2s", "1.2s", "7.3s", "1.9s", "0.6s", "2.5s"});
    t.print();
  }

  // Measure serial epoch costs with the real implementations.
  BaselineSampler pyg(ds.graph, fanouts);
  FastSampler fast(ds.graph, fanouts);
  double pyg_sample = 0, fast_sample = 0, pyg_slice = 0, fast_slice = 0;
  for (std::int64_t b = 0; b < num_batches; ++b) {
    const std::span<const NodeId> nodes(
        ds.train_idx.data() + b * batch_size,
        static_cast<std::size_t>(
            std::min(batch_size, n - b * batch_size)));
    WallTimer t;
    Mfg m_pyg = pyg.sample(nodes, 1000 + static_cast<unsigned>(b));
    pyg_sample += t.seconds();
    t.reset();
    Mfg m_fast = fast.sample(nodes, 1000 + static_cast<unsigned>(b));
    fast_sample += t.seconds();

    // PyG slicing: parallel kernel (single pass) + pin-memory copy.
    Tensor x1({m_pyg.num_input_nodes(), ds.feature_dim}, DType::kF16);
    t.reset();
    slice_rows_serial(ds.features, m_pyg.n_ids, x1);
    Tensor pinned(x1.shape(), x1.dtype(), true);
    std::memcpy(pinned.raw(), x1.raw(), x1.nbytes());
    pyg_slice += t.seconds();

    // SALIENT slicing: one serial pass directly into pinned memory.
    Tensor x2({m_fast.num_input_nodes(), ds.feature_dim}, DType::kF16, true);
    t.reset();
    slice_rows_serial(ds.features, m_fast.n_ids, x2);
    fast_slice += t.seconds();
  }

  heading("Table 2 (REAL serial measurements + paper-scaling model)");
  {
    // Parallel scaling caps measured by the paper (Table 2 at P=20).
    const double cap_sample_pyg = 71.1 / 7.2, cap_slice_pyg = 7.6 / 1.2;
    const double cap_sample_sal = 28.3 / 1.9, cap_slice_sal = 7.3 / 0.6;
    TablePrinter t({"P", "PyG Sampling", "PyG Slicing", "PyG Both",
                    "SALIENT Sampling", "SALIENT Slicing", "SALIENT Both"});
    for (const int p : {1, 10, 20}) {
      auto scaled = [p](double serial, double cap) {
        return serial / std::min<double>(p, cap);
      };
      const double ps = scaled(pyg_sample, cap_sample_pyg);
      const double pl = scaled(pyg_slice, cap_slice_pyg);
      const double ss = scaled(fast_sample, cap_sample_sal);
      const double sl = scaled(fast_slice, cap_slice_sal);
      t.add_row({std::to_string(p), fmt(ps, 2) + "s", fmt(pl, 2) + "s",
                 fmt(std::max(ps, pl), 2) + "s",  // PyG: async, max governs
                 fmt(ss, 2) + "s", fmt(sl, 2) + "s",
                 fmt(ss + sl, 2) + "s"});  // SALIENT: sequential per thread
    }
    t.print();
    std::cout << "\nmeasured serial sampling speedup (SALIENT vs PyG): "
              << fmt(pyg_sample / fast_sample, 2)
              << "x   (paper: 2.51x)\n";
    std::cout << "measured serial slicing ratio  (SALIENT vs PyG): "
              << fmt(pyg_slice / fast_slice, 2)
              << "x   (paper: ~1.04x serial; the pin-copy pass is the "
                 "PyG overhead)\n";
  }
  return 0;
}
