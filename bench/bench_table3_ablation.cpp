// Table 3: impact of SALIENT's optimizations on per-epoch runtime —
// cumulative ablation: PyG baseline, +fast sampling, +shared-memory batch
// prep, +pipelined data transfers.
//
// Rows are produced by the calibrated cluster simulator. Two calibrations
// are shown: (a) per-batch costs measured from this repository's real
// implementation on scaled datasets (the reproduction's own ratios), and
// (b) costs distilled from the paper's published tables at full scale.
#include "bench_common.h"
#include "graph/dataset.h"
#include "sim/calibration.h"
#include "sim/pipeline_model.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = env_scale();

  heading("Table 3 (paper): per-epoch runtime under cumulative optimizations");
  {
    TablePrinter t({"Optimization", "arxiv", "products", "papers"});
    t.add_row({"None (PyG)", "1.7s", "8.6s", "50.4s"});
    t.add_row({"+ Fast sampling", "0.7s", "5.3s", "34.6s"});
    t.add_row({"+ Shared-memory batch prep.", "0.6s", "4.2s", "27.8s"});
    t.add_row({"+ Pipelined data transfers", "0.5s", "2.8s", "16.5s"});
    t.print();
  }

  const std::vector<std::pair<std::string, sim::SystemOptions>> steps = {
      {"None (PyG)", sim::SystemOptions::pyg()},
      {"+ Fast sampling", {true, false, false}},
      {"+ Shared-memory batch prep.", {true, true, false}},
      {"+ Pipelined data transfers", sim::SystemOptions::salient()},
  };

  heading("Table 3 (SIMULATED from costs MEASURED on this machine)");
  {
    struct Spec {
      const char* preset;
      double scale;
    };
    const std::vector<Spec> specs = {{"arxiv-sim", 0.3 * scale},
                                     {"products-sim", 0.2 * scale},
                                     {"papers-sim", 0.05 * scale}};
    std::vector<sim::WorkloadModel> workloads;
    for (const auto& spec : specs) {
      Dataset ds = generate_dataset(preset_config(spec.preset, spec.scale));
      sim::CalibrationConfig cc;
      cc.batch_size = 1024;
      cc.measure_batches = 3;
      cc.hidden_channels = 256;  // the paper's hidden width
      workloads.push_back(sim::calibrate(ds, cc));
      std::cout << "  calibrated " << spec.preset << ": sample(pyg)="
                << fmt(workloads.back().sample_pyg_s * 1e3, 2)
                << "ms sample(salient)="
                << fmt(workloads.back().sample_salient_s * 1e3, 2)
                << "ms slice=" << fmt(workloads.back().slice_s * 1e3, 2)
                << "ms train=" << fmt(workloads.back().train_gpu_s * 1e3, 2)
                << "ms xfer=" << fmt(workloads.back().transfer_mb, 1)
                << "MB/batch (" << workloads.back().num_batches
                << " batches)\n";
    }
    std::cout << "\n";
    TablePrinter t({"Optimization", "arxiv-sim", "products-sim",
                    "papers-sim"});
    for (const auto& [label, opts] : steps) {
      std::vector<std::string> row{label};
      for (const auto& w : workloads) {
        // GPU compute measured on one CPU core; the testbed profile's V100
        // is far faster. Keep the host costs and rescale only the GPU term
        // so per-epoch time reflects the paper's CPU:GPU balance.
        sim::HwProfile hw;
        hw.gpu_relative_speed = 40.0;  // V100 vs one Xeon core, order est.
        const auto r = sim::simulate_epoch(w, hw, opts, 20, 1);
        row.push_back(fmt(r.epoch_seconds, 3) + "s");
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  heading("Table 3 (SIMULATED from the paper's published cost tables)");
  {
    TablePrinter t({"Optimization", "arxiv", "products", "papers"});
    for (const auto& [label, opts] : steps) {
      std::vector<std::string> row{label};
      for (const char* name : {"arxiv", "products", "papers"}) {
        const auto r = sim::simulate_epoch(sim::paper_workload(name),
                                           sim::HwProfile{}, opts, 20, 1);
        row.push_back(fmt(r.epoch_seconds, 2) + "s");
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  return 0;
}
