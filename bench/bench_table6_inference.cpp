// Table 6: test accuracy under various neighborhood fanouts for inference.
// GraphSAGE trained with fanout (15,10,5); inference fanout swept over
// {full, (20,20,20), (10,10,10), (5,5,5)}; repetitions give mean +/- std.
//
// Fully REAL: models are trained on the synthetic datasets and evaluated
// with the actual sampled-inference and layer-wise full-neighborhood paths.
#include <cmath>

#include "bench_common.h"
#include "core/system.h"
#include "train/inference.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = env_scale();
  const int epochs = env_epochs(8);
  const int reps = 2;

  heading("Table 6 (paper): test accuracy vs inference fanout");
  {
    TablePrinter t({"Data Set", "all", "(20,20,20)", "(10,10,10)",
                    "(5,5,5)"});
    t.add_row({"arxiv", ".7066", ".7055", ".6980", ".6785"});
    t.add_row({"products", ".7749", ".7755", ".7708", ".7558"});
    t.add_row({"papers", ".6396*", ".6398", ".6379", ".6288"});
    t.print();
    std::cout << "(* papers 'all' is fanout (100,100,100); full neighborhood"
                 " runs out of memory)\n";
  }

  heading("Table 6 (REAL, scaled synthetic datasets; mean +/- std over " +
          std::to_string(reps) + " train+infer runs)");
  TablePrinter t({"Data Set", "all (layerwise)", "(20,20,20)", "(10,10,10)",
                  "(5,5,5)"});
  struct Spec {
    const char* preset;
    double scale;
  };
  for (const Spec spec : {Spec{"arxiv-sim", 0.05 * scale},
                          Spec{"products-sim", 0.05 * scale}}) {
    std::vector<std::vector<double>> acc(4);  // all, 20, 10, 5
    for (int rep = 0; rep < reps; ++rep) {
      // Reduced-scale graphs need a harder feature task (lower SNR) and a
      // denser train split than the presets for the fanout sweep to be
      // informative; the aggregation-denoising mechanism is unchanged.
      DatasetConfig dc = preset_config(spec.preset, spec.scale);
      dc.feature_signal = 0.12;
      dc.feature_noise = 1.0;
      dc.train_frac = 0.3;
      dc.val_frac = 0.05;
      dc.test_frac = 0.3;
      dc.seed += static_cast<unsigned>(rep);
      SystemConfig cfg;
      cfg.hidden_channels = 64;
      cfg.num_layers = 3;
      cfg.train_fanouts = {15, 10, 5};
      cfg.batch_size = 512;
      cfg.num_workers = 2;
      cfg.seed = 100 + static_cast<unsigned>(rep);
      System sys(generate_dataset(dc), cfg);
      sys.train(epochs);
      acc[0].push_back(evaluate_layerwise(*sys.model(), sys.dataset(),
                                          sys.dataset().test_idx)
                           .accuracy);
      int slot = 1;
      for (const std::int64_t f : {20, 10, 5}) {
        const std::vector<std::int64_t> fan{f, f, f};
        acc[static_cast<std::size_t>(slot++)].push_back(
            sys.test_accuracy(fan));
      }
    }
    auto cell = [&](const std::vector<double>& xs) {
      double mean = 0;
      for (const double x : xs) mean += x;
      mean /= static_cast<double>(xs.size());
      double var = 0;
      for (const double x : xs) var += (x - mean) * (x - mean);
      var /= static_cast<double>(xs.size());
      return fmt(mean, 4) + " +/- " + fmt(std::sqrt(var), 3);
    };
    t.add_row({spec.preset, cell(acc[0]), cell(acc[1]), cell(acc[2]),
               cell(acc[3])});
  }
  t.print();
  std::cout << "\n(the reproduced shape: fanout 20 matches the full "
               "neighborhood; accuracy degrades gently at 10 and more at "
               "5 — paper section 5)\n";
  return 0;
}
