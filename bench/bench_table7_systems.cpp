// Table 7: representative GNN training systems and their reported
// performance on the largest graph each reports. Literature rows are the
// paper's published constants (none of those systems is available offline);
// the SALIENT row is this reproduction's: the real measured run at reduced
// scale plus the calibrated simulator's projection to the paper's cluster.
#include "bench_common.h"
#include "core/system.h"
#include "sim/pipeline_model.h"
#include "train/full_batch.h"

int main() {
  using namespace salient;
  using namespace salient::benchutil;
  const double scale = env_scale();

  heading("Table 7: representative systems on their largest reported graph");
  TablePrinter t({"System", "Framework", "Batching", "Data Set",
                  "s/epoch", "Acc"});
  t.add_row({"NeuGraph", "TensorFlow", "full-batch", "amazon (8.6M)",
             "0.655", "n/a"});
  t.add_row({"Roc", "FlexFlow/Lux", "full-batch", "amazon (9.4M)", "0.526",
             "n/a"});
  t.add_row({"DistDGL", "PyTorch/DGL", "mini-batch", "papers100M", "13",
             "n/a"});
  t.add_row({"DeepGalois", "Galois", "full-batch", "papers100M", "70",
             "n/a"});
  t.add_row({"Zero-Copy", "PyTorch/DGL", "mini-batch", "papers100M", "648",
             "n/a"});
  t.add_row({"GNS", "PyTorch/DGL", "mini-batch", "papers100M", "98.5",
             "63.31"});
  t.add_row({"SALIENT (paper)", "PyTorch/PyG", "mini-batch", "papers100M",
             "2.0 (+2.4 infer)", "64.58"});

  // Our reproduction's row: real small-scale run + projection.
  SystemConfig cfg;
  cfg.dataset = "papers-sim";
  cfg.dataset_scale = 0.05 * scale;
  cfg.hidden_channels = 64;
  cfg.batch_size = 512;
  cfg.num_workers = 2;
  System sys(cfg);
  sys.train_epoch();
  const EpochStats s = sys.train_epoch();
  // Pipelined mini-batch inference over the test set, fanout (20,20,20) —
  // the paper's "Infer: 2.4s" row runs through the same pipeline.
  const std::vector<std::int64_t> infer_fanouts{20, 20, 20};
  const auto infer = sys.trainer().inference_epoch(sys.dataset().test_idx,
                                                   infer_fanouts);

  const sim::WorkloadModel w = sim::paper_workload("papers");
  const auto r = sim::simulate_epoch(w, sim::HwProfile{},
                                     sim::SystemOptions::salient(), 20, 16);
  t.add_row({"SALIENT (this repro)", "C++ (this repo)", "mini-batch",
             "papers-sim: " + fmt(s.epoch_seconds, 2) + "s train + " +
                 fmt(infer.seconds, 2) + "s infer (real)",
             fmt(r.epoch_seconds, 2) + " (sim, 16 GPUs)", "see Table 6"});

  // A REAL full-batch comparison point on the same graph (the batching
  // scheme of NeuGraph/Roc/DeepGalois, see src/train/full_batch.h).
  FullBatchConfig fb;
  fb.hidden_channels = 64;
  FullBatchGcnTrainer full(sys.dataset(), fb);
  full.train_epoch(0);  // warm-up
  const EpochStats fs = full.train_epoch(1);
  t.add_row({"full-batch GCN (this repro)", "C++ (this repo)", "full-batch",
             "papers-sim: " + fmt(fs.epoch_seconds, 2) + "s (real), " +
                 fmt(static_cast<double>(full.activation_bytes()) / 1e6, 0) +
                 "MB activations",
             "n/a", "n/a"});
  t.print();

  std::cout << "\nnotes:\n"
            << "  * literature rows are the paper's Table 7 constants; those\n"
            << "    systems are closed or need clusters unavailable here.\n"
            << "  * the simulated 16-GPU papers epoch uses costs distilled\n"
            << "    from the paper's published component measurements and\n"
            << "    this repo's measured SALIENT/PyG ratios (DESIGN.md).\n";
  return 0;
}
