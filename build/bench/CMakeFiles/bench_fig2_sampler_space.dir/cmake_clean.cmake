file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_sampler_space.dir/bench_fig2_sampler_space.cpp.o"
  "CMakeFiles/bench_fig2_sampler_space.dir/bench_fig2_sampler_space.cpp.o.d"
  "bench_fig2_sampler_space"
  "bench_fig2_sampler_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_sampler_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
