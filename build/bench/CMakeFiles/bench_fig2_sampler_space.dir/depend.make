# Empty dependencies file for bench_fig2_sampler_space.
# This may be replaced when dependencies are built.
