# Empty compiler generated dependencies file for bench_fig3_degree_accuracy.
# This may be replaced when dependencies are built.
