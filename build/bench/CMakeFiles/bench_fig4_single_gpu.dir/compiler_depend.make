# Empty compiler generated dependencies file for bench_fig4_single_gpu.
# This may be replaced when dependencies are built.
