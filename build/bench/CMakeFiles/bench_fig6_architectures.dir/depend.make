# Empty dependencies file for bench_fig6_architectures.
# This may be replaced when dependencies are built.
