file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_batchprep.dir/bench_table2_batchprep.cpp.o"
  "CMakeFiles/bench_table2_batchprep.dir/bench_table2_batchprep.cpp.o.d"
  "bench_table2_batchprep"
  "bench_table2_batchprep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_batchprep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
