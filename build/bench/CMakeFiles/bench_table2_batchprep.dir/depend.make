# Empty dependencies file for bench_table2_batchprep.
# This may be replaced when dependencies are built.
