file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_inference.dir/bench_table6_inference.cpp.o"
  "CMakeFiles/bench_table6_inference.dir/bench_table6_inference.cpp.o.d"
  "bench_table6_inference"
  "bench_table6_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
