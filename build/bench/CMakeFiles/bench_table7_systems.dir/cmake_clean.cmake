file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_systems.dir/bench_table7_systems.cpp.o"
  "CMakeFiles/bench_table7_systems.dir/bench_table7_systems.cpp.o.d"
  "bench_table7_systems"
  "bench_table7_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
