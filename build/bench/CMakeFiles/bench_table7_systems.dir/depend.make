# Empty dependencies file for bench_table7_systems.
# This may be replaced when dependencies are built.
