file(REMOVE_RECURSE
  "CMakeFiles/inference_fanout_study.dir/inference_fanout_study.cpp.o"
  "CMakeFiles/inference_fanout_study.dir/inference_fanout_study.cpp.o.d"
  "inference_fanout_study"
  "inference_fanout_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_fanout_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
