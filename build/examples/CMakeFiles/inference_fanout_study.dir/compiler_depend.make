# Empty compiler generated dependencies file for inference_fanout_study.
# This may be replaced when dependencies are built.
