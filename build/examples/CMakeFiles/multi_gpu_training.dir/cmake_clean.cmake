file(REMOVE_RECURSE
  "CMakeFiles/multi_gpu_training.dir/multi_gpu_training.cpp.o"
  "CMakeFiles/multi_gpu_training.dir/multi_gpu_training.cpp.o.d"
  "multi_gpu_training"
  "multi_gpu_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_gpu_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
