# Empty compiler generated dependencies file for multi_gpu_training.
# This may be replaced when dependencies are built.
