file(REMOVE_RECURSE
  "CMakeFiles/salient_run.dir/salient_run.cpp.o"
  "CMakeFiles/salient_run.dir/salient_run.cpp.o.d"
  "salient_run"
  "salient_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
