# Empty compiler generated dependencies file for salient_run.
# This may be replaced when dependencies are built.
