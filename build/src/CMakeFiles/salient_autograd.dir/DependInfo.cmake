
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/engine.cpp" "src/CMakeFiles/salient_autograd.dir/autograd/engine.cpp.o" "gcc" "src/CMakeFiles/salient_autograd.dir/autograd/engine.cpp.o.d"
  "/root/repo/src/autograd/functions.cpp" "src/CMakeFiles/salient_autograd.dir/autograd/functions.cpp.o" "gcc" "src/CMakeFiles/salient_autograd.dir/autograd/functions.cpp.o.d"
  "/root/repo/src/autograd/gradcheck.cpp" "src/CMakeFiles/salient_autograd.dir/autograd/gradcheck.cpp.o" "gcc" "src/CMakeFiles/salient_autograd.dir/autograd/gradcheck.cpp.o.d"
  "/root/repo/src/autograd/variable.cpp" "src/CMakeFiles/salient_autograd.dir/autograd/variable.cpp.o" "gcc" "src/CMakeFiles/salient_autograd.dir/autograd/variable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salient_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
