file(REMOVE_RECURSE
  "CMakeFiles/salient_autograd.dir/autograd/engine.cpp.o"
  "CMakeFiles/salient_autograd.dir/autograd/engine.cpp.o.d"
  "CMakeFiles/salient_autograd.dir/autograd/functions.cpp.o"
  "CMakeFiles/salient_autograd.dir/autograd/functions.cpp.o.d"
  "CMakeFiles/salient_autograd.dir/autograd/gradcheck.cpp.o"
  "CMakeFiles/salient_autograd.dir/autograd/gradcheck.cpp.o.d"
  "CMakeFiles/salient_autograd.dir/autograd/variable.cpp.o"
  "CMakeFiles/salient_autograd.dir/autograd/variable.cpp.o.d"
  "libsalient_autograd.a"
  "libsalient_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
