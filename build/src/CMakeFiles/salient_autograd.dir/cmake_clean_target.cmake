file(REMOVE_RECURSE
  "libsalient_autograd.a"
)
