# Empty compiler generated dependencies file for salient_autograd.
# This may be replaced when dependencies are built.
