file(REMOVE_RECURSE
  "CMakeFiles/salient_core.dir/core/config.cpp.o"
  "CMakeFiles/salient_core.dir/core/config.cpp.o.d"
  "CMakeFiles/salient_core.dir/core/system.cpp.o"
  "CMakeFiles/salient_core.dir/core/system.cpp.o.d"
  "libsalient_core.a"
  "libsalient_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
