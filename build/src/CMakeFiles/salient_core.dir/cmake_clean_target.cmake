file(REMOVE_RECURSE
  "libsalient_core.a"
)
