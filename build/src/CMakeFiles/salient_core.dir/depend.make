# Empty dependencies file for salient_core.
# This may be replaced when dependencies are built.
