file(REMOVE_RECURSE
  "CMakeFiles/salient_device.dir/device/device_sim.cpp.o"
  "CMakeFiles/salient_device.dir/device/device_sim.cpp.o.d"
  "CMakeFiles/salient_device.dir/device/dma.cpp.o"
  "CMakeFiles/salient_device.dir/device/dma.cpp.o.d"
  "CMakeFiles/salient_device.dir/device/stream.cpp.o"
  "CMakeFiles/salient_device.dir/device/stream.cpp.o.d"
  "libsalient_device.a"
  "libsalient_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
