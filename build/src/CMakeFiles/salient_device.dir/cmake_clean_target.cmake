file(REMOVE_RECURSE
  "libsalient_device.a"
)
