# Empty dependencies file for salient_device.
# This may be replaced when dependencies are built.
