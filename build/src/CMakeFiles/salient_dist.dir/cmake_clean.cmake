file(REMOVE_RECURSE
  "CMakeFiles/salient_dist.dir/dist/allreduce.cpp.o"
  "CMakeFiles/salient_dist.dir/dist/allreduce.cpp.o.d"
  "CMakeFiles/salient_dist.dir/dist/ddp.cpp.o"
  "CMakeFiles/salient_dist.dir/dist/ddp.cpp.o.d"
  "libsalient_dist.a"
  "libsalient_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
