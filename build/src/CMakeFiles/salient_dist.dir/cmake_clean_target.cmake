file(REMOVE_RECURSE
  "libsalient_dist.a"
)
