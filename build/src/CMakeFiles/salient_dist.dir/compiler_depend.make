# Empty compiler generated dependencies file for salient_dist.
# This may be replaced when dependencies are built.
