
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/salient_graph.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/salient_graph.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/salient_graph.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/salient_graph.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/dataset.cpp" "src/CMakeFiles/salient_graph.dir/graph/dataset.cpp.o" "gcc" "src/CMakeFiles/salient_graph.dir/graph/dataset.cpp.o.d"
  "/root/repo/src/graph/generator.cpp" "src/CMakeFiles/salient_graph.dir/graph/generator.cpp.o" "gcc" "src/CMakeFiles/salient_graph.dir/graph/generator.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/salient_graph.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/salient_graph.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/CMakeFiles/salient_graph.dir/graph/partition.cpp.o" "gcc" "src/CMakeFiles/salient_graph.dir/graph/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salient_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
