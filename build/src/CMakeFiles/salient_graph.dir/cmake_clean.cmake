file(REMOVE_RECURSE
  "CMakeFiles/salient_graph.dir/graph/builder.cpp.o"
  "CMakeFiles/salient_graph.dir/graph/builder.cpp.o.d"
  "CMakeFiles/salient_graph.dir/graph/csr.cpp.o"
  "CMakeFiles/salient_graph.dir/graph/csr.cpp.o.d"
  "CMakeFiles/salient_graph.dir/graph/dataset.cpp.o"
  "CMakeFiles/salient_graph.dir/graph/dataset.cpp.o.d"
  "CMakeFiles/salient_graph.dir/graph/generator.cpp.o"
  "CMakeFiles/salient_graph.dir/graph/generator.cpp.o.d"
  "CMakeFiles/salient_graph.dir/graph/io.cpp.o"
  "CMakeFiles/salient_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/salient_graph.dir/graph/partition.cpp.o"
  "CMakeFiles/salient_graph.dir/graph/partition.cpp.o.d"
  "libsalient_graph.a"
  "libsalient_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
