file(REMOVE_RECURSE
  "libsalient_graph.a"
)
