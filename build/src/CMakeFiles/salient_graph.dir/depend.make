# Empty dependencies file for salient_graph.
# This may be replaced when dependencies are built.
