
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/salient_nn.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/salient_nn.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/gat_conv.cpp" "src/CMakeFiles/salient_nn.dir/nn/gat_conv.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/gat_conv.cpp.o.d"
  "/root/repo/src/nn/gcn_conv.cpp" "src/CMakeFiles/salient_nn.dir/nn/gcn_conv.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/gcn_conv.cpp.o.d"
  "/root/repo/src/nn/gin_conv.cpp" "src/CMakeFiles/salient_nn.dir/nn/gin_conv.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/gin_conv.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/salient_nn.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/salient_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/CMakeFiles/salient_nn.dir/nn/models.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/models.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/salient_nn.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/sage_conv.cpp" "src/CMakeFiles/salient_nn.dir/nn/sage_conv.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/sage_conv.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/salient_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/salient_nn.dir/nn/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salient_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
