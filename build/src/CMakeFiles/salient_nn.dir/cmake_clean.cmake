file(REMOVE_RECURSE
  "CMakeFiles/salient_nn.dir/nn/activations.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/activations.cpp.o.d"
  "CMakeFiles/salient_nn.dir/nn/batchnorm.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/batchnorm.cpp.o.d"
  "CMakeFiles/salient_nn.dir/nn/gat_conv.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/gat_conv.cpp.o.d"
  "CMakeFiles/salient_nn.dir/nn/gcn_conv.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/gcn_conv.cpp.o.d"
  "CMakeFiles/salient_nn.dir/nn/gin_conv.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/gin_conv.cpp.o.d"
  "CMakeFiles/salient_nn.dir/nn/linear.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/linear.cpp.o.d"
  "CMakeFiles/salient_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/salient_nn.dir/nn/models.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/models.cpp.o.d"
  "CMakeFiles/salient_nn.dir/nn/module.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/module.cpp.o.d"
  "CMakeFiles/salient_nn.dir/nn/sage_conv.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/sage_conv.cpp.o.d"
  "CMakeFiles/salient_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/salient_nn.dir/nn/serialize.cpp.o.d"
  "libsalient_nn.a"
  "libsalient_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
