file(REMOVE_RECURSE
  "libsalient_nn.a"
)
