# Empty compiler generated dependencies file for salient_nn.
# This may be replaced when dependencies are built.
