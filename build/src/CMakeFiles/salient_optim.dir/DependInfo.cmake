
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/adam.cpp" "src/CMakeFiles/salient_optim.dir/optim/adam.cpp.o" "gcc" "src/CMakeFiles/salient_optim.dir/optim/adam.cpp.o.d"
  "/root/repo/src/optim/lr_scheduler.cpp" "src/CMakeFiles/salient_optim.dir/optim/lr_scheduler.cpp.o" "gcc" "src/CMakeFiles/salient_optim.dir/optim/lr_scheduler.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "src/CMakeFiles/salient_optim.dir/optim/sgd.cpp.o" "gcc" "src/CMakeFiles/salient_optim.dir/optim/sgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salient_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
