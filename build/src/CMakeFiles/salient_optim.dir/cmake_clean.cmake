file(REMOVE_RECURSE
  "CMakeFiles/salient_optim.dir/optim/adam.cpp.o"
  "CMakeFiles/salient_optim.dir/optim/adam.cpp.o.d"
  "CMakeFiles/salient_optim.dir/optim/lr_scheduler.cpp.o"
  "CMakeFiles/salient_optim.dir/optim/lr_scheduler.cpp.o.d"
  "CMakeFiles/salient_optim.dir/optim/sgd.cpp.o"
  "CMakeFiles/salient_optim.dir/optim/sgd.cpp.o.d"
  "libsalient_optim.a"
  "libsalient_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
