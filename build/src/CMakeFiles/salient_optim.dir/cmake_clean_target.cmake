file(REMOVE_RECURSE
  "libsalient_optim.a"
)
