# Empty dependencies file for salient_optim.
# This may be replaced when dependencies are built.
