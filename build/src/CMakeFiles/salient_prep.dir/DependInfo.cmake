
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prep/baseline_loader.cpp" "src/CMakeFiles/salient_prep.dir/prep/baseline_loader.cpp.o" "gcc" "src/CMakeFiles/salient_prep.dir/prep/baseline_loader.cpp.o.d"
  "/root/repo/src/prep/batch.cpp" "src/CMakeFiles/salient_prep.dir/prep/batch.cpp.o" "gcc" "src/CMakeFiles/salient_prep.dir/prep/batch.cpp.o.d"
  "/root/repo/src/prep/feature_cache.cpp" "src/CMakeFiles/salient_prep.dir/prep/feature_cache.cpp.o" "gcc" "src/CMakeFiles/salient_prep.dir/prep/feature_cache.cpp.o.d"
  "/root/repo/src/prep/pinned_pool.cpp" "src/CMakeFiles/salient_prep.dir/prep/pinned_pool.cpp.o" "gcc" "src/CMakeFiles/salient_prep.dir/prep/pinned_pool.cpp.o.d"
  "/root/repo/src/prep/salient_loader.cpp" "src/CMakeFiles/salient_prep.dir/prep/salient_loader.cpp.o" "gcc" "src/CMakeFiles/salient_prep.dir/prep/salient_loader.cpp.o.d"
  "/root/repo/src/prep/slicing.cpp" "src/CMakeFiles/salient_prep.dir/prep/slicing.cpp.o" "gcc" "src/CMakeFiles/salient_prep.dir/prep/slicing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salient_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
