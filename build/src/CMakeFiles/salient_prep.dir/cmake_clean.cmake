file(REMOVE_RECURSE
  "CMakeFiles/salient_prep.dir/prep/baseline_loader.cpp.o"
  "CMakeFiles/salient_prep.dir/prep/baseline_loader.cpp.o.d"
  "CMakeFiles/salient_prep.dir/prep/batch.cpp.o"
  "CMakeFiles/salient_prep.dir/prep/batch.cpp.o.d"
  "CMakeFiles/salient_prep.dir/prep/feature_cache.cpp.o"
  "CMakeFiles/salient_prep.dir/prep/feature_cache.cpp.o.d"
  "CMakeFiles/salient_prep.dir/prep/pinned_pool.cpp.o"
  "CMakeFiles/salient_prep.dir/prep/pinned_pool.cpp.o.d"
  "CMakeFiles/salient_prep.dir/prep/salient_loader.cpp.o"
  "CMakeFiles/salient_prep.dir/prep/salient_loader.cpp.o.d"
  "CMakeFiles/salient_prep.dir/prep/slicing.cpp.o"
  "CMakeFiles/salient_prep.dir/prep/slicing.cpp.o.d"
  "libsalient_prep.a"
  "libsalient_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
