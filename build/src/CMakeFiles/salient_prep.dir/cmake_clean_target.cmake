file(REMOVE_RECURSE
  "libsalient_prep.a"
)
