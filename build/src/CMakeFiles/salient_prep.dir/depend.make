# Empty dependencies file for salient_prep.
# This may be replaced when dependencies are built.
