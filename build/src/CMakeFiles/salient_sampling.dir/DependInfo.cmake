
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/baseline_sampler.cpp" "src/CMakeFiles/salient_sampling.dir/sampling/baseline_sampler.cpp.o" "gcc" "src/CMakeFiles/salient_sampling.dir/sampling/baseline_sampler.cpp.o.d"
  "/root/repo/src/sampling/distributed.cpp" "src/CMakeFiles/salient_sampling.dir/sampling/distributed.cpp.o" "gcc" "src/CMakeFiles/salient_sampling.dir/sampling/distributed.cpp.o.d"
  "/root/repo/src/sampling/fast_sampler.cpp" "src/CMakeFiles/salient_sampling.dir/sampling/fast_sampler.cpp.o" "gcc" "src/CMakeFiles/salient_sampling.dir/sampling/fast_sampler.cpp.o.d"
  "/root/repo/src/sampling/mfg.cpp" "src/CMakeFiles/salient_sampling.dir/sampling/mfg.cpp.o" "gcc" "src/CMakeFiles/salient_sampling.dir/sampling/mfg.cpp.o.d"
  "/root/repo/src/sampling/parameterized.cpp" "src/CMakeFiles/salient_sampling.dir/sampling/parameterized.cpp.o" "gcc" "src/CMakeFiles/salient_sampling.dir/sampling/parameterized.cpp.o.d"
  "/root/repo/src/sampling/trace.cpp" "src/CMakeFiles/salient_sampling.dir/sampling/trace.cpp.o" "gcc" "src/CMakeFiles/salient_sampling.dir/sampling/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salient_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/salient_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
