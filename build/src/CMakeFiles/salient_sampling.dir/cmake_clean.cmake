file(REMOVE_RECURSE
  "CMakeFiles/salient_sampling.dir/sampling/baseline_sampler.cpp.o"
  "CMakeFiles/salient_sampling.dir/sampling/baseline_sampler.cpp.o.d"
  "CMakeFiles/salient_sampling.dir/sampling/distributed.cpp.o"
  "CMakeFiles/salient_sampling.dir/sampling/distributed.cpp.o.d"
  "CMakeFiles/salient_sampling.dir/sampling/fast_sampler.cpp.o"
  "CMakeFiles/salient_sampling.dir/sampling/fast_sampler.cpp.o.d"
  "CMakeFiles/salient_sampling.dir/sampling/mfg.cpp.o"
  "CMakeFiles/salient_sampling.dir/sampling/mfg.cpp.o.d"
  "CMakeFiles/salient_sampling.dir/sampling/parameterized.cpp.o"
  "CMakeFiles/salient_sampling.dir/sampling/parameterized.cpp.o.d"
  "CMakeFiles/salient_sampling.dir/sampling/trace.cpp.o"
  "CMakeFiles/salient_sampling.dir/sampling/trace.cpp.o.d"
  "libsalient_sampling.a"
  "libsalient_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
