file(REMOVE_RECURSE
  "libsalient_sampling.a"
)
