# Empty compiler generated dependencies file for salient_sampling.
# This may be replaced when dependencies are built.
