file(REMOVE_RECURSE
  "CMakeFiles/salient_sim.dir/sim/calibration.cpp.o"
  "CMakeFiles/salient_sim.dir/sim/calibration.cpp.o.d"
  "CMakeFiles/salient_sim.dir/sim/pipeline_model.cpp.o"
  "CMakeFiles/salient_sim.dir/sim/pipeline_model.cpp.o.d"
  "CMakeFiles/salient_sim.dir/sim/resources.cpp.o"
  "CMakeFiles/salient_sim.dir/sim/resources.cpp.o.d"
  "CMakeFiles/salient_sim.dir/sim/timeline.cpp.o"
  "CMakeFiles/salient_sim.dir/sim/timeline.cpp.o.d"
  "libsalient_sim.a"
  "libsalient_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
