file(REMOVE_RECURSE
  "libsalient_sim.a"
)
