# Empty compiler generated dependencies file for salient_sim.
# This may be replaced when dependencies are built.
