
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/dtype.cpp" "src/CMakeFiles/salient_tensor.dir/tensor/dtype.cpp.o" "gcc" "src/CMakeFiles/salient_tensor.dir/tensor/dtype.cpp.o.d"
  "/root/repo/src/tensor/matmul.cpp" "src/CMakeFiles/salient_tensor.dir/tensor/matmul.cpp.o" "gcc" "src/CMakeFiles/salient_tensor.dir/tensor/matmul.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/salient_tensor.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/salient_tensor.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/storage.cpp" "src/CMakeFiles/salient_tensor.dir/tensor/storage.cpp.o" "gcc" "src/CMakeFiles/salient_tensor.dir/tensor/storage.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/salient_tensor.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/salient_tensor.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/salient_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
