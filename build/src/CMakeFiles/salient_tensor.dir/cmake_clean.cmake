file(REMOVE_RECURSE
  "CMakeFiles/salient_tensor.dir/tensor/dtype.cpp.o"
  "CMakeFiles/salient_tensor.dir/tensor/dtype.cpp.o.d"
  "CMakeFiles/salient_tensor.dir/tensor/matmul.cpp.o"
  "CMakeFiles/salient_tensor.dir/tensor/matmul.cpp.o.d"
  "CMakeFiles/salient_tensor.dir/tensor/ops.cpp.o"
  "CMakeFiles/salient_tensor.dir/tensor/ops.cpp.o.d"
  "CMakeFiles/salient_tensor.dir/tensor/storage.cpp.o"
  "CMakeFiles/salient_tensor.dir/tensor/storage.cpp.o.d"
  "CMakeFiles/salient_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/salient_tensor.dir/tensor/tensor.cpp.o.d"
  "libsalient_tensor.a"
  "libsalient_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
