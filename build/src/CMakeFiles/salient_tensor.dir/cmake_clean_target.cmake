file(REMOVE_RECURSE
  "libsalient_tensor.a"
)
