# Empty dependencies file for salient_tensor.
# This may be replaced when dependencies are built.
