file(REMOVE_RECURSE
  "CMakeFiles/salient_train.dir/train/full_batch.cpp.o"
  "CMakeFiles/salient_train.dir/train/full_batch.cpp.o.d"
  "CMakeFiles/salient_train.dir/train/inference.cpp.o"
  "CMakeFiles/salient_train.dir/train/inference.cpp.o.d"
  "CMakeFiles/salient_train.dir/train/metrics.cpp.o"
  "CMakeFiles/salient_train.dir/train/metrics.cpp.o.d"
  "CMakeFiles/salient_train.dir/train/trainer.cpp.o"
  "CMakeFiles/salient_train.dir/train/trainer.cpp.o.d"
  "libsalient_train.a"
  "libsalient_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
