file(REMOVE_RECURSE
  "libsalient_train.a"
)
