# Empty dependencies file for salient_train.
# This may be replaced when dependencies are built.
