file(REMOVE_RECURSE
  "CMakeFiles/salient_util.dir/util/half.cpp.o"
  "CMakeFiles/salient_util.dir/util/half.cpp.o.d"
  "CMakeFiles/salient_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/salient_util.dir/util/thread_pool.cpp.o.d"
  "CMakeFiles/salient_util.dir/util/timer.cpp.o"
  "CMakeFiles/salient_util.dir/util/timer.cpp.o.d"
  "libsalient_util.a"
  "libsalient_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salient_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
