file(REMOVE_RECURSE
  "libsalient_util.a"
)
