# Empty compiler generated dependencies file for salient_util.
# This may be replaced when dependencies are built.
