file(REMOVE_RECURSE
  "CMakeFiles/test_fullbatch.dir/test_fullbatch.cpp.o"
  "CMakeFiles/test_fullbatch.dir/test_fullbatch.cpp.o.d"
  "test_fullbatch"
  "test_fullbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fullbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
