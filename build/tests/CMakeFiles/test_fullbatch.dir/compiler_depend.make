# Empty compiler generated dependencies file for test_fullbatch.
# This may be replaced when dependencies are built.
