file(REMOVE_RECURSE
  "CMakeFiles/test_io_sched.dir/test_io_sched.cpp.o"
  "CMakeFiles/test_io_sched.dir/test_io_sched.cpp.o.d"
  "test_io_sched"
  "test_io_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
