# Empty dependencies file for test_io_sched.
# This may be replaced when dependencies are built.
