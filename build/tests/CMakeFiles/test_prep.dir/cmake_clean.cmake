file(REMOVE_RECURSE
  "CMakeFiles/test_prep.dir/test_prep.cpp.o"
  "CMakeFiles/test_prep.dir/test_prep.cpp.o.d"
  "test_prep"
  "test_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
