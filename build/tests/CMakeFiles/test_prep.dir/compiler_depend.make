# Empty compiler generated dependencies file for test_prep.
# This may be replaced when dependencies are built.
