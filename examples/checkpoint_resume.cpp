// Checkpointing workflow: train, save, resume in a fresh process-like
// context, and verify the restored model serves the same predictions — plus
// feature-cached training (paper §8) as a config flag.
//
//   ./checkpoint_resume [epochs]
#include <cstdio>
#include <iostream>

#include "core/system.h"
#include "nn/serialize.h"

int main(int argc, char** argv) {
  using namespace salient;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 4;
  const char* ckpt = "/tmp/salient_quickstart.ckpt";

  SystemConfig cfg;
  cfg.dataset = "arxiv-sim";
  cfg.dataset_scale = 0.04;
  cfg.arch = "sage";
  cfg.hidden_channels = 48;
  cfg.num_layers = 2;
  cfg.train_fanouts = {10, 5};
  cfg.infer_fanouts = {20, 20};
  cfg.batch_size = 512;
  // Keep the hottest ~10% of nodes' features resident on the device: only
  // cache misses cross the PCIe link (paper §8 / GNS-style caching).
  cfg.feature_cache_nodes = 676;

  // First session: train and checkpoint.
  double acc_before;
  {
    System sys(cfg);
    std::cout << "training " << epochs << " epochs with feature cache of "
              << cfg.feature_cache_nodes << " nodes...\n";
    for (int e = 0; e < epochs; ++e) {
      std::cout << sys.train_epoch().summary() << "\n";
    }
    acc_before = sys.test_accuracy();
    nn::save_checkpoint(*sys.model(), ckpt);
    std::cout << "saved checkpoint to " << ckpt
              << "  (test acc " << acc_before << ")\n";
  }

  // Second session: fresh system (fresh random init), restore, evaluate.
  {
    System sys(cfg);  // same dataset seed => same graph/splits
    const double acc_fresh = sys.test_accuracy();
    nn::load_checkpoint(*sys.model(), ckpt);
    const double acc_restored = sys.test_accuracy();
    std::cout << "fresh-init accuracy:    " << acc_fresh
              << "\nrestored accuracy:      " << acc_restored
              << "  (should match " << acc_before << ")\n";

    // Resume training from the checkpoint.
    std::cout << "resuming training...\n";
    for (int e = 0; e < 2; ++e) {
      std::cout << sys.train_epoch().summary() << "\n";
    }
    std::cout << "final accuracy:         " << sys.test_accuracy() << "\n";
  }
  std::remove(ckpt);
  return 0;
}
