// Defining a custom GNN against the SALIENT substrate — the workflow the
// paper advertises (§6, "Performance of varying GNNs"): the architecture is
// independent of the performance engineering, so a new model only implements
// forward() over MFG levels and immediately gets fast sampling, shared-
// memory batch preparation, and pipelined transfers.
//
// The custom model here is a 2-layer mean-aggregation GNN with a residual
// MLP head — deliberately not one of the four stock architectures.
#include <iostream>

#include "autograd/functions.h"
#include "core/system.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/sage_conv.h"

namespace {

using namespace salient;

/// A user-defined architecture: SAGE conv -> SAGE conv -> residual MLP.
class ResidualSage final : public nn::GnnModel {
 public:
  ResidualSage(std::int64_t in, std::int64_t hidden, std::int64_t out) {
    conv1_ = register_module("conv1",
                             std::make_shared<nn::SageConv>(in, hidden));
    conv2_ = register_module(
        "conv2", std::make_shared<nn::SageConv>(hidden, hidden));
    skip_ = register_module("skip",
                            std::make_shared<nn::Linear>(in, hidden));
    head_ = register_module("head",
                            std::make_shared<nn::Linear>(hidden, out));
    dropout_ = register_module("dropout", std::make_shared<nn::Dropout>(0.3));
    set_seed(2024);
  }

  Variable forward(const Variable& x, const Mfg& mfg) override {
    Variable h = nn::relu(conv1_->forward(x, mfg.levels[0]));
    h = dropout_->forward(h);
    h = nn::relu(conv2_->forward(h, mfg.levels[1]));
    // residual from the raw input features of the batch nodes
    Variable x_batch = autograd::narrow_rows(x, 0, mfg.batch_size);
    h = autograd::add(h, nn::relu(skip_->forward(x_batch)));
    return nn::log_softmax(head_->forward(h));
  }

  const char* arch() const override { return "residual-sage"; }
  int num_layers() const override { return 2; }
  bool supports_layerwise() const override { return false; }
  Variable apply_layer(int, const Variable&, const MfgLevel&) override {
    throw std::logic_error("residual-sage: use sampled inference");
  }
  Variable finalize(const Variable&) override {
    throw std::logic_error("residual-sage: use sampled inference");
  }

 private:
  std::shared_ptr<nn::SageConv> conv1_, conv2_;
  std::shared_ptr<nn::Linear> skip_, head_;
  std::shared_ptr<nn::Dropout> dropout_;
};

}  // namespace

int main() {
  using namespace salient;
  Dataset ds = generate_dataset(preset_config("arxiv-sim", 0.04));
  auto model = std::make_shared<ResidualSage>(ds.feature_dim, 48,
                                              ds.num_classes);
  std::cout << "custom architecture '" << model->arch() << "' with "
            << model->num_parameters() << " parameters\n";

  DeviceSim device;
  TrainConfig tc;
  tc.loader.batch_size = 512;
  tc.loader.fanouts = {10, 5};  // must match the model depth (2 layers)
  tc.loader.num_workers = 2;
  Trainer trainer(ds, model, device, tc);

  for (int e = 0; e < 5; ++e) {
    std::cout << trainer.train_epoch(e).summary() << "\n";
  }
  const std::vector<std::int64_t> fanouts{20, 20};
  std::cout << "test accuracy: "
            << evaluate_sampled(*model, ds, ds.test_idx, fanouts, 512, 1)
                   .accuracy
            << std::endl;
  return 0;
}
