// Inference with neighborhood sampling (paper §5 / Table 6): train a model,
// then sweep the inference fanout and compare against full-neighborhood
// layer-wise inference — showing accuracy saturation at modest fanouts and
// the memory cost of the layer-wise alternative.
//
//   ./inference_fanout_study [dataset-scale] [epochs]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/system.h"
#include "train/inference.h"

int main(int argc, char** argv) {
  using namespace salient;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.04;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 6;

  SystemConfig cfg;
  cfg.dataset = "products-sim";
  cfg.dataset_scale = scale;
  cfg.arch = "sage";
  cfg.hidden_channels = 48;
  cfg.num_layers = 3;
  cfg.train_fanouts = {15, 10, 5};
  cfg.batch_size = 512;
  cfg.num_workers = 2;
  System sys(cfg);
  std::cout << "training GraphSAGE on " << sys.dataset().name << " ("
            << sys.dataset().graph.num_nodes() << " nodes) for " << epochs
            << " epochs...\n";
  sys.train(epochs);

  std::cout << "\ninference fanout sweep on the test set ("
            << sys.dataset().test_idx.size() << " nodes):\n";
  std::cout << std::fixed << std::setprecision(4);
  for (const std::int64_t f : {2, 5, 10, 20, 50}) {
    const std::vector<std::int64_t> fanouts{f, f, f};
    std::cout << "  fanout (" << f << "," << f << "," << f
              << "): accuracy " << sys.test_accuracy(fanouts) << "\n";
  }
  auto full = evaluate_layerwise(*sys.model(), sys.dataset(),
                                 sys.dataset().test_idx);
  std::cout << "  full neighborhood (layer-wise): accuracy " << full.accuracy
            << "\n\nlayer-wise intermediate storage: "
            << static_cast<double>(layerwise_memory_bytes(
                   *sys.model(), sys.dataset(), cfg.hidden_channels)) /
                   1e6
            << " MB of host memory\n";
  return 0;
}
