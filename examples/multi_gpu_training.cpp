// Distributed data-parallel training across simulated devices (paper §6,
// "Multi-GPU scaling"): replicas keep parameters in sync via ring
// all-reduce; the effective batch size scales with the number of replicas.
// Also prints the calibrated cluster-simulator projection of the same run
// on the paper's testbed hardware at 1..16 GPUs (Figure 5's experiment).
//
//   ./multi_gpu_training [world_size] [epochs]
#include <cstdlib>
#include <iostream>

#include "dist/ddp.h"
#include "graph/dataset.h"
#include "sim/calibration.h"
#include "sim/pipeline_model.h"
#include "train/inference.h"

int main(int argc, char** argv) {
  using namespace salient;
  const int world = argc > 1 ? std::atoi(argv[1]) : 2;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 3;

  DatasetConfig dc = products_sim_config(0.03);
  Dataset ds = generate_dataset(dc);
  std::cout << "dataset " << ds.name << ": " << ds.graph.num_nodes()
            << " nodes, " << ds.graph.num_edges() << " adjacency entries, "
            << ds.train_idx.size() << " train nodes\n";

  DdpConfig cfg;
  cfg.world_size = world;
  cfg.arch = "sage";
  cfg.model.in_channels = ds.feature_dim;
  cfg.model.hidden_channels = 64;
  cfg.model.out_channels = ds.num_classes;
  cfg.model.num_layers = 3;
  cfg.loader.batch_size = 256;
  cfg.loader.fanouts = {15, 10, 5};
  DdpTrainer trainer(ds, cfg);

  std::cout << "training with " << world << " replicas (ring all-reduce)\n";
  for (int e = 0; e < epochs; ++e) {
    const auto r = trainer.train_epoch(e);
    std::cout << "epoch " << e << ": " << r.epoch_seconds << "s, loss "
              << r.mean_loss << ", " << r.batches_per_replica
              << " batches/replica, in sync: "
              << (trainer.replicas_in_sync() ? "yes" : "NO!") << "\n";
  }
  const std::vector<std::int64_t> fanouts{20, 20, 20};
  std::cout << "test accuracy: "
            << evaluate_sampled(*trainer.replica(0), ds, ds.test_idx, fanouts,
                                256, 1)
                   .accuracy
            << "\n\n";

  // Project the same workload onto the paper's cluster (Figure 5).
  sim::CalibrationConfig cc;
  cc.batch_size = 256;
  cc.fanouts = {15, 10, 5};
  cc.hidden_channels = 64;
  const sim::WorkloadModel w = sim::calibrate(ds, cc);
  const sim::HwProfile hw;
  std::cout << "cluster-simulator projection (paper testbed, SALIENT):\n";
  for (const int gpus : {1, 2, 4, 8, 16}) {
    const auto r = sim::simulate_epoch(w, hw, sim::SystemOptions::salient(),
                                       20, gpus);
    std::cout << "  " << gpus << " GPUs: " << r.epoch_seconds
              << " s/epoch\n";
  }
  return 0;
}
