// Quickstart: train a 3-layer GraphSAGE with SALIENT's pipelined batch
// preparation on a synthetic ogbn-arxiv-like dataset, then run sampled
// inference — the end-to-end workflow of the paper in ~40 lines.
//
//   ./quickstart [epochs] [dataset-scale] [--trace-out=trace.json]
//                [--metrics-out=metrics.json]
//
// With --trace-out the run records spans from the preparation workers, the
// copy/compute streams, and the main thread, and writes a Chrome trace you
// can open in https://ui.perfetto.dev (see docs/OBSERVABILITY.md).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/system.h"

int main(int argc, char** argv) {
  salient::SystemConfig cfg;

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!salient::parse_obs_flag(arg, cfg)) positional.push_back(arg);
  }
  const int epochs =
      positional.size() > 0 ? std::atoi(positional[0].c_str()) : 4;
  const double scale =
      positional.size() > 1 ? std::atof(positional[1].c_str()) : 0.05;

  cfg.dataset = "arxiv-sim";
  cfg.dataset_scale = scale;
  cfg.arch = "sage";
  cfg.hidden_channels = 64;
  cfg.num_layers = 3;
  cfg.train_fanouts = {15, 10, 5};   // the paper's training fanout
  cfg.infer_fanouts = {20, 20, 20};  // the paper's inference fanout
  cfg.batch_size = 512;
  cfg.num_workers = 2;

  std::cout << "Generating " << cfg.dataset << " (scale " << scale
            << ") and building the SALIENT stack...\n";
  salient::System sys(cfg);
  std::cout << "  nodes=" << sys.dataset().graph.num_nodes()
            << " edges=" << sys.dataset().graph.num_edges()
            << " feat=" << sys.dataset().feature_dim
            << " classes=" << sys.dataset().num_classes
            << " params=" << sys.model()->num_parameters() << "\n\n";

  for (int e = 0; e < epochs; ++e) {
    const salient::EpochStats stats = sys.train_epoch();
    std::cout << stats.summary() << "\n";
  }

  std::cout << "\nval accuracy  (fanout 20,20,20): " << sys.val_accuracy()
            << "\ntest accuracy (fanout 20,20,20): " << sys.test_accuracy()
            << std::endl;
  return 0;
}
