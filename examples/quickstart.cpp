// Quickstart: train a 3-layer GraphSAGE with SALIENT's pipelined batch
// preparation on a synthetic ogbn-arxiv-like dataset, then run sampled
// inference — the end-to-end workflow of the paper in ~40 lines.
//
//   ./quickstart [epochs] [dataset-scale]
#include <cstdlib>
#include <iostream>

#include "core/system.h"

int main(int argc, char** argv) {
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 4;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;

  salient::SystemConfig cfg;
  cfg.dataset = "arxiv-sim";
  cfg.dataset_scale = scale;
  cfg.arch = "sage";
  cfg.hidden_channels = 64;
  cfg.num_layers = 3;
  cfg.train_fanouts = {15, 10, 5};   // the paper's training fanout
  cfg.infer_fanouts = {20, 20, 20};  // the paper's inference fanout
  cfg.batch_size = 512;
  cfg.num_workers = 2;

  std::cout << "Generating " << cfg.dataset << " (scale " << scale
            << ") and building the SALIENT stack...\n";
  salient::System sys(cfg);
  std::cout << "  nodes=" << sys.dataset().graph.num_nodes()
            << " edges=" << sys.dataset().graph.num_edges()
            << " feat=" << sys.dataset().feature_dim
            << " classes=" << sys.dataset().num_classes
            << " params=" << sys.model()->num_parameters() << "\n\n";

  for (int e = 0; e < epochs; ++e) {
    const salient::EpochStats stats = sys.train_epoch();
    std::cout << stats.summary() << "\n";
  }

  std::cout << "\nval accuracy  (fanout 20,20,20): " << sys.val_accuracy()
            << "\ntest accuracy (fanout 20,20,20): " << sys.test_accuracy()
            << std::endl;
  return 0;
}
