// salient_run — a complete command-line front end over the library: pick a
// dataset (preset or .bin file), architecture, pipeline mode and training
// options; train, evaluate, and optionally checkpoint. This is the "drop-in
// system" face of the reproduction.
//
//   ./salient_run --dataset products-sim --scale 0.05 --arch sage \
//                 --epochs 5 --fanouts 15,10,5 --infer-fanouts 20,20,20 \
//                 --mode salient --workers 2 --cache-pct 10 \
//                 --save /tmp/model.ckpt
//   ./salient_run --data-file mygraph.bin --arch gat --epochs 3
//   ./salient_run --help
#include <iostream>
#include <map>
#include <string>

#include "core/system.h"
#include "graph/io.h"
#include "nn/serialize.h"

namespace {

void usage() {
  std::cout <<
      R"(salient_run — train/evaluate GNNs with the SALIENT pipeline

options (all optional):
  --dataset NAME      preset: arxiv-sim | products-sim | papers-sim  [arxiv-sim]
  --scale X           preset size multiplier                         [0.05]
  --data-file PATH    load a dataset saved with save_dataset() instead
  --arch NAME         sage | gat | gin | sage-ri                     [sage]
  --hidden N          hidden channels                                [64]
  --layers N          GNN depth (fanout list must match)             [3]
  --fanouts A,B,C     training fanouts                               [15,10,5]
  --infer-fanouts ... inference fanouts                              [20,20,20]
  --epochs N          training epochs                                [4]
  --batch N           mini-batch size                                [512]
  --workers N         preparation workers                            [2]
  --lr X              Adam learning rate                             [3e-3]
  --mode M            salient (pipelined) | baseline (blocking PyG)  [salient]
  --cache-pct P       device feature cache, percent of nodes         [0]
  --cache-policy M    degree | presample | lru | auto (docs/CACHING.md)
                                                                     [degree]
  --feature-dtype D   feature wire format: f32 | f16 | i8q
                      (docs/PERFORMANCE.md)                          [f16]
  --seed N            global seed                                    [1]
  --save PATH         write a checkpoint after training
  --load PATH         load a checkpoint before training
  --trace-out PATH    write a Chrome trace of the run (open in Perfetto)
  --metrics-out PATH  dump the metrics registry as JSON on exit
  --help              this text

options may be spelled --key value or --key=value.
)";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace salient;
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (key == "--help") {
      usage();
      return 0;
    }
    if (key.rfind("--", 0) != 0) {
      std::cerr << "bad argument: " << key << " (try --help)\n";
      return 1;
    }
    const auto eq = key.find('=');
    if (eq != std::string::npos) {
      args[key.substr(2, eq - 2)] = key.substr(eq + 1);
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << "bad argument: " << key << " (try --help)\n";
      return 1;
    }
    args[key.substr(2)] = argv[++i];
  }
  auto get = [&args](const char* key, const std::string& def) {
    auto it = args.find(key);
    return it == args.end() ? def : it->second;
  };

  SystemConfig cfg;
  cfg.dataset = get("dataset", "arxiv-sim");
  cfg.dataset_scale = std::stod(get("scale", "0.05"));
  cfg.arch = get("arch", "sage");
  cfg.hidden_channels = std::stoll(get("hidden", "64"));
  cfg.num_layers = std::stoi(get("layers", "3"));
  cfg.train_fanouts = parse_fanouts(get("fanouts", "15,10,5"));
  cfg.infer_fanouts = parse_fanouts(get("infer-fanouts", "20,20,20"));
  cfg.batch_size = std::stoll(get("batch", "512"));
  cfg.num_workers = std::stoi(get("workers", "2"));
  cfg.lr = std::stod(get("lr", "3e-3"));
  cfg.seed = std::stoull(get("seed", "1"));
  cfg.cache_percentage = std::stod(get("cache-pct", "0")) / 100.0;
  cfg.cache_policy = get("cache-policy", "degree");
  cfg.feature_dtype = get("feature-dtype", "f16");
  try {
    parse_cache_policy(cfg.cache_policy);  // reject typos before building
    parse_feature_dtype(cfg.feature_dtype);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << " (try --help)\n";
    return 1;
  }
  cfg.trace_out = get("trace-out", "");
  cfg.metrics_out = get("metrics-out", "");
  const std::string mode = get("mode", "salient");
  if (mode == "baseline") {
    cfg.loader_kind = LoaderKind::kBaseline;
    cfg.execution = ExecutionMode::kBlocking;
  } else if (mode != "salient") {
    std::cerr << "unknown --mode " << mode << "\n";
    return 1;
  }
  if (static_cast<int>(cfg.train_fanouts.size()) != cfg.num_layers) {
    std::cerr << "--fanouts must list exactly --layers values\n";
    return 1;
  }

  const int epochs = std::stoi(get("epochs", "4"));
  const std::string data_file = get("data-file", "");

  try {
    std::unique_ptr<System> sys;
    if (!data_file.empty()) {
      std::cout << "loading dataset from " << data_file << "\n";
      sys = std::make_unique<System>(load_dataset(data_file), cfg);
    } else {
      std::cout << "generating " << cfg.dataset << " (scale "
                << cfg.dataset_scale << ")\n";
      sys = std::make_unique<System>(cfg);
    }
    if (const auto& cache = sys->trainer().feature_cache()) {
      std::cout << "device feature cache: " << cache->capacity()
                << " nodes, policy " << cache->policy_name() << "\n";
    }
    std::cout << "model " << cfg.arch << " ("
              << sys->model()->num_parameters() << " parameters), mode "
              << mode << ", feature wire " << cfg.feature_dtype << "\n\n";

    const std::string load = get("load", "");
    if (!load.empty()) {
      nn::load_checkpoint(*sys->model(), load);
      std::cout << "restored checkpoint " << load << "\n";
    }
    for (int e = 0; e < epochs; ++e) {
      std::cout << sys->train_epoch().summary() << "\n";
    }
    std::cout << "\nval accuracy:  " << sys->val_accuracy()
              << "\ntest accuracy: " << sys->test_accuracy() << "\n";

    const std::string save = get("save", "");
    if (!save.empty()) {
      nn::save_checkpoint(*sys->model(), save);
      std::cout << "saved checkpoint " << save << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
