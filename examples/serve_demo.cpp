// Online inference serving demo (docs/SERVING.md): train a GraphSAGE model,
// then stand up the InferenceServer and stream skewed open-loop traffic at
// it — the serving analogue of the quickstart. Shows admission control,
// micro-batching, the result/feature caches, and the p50/p95/p99 SLO report,
// then a mid-flight model update invalidating the result cache.
//
//   ./serve_demo [--qps=200] [--slo-ms=50] [--max-batch=256] [--cache-mb=2]
//                [--cache-pct=0.05] [--cache-policy=presample] [--seconds=3]
//                [--trace-out=<path>] [--metrics-out=<path>]
// --cache-pct + --cache-policy let the server build its own policy-driven
// feature cache (docs/CACHING.md) instead of the --cache-mb degree cache.
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/system.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace salient;
  using Clock = std::chrono::steady_clock;

  double qps = 200, slo_ms = 50, cache_mb = 2, seconds = 3, cache_pct = 0;
  std::string cache_policy = "degree";
  std::int64_t max_batch = 256;
  SystemConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto num = [&](const char* key) -> const char* {
      const std::string prefix = std::string("--") + key + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size() : nullptr;
    };
    if (parse_obs_flag(arg, cfg)) continue;
    if (const char* v = num("qps")) qps = std::atof(v);
    else if (const char* v = num("slo-ms")) slo_ms = std::atof(v);
    else if (const char* v = num("max-batch")) max_batch = std::atoll(v);
    else if (const char* v = num("cache-mb")) cache_mb = std::atof(v);
    else if (const char* v = num("cache-pct")) cache_pct = std::atof(v);
    else if (const char* v = num("cache-policy")) cache_policy = v;
    else if (const char* v = num("seconds")) seconds = std::atof(v);
    else { std::cerr << "unknown flag: " << arg << "\n"; return 2; }
  }

  // A small trained model: predictions should mean something.
  cfg.dataset = "products-sim";
  cfg.dataset_scale = 0.05;
  cfg.hidden_channels = 32;
  cfg.num_layers = 2;
  cfg.train_fanouts = {15, 10};
  cfg.batch_size = 512;
  System sys(cfg);
  std::cout << "training on " << sys.dataset().name << " ("
            << sys.dataset().graph.num_nodes() << " nodes)...\n";
  sys.train(2);
  const Dataset& ds = sys.dataset();

  serve::ServeConfig sc;
  sc.fanouts = {10, 10};
  sc.batch.max_batch_nodes = max_batch;
  sc.slo_us = slo_ms * 1000.0;
  sc.result_cache_capacity = 4096;
  if (cache_pct > 0) {
    // Policy-driven cache built by the server itself (presample warmup
    // samples the test split, matching the traffic below).
    sc.cache_policy = parse_cache_policy(cache_policy);
    sc.cache_percentage = cache_pct;
  } else if (cache_mb > 0) {
    const auto cache_nodes = std::min<std::int64_t>(
        static_cast<std::int64_t>(cache_mb * 1e6 /
                                  (static_cast<double>(ds.feature_dim) * 4.0)),
        ds.graph.num_nodes());
    sc.feature_cache = std::make_shared<const FeatureCache>(ds, cache_nodes);
    std::cout << "feature cache: " << cache_nodes << " hottest nodes ("
              << cache_mb << " MB)\n";
  }
  serve::InferenceServer server(ds, sys.model(), sys.device(), sc);
  if (const auto& cache = server.config().feature_cache; cache && cache_pct > 0) {
    std::cout << "feature cache: " << cache->capacity() << " nodes, policy "
              << cache->policy_name() << "\n";
  }

  // Open-loop traffic with Zipf-ish popularity: a few nodes are requested
  // over and over (what the result cache exploits).
  const auto total = static_cast<std::size_t>(qps * seconds);
  std::cout << "offering " << qps << " qps for " << seconds << "s (" << total
            << " requests, SLO " << slo_ms << "ms)...\n";
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(total);
  const auto t0 = Clock::now();
  const auto gap = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / qps));
  for (std::size_t i = 0; i < total; ++i) {
    std::this_thread::sleep_until(t0 + gap * static_cast<std::int64_t>(i));
    const double u = std::pow(uni(rng), 3.0);  // skew toward index 0
    const auto idx = std::min(ds.test_idx.size() - 1,
                              static_cast<std::size_t>(
                                  u * static_cast<double>(ds.test_idx.size())));
    futures.push_back(server.submit({ds.test_idx[idx]}));
  }
  std::size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    (f.get().status == serve::RequestStatus::kOk ? ok : shed)++;
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  auto stats = server.stats();
  std::cout << std::fixed << std::setprecision(2)
            << "\nserved " << ok << " requests (" << shed << " shed) in "
            << wall << "s => " << static_cast<double>(ok) / wall << " qps\n"
            << stats.summary() << "\n"
            << "SLO attainment: "
            << 100.0 * static_cast<double>(stats.slo_ok) /
                   static_cast<double>(stats.slo_ok + stats.slo_miss)
            << "%\n";

  // A model update mid-flight: cached predictions are invalidated lazily;
  // the next request for a hot node recomputes under the new generation.
  std::cout << "\ntraining one more epoch, then invalidating the result "
               "cache...\n";
  sys.train(1);
  const auto gen = server.notify_model_updated();
  const auto r = server.predict({ds.test_idx[0]});
  std::cout << "post-update prediction for hottest node: class "
            << r.predictions[0] << " (model generation " << gen
            << ", served from " << (r.nodes_from_cache ? "cache" : "compute")
            << ")\n";
  return 0;
}
