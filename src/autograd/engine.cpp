#include "autograd/engine.h"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tensor/ops.h"

namespace salient {

namespace {

/// Iterative post-order DFS over the node graph rooted at `root`.
/// The returned order has every node after all of its consumers were
/// processed when iterated in reverse (i.e., it is a valid topological order
/// for the reverse sweep when traversed back-to-front... we build post-order
/// and then walk it from the back).
std::vector<Node*> topo_order(Node* root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  // explicit stack of (node, next child index)
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    const auto& ins = node->inputs();
    bool descended = false;
    while (idx < ins.size()) {
      const auto& in = ins[idx++];
      Node* child = in.grad_fn().get();
      if (child != nullptr && in.requires_grad() &&
          visited.insert(child).second) {
        stack.emplace_back(child, 0);
        descended = true;
        break;
      }
    }
    if (!descended && (stack.back().second >= stack.back().first->inputs().size())) {
      order.push_back(stack.back().first);
      stack.pop_back();
    }
  }
  return order;  // post-order: children before parents
}

}  // namespace

void run_backward(const Variable& root, Tensor grad_root) {
  if (!root.requires_grad()) {
    throw std::runtime_error("run_backward: root does not require grad");
  }
  if (grad_root.shape() != root.data().shape()) {
    throw std::runtime_error("run_backward: seed shape mismatch");
  }
  Node* root_node = root.grad_fn().get();
  if (root_node == nullptr) {
    // Root is itself a leaf: the seed is its gradient.
    const_cast<Variable&>(root).accumulate_grad(grad_root);
    return;
  }

  // Accumulated output-gradient per node.
  std::unordered_map<Node*, Tensor> node_grad;
  node_grad.emplace(root_node, std::move(grad_root));

  std::vector<Node*> order = topo_order(root_node);
  // Post-order puts children (producers) before parents (consumers); the
  // reverse sweep must process consumers first, so walk back-to-front.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    auto found = node_grad.find(node);
    if (found == node_grad.end()) continue;  // unreachable via grad paths
    Tensor gout = std::move(found->second);
    node_grad.erase(found);

    std::vector<Tensor> gins = node->backward(gout);
    const auto& ins = node->inputs();
    if (gins.size() != ins.size()) {
      throw std::runtime_error(std::string("backward of ") + node->name() +
                               " returned wrong number of gradients");
    }
    for (std::size_t i = 0; i < ins.size(); ++i) {
      const Variable& in = ins[i];
      if (!in.requires_grad()) continue;
      if (!gins[i].defined()) {
        throw std::runtime_error(std::string("backward of ") + node->name() +
                                 " missing gradient for differentiable input");
      }
      if (gins[i].shape() != in.data().shape()) {
        throw std::runtime_error(std::string("backward of ") + node->name() +
                                 " produced gradient with wrong shape");
      }
      Node* producer = in.grad_fn().get();
      if (producer == nullptr) {
        const_cast<Variable&>(in).accumulate_grad(gins[i]);
      } else {
        auto [slot, inserted] = node_grad.try_emplace(producer);
        if (inserted) {
          slot->second = gins[i].clone();
        } else {
          ops::axpy_(slot->second, gins[i], 1.0);
        }
      }
    }
  }
}

}  // namespace salient
