// The reverse-sweep engine for the autograd tape.
#pragma once

#include "autograd/variable.h"

namespace salient {

/// Propagate `grad_root` (gradient of a scalar loss w.r.t. `root`) backwards
/// through the tape, accumulating into every reachable leaf that requires
/// grad. Nodes with multiple consumers receive the sum of their consumers'
/// contributions before their own backward runs (classic reverse topological
/// order).
void run_backward(const Variable& root, Tensor grad_root);

}  // namespace salient
