#include "autograd/functions.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/ops.h"

namespace salient::autograd {

namespace {

/// Read the single element of a scalar ([1]) float tensor as double.
double scalar_value(const Tensor& t) {
  if (t.numel() != 1) throw std::runtime_error("scalar_value: not a scalar");
  return t.dtype() == DType::kF32 ? static_cast<double>(t.data<float>()[0])
                                  : t.data<double>()[0];
}

/// dx for log-softmax: dx = g - softmax(x) * rowsum(g).
template <typename T>
void log_softmax_backward_kernel(const T* y, const T* g, T* dx,
                                 std::int64_t m, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    double gsum = 0;
    for (std::int64_t j = 0; j < n; ++j) gsum += double(g[i * n + j]);
    for (std::int64_t j = 0; j < n; ++j) {
      dx[i * n + j] = static_cast<T>(
          double(g[i * n + j]) - std::exp(double(y[i * n + j])) * gsum);
    }
  }
}

/// Columns [col, col+w) of a [M,N] matrix as a fresh [M,w] tensor.
Tensor slice_cols(const Tensor& x, std::int64_t col, std::int64_t w) {
  const std::int64_t m = x.size(0), n = x.size(1);
  Tensor out({m, w}, x.dtype());
  const std::size_t esz = dtype_size(x.dtype());
  const char* ps = static_cast<const char*>(x.raw());
  char* pd = static_cast<char*>(out.raw());
  for (std::int64_t i = 0; i < m; ++i) {
    std::memcpy(pd + static_cast<std::size_t>(i * w) * esz,
                ps + static_cast<std::size_t>(i * n + col) * esz,
                static_cast<std::size_t>(w) * esz);
  }
  return out;
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  return make_op_result("Add", ops::add(a.data(), b.data()), {a, b},
                        [](const Tensor& g) {
                          return std::vector<Tensor>{g.clone(), g.clone()};
                        });
}

Variable sub(const Variable& a, const Variable& b) {
  return make_op_result("Sub", ops::sub(a.data(), b.data()), {a, b},
                        [](const Tensor& g) {
                          return std::vector<Tensor>{g.clone(),
                                                     ops::scale(g, -1.0)};
                        });
}

Variable mul(const Variable& a, const Variable& b) {
  Tensor ta = a.data(), tb = b.data();
  return make_op_result("Mul", ops::mul(ta, tb), {a, b},
                        [ta, tb](const Tensor& g) {
                          return std::vector<Tensor>{ops::mul(g, tb),
                                                     ops::mul(g, ta)};
                        });
}

Variable scale(const Variable& a, double alpha) {
  return make_op_result("Scale", ops::scale(a.data(), alpha), {a},
                        [alpha](const Tensor& g) {
                          return std::vector<Tensor>{ops::scale(g, alpha)};
                        });
}

Variable matmul(const Variable& a, const Variable& b, bool trans_a,
                bool trans_b) {
  Tensor ta = a.data(), tb = b.data();
  return make_op_result(
      "MatMul", ops::matmul(ta, tb, trans_a, trans_b), {a, b},
      [ta, tb, trans_a, trans_b](const Tensor& g) {
        // With A' = op(A), B' = op(B): gA' = g B'^T and gB' = A'^T g;
        // transpose back when the forward op transposed.
        Tensor ga = trans_a ? ops::matmul(tb, g, trans_b, true)
                            : ops::matmul(g, tb, false, !trans_b);
        Tensor gb = trans_b ? ops::matmul(g, ta, true, trans_a)
                            : ops::matmul(ta, g, !trans_a, false);
        return std::vector<Tensor>{std::move(ga), std::move(gb)};
      });
}

Variable linear(const Variable& x, const Variable& weight,
                const Variable& bias) {
  Tensor tx = x.data(), tw = weight.data();
  Tensor y = ops::matmul(tx, tw, false, true);
  if (bias.defined()) {
    y = ops::add_row_broadcast(y, bias.data());
    return make_op_result(
        "Linear", std::move(y), {x, weight, bias},
        [tx, tw](const Tensor& g) {
          return std::vector<Tensor>{ops::matmul(g, tw, false, false),
                                     ops::matmul(g, tx, true, false),
                                     ops::sum_rows(g)};
        });
  }
  return make_op_result(
      "Linear", std::move(y), {x, weight},
      [tx, tw](const Tensor& g) {
        return std::vector<Tensor>{ops::matmul(g, tw, false, false),
                                   ops::matmul(g, tx, true, false)};
      });
}

Variable linear_act(const Variable& x, const Variable& weight,
                    const Variable& bias, double dropout_p, bool training,
                    std::uint64_t seed) {
  if (!bias.defined()) {
    throw std::invalid_argument("linear_act: bias required");
  }
  Tensor tx = x.data(), tw = weight.data();
  const bool drop = training && dropout_p > 0.0;
  Tensor mask;
  Tensor y = ops::gemm_epilogue(
      tx, tw, bias.data(),
      drop ? ops::Epilogue::kBiasReluDropout : ops::Epilogue::kBiasRelu,
      drop ? dropout_p : 0.0, seed, &mask);
  return make_op_result(
      "LinearAct", std::move(y), {x, weight, bias},
      [tx, tw, mask](const Tensor& g) {
        // mask is d y/d pre (relu gate x dropout scale), so one Hadamard
        // recovers the pre-activation gradient; the rest is Linear backward.
        Tensor gp = ops::mul(g, mask);
        return std::vector<Tensor>{ops::matmul(gp, tw, false, false),
                                   ops::matmul(gp, tx, true, false),
                                   ops::sum_rows(gp)};
      });
}

Variable relu(const Variable& x) {
  Tensor mask = ops::relu_mask(x.data());
  return make_op_result("ReLU", ops::relu(x.data()), {x},
                        [mask](const Tensor& g) {
                          return std::vector<Tensor>{ops::mul(g, mask)};
                        });
}

Variable leaky_relu(const Variable& x, double slope) {
  Tensor mask = ops::leaky_relu_mask(x.data(), slope);
  return make_op_result("LeakyReLU", ops::leaky_relu(x.data(), slope), {x},
                        [mask](const Tensor& g) {
                          return std::vector<Tensor>{ops::mul(g, mask)};
                        });
}

Variable dropout(const Variable& x, double p, bool training,
                 std::uint64_t seed) {
  if (!training || p == 0.0) return x;
  Tensor mask = ops::dropout_mask(x.data().shape(), p, seed, x.data().dtype());
  return make_op_result("Dropout", ops::mul(x.data(), mask), {x},
                        [mask](const Tensor& g) {
                          return std::vector<Tensor>{ops::mul(g, mask)};
                        });
}

Variable log_softmax(const Variable& x) {
  Tensor y = ops::log_softmax_rows(x.data());
  return make_op_result(
      "LogSoftmax", y, {x}, [y](const Tensor& g) {
        Tensor dx(y.shape(), y.dtype());
        const std::int64_t m = y.size(0), n = y.size(1);
        if (y.dtype() == DType::kF32) {
          log_softmax_backward_kernel(y.data<float>(), g.data<float>(),
                                      dx.data<float>(), m, n);
        } else {
          log_softmax_backward_kernel(y.data<double>(), g.data<double>(),
                                      dx.data<double>(), m, n);
        }
        return std::vector<Tensor>{std::move(dx)};
      });
}

Variable nll_loss(const Variable& logp, const Tensor& target) {
  Tensor tlogp = logp.data();
  Tensor ttarget = target;
  const double loss = ops::nll_loss_mean(tlogp, ttarget);
  Tensor out({1}, tlogp.dtype());
  out.fill_(loss);
  return make_op_result(
      "NllLoss", std::move(out), {logp},
      [tlogp, ttarget](const Tensor& g) {
        Tensor dl = ops::nll_loss_mean_backward(tlogp, ttarget);
        return std::vector<Tensor>{ops::scale(dl, scalar_value(g))};
      });
}

Variable narrow_rows(const Variable& x, std::int64_t begin, std::int64_t len) {
  Tensor view = x.data().narrow_rows(begin, len);
  const auto full_shape = x.data().shape();
  return make_op_result(
      "NarrowRows", view, {x},
      [full_shape, begin, len](const Tensor& g) {
        Tensor gx(full_shape, g.dtype());
        Tensor dst = gx.narrow_rows(begin, len);
        std::memcpy(dst.raw(), g.raw(), g.nbytes());
        return std::vector<Tensor>{std::move(gx)};
      });
}

Variable gather_rows(const Variable& x, const Tensor& idx) {
  const auto full_shape = x.data().shape();
  Tensor tidx = idx;
  return make_op_result(
      "GatherRows", ops::gather_rows(x.data(), idx), {x},
      [full_shape, tidx](const Tensor& g) {
        Tensor gx(full_shape, g.dtype());
        ops::scatter_add_rows_(gx, tidx, g);
        return std::vector<Tensor>{std::move(gx)};
      });
}

Variable concat_cols(const std::vector<Variable>& xs) {
  std::vector<Tensor> ts;
  ts.reserve(xs.size());
  std::vector<std::int64_t> widths;
  for (const auto& v : xs) {
    ts.push_back(v.data());
    widths.push_back(v.data().size(1));
  }
  return make_op_result(
      "ConcatCols", ops::concat_cols(ts), xs,
      [widths](const Tensor& g) {
        std::vector<Tensor> grads;
        grads.reserve(widths.size());
        std::int64_t col = 0;
        for (const auto w : widths) {
          grads.push_back(slice_cols(g, col, w));
          col += w;
        }
        return grads;
      });
}

Variable spmm_mean(std::shared_ptr<const std::vector<std::int64_t>> indptr,
                   std::shared_ptr<const std::vector<std::int64_t>> indices,
                   const Variable& x, std::int64_t num_dst) {
  const std::int64_t num_src = x.data().size(0);
  Tensor y = ops::spmm_mean(*indptr, *indices, x.data(), num_dst);
  return make_op_result(
      "SpmmMean", std::move(y), {x},
      [indptr, indices, num_src](const Tensor& g) {
        return std::vector<Tensor>{
            ops::spmm_mean_backward(*indptr, *indices, g, num_src)};
      });
}

Variable spmm_sum(std::shared_ptr<const std::vector<std::int64_t>> indptr,
                  std::shared_ptr<const std::vector<std::int64_t>> indices,
                  const Variable& x, std::int64_t num_dst) {
  const std::int64_t num_src = x.data().size(0);
  Tensor y = ops::spmm_sum(*indptr, *indices, x.data(), num_dst);
  return make_op_result(
      "SpmmSum", std::move(y), {x},
      [indptr, indices, num_src](const Tensor& g) {
        return std::vector<Tensor>{
            ops::spmm_sum_backward(*indptr, *indices, g, num_src)};
      });
}

Variable spmm_weighted(
    std::shared_ptr<const std::vector<std::int64_t>> indptr,
    std::shared_ptr<const std::vector<std::int64_t>> indices,
    std::shared_ptr<const std::vector<double>> weights, const Variable& x,
    std::int64_t num_dst) {
  const std::int64_t num_src = x.data().size(0);
  Tensor y = ops::spmm_weighted(*indptr, *indices, *weights, x.data(),
                                num_dst);
  return make_op_result(
      "SpmmWeighted", std::move(y), {x},
      [indptr, indices, weights, num_src](const Tensor& g) {
        return std::vector<Tensor>{ops::spmm_weighted_backward(
            *indptr, *indices, *weights, g, num_src)};
      });
}

Variable spmm_max(std::shared_ptr<const std::vector<std::int64_t>> indptr,
                  std::shared_ptr<const std::vector<std::int64_t>> indices,
                  const Variable& x, std::int64_t num_dst) {
  const std::int64_t num_src = x.data().size(0);
  auto argmax = std::make_shared<std::vector<std::int64_t>>();
  Tensor y = ops::spmm_max(*indptr, *indices, x.data(), num_dst,
                           argmax.get());
  return make_op_result(
      "SpmmMax", std::move(y), {x}, [argmax, num_src](const Tensor& g) {
        return std::vector<Tensor>{ops::spmm_max_backward(*argmax, g,
                                                          num_src)};
      });
}

namespace {

/// Shared batch-norm kernels, templated over scalar type.
template <typename T>
struct BnCtx {
  Tensor x_hat;     // normalized input
  Tensor inv_std;   // [N] 1/sqrt(var+eps)
};

template <typename T>
Tensor bn_forward(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  Tensor& running_mean, Tensor& running_var, bool training,
                  double momentum, double eps, BnCtx<T>& ctx) {
  const std::int64_t m = x.size(0), n = x.size(1);
  const T* px = x.data<T>();
  const T* pg = gamma.data<T>();
  const T* pb = beta.data<T>();
  Tensor y(x.shape(), x.dtype());
  ctx.x_hat = Tensor(x.shape(), x.dtype());
  ctx.inv_std = Tensor({n}, x.dtype());
  T* py = y.data<T>();
  T* ph = ctx.x_hat.template data<T>();
  T* pis = ctx.inv_std.template data<T>();

  std::vector<double> mean(n, 0.0), var(n, 0.0);
  if (training) {
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) mean[j] += double(px[i * n + j]);
    for (std::int64_t j = 0; j < n; ++j) mean[j] /= double(m);
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) {
        const double d = double(px[i * n + j]) - mean[j];
        var[j] += d * d;
      }
    for (std::int64_t j = 0; j < n; ++j) var[j] /= double(m);
    // Update running statistics (PyTorch uses the unbiased variance here).
    T* prm = running_mean.data<T>();
    T* prv = running_var.data<T>();
    const double unbias = m > 1 ? double(m) / double(m - 1) : 1.0;
    for (std::int64_t j = 0; j < n; ++j) {
      prm[j] = static_cast<T>((1 - momentum) * double(prm[j]) +
                              momentum * mean[j]);
      prv[j] = static_cast<T>((1 - momentum) * double(prv[j]) +
                              momentum * var[j] * unbias);
    }
  } else {
    const T* prm = running_mean.data<T>();
    const T* prv = running_var.data<T>();
    for (std::int64_t j = 0; j < n; ++j) {
      mean[j] = double(prm[j]);
      var[j] = double(prv[j]);
    }
  }
  for (std::int64_t j = 0; j < n; ++j) {
    pis[j] = static_cast<T>(1.0 / std::sqrt(var[j] + eps));
  }
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const T h = static_cast<T>((double(px[i * n + j]) - mean[j]) *
                                 double(pis[j]));
      ph[i * n + j] = h;
      py[i * n + j] = pg[j] * h + pb[j];
    }
  }
  return y;
}

template <typename T>
std::vector<Tensor> bn_backward(const Tensor& g, const Tensor& gamma,
                                const BnCtx<T>& ctx, bool training) {
  const std::int64_t m = g.size(0), n = g.size(1);
  const T* pg = g.data<T>();
  const T* pgam = gamma.data<T>();
  const T* ph = ctx.x_hat.template data<T>();
  const T* pis = ctx.inv_std.template data<T>();

  Tensor dgamma({n}, g.dtype()), dbeta({n}, g.dtype());
  T* pdg = dgamma.data<T>();
  T* pdb = dbeta.data<T>();
  std::vector<double> sum_dh(n, 0.0), sum_dh_h(n, 0.0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const double gv = double(pg[i * n + j]);
      const double hv = double(ph[i * n + j]);
      pdb[j] += static_cast<T>(gv);
      pdg[j] += static_cast<T>(gv * hv);
      const double dh = gv * double(pgam[j]);
      sum_dh[j] += dh;
      sum_dh_h[j] += dh * hv;
    }
  }
  Tensor dx(g.shape(), g.dtype());
  T* pdx = dx.data<T>();
  if (training) {
    const double inv_m = 1.0 / double(m);
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const double dh = double(pg[i * n + j]) * double(pgam[j]);
        const double hv = double(ph[i * n + j]);
        pdx[i * n + j] = static_cast<T>(
            double(pis[j]) * (dh - inv_m * sum_dh[j] - hv * inv_m * sum_dh_h[j]));
      }
    }
  } else {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        pdx[i * n + j] = static_cast<T>(double(pg[i * n + j]) *
                                        double(pgam[j]) * double(pis[j]));
      }
    }
  }
  return {std::move(dx), std::move(dgamma), std::move(dbeta)};
}

}  // namespace

Variable batch_norm(const Variable& x, const Variable& gamma,
                    const Variable& beta, Tensor& running_mean,
                    Tensor& running_var, bool training, double momentum,
                    double eps) {
  if (x.data().dim() != 2) throw std::runtime_error("batch_norm: need [M,N]");
  if (x.data().dtype() == DType::kF32) {
    auto ctx = std::make_shared<BnCtx<float>>();
    Tensor y = bn_forward<float>(x.data(), gamma.data(), beta.data(),
                                 running_mean, running_var, training, momentum,
                                 eps, *ctx);
    Tensor tgamma = gamma.data();
    return make_op_result(
        "BatchNorm", std::move(y), {x, gamma, beta},
        [ctx, tgamma, training](const Tensor& g) {
          return bn_backward<float>(g, tgamma, *ctx, training);
        });
  }
  auto ctx = std::make_shared<BnCtx<double>>();
  Tensor y = bn_forward<double>(x.data(), gamma.data(), beta.data(),
                                running_mean, running_var, training, momentum,
                                eps, *ctx);
  Tensor tgamma = gamma.data();
  return make_op_result(
      "BatchNorm", std::move(y), {x, gamma, beta},
      [ctx, tgamma, training](const Tensor& g) {
        return bn_backward<double>(g, tgamma, *ctx, training);
      });
}

}  // namespace salient::autograd
