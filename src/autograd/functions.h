// Differentiable operations over Variables.
//
// Each function computes its forward result with the kernels from
// tensor/ops.h and registers a backward closure on the tape. The set covers
// everything the paper's four model architectures (Appendix A) need:
// GEMM, bias, activations, dropout, log-softmax + NLL, row slicing/concat,
// and the CSR neighborhood aggregations used by the conv layers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/variable.h"

namespace salient::autograd {

/// a + b (same shape).
Variable add(const Variable& a, const Variable& b);
/// a - b.
Variable sub(const Variable& a, const Variable& b);
/// a * b (Hadamard).
Variable mul(const Variable& a, const Variable& b);
/// alpha * a.
Variable scale(const Variable& a, double alpha);
/// op(a) @ op(b) with optional transposes.
Variable matmul(const Variable& a, const Variable& b, bool trans_a = false,
                bool trans_b = false);
/// x @ W^T + bias; W is [out,in] (PyTorch Linear layout); bias optional.
Variable linear(const Variable& x, const Variable& weight,
                const Variable& bias);
/// Fused Linear + activation: dropout(relu(x @ W^T + bias)), computed as a
/// single ops::gemm_epilogue call — bias, ReLU and (when training and
/// dropout_p > 0) counter-based dropout are applied in the GEMM's store
/// phase instead of three full-tensor passes. The backward consumes the
/// combined mask the epilogue saved: d pre = g ⊙ mask, then the usual
/// Linear gradients. `bias` must be defined. The dropout stream is the
/// counter-based one (ops::dropout_mask_counter semantics), so results are
/// deterministic for a given seed regardless of pool size.
Variable linear_act(const Variable& x, const Variable& weight,
                    const Variable& bias, double dropout_p, bool training,
                    std::uint64_t seed);
/// max(x, 0).
Variable relu(const Variable& x);
/// leaky ReLU with the given negative slope.
Variable leaky_relu(const Variable& x, double slope = 0.01);
/// Inverted dropout. Identity when !training or p == 0.
Variable dropout(const Variable& x, double p, bool training,
                 std::uint64_t seed);
/// Row-wise log-softmax.
Variable log_softmax(const Variable& x);
/// Mean NLL of log-probabilities vs integer targets; returns a [1] scalar.
Variable nll_loss(const Variable& logp, const Tensor& target);
/// Zero-copy forward view of rows [0, len); backward zero-pads.
Variable narrow_rows(const Variable& x, std::int64_t begin, std::int64_t len);
/// out[k,:] = x[idx[k],:] (idx i64, may repeat); backward scatter-adds.
Variable gather_rows(const Variable& x, const Tensor& idx);
/// Horizontal concat of same-height matrices.
Variable concat_cols(const std::vector<Variable>& xs);

/// Mean-aggregation over one MFG level (see ops::spmm_mean). The CSR arrays
/// are captured by shared_ptr so the batch object can outlive the call
/// without copies.
Variable spmm_mean(std::shared_ptr<const std::vector<std::int64_t>> indptr,
                   std::shared_ptr<const std::vector<std::int64_t>> indices,
                   const Variable& x, std::int64_t num_dst);
/// Sum-aggregation over one MFG level.
Variable spmm_sum(std::shared_ptr<const std::vector<std::int64_t>> indptr,
                  std::shared_ptr<const std::vector<std::int64_t>> indices,
                  const Variable& x, std::int64_t num_dst);

/// Edge-weighted aggregation (weights are non-differentiable constants,
/// e.g. GCN's symmetric normalization coefficients).
Variable spmm_weighted(
    std::shared_ptr<const std::vector<std::int64_t>> indptr,
    std::shared_ptr<const std::vector<std::int64_t>> indices,
    std::shared_ptr<const std::vector<double>> weights, const Variable& x,
    std::int64_t num_dst);

/// Elementwise-max aggregation (GraphSAGE pooling aggregator core);
/// gradients flow to each output element's argmax source.
Variable spmm_max(std::shared_ptr<const std::vector<std::int64_t>> indptr,
                  std::shared_ptr<const std::vector<std::int64_t>> indices,
                  const Variable& x, std::int64_t num_dst);

/// Batch normalization over rows of a [M,N] tensor with affine parameters
/// gamma/beta ([N] each). In training mode uses batch statistics and updates
/// running_mean/var in place (momentum as in torch.nn.BatchNorm1d); in eval
/// mode uses the running statistics.
Variable batch_norm(const Variable& x, const Variable& gamma,
                    const Variable& beta, Tensor& running_mean,
                    Tensor& running_var, bool training, double momentum = 0.1,
                    double eps = 1e-5);

}  // namespace salient::autograd
