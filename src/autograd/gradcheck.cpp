#include "autograd/gradcheck.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace salient::autograd {

GradcheckResult gradcheck(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, double eps, double tol) {
  GradcheckResult result;

  for (auto& in : inputs) {
    if (in.data().dtype() != DType::kF64) {
      throw std::invalid_argument("gradcheck: inputs must be f64");
    }
    if (!in.requires_grad()) {
      throw std::invalid_argument("gradcheck: inputs must require grad");
    }
    in.zero_grad();
  }

  // Analytic gradients.
  Variable out = fn(inputs);
  if (out.data().numel() != 1) {
    throw std::invalid_argument("gradcheck: fn must return a scalar");
  }
  out.backward();

  // Numeric gradients via central differences, input by input, entry by
  // entry. fn is re-evaluated with the perturbed data in place.
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    Tensor& x = inputs[k].data();
    double* px = x.data<double>();
    const Tensor& analytic = inputs[k].grad();
    const double* pa =
        analytic.defined() ? analytic.data<double>() : nullptr;
    const std::int64_t n = x.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const double orig = px[i];
      px[i] = orig + eps;
      const double fplus = fn(inputs).data().data<double>()[0];
      px[i] = orig - eps;
      const double fminus = fn(inputs).data().data<double>()[0];
      px[i] = orig;
      const double numeric = (fplus - fminus) / (2 * eps);
      const double analytic_v = pa ? pa[i] : 0.0;
      const double err = std::abs(numeric - analytic_v);
      result.max_abs_err = std::max(result.max_abs_err, err);
      if (err > tol && result.ok) {
        result.ok = false;
        std::ostringstream os;
        os << "input " << k << " entry " << i << ": analytic=" << analytic_v
           << " numeric=" << numeric << " err=" << err;
        result.message = os.str();
      }
    }
  }
  return result;
}

}  // namespace salient::autograd
