// Numerical gradient checking for autograd functions.
#pragma once

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace salient::autograd {

/// Result of a gradient check.
struct GradcheckResult {
  bool ok = true;
  double max_abs_err = 0.0;  ///< max |analytic - numeric| over all entries
  std::string message;       ///< first failing location, when !ok
};

/// Verify the analytic gradients of `fn` at `inputs` against central finite
/// differences. `fn` maps the input Variables to a scalar Variable.
/// Inputs must be f64 leaves with requires_grad=true (f64 keeps the finite
/// differences meaningful). `eps` is the perturbation, `tol` the absolute
/// comparison tolerance.
GradcheckResult gradcheck(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> inputs, double eps = 1e-5, double tol = 1e-6);

}  // namespace salient::autograd
