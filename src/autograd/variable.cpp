#include "autograd/variable.h"

#include <stdexcept>

#include "autograd/engine.h"
#include "tensor/ops.h"

namespace salient {

Variable::Variable(Tensor data, bool requires_grad)
    : impl_(std::make_shared<Impl>()) {
  impl_->data = std::move(data);
  impl_->requires_grad = requires_grad;
}

Variable Variable::from_op(Tensor data, NodePtr node, bool requires_grad) {
  Variable v(std::move(data), requires_grad);
  v.impl_->grad_fn = std::move(node);
  return v;
}

Tensor& Variable::data() {
  if (!impl_) throw std::runtime_error("Variable: undefined");
  return impl_->data;
}

const Tensor& Variable::data() const {
  if (!impl_) throw std::runtime_error("Variable: undefined");
  return impl_->data;
}

const Tensor& Variable::grad() const {
  if (!impl_) throw std::runtime_error("Variable: undefined");
  return impl_->grad;
}

bool Variable::requires_grad() const {
  return impl_ && impl_->requires_grad;
}

const NodePtr& Variable::grad_fn() const {
  static const NodePtr null_node;
  return impl_ ? impl_->grad_fn : null_node;
}

void Variable::zero_grad() {
  if (impl_) impl_->grad = Tensor();
}

void Variable::accumulate_grad(const Tensor& g) {
  if (!impl_) throw std::runtime_error("accumulate_grad: undefined variable");
  if (!impl_->grad.defined()) {
    impl_->grad = g.clone();
  } else {
    ops::axpy_(impl_->grad, g, 1.0);
  }
}

void Variable::backward(Tensor grad_seed) const {
  if (!impl_) throw std::runtime_error("backward: undefined variable");
  if (!grad_seed.defined()) {
    if (data().numel() != 1) {
      throw std::runtime_error(
          "backward: implicit seed requires a scalar output");
    }
    grad_seed = Tensor::ones(data().shape(), data().dtype());
  }
  run_backward(*this, std::move(grad_seed));
}

Variable make_op_result(const char* name, Tensor data,
                        std::vector<Variable> inputs,
                        LambdaNode::BackwardFn backward_fn) {
  bool any = false;
  for (const auto& v : inputs) any = any || v.requires_grad();
  if (!any) return Variable(std::move(data), false);
  auto node = std::make_shared<LambdaNode>(name, std::move(inputs),
                                           std::move(backward_fn));
  return Variable::from_op(std::move(data), std::move(node), true);
}

}  // namespace salient
