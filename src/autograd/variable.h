// Tape-based reverse-mode automatic differentiation.
//
// A Variable wraps a Tensor plus optional gradient state. Operations from
// autograd/functions.h build a DAG of Node objects (one per produced
// Variable); Variable::backward() runs the reverse sweep and accumulates
// gradients into leaf Variables (parameters). This mirrors the subset of
// PyTorch autograd the paper's training loop relies on.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace salient {

class Variable;

/// A node in the autograd tape: produced one Variable from `inputs`.
class Node {
 public:
  virtual ~Node() = default;

  /// Gradients of the node's output w.r.t. each input, given the gradient of
  /// some scalar loss w.r.t. the output. Entries for inputs that do not
  /// require grad may be returned as undefined Tensors.
  virtual std::vector<Tensor> backward(const Tensor& grad_out) = 0;

  /// Diagnostic name ("MatMul", "ReLU", ...).
  virtual const char* name() const = 0;

  /// The input variables this node consumed (fixed at construction).
  const std::vector<Variable>& inputs() const { return inputs_; }

 protected:
  explicit Node(std::vector<Variable> inputs) : inputs_(std::move(inputs)) {}

 private:
  std::vector<Variable> inputs_;
};

using NodePtr = std::shared_ptr<Node>;

/// A differentiable tensor. Copying is cheap (shared state).
class Variable {
 public:
  /// Undefined variable.
  Variable() = default;

  /// Wrap `data` as a leaf. Leaves with requires_grad=true accumulate
  /// gradients during backward (i.e., they are parameters or inputs under
  /// test).
  explicit Variable(Tensor data, bool requires_grad = false);

  /// Internal: wrap an op result with its producing node.
  static Variable from_op(Tensor data, NodePtr node, bool requires_grad);

  bool defined() const { return impl_ != nullptr; }

  /// The wrapped tensor (mutable access allowed for optimizers).
  Tensor& data();
  const Tensor& data() const;

  /// Accumulated gradient; undefined until backward reached this leaf.
  const Tensor& grad() const;
  /// True when this variable participates in gradient computation.
  bool requires_grad() const;
  /// The producing node (null for leaves).
  const NodePtr& grad_fn() const;

  /// Drop the accumulated gradient.
  void zero_grad();
  /// Add `g` into the accumulated gradient (allocating on first use).
  void accumulate_grad(const Tensor& g);

  /// Run reverse-mode differentiation from this (scalar or seeded) variable.
  /// If `grad_seed` is undefined, the variable must have exactly one element
  /// and is seeded with 1.
  void backward(Tensor grad_seed = Tensor()) const;

  /// Identity useful for hashing/sets in the engine.
  const void* id() const { return impl_.get(); }

  friend bool operator==(const Variable& a, const Variable& b) {
    return a.impl_ == b.impl_;
  }

 private:
  struct Impl {
    Tensor data;
    Tensor grad;
    bool requires_grad = false;
    NodePtr grad_fn;
  };
  std::shared_ptr<Impl> impl_;
};

/// Convenience node implemented with a lambda.
class LambdaNode final : public Node {
 public:
  using BackwardFn = std::function<std::vector<Tensor>(const Tensor&)>;

  LambdaNode(const char* name, std::vector<Variable> inputs, BackwardFn fn)
      : Node(std::move(inputs)), name_(name), fn_(std::move(fn)) {}

  std::vector<Tensor> backward(const Tensor& grad_out) override {
    return fn_(grad_out);
  }
  const char* name() const override { return name_; }

 private:
  const char* name_;
  BackwardFn fn_;
};

/// Build an op-result Variable: requires_grad is inherited from inputs, and
/// the node is only attached when some input requires grad.
Variable make_op_result(const char* name, Tensor data,
                        std::vector<Variable> inputs,
                        LambdaNode::BackwardFn backward_fn);

}  // namespace salient
