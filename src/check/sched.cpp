#include "check/sched.h"

#include <algorithm>
#include <random>
#include <sstream>
#include <stdexcept>

namespace salient::check {

namespace {

// The controller governing this OS thread (set for the lifetime of a
// virtual thread's body), and the virtual thread id within it.
thread_local Controller* t_controller = nullptr;
thread_local int t_vid = -1;

constexpr int kWaitNone = 0;
constexpr int kWaitMutex = 1;
constexpr int kWaitCv = 2;
constexpr int kWaitJoin = 3;

constexpr std::size_t kOplogTail = 48;

}  // namespace

struct Controller::VThread {
  enum class St { kRunnable, kRunning, kBlocked, kFinished };

  explicit VThread(int id_) : id(id_) {}

  int id;
  St st = St::kRunnable;
  const void* wait_obj = nullptr;
  int wait_kind = kWaitNone;
  const char* last_label = "start";
  bool timed = false;      // blocked in a timed wait
  bool timed_out = false;  // the scheduler fired this wait's timeout
  std::uint64_t block_seq = 0;  // FIFO order for cv notify_one
};

Controller::Controller(PickFn pick, long max_steps)
    : max_steps_(max_steps), pick_(std::move(pick)) {}

Controller::~Controller() = default;

Controller* Controller::current() { return t_controller; }

Controller::VThread& Controller::self_locked() {
  return *threads_[static_cast<std::size_t>(t_vid)];
}

int Controller::count_other_runnable(const VThread& me) const {
  int n = 0;
  for (const auto& t : threads_) {
    if (t->id != me.id && t->st == VThread::St::kRunnable) ++n;
  }
  return n;
}

void Controller::fail(const std::string& msg) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!failed_) {
    failed_ = true;
    failure_ = msg;
  }
}

void Controller::park(std::unique_lock<std::mutex>& lk, VThread& me) {
  active_ = -1;
  cv_.notify_all();
  cv_.wait(lk, [&] { return active_ == me.id; });
  me.st = VThread::St::kRunning;
}

void Controller::schedule_point(std::unique_lock<std::mutex>& lk, VThread& me,
                                const char* label, bool throwing) {
  me.last_label = label;
  oplog_.emplace_back(me.id, label);
  if (abort_) {
    if (throwing) throw ExecutionAborted{};
    return;
  }
  if (++steps_ > max_steps_) {
    if (!failed_) {
      failed_ = true;
      failure_ = "step budget exceeded (possible livelock)";
    }
    begin_abort_locked("step budget");
    if (throwing) throw ExecutionAborted{};
    return;
  }
  // Forced step: no other thread could run, so there is no decision to make
  // (or to record) — skip the park handshake entirely. This keeps
  // single-threaded stretches (scenario setup, teardown) free.
  if (count_other_runnable(me) == 0) return;
  me.st = VThread::St::kRunnable;
  park(lk, me);
  if (abort_ && throwing) throw ExecutionAborted{};
}

void Controller::block_on(std::unique_lock<std::mutex>& lk, VThread& me,
                          const void* obj, int kind, const char* label) {
  me.st = VThread::St::kBlocked;
  me.wait_obj = obj;
  me.wait_kind = kind;
  me.last_label = label;
  me.block_seq = ++block_counter_;
  park(lk, me);
  me.wait_obj = nullptr;
  me.wait_kind = kWaitNone;
}

void Controller::wake_waiters(const void* obj, int kind, bool one_only) {
  VThread* first = nullptr;
  for (auto& t : threads_) {
    if (t->st == VThread::St::kBlocked && t->wait_kind == kind &&
        t->wait_obj == obj) {
      if (!one_only) {
        t->st = VThread::St::kRunnable;
      } else if (first == nullptr || t->block_seq < first->block_seq) {
        first = t.get();
      }
    }
  }
  if (one_only && first != nullptr) first->st = VThread::St::kRunnable;
}

void Controller::op_yield(const char* label) {
  std::unique_lock<std::mutex> lk(mu_);
  schedule_point(lk, self_locked(), label, /*throwing=*/true);
}

void Controller::mutex_lock(MutexState& m) {
  std::unique_lock<std::mutex> lk(mu_);
  VThread& me = self_locked();
  schedule_point(lk, me, "mutex.lock", /*throwing=*/false);
  while (!abort_ && m.owner != -1 && m.owner != me.id) {
    block_on(lk, me, &m, kWaitMutex, "mutex.lock(blocked)");
  }
  // During a drain the lock is granted unconditionally: serialization still
  // prevents data races, and the execution's verdict is already recorded.
  m.owner = me.id;
}

bool Controller::mutex_try_lock(MutexState& m) {
  std::unique_lock<std::mutex> lk(mu_);
  VThread& me = self_locked();
  schedule_point(lk, me, "mutex.try_lock", /*throwing=*/false);
  if (m.owner != -1 && m.owner != me.id && !abort_) return false;
  m.owner = me.id;
  return true;
}

void Controller::mutex_unlock(MutexState& m) {
  std::unique_lock<std::mutex> lk(mu_);
  VThread& me = self_locked();
  me.last_label = "mutex.unlock";
  oplog_.emplace_back(me.id, "mutex.unlock");
  m.owner = -1;
  wake_waiters(&m, kWaitMutex, /*one_only=*/false);
  // No park: releasing a lock is not a decision point — the woken waiters
  // re-compete at the next contested schedule point.
}

void Controller::cv_wait(CvState& cv, MutexState& m) {
  std::unique_lock<std::mutex> lk(mu_);
  VThread& me = self_locked();
  if (abort_) throw ExecutionAborted{};
  schedule_point(lk, me, "cv.wait", /*throwing=*/true);
  m.owner = -1;
  wake_waiters(&m, kWaitMutex, /*one_only=*/false);
  me.timed = false;
  me.timed_out = false;
  block_on(lk, me, &cv, kWaitCv, "cv.wait(blocked)");
  while (!abort_ && m.owner != -1) {
    block_on(lk, me, &m, kWaitMutex, "cv.wait(reacquire)");
  }
  m.owner = me.id;
  if (abort_) throw ExecutionAborted{};
}

bool Controller::cv_wait_timed(CvState& cv, MutexState& m) {
  std::unique_lock<std::mutex> lk(mu_);
  VThread& me = self_locked();
  if (abort_) throw ExecutionAborted{};
  schedule_point(lk, me, "cv.wait_timed", /*throwing=*/true);
  m.owner = -1;
  wake_waiters(&m, kWaitMutex, /*one_only=*/false);
  me.timed = true;
  me.timed_out = false;
  block_on(lk, me, &cv, kWaitCv, "cv.wait_timed(blocked)");
  me.timed = false;
  while (!abort_ && m.owner != -1) {
    block_on(lk, me, &m, kWaitMutex, "cv.wait_timed(reacquire)");
  }
  m.owner = me.id;
  if (abort_) throw ExecutionAborted{};
  return me.timed_out;
}

void Controller::cv_notify_one(CvState& cv) {
  std::unique_lock<std::mutex> lk(mu_);
  VThread& me = self_locked();
  // Non-throwing: notifies are fire-and-forget and routinely run inside
  // destructors (~ThreadPool wakes its workers to stop them) — a drain
  // unwinding through one must not std::terminate.
  schedule_point(lk, me, "cv.notify_one", /*throwing=*/false);
  wake_waiters(&cv, kWaitCv, /*one_only=*/true);
}

void Controller::cv_notify_all(CvState& cv) {
  std::unique_lock<std::mutex> lk(mu_);
  VThread& me = self_locked();
  schedule_point(lk, me, "cv.notify_all", /*throwing=*/false);
  wake_waiters(&cv, kWaitCv, /*one_only=*/false);
}

int Controller::thread_prepare() {
  std::lock_guard<std::mutex> lk(mu_);
  const int id = static_cast<int>(threads_.size());
  threads_.push_back(std::make_unique<VThread>(id));
  return id;
}

void Controller::thread_run(int id, std::function<void()> fn) {
  t_controller = this;
  t_vid = id;
  bool draining = false;
  {
    // Wait until first scheduled. The scheduler may activate this id before
    // the OS thread arrives here; the predicate handles either order.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return active_ == id; });
    threads_[static_cast<std::size_t>(id)]->st = VThread::St::kRunning;
    draining = abort_;  // spawned into a draining execution: skip the body
  }
  if (!draining) {
    try {
      fn();
    } catch (const ExecutionAborted&) {
      // Drain unwind: expected, already accounted for.
    } catch (const std::exception& e) {
      fail(std::string("uncaught exception in virtual thread: ") + e.what());
    } catch (...) {
      fail("uncaught non-standard exception in virtual thread");
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    VThread& me = *threads_[static_cast<std::size_t>(id)];
    me.st = VThread::St::kFinished;
    me.last_label = "exit";
    oplog_.emplace_back(id, "exit");
    wake_waiters(&me, kWaitJoin, /*one_only=*/false);
    active_ = -1;
    cv_.notify_all();
  }
  t_controller = nullptr;
  t_vid = -1;
}

void Controller::thread_join(int id) {
  std::unique_lock<std::mutex> lk(mu_);
  VThread& me = self_locked();
  schedule_point(lk, me, "thread.join", /*throwing=*/false);
  VThread& target = *threads_[static_cast<std::size_t>(id)];
  while (target.st != VThread::St::kFinished) {
    block_on(lk, me, &target, kWaitJoin, "thread.join(blocked)");
  }
}

void Controller::begin_abort_locked(const std::string& why) {
  if (abort_) return;
  abort_ = true;
  (void)why;
  // Wake every blocked thread; each unwinds (or is granted its lock /
  // completes its join) when next scheduled.
  for (auto& t : threads_) {
    if (t->st == VThread::St::kBlocked) t->st = VThread::St::kRunnable;
  }
}

void Controller::scheduler_loop(std::unique_lock<std::mutex>& lk) {
  for (;;) {
    cv_.wait(lk, [&] { return active_ == -1; });
    std::vector<int> runnable;
    bool all_finished = true;
    bool any_blocked = false;
    bool any_timed = false;
    for (const auto& t : threads_) {
      if (t->st != VThread::St::kFinished) all_finished = false;
      if (t->st == VThread::St::kRunnable) runnable.push_back(t->id);
      if (t->st == VThread::St::kBlocked) {
        any_blocked = true;
        if (t->timed) any_timed = true;
      }
    }
    if (all_finished) return;
    if (runnable.empty()) {
      if (any_timed) {
        // Virtual time: nothing can run, so every pending timed wait's
        // deadline is "reached" now. Firing them all at once keeps the
        // semantics schedule-independent.
        for (auto& t : threads_) {
          if (t->st == VThread::St::kBlocked && t->timed) {
            t->timed_out = true;
            t->st = VThread::St::kRunnable;
          }
        }
        continue;
      }
      if (any_blocked && !abort_) {
        std::ostringstream os;
        os << "deadlock:";
        for (const auto& t : threads_) {
          if (t->st == VThread::St::kBlocked) {
            os << " t" << t->id << "@" << t->last_label;
          }
        }
        if (!failed_) {
          failed_ = true;
          failure_ = os.str();
        }
        begin_abort_locked("deadlock");
        continue;
      }
      // No runnable, none timed, abort already in flight: the remaining
      // threads are mid-handshake; wait for them to park or finish.
      // (Blocked threads during abort were already made runnable.)
      if (any_blocked) {
        for (auto& t : threads_) {
          if (t->st == VThread::St::kBlocked) t->st = VThread::St::kRunnable;
        }
      }
      continue;
    }
    int choice;
    if (abort_ || runnable.size() == 1) {
      choice = runnable.front();
    } else {
      choice = pick_(runnable, last_active_);
      if (std::find(runnable.begin(), runnable.end(), choice) ==
          runnable.end()) {
        // Replay diverged (or a buggy policy): fail the execution cleanly.
        if (!failed_) {
          failed_ = true;
          failure_ = "schedule diverged: chosen thread not runnable";
        }
        begin_abort_locked("divergence");
        choice = runnable.front();
      } else {
        schedule_.push_back(choice);
      }
    }
    last_active_ = choice;
    active_ = choice;
    threads_[static_cast<std::size_t>(choice)]->st = VThread::St::kRunning;
    cv_.notify_all();
  }
}

Controller::ExecResult Controller::run(const std::function<void()>& body) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    threads_.push_back(std::make_unique<VThread>(0));
  }
  std::thread root([this, &body] { thread_run(0, body); });
  {
    std::unique_lock<std::mutex> lk(mu_);
    scheduler_loop(lk);
  }
  root.join();
  ExecResult r;
  r.failed = failed_;
  r.failure = failure_;
  r.schedule = schedule_;
  r.steps = steps_;
  r.diverged = failure_.rfind("schedule diverged", 0) == 0;
  const std::size_t n = oplog_.size();
  const std::size_t from = n > kOplogTail ? n - kOplogTail : 0;
  r.oplog_tail.assign(oplog_.begin() + static_cast<std::ptrdiff_t>(from),
                      oplog_.end());
  return r;
}

void expect(bool cond, const char* msg) {
  if (cond) return;
  if (Controller* c = Controller::current()) {
    c->fail(std::string("expectation failed: ") + msg);
    return;
  }
  throw std::logic_error(std::string("check::expect outside model check: ") +
                         msg);
}

// ---------------------------------------------------------------------------
// Exploration strategies
// ---------------------------------------------------------------------------

namespace {

std::string schedule_to_string(const std::vector<int>& s) {
  std::ostringstream os;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << '.';
    os << s[i];
  }
  return os.str();
}

std::vector<int> parse_schedule(const std::string& s) {
  std::vector<int> out;
  std::string tok;
  std::istringstream is(s);
  while (std::getline(is, tok, '.')) {
    if (!tok.empty()) out.push_back(std::stoi(tok));
  }
  return out;
}

void finish_result(ExploreResult& res, const Controller::ExecResult& ex) {
  res.total_steps += ex.steps;
  if (ex.failed && !res.found_bug) {
    res.found_bug = true;
    res.failure = ex.failure;
    res.schedule = schedule_to_string(ex.schedule);
    res.oplog_tail.clear();
    res.oplog_tail.reserve(ex.oplog_tail.size());
    for (const auto& [tid, label] : ex.oplog_tail) {
      res.oplog_tail.emplace_back(tid, std::string(label));
    }
  }
}

}  // namespace

std::string ExploreResult::report() const {
  std::ostringstream os;
  os << "[model-check] scenario=" << scenario << " executions=" << executions
     << " steps=" << total_steps
     << (exhausted ? " (bounded space exhausted)" : " (truncated)") << "\n";
  if (!found_bug) {
    os << "  ok: no invariant failure in any explored schedule\n";
    return os.str();
  }
  os << "  FAILED: " << failure << "\n";
  os << "  schedule: " << (schedule.empty() ? "(empty)" : schedule) << "\n";
  os << "  replay: check::replay(\"" << scenario << "\", body, \"" << schedule
     << "\")\n";
  if (!oplog_tail.empty()) {
    os << "  last ops:";
    for (const auto& [tid, label] : oplog_tail) {
      os << " t" << tid << ":" << label;
    }
    os << "\n";
  }
  return os.str();
}

ExploreResult explore(const std::string& name,
                      const std::function<void()>& body,
                      const ExploreOptions& opts) {
  // Iterative DFS over scheduling decisions. `path` is the decision prefix
  // the next execution must follow; beyond it the default policy extends
  // the schedule (preferring the running thread, i.e. no preemption), and
  // backtracking advances the deepest node with untried alternatives.
  struct Node {
    std::vector<int> runnable;  // determinism check on replayed prefixes
    std::vector<int> allowed;   // choice order (preemption-bounded)
    std::size_t next = 0;       // next untried index in `allowed`
    int chosen = -1;
    int last = -1;              // last_active at this decision
    int preempt_before = 0;     // preemptions on the path above this node
  };
  std::vector<Node> path;

  ExploreResult res;
  res.scenario = name;
  bool diverged = false;

  auto preempt_after = [](const Node& n) {
    const bool last_in = std::find(n.runnable.begin(), n.runnable.end(),
                                   n.last) != n.runnable.end();
    return n.preempt_before + ((last_in && n.chosen != n.last) ? 1 : 0);
  };

  while (res.executions < opts.max_executions) {
    std::size_t depth = 0;
    int preempts = 0;
    auto pick = [&](const std::vector<int>& runnable, int last) -> int {
      if (depth < path.size()) {
        Node& n = path[depth];
        if (n.runnable != runnable) {
          diverged = true;
          return runnable.front();
        }
        preempts = preempt_after(n);
        return path[depth++].chosen;
      }
      Node n;
      n.runnable = runnable;
      n.last = last;
      n.preempt_before = preempts;
      const bool last_in =
          std::find(runnable.begin(), runnable.end(), last) != runnable.end();
      if (preempts < opts.preemption_bound || !last_in) {
        if (last_in) n.allowed.push_back(last);
        for (int id : runnable) {
          if (id != last) n.allowed.push_back(id);
        }
      } else {
        n.allowed.push_back(last);  // bound reached: only non-preemptive
      }
      n.chosen = n.allowed.front();
      n.next = 1;
      preempts = preempt_after(n);
      path.push_back(std::move(n));
      ++depth;
      return path.back().chosen;
    };

    Controller ctl(pick, opts.max_steps);
    const Controller::ExecResult ex = ctl.run(body);
    ++res.executions;
    finish_result(res, ex);
    if (diverged || ex.diverged) {
      res.found_bug = true;
      if (res.failure.empty()) {
        res.failure = "non-deterministic scenario: replayed prefix diverged";
      }
      return res;
    }
    if (res.found_bug) return res;

    // Backtrack to the deepest node with an untried alternative.
    while (!path.empty()) {
      Node& n = path.back();
      if (n.next < n.allowed.size()) {
        n.chosen = n.allowed[n.next++];
        break;
      }
      path.pop_back();
    }
    if (path.empty()) {
      res.exhausted = true;
      return res;
    }
  }
  return res;  // truncated at max_executions
}

ExploreResult explore_random(const std::string& name,
                             const std::function<void()>& body,
                             long iterations, std::uint64_t seed,
                             const ExploreOptions& opts) {
  ExploreResult res;
  res.scenario = name;
  for (long i = 0; i < iterations; ++i) {
    std::mt19937_64 rng(seed + static_cast<std::uint64_t>(i) * 0x9e3779b9u);
    auto pick = [&](const std::vector<int>& runnable, int /*last*/) -> int {
      std::uniform_int_distribution<std::size_t> d(0, runnable.size() - 1);
      return runnable[d(rng)];
    };
    Controller ctl(pick, opts.max_steps);
    const Controller::ExecResult ex = ctl.run(body);
    ++res.executions;
    finish_result(res, ex);
    if (res.found_bug) return res;
  }
  return res;
}

ExploreResult replay(const std::string& name,
                     const std::function<void()>& body,
                     const std::string& schedule, const ExploreOptions& opts) {
  const std::vector<int> want = parse_schedule(schedule);
  std::size_t at = 0;
  auto pick = [&](const std::vector<int>& runnable, int /*last*/) -> int {
    if (at < want.size()) return want[at++];
    // Past the recorded choices: extend deterministically (lowest id), so a
    // schedule that failed mid-execution still drains the same way.
    return runnable.front();
  };
  Controller ctl(pick, opts.max_steps);
  const Controller::ExecResult ex = ctl.run(body);
  ExploreResult res;
  res.scenario = name;
  res.executions = 1;
  res.exhausted = false;
  finish_result(res, ex);
  return res;
}

}  // namespace salient::check
