// Deterministic schedule-exploration model checking (docs/STATIC_ANALYSIS.md,
// "Model checking").
//
// TSan (the sanitize-chaos CI job) only observes the interleavings a given
// run happens to take; the clang capability analysis only covers mutex
// discipline. The lock-free cores this pipeline leans on — the CAS-claim
// FrequencyTable behind presample caching, the Vyukov MpmcQueue feeding the
// prep workers, the ThreadPool broadcast epoch/job channel — need their
// *interleavings* checked systematically, in the spirit of loom/relacy/CHESS.
//
// The model: a scenario body runs as virtual thread 0 under a
// sched::Controller that serializes every virtual thread onto controlled
// yield points. The check::atomic / check::Mutex / check::CondVar /
// check::thread shims (check/shim.h) call into the controller before each
// operation; exactly one virtual thread runs between consecutive yield
// points, so an execution is fully described by the sequence of scheduling
// choices — a *schedule*. The Explorer then drives either
//
//   * bounded-exhaustive DFS over schedules: depth-first over the choice of
//     which runnable thread runs next, pruned by a preemption bound (CHESS:
//     most concurrency bugs manifest within 2 preemptions), or
//   * seeded-random sampling for state spaces too large to exhaust, or
//   * replay of an exact schedule string — every failure report prints one,
//     and feeding it back reproduces the identical interleaving (and
//     therefore the identical failure) deterministically.
//
// What is modelled: sequentially-consistent interleavings of the shim
// operations, virtual mutexes/condvars (including wake order), virtual-time
// timed waits (a timed wait times out only when no other thread can run),
// thread spawn/join, deadlock (reported with every blocked thread's op), and
// livelock (a step budget). What is NOT modelled: weak-memory reordering —
// the explicit std::memory_order arguments the `explicit-memory-order` lint
// rule enforces are passed through to the real atomics but do not narrow the
// explored interleavings, which are a superset of SC executions only. TSan
// under the chaos schedules remains the dynamic check for ordering below SC.
//
// The shims compile to the plain primitives when SALIENT_MODEL_CHECK=OFF
// (the default); this header is compiled unconditionally but only test
// scenarios instantiate a Controller.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace salient::check {

/// Per-mutex virtual state, embedded in check::Mutex. Mutated only under the
/// controller's master lock; `owner` is the owning virtual thread id or -1.
struct MutexState {
  int owner = -1;
};

/// Per-condvar virtual state, embedded in check::CondVar. Waiters are found
/// by scanning the controller's thread table for this object's address, so
/// the state itself carries nothing; the tag type keeps addresses distinct.
struct CvState {
  char tag = 0;
};

/// Thrown through a virtual thread to unwind it when the execution aborts
/// (deadlock or step-budget failure). Mutex unlock and thread join are
/// deliberately non-throwing so stack unwinding through destructors
/// (~LockGuard, ~ThreadPool) stays noexcept-safe.
struct ExecutionAborted {};

/// Serializes virtual threads onto controlled yield points and records the
/// schedule. One Controller per execution; the Explorer (below) constructs
/// one per explored schedule. Scenario code never touches this class
/// directly — the shims and the explore()/replay() entry points do.
class Controller {
 public:
  /// Scheduling decision callback: given the sorted runnable thread ids and
  /// the previously running thread (-1 at the start), return the id to run.
  /// Called only at *contested* points (two or more runnable threads);
  /// forced steps are taken without consulting the policy or recording.
  using PickFn = std::function<int(const std::vector<int>& runnable,
                                   int last_active)>;

  /// What one execution did. `schedule` holds the contested choices only —
  /// the canonical schedule-string content.
  struct ExecResult {
    bool failed = false;        ///< invariant / deadlock / budget failure
    std::string failure;        ///< first failure message
    std::vector<int> schedule;  ///< contested scheduling choices, in order
    long steps = 0;             ///< total yield points passed
    bool diverged = false;      ///< replayed prefix no longer matched
    /// Tail of the per-operation log: (thread id, op label).
    std::vector<std::pair<int, const char*>> oplog_tail;
  };

  Controller(PickFn pick, long max_steps);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Run `body` as virtual thread 0, schedule until every virtual thread
  /// (including ones the body spawns via check::thread) finished.
  ExecResult run(const std::function<void()>& body);

  /// The controller governing the calling thread, or nullptr when the
  /// calling thread is not a virtual thread of a live execution. The shims
  /// branch on this: nullptr means "behave like the plain primitive".
  static Controller* current();

  /// Record an invariant failure (first failure wins); the execution
  /// continues so the scenario still tears down naturally.
  void fail(const std::string& msg);

  // ---- shim hooks; all called from governed (virtual) threads ----

  /// Generic yield point before an atomic operation. Throws
  /// ExecutionAborted when the execution is being drained.
  void op_yield(const char* label);

  void mutex_lock(MutexState& m);      ///< never throws ExecutionAborted
  bool mutex_try_lock(MutexState& m);  ///< never throws ExecutionAborted
  void mutex_unlock(MutexState& m);    ///< never throws ExecutionAborted

  /// Condvar wait: release `m`, block until notified, reacquire `m`.
  /// Throws ExecutionAborted during drain (after reacquiring `m`, so RAII
  /// lock holders unwind cleanly).
  void cv_wait(CvState& cv, MutexState& m);
  /// Timed condvar wait under virtual time: "times out" only when no other
  /// thread can run (so a timeout never races a possible wakeup). Returns
  /// true on timeout.
  bool cv_wait_timed(CvState& cv, MutexState& m);
  void cv_notify_one(CvState& cv);  ///< never throws (runs in destructors)
  void cv_notify_all(CvState& cv);  ///< never throws (runs in destructors)

  /// Allocate a virtual thread id for a child the calling thread is about
  /// to spawn; the child's entry must be thread_run(id, fn).
  int thread_prepare();
  /// Child-thread trampoline: registers with the controller, waits to be
  /// scheduled, runs fn, then retires the virtual thread.
  void thread_run(int id, std::function<void()> fn);
  /// Virtual join: block until thread `id` retired. Never throws (runs
  /// inside destructors during drain).
  void thread_join(int id);

 private:
  struct VThread;

  VThread& self_locked();
  /// Park the calling (running) thread and hand the turn to the scheduler;
  /// returns once the scheduler activates this thread again.
  void park(std::unique_lock<std::mutex>& lk, VThread& me);
  /// A schedule point: record the op, and park unless the step is forced
  /// (no other runnable thread). `throwing` selects whether a drain unwinds
  /// this thread here via ExecutionAborted.
  void schedule_point(std::unique_lock<std::mutex>& lk, VThread& me,
                      const char* label, bool throwing);
  /// Block on `obj` until woken; parks unconditionally.
  void block_on(std::unique_lock<std::mutex>& lk, VThread& me,
                const void* obj, int kind, const char* label);
  void wake_waiters(const void* obj, int kind, bool one_only);
  int count_other_runnable(const VThread& me) const;
  void begin_abort_locked(const std::string& why);
  void scheduler_loop(std::unique_lock<std::mutex>& lk);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<VThread>> threads_;
  int active_ = -1;  ///< id allowed to run; -1 = the scheduler's turn
  int last_active_ = -1;
  bool abort_ = false;
  bool failed_ = false;
  std::string failure_;
  std::vector<int> schedule_;
  std::vector<std::pair<int, const char*>> oplog_;
  long steps_ = 0;
  long max_steps_;
  std::uint64_t block_counter_ = 0;
  PickFn pick_;
};

/// Scenario invariant check. Outside a model-check execution this throws
/// std::logic_error; inside, a failed expectation records the failure (with
/// the reproducing schedule) and lets the execution finish tearing down.
void expect(bool cond, const char* msg);

/// Options for explore()/explore_random()/replay().
struct ExploreOptions {
  /// DFS: schedules with more than this many preemptions (switching away
  /// from a thread that could have kept running) are pruned. Empirically 2
  /// catches the overwhelming majority of interleaving bugs (CHESS).
  int preemption_bound = 2;
  /// DFS/random: stop after this many executions even if unexplored
  /// schedules remain (result.exhausted reports which happened).
  long max_executions = 50000;
  /// Per-execution yield-point budget; exceeding it is reported as a
  /// livelock failure.
  long max_steps = 200000;
  /// Seed for explore_random().
  std::uint64_t seed = 1;
};

/// Outcome of an exploration. `schedule` reproduces the failure exactly:
/// replay(name, body, schedule) yields a bitwise-identical report().
struct ExploreResult {
  std::string scenario;
  bool found_bug = false;
  bool exhausted = false;  ///< DFS fully covered the bounded schedule space
  long executions = 0;
  long total_steps = 0;
  std::string failure;   ///< first failure message (empty when clean)
  std::string schedule;  ///< failing schedule string, e.g. "0.1.1.0.2"
  std::vector<std::pair<int, std::string>> oplog_tail;

  /// Human-readable summary; for failures it includes the schedule string
  /// and the exact replay incantation.
  std::string report() const;
};

/// Bounded-exhaustive DFS over schedules of `body` (preemption-bounded).
/// `body` runs once per explored schedule and must be self-contained:
/// construct fresh state, spawn check::thread workers, join them, assert
/// invariants via check::expect().
ExploreResult explore(const std::string& name,
                      const std::function<void()>& body,
                      const ExploreOptions& opts = {});

/// Seeded-random schedule sampling for state spaces too large for DFS:
/// `iterations` executions with uniform random contested choices.
ExploreResult explore_random(const std::string& name,
                             const std::function<void()>& body,
                             long iterations, std::uint64_t seed,
                             const ExploreOptions& opts = {});

/// Re-run `body` under the exact schedule `schedule` (the string a failure
/// report printed). Deterministic: the same schedule produces the same
/// failure, bit for bit.
ExploreResult replay(const std::string& name,
                     const std::function<void()>& body,
                     const std::string& schedule,
                     const ExploreOptions& opts = {});

}  // namespace salient::check
