// Model-checkable drop-in concurrency primitives (docs/STATIC_ANALYSIS.md,
// "Model checking").
//
// Production concurrent code declares its primitives through these shims:
//
//   check::atomic<T>   instead of  std::atomic<T>
//   check::Mutex       instead of  salient::Mutex
//   check::LockGuard / check::UniqueLock / check::CondVar    likewise
//   check::thread      instead of  std::thread
//
// With SALIENT_MODEL_CHECK=OFF (the default) every shim is a using-alias of
// the plain primitive — the same type, zero cost, byte-identical codegen;
// the bench-gate CI job holds the committed BENCH_kernels.json ratios
// against this build to keep that claim honest. With SALIENT_MODEL_CHECK=ON
// each operation first consults check::Controller::current(): governed
// threads (virtual threads of a model-check execution, see check/sched.h)
// yield to the schedule explorer before the operation; unregistered threads
// fall through to the real primitive, so ordinary tests still run correctly
// in an instrumented build.
//
// Adoption rules (who must use the shims): any component whose interleaving
// a model-check scenario explores — currently FrequencyTable, MpmcQueue,
// BlockingQueue, the ThreadPool broadcast channel, PinnedPool, ResultCache.
// Components outside scenario scope (obs/ metrics internals, fault/) keep
// the plain primitives; from a governed thread their operations are
// invisible non-yield points, which is sound (they are not the structures
// under test) and keeps the schedule space small.
//
// The instrumented Mutex/LockGuard/UniqueLock carry the same clang
// capability annotations as the salient wrappers, so -Wthread-safety proves
// the same locking contracts in both configurations.
#pragma once

#include <atomic>
#include <thread>

#include "util/thread_annotations.h"

#if defined(SALIENT_MODEL_CHECK_ENABLED)
#include <chrono>
#include <condition_variable>
#include <utility>

#include "check/sched.h"
#endif

namespace salient::check {

#if !defined(SALIENT_MODEL_CHECK_ENABLED)

/// Model checking compiled out: the shims ARE the plain primitives.
template <typename T>
using atomic = std::atomic<T>;
using Mutex = salient::Mutex;
using LockGuard = salient::LockGuard;
using UniqueLock = salient::UniqueLock;
using CondVar = salient::CondVar;
using thread = std::thread;

/// True when the calling thread runs under a model-check controller.
constexpr bool governed() { return false; }

#else  // SALIENT_MODEL_CHECK_ENABLED

/// True when the calling thread is a virtual thread of a live execution.
inline bool governed() { return Controller::current() != nullptr; }

/// std::atomic<T> whose every operation is a schedule yield point under a
/// model-check controller. The std::memory_order arguments are passed
/// through to the real atomic; the explored interleavings themselves are
/// sequentially consistent (see check/sched.h).
template <typename T>
class atomic {
 public:
  constexpr atomic() noexcept : v_() {}
  constexpr atomic(T v) noexcept : v_(v) {}  // NOLINT(runtime/explicit)
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    yield_point("atomic.load");
    return v_.load(mo);
  }
  void store(T x, std::memory_order mo = std::memory_order_seq_cst) {
    yield_point("atomic.store");
    v_.store(x, mo);
  }
  T exchange(T x, std::memory_order mo = std::memory_order_seq_cst) {
    yield_point("atomic.exchange");
    return v_.exchange(x, mo);
  }
  T fetch_add(T x, std::memory_order mo = std::memory_order_seq_cst) {
    yield_point("atomic.fetch_add");
    return v_.fetch_add(x, mo);
  }
  T fetch_sub(T x, std::memory_order mo = std::memory_order_seq_cst) {
    yield_point("atomic.fetch_sub");
    return v_.fetch_sub(x, mo);
  }
  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    yield_point("atomic.cas_weak");
    return v_.compare_exchange_weak(expected, desired, mo);
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order ok,
                             std::memory_order fail) {
    yield_point("atomic.cas_weak");
    return v_.compare_exchange_weak(expected, desired, ok, fail);
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order mo = std::memory_order_seq_cst) {
    yield_point("atomic.cas_strong");
    return v_.compare_exchange_strong(expected, desired, mo);
  }
  bool compare_exchange_strong(T& expected, T desired, std::memory_order ok,
                               std::memory_order fail) {
    yield_point("atomic.cas_strong");
    return v_.compare_exchange_strong(expected, desired, ok, fail);
  }

 private:
  static void yield_point(const char* label) {
    if (Controller* c = Controller::current()) c->op_yield(label);
  }
  std::atomic<T> v_;
};

/// Mutex shim: virtual lock protocol under a controller, the real
/// std::mutex otherwise. Carries the capability annotations so
/// -Wthread-safety proves the same contracts as with salient::Mutex.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    if (Controller* c = Controller::current()) {
      c->mutex_lock(st_);
    } else {
      real_.lock();
    }
  }
  void unlock() RELEASE() {
    if (Controller* c = Controller::current()) {
      c->mutex_unlock(st_);
    } else {
      real_.unlock();
    }
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (Controller* c = Controller::current()) return c->mutex_try_lock(st_);
    return real_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex real_;
  MutexState st_;
};

/// Scoped lock over the Mutex shim (std::lock_guard analogue).
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Lock held for the full scope, handed to CondVar waits (std::unique_lock
/// analogue; same always-locked discipline as salient::UniqueLock).
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~UniqueLock() RELEASE() { mu_.unlock(); }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// Condition variable over the Mutex shim. Under a controller, waits and
/// notifies are virtualized (notify_one wakes the longest waiter; timed
/// waits time out under virtual time — only when nothing else can run).
/// Natively it is a std::condition_variable_any over the Mutex shim.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() {
    if (Controller* c = Controller::current()) c->cv_notify_one(st_);
    cv_.notify_one();
  }
  void notify_all() {
    if (Controller* c = Controller::current()) c->cv_notify_all(st_);
    cv_.notify_all();
  }

  void wait(UniqueLock& lk) {
    if (Controller* c = Controller::current()) {
      c->cv_wait(st_, lk.mu_.st_);
      return;
    }
    cv_.wait(lk.mu_);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lk,
                          const std::chrono::duration<Rep, Period>& d) {
    if (Controller* c = Controller::current()) {
      return c->cv_wait_timed(st_, lk.mu_.st_) ? std::cv_status::timeout
                                               : std::cv_status::no_timeout;
    }
    return cv_.wait_for(lk.mu_, d);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueLock& lk, const std::chrono::time_point<Clock, Duration>& tp) {
    if (Controller* c = Controller::current()) {
      return c->cv_wait_timed(st_, lk.mu_.st_) ? std::cv_status::timeout
                                               : std::cv_status::no_timeout;
    }
    return cv_.wait_until(lk.mu_, tp);
  }

 private:
  CvState st_;
  std::condition_variable_any cv_;
};

/// std::thread shim: spawned from a governed thread it becomes a virtual
/// thread of the same execution (join is a virtualized yield point);
/// otherwise it is a plain std::thread.
class thread {
 public:
  thread() = default;

  template <class Fn>
  explicit thread(Fn fn) {
    if (Controller* c = Controller::current()) {
      ctl_ = c;
      vid_ = c->thread_prepare();
      t_ = std::thread([c, vid = vid_, f = std::move(fn)]() mutable {
        c->thread_run(vid, std::move(f));
      });
    } else {
      t_ = std::thread(std::move(fn));
    }
  }

  thread(thread&&) = default;
  thread& operator=(thread&& other) {
    if (t_.joinable()) join();  // mirror std::thread's no-overwrite contract
    t_ = std::move(other.t_);
    ctl_ = other.ctl_;
    vid_ = other.vid_;
    other.ctl_ = nullptr;
    other.vid_ = -1;
    return *this;
  }
  thread(const thread&) = delete;
  thread& operator=(const thread&) = delete;

  ~thread() {
    // Unlike std::thread (which terminates), drain-unwind paths may destroy
    // a joinable wrapper; joining is the safe teardown either way.
    if (t_.joinable()) join();
  }

  bool joinable() const { return t_.joinable(); }

  void join() {
    if (ctl_ != nullptr && vid_ >= 0 && Controller::current() == ctl_) {
      ctl_->thread_join(vid_);  // virtual join: yields until the vthread
                                // retired; the native join below is then
                                // immediate
    }
    t_.join();
  }

 private:
  std::thread t_;
  Controller* ctl_ = nullptr;
  int vid_ = -1;
};

#endif  // SALIENT_MODEL_CHECK_ENABLED

}  // namespace salient::check
