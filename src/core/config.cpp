#include "core/config.h"

#include <sstream>
#include <stdexcept>

namespace salient {

std::vector<std::int64_t> parse_fanouts(const std::string& text) {
  std::vector<std::int64_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stoll(item));
  }
  if (out.empty()) throw std::invalid_argument("parse_fanouts: empty list");
  return out;
}

}  // namespace salient
