#include "core/config.h"

#include <sstream>
#include <stdexcept>
#include <string_view>

namespace salient {

std::vector<std::int64_t> parse_fanouts(const std::string& text) {
  std::vector<std::int64_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stoll(item));
  }
  if (out.empty()) throw std::invalid_argument("parse_fanouts: empty list");
  return out;
}

std::vector<std::int64_t> parse_int_list(const std::string& text) {
  std::vector<std::int64_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stoll(item));
  }
  if (out.empty()) throw std::invalid_argument("parse_int_list: empty list");
  return out;
}

std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stod(item));
  }
  if (out.empty()) throw std::invalid_argument("parse_double_list: empty list");
  return out;
}

std::vector<std::int64_t> parse_nonneg_int_list(const std::string& text) {
  std::vector<std::int64_t> out = parse_int_list(text);
  for (const std::int64_t v : out) {
    if (v < 0) {
      throw std::invalid_argument("parse_nonneg_int_list: negative value " +
                                  std::to_string(v));
    }
  }
  return out;
}

DType parse_feature_dtype(const std::string& name) {
  if (name == "f16") return DType::kF16;
  if (name == "f32") return DType::kF32;
  if (name == "i8q") return DType::kInt8Q;
  throw std::invalid_argument("parse_feature_dtype: unknown dtype '" + name +
                              "' (expected f16, f32, or i8q)");
}

bool parse_obs_flag(const std::string& arg, SystemConfig& config) {
  constexpr std::string_view kTrace = "--trace-out=";
  constexpr std::string_view kMetrics = "--metrics-out=";
  if (arg.rfind(kTrace, 0) == 0) {
    config.trace_out = arg.substr(kTrace.size());
    return true;
  }
  if (arg.rfind(kMetrics, 0) == 0) {
    config.metrics_out = arg.substr(kMetrics.size());
    return true;
  }
  return false;
}

}  // namespace salient
