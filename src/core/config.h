// Top-level run configuration for the SALIENT system facade.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/device_sim.h"
#include "train/trainer.h"

namespace salient {

struct SystemConfig {
  /// Dataset preset name ("arxiv-sim", "products-sim", "papers-sim") and a
  /// size multiplier (1.0 = the preset's default size; see DESIGN.md).
  std::string dataset = "arxiv-sim";
  double dataset_scale = 0.1;

  /// Architecture: "sage", "gat", "gin", "sage-ri" (Appendix A).
  std::string arch = "sage";
  std::int64_t hidden_channels = 64;
  int num_layers = 3;

  std::vector<std::int64_t> train_fanouts{15, 10, 5};
  std::vector<std::int64_t> infer_fanouts{20, 20, 20};
  std::int64_t batch_size = 1024;
  int num_workers = 2;
  double lr = 3e-3;

  /// kSalient/kPipelined is the full SALIENT system; kBaseline/kBlocking is
  /// the performance-engineered PyG baseline of §3.
  LoaderKind loader_kind = LoaderKind::kSalient;
  ExecutionMode execution = ExecutionMode::kPipelined;

  /// When > 0, enable device feature caching of this many nodes (paper §8
  /// future work; SALIENT loader paths only). Which nodes is decided by
  /// `cache_policy`.
  std::int64_t feature_cache_nodes = 0;
  /// Cache capacity as a fraction of |V| in [0, 1]; the effective capacity
  /// is max(feature_cache_nodes, cache_percentage * |V|). CLI form:
  /// --cache-pct=<fraction>.
  double cache_percentage = 0.0;
  /// Feature-cache placement policy: "degree" (default), "presample",
  /// "lru", or "auto" (docs/CACHING.md). CLI form: --cache-policy=<name>.
  std::string cache_policy = "degree";

  /// On-the-wire feature dtype for host->device transfers: "f16" (default),
  /// "f32" (uncompressed baseline), or "i8q" (per-row affine int8,
  /// tensor/quantize.h). See LoaderConfig::feature_dtype. CLI form:
  /// --feature-dtype=<name>.
  std::string feature_dtype = "f16";

  DeviceConfig device;
  std::uint64_t seed = 1;

  /// When non-empty, enable span tracing (src/obs/trace.h) for the run and
  /// write a Chrome trace_event JSON file here when the System is destroyed
  /// (or on System::flush_observability()). Open it in chrome://tracing or
  /// https://ui.perfetto.dev. CLI form: --trace-out=<path>.
  std::string trace_out;
  /// When non-empty, dump the global metrics registry (counters, gauges,
  /// per-phase blocking histograms) as JSON to this path at the same points.
  /// CLI form: --metrics-out=<path>.
  std::string metrics_out;
};

/// Parse a wire feature dtype name: "f16", "f32", or "i8q"
/// (LoaderConfig::feature_dtype / the --feature-dtype CLI knob).
/// \throws std::invalid_argument for anything else.
DType parse_feature_dtype(const std::string& name);

/// Parse "a,b,c" into a fanout list (helper for example/bench CLIs).
std::vector<std::int64_t> parse_fanouts(const std::string& text);

/// Parse "a,b,c" into integers (CLI sweep lists; empty items are skipped).
/// \throws std::invalid_argument when no value survives.
std::vector<std::int64_t> parse_int_list(const std::string& text);

/// Parse "a,b,c" into doubles (CLI sweep lists; empty items are skipped).
/// \throws std::invalid_argument when no value survives.
std::vector<double> parse_double_list(const std::string& text);

/// Parse "a,b,c" into non-negative integers (CLI sweep lists whose domain
/// forbids negatives, e.g. pipeline depths; empty items are skipped).
/// \throws std::invalid_argument when no value survives or any is negative.
std::vector<std::int64_t> parse_nonneg_int_list(const std::string& text);

/// Recognize the observability CLI flags (--trace-out=<path>,
/// --metrics-out=<path>) and apply them to `config`. Returns true when `arg`
/// was consumed; examples call this before their positional parsing so every
/// binary accepts the same flags.
bool parse_obs_flag(const std::string& arg, SystemConfig& config);

}  // namespace salient
