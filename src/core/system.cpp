#include "core/system.h"

#include <iostream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace salient {

System::System(SystemConfig config) : config_(std::move(config)) {
  dataset_ = generate_dataset(
      preset_config(config_.dataset, config_.dataset_scale));
  build();
}

System::System(Dataset dataset, SystemConfig config)
    : config_(std::move(config)), dataset_(std::move(dataset)) {
  build();
}

System::~System() { flush_observability(); }

void System::flush_observability() {
  if (!config_.trace_out.empty()) {
    if (obs::write_chrome_trace_file(config_.trace_out)) {
      std::cerr << "[obs] wrote trace to " << config_.trace_out << "\n";
    } else {
      std::cerr << "[obs] FAILED to write trace to " << config_.trace_out
                << "\n";
    }
  }
  if (!config_.metrics_out.empty()) {
    if (obs::Registry::global().write_json_file(config_.metrics_out)) {
      std::cerr << "[obs] wrote metrics to " << config_.metrics_out << "\n";
    } else {
      std::cerr << "[obs] FAILED to write metrics to " << config_.metrics_out
                << "\n";
    }
  }
}

void System::build() {
  // Requesting a trace output opts the run into recording; without it the
  // tracer stays disabled and instrumented code costs one branch per span.
  if (!config_.trace_out.empty()) {
    obs::TraceRecorder::global().enable(true);
  }

  nn::ModelConfig mc;
  mc.in_channels = dataset_.feature_dim;
  mc.hidden_channels = config_.hidden_channels;
  mc.out_channels = dataset_.num_classes;
  mc.num_layers = config_.num_layers;
  mc.seed = config_.seed * 31 + 7;
  model_ = nn::make_model(config_.arch, mc);

  DeviceConfig dev = config_.device;
  // The baseline keeps PyG's blocking post-transfer assertions; SALIENT
  // skips them (§4.3).
  dev.validate_sparse_after_transfer =
      config_.execution == ExecutionMode::kBlocking;
  device_ = std::make_unique<DeviceSim>(dev);

  TrainConfig tc;
  tc.loader.batch_size = config_.batch_size;
  tc.loader.fanouts = config_.train_fanouts;
  tc.loader.num_workers = config_.num_workers;
  tc.loader.seed = config_.seed;
  tc.loader_kind = config_.loader_kind;
  tc.execution = config_.execution;
  tc.lr = config_.lr;
  tc.feature_cache_nodes = config_.feature_cache_nodes;
  tc.loader.cache_policy = parse_cache_policy(config_.cache_policy);
  tc.loader.cache_percentage = config_.cache_percentage;
  tc.loader.feature_dtype = parse_feature_dtype(config_.feature_dtype);
  trainer_ = std::make_unique<Trainer>(dataset_, model_, *device_, tc);
}

EpochStats System::train_epoch() {
  return trainer_->train_epoch(epochs_trained_++);
}

std::vector<EpochStats> System::train(int epochs) {
  std::vector<EpochStats> stats;
  stats.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) stats.push_back(train_epoch());
  return stats;
}

double System::test_accuracy() {
  return test_accuracy(config_.infer_fanouts);
}

double System::test_accuracy(std::span<const std::int64_t> fanouts) {
  const double acc =
      evaluate_sampled(*model_, dataset_, dataset_.test_idx, fanouts,
                       config_.batch_size, config_.seed ^ 0x7e57)
          .accuracy;
  model_->train(true);
  return acc;
}

double System::val_accuracy() {
  const double acc =
      evaluate_sampled(*model_, dataset_, dataset_.val_idx,
                       config_.infer_fanouts, config_.batch_size,
                       config_.seed ^ 0x7a1)
          .accuracy;
  model_->train(true);
  return acc;
}

}  // namespace salient
