#include "core/system.h"

namespace salient {

System::System(SystemConfig config) : config_(std::move(config)) {
  dataset_ = generate_dataset(
      preset_config(config_.dataset, config_.dataset_scale));
  build();
}

System::System(Dataset dataset, SystemConfig config)
    : config_(std::move(config)), dataset_(std::move(dataset)) {
  build();
}

void System::build() {
  nn::ModelConfig mc;
  mc.in_channels = dataset_.feature_dim;
  mc.hidden_channels = config_.hidden_channels;
  mc.out_channels = dataset_.num_classes;
  mc.num_layers = config_.num_layers;
  mc.seed = config_.seed * 31 + 7;
  model_ = nn::make_model(config_.arch, mc);

  DeviceConfig dev = config_.device;
  // The baseline keeps PyG's blocking post-transfer assertions; SALIENT
  // skips them (§4.3).
  dev.validate_sparse_after_transfer =
      config_.execution == ExecutionMode::kBlocking;
  device_ = std::make_unique<DeviceSim>(dev);

  TrainConfig tc;
  tc.loader.batch_size = config_.batch_size;
  tc.loader.fanouts = config_.train_fanouts;
  tc.loader.num_workers = config_.num_workers;
  tc.loader.seed = config_.seed;
  tc.loader_kind = config_.loader_kind;
  tc.execution = config_.execution;
  tc.lr = config_.lr;
  tc.feature_cache_nodes = config_.feature_cache_nodes;
  trainer_ = std::make_unique<Trainer>(dataset_, model_, *device_, tc);
}

EpochStats System::train_epoch() {
  return trainer_->train_epoch(epochs_trained_++);
}

std::vector<EpochStats> System::train(int epochs) {
  std::vector<EpochStats> stats;
  stats.reserve(static_cast<std::size_t>(epochs));
  for (int e = 0; e < epochs; ++e) stats.push_back(train_epoch());
  return stats;
}

double System::test_accuracy() {
  return test_accuracy(config_.infer_fanouts);
}

double System::test_accuracy(std::span<const std::int64_t> fanouts) {
  const double acc =
      evaluate_sampled(*model_, dataset_, dataset_.test_idx, fanouts,
                       config_.batch_size, config_.seed ^ 0x7e57)
          .accuracy;
  model_->train(true);
  return acc;
}

double System::val_accuracy() {
  const double acc =
      evaluate_sampled(*model_, dataset_, dataset_.val_idx,
                       config_.infer_fanouts, config_.batch_size,
                       config_.seed ^ 0x7a1)
          .accuracy;
  model_->train(true);
  return acc;
}

}  // namespace salient
