// salient::System — the library's top-level facade.
//
// Wires together a dataset (synthetic preset or caller-provided), one of the
// paper's four GNN architectures, the simulated device, and the training
// pipeline (SALIENT or the PyG baseline). This is the API the examples and
// most benches drive; everything underneath is also public for finer control.
//
//   SystemConfig cfg;                     // arxiv-sim, GraphSAGE, SALIENT
//   System sys(cfg);
//   sys.train(5);                         // five epochs
//   double acc = sys.test_accuracy();     // sampled inference, fanout 20^3
#pragma once

#include <memory>

#include "core/config.h"
#include "graph/dataset.h"
#include "nn/models.h"
#include "train/inference.h"
#include "train/metrics.h"

namespace salient {

class System {
 public:
  /// Generate the configured dataset preset and build the full stack.
  explicit System(SystemConfig config);
  /// Use a caller-provided dataset (takes ownership).
  System(Dataset dataset, SystemConfig config);

  /// Train one epoch; returns its stats (per-phase blocking, loss, ...).
  EpochStats train_epoch();
  /// Train `epochs` epochs; returns per-epoch stats.
  std::vector<EpochStats> train(int epochs);

  /// Sampled-inference accuracy on the test/validation split using
  /// config.infer_fanouts (or an override).
  double test_accuracy();
  double test_accuracy(std::span<const std::int64_t> fanouts);
  double val_accuracy();

  const Dataset& dataset() const { return dataset_; }
  const std::shared_ptr<nn::GnnModel>& model() const { return model_; }
  DeviceSim& device() { return *device_; }
  Trainer& trainer() { return *trainer_; }
  const SystemConfig& config() const { return config_; }
  int epochs_trained() const { return epochs_trained_; }

 private:
  void build();

  SystemConfig config_;
  Dataset dataset_;
  std::shared_ptr<nn::GnnModel> model_;
  std::unique_ptr<DeviceSim> device_;
  std::unique_ptr<Trainer> trainer_;
  int epochs_trained_ = 0;
};

}  // namespace salient
