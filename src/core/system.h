// salient::System — the library's top-level facade.
//
// Wires together a dataset (synthetic preset or caller-provided), one of the
// paper's four GNN architectures, the simulated device, and the training
// pipeline (SALIENT or the PyG baseline). This is the API the examples and
// most benches drive; everything underneath is also public for finer control.
//
//   SystemConfig cfg;                     // arxiv-sim, GraphSAGE, SALIENT
//   System sys(cfg);
//   sys.train(5);                         // five epochs
//   double acc = sys.test_accuracy();     // sampled inference, fanout 20^3
#pragma once

#include <memory>

#include "core/config.h"
#include "graph/dataset.h"
#include "nn/models.h"
#include "train/inference.h"
#include "train/metrics.h"

namespace salient {

/// Top-level facade over the whole reproduction.
///
/// A System owns one dataset, one model, one simulated device, and one
/// Trainer, all built from a SystemConfig. It is the one-object API the
/// examples drive; every subsystem it wires together is also public for
/// finer-grained control (see docs/ARCHITECTURE.md for the map).
class System {
 public:
  /// Generate the configured dataset preset and build the full stack.
  explicit System(SystemConfig config);
  /// Use a caller-provided dataset (takes ownership).
  System(Dataset dataset, SystemConfig config);
  /// Flushes the configured observability outputs (see flush_observability).
  ~System();

  /// Write config.trace_out (Chrome trace of everything recorded so far)
  /// and config.metrics_out (metrics registry JSON) now. Runs automatically
  /// at destruction; calling it earlier snapshots a partial run. No-op for
  /// empty paths.
  void flush_observability();

  /// Train one epoch; returns its stats (per-phase blocking, loss, ...).
  EpochStats train_epoch();
  /// Train `epochs` epochs; returns per-epoch stats.
  std::vector<EpochStats> train(int epochs);

  /// Sampled-inference accuracy on the test split using
  /// config.infer_fanouts (paper §5 mini-batch inference).
  double test_accuracy();
  /// Sampled-inference accuracy on the test split with an explicit fanout
  /// per layer, overriding config.infer_fanouts.
  double test_accuracy(std::span<const std::int64_t> fanouts);
  /// Sampled-inference accuracy on the validation split using
  /// config.infer_fanouts.
  double val_accuracy();

  /// The dataset the system was built over (generated preset or caller's).
  const Dataset& dataset() const { return dataset_; }
  /// The GNN model being trained; shared so callers can checkpoint it.
  const std::shared_ptr<nn::GnnModel>& model() const { return model_; }
  /// The simulated accelerator (streams, DMA, feature cache).
  DeviceSim& device() { return *device_; }
  /// The training-loop driver (blocking or pipelined per config).
  Trainer& trainer() { return *trainer_; }
  /// The configuration the system was built with.
  const SystemConfig& config() const { return config_; }
  /// Number of epochs train_epoch()/train() have completed so far.
  int epochs_trained() const { return epochs_trained_; }

 private:
  void build();

  SystemConfig config_;
  Dataset dataset_;
  std::shared_ptr<nn::GnnModel> model_;
  std::unique_ptr<DeviceSim> device_;
  std::unique_ptr<Trainer> trainer_;
  int epochs_trained_ = 0;
};

}  // namespace salient
