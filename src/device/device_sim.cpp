#include "device/device_sim.h"

#include <cstring>
#include <stdexcept>

#include "tensor/quantize.h"
#include "util/half.h"

namespace salient {

DeviceSim::DeviceSim(DeviceConfig config)
    : config_(config),
      dma_(config.dma),
      compute_("compute" + std::to_string(config.device_id)),
      copy_("copy" + std::to_string(config.device_id)) {}

void DeviceSim::enqueue_common_transfers(const PreparedBatch& batch,
                                         bool pinned, DeviceBatch& out) {
  out.index = batch.index;
  out.mfg.batch_size = batch.mfg.batch_size;
  out.mfg.n_ids = batch.mfg.n_ids;  // kept host-side (IDs are metadata)

  // Adjacency: one DMA per level array, as PyG transfers each sparse tensor.
  out.mfg.levels.reserve(batch.mfg.levels.size());
  for (const auto& level : batch.mfg.levels) {
    MfgLevel dl;
    dl.num_src = level.num_src;
    dl.num_dst = level.num_dst;
    auto indptr =
        std::make_shared<std::vector<std::int64_t>>(level.indptr->size());
    auto indices =
        std::make_shared<std::vector<std::int64_t>>(level.indices->size());
    // Capture the source arrays by shared_ptr: the transfer stays valid even
    // if the caller recycles the PreparedBatch before the copy stream runs.
    auto src_indptr = level.indptr;
    auto src_indices = level.indices;
    copy_.enqueue([this, indptr, indices, src_indptr, src_indices, pinned] {
      dma_.copy(indptr->data(), src_indptr->data(),
                src_indptr->size() * sizeof(std::int64_t), pinned);
      dma_.copy(indices->data(), src_indices->data(),
                src_indices->size() * sizeof(std::int64_t), pinned);
      if (config_.validate_sparse_after_transfer) {
        // PyG's sparse-tensor assertions: a blocking device round trip per
        // transferred adjacency (§4.3).
        dma_.round_trip();
      }
    }, "h2d.adjacency");
    dl.indptr = std::move(indptr);
    dl.indices = std::move(indices);
    out.mfg.levels.push_back(std::move(dl));
  }

  // Labels.
  out.y = Tensor(batch.y.shape(), batch.y.dtype());
  Tensor y_dev = out.y;
  const Tensor y_host = batch.y;
  copy_.enqueue([this, y_dev, y_host, pinned]() mutable {
    dma_.copy(y_dev.raw(), y_host.raw(), y_host.nbytes(), pinned);
  }, "h2d.labels");
}

namespace {

/// Device-side decompression of transferred feature rows into the f32
/// compute copy: f16 bulk up-conversion, per-row int8 affine dequantization
/// (using the scale/zero sidecars that rode the same DMA), or a plain copy
/// for f32 wires.
void convert_features(const Tensor& src, const Tensor& scale,
                      const Tensor& zero, Tensor& dst) {
  switch (src.dtype()) {
    case DType::kF16:
      half_to_float_n(src.data<Half>(), dst.data<float>(),
                      static_cast<std::size_t>(src.numel()));
      break;
    case DType::kInt8Q: {
      if (!scale.defined() || !zero.defined()) {
        throw std::invalid_argument(
            "convert_features: i8q rows need scale/zero sidecars");
      }
      const std::int64_t rows = src.size(0);
      const std::int64_t f = src.size(1);
      const std::int8_t* q = src.data<std::int8_t>();
      const float* ps = scale.data<float>();
      const float* pz = zero.data<float>();
      float* pd = dst.data<float>();
      for (std::int64_t i = 0; i < rows; ++i) {
        ops::dequantize_row(q + i * f, f, ps[i], pz[i], pd + i * f);
      }
      break;
    }
    case DType::kF32:
      std::memcpy(dst.raw(), src.raw(), src.nbytes());
      break;
    default:
      throw std::invalid_argument("convert_features: unsupported wire dtype");
  }
}

}  // namespace

DeviceBatch DeviceSim::transfer_batch(const PreparedBatch& batch,
                                      bool blocking, Event* ready) {
  DeviceBatch out;
  const bool pinned = batch.x.pinned();
  enqueue_common_transfers(batch, pinned, out);

  // Features: DMA the wire-format rows (f16 / f32 / per-row int8, plus the
  // int8 scale/zero sidecars), then decompress to f32 on the compute stream
  // ("GPU training computations are still done in single precision", §3).
  Tensor x_wire_dev(batch.x.shape(), batch.x.dtype());
  Tensor scale_dev, zero_dev;
  if (batch.x_scale.defined()) {
    scale_dev = Tensor(batch.x_scale.shape(), batch.x_scale.dtype());
    zero_dev = Tensor(batch.x_zero.shape(), batch.x_zero.dtype());
  }
  const Tensor x_host = batch.x;
  const Tensor scale_host = batch.x_scale;
  const Tensor zero_host = batch.x_zero;
  Tensor x_wire_copy = x_wire_dev;  // shared storage alias for the lambda
  Tensor scale_copy = scale_dev;
  Tensor zero_copy = zero_dev;
  copy_.enqueue([this, x_wire_copy, x_host, scale_copy, scale_host, zero_copy,
                 zero_host, pinned]() mutable {
    dma_.copy(x_wire_copy.raw(), x_host.raw(), x_host.nbytes(), pinned);
    if (scale_host.defined()) {
      dma_.copy(scale_copy.raw(), scale_host.raw(), scale_host.nbytes(),
                pinned);
      dma_.copy(zero_copy.raw(), zero_host.raw(), zero_host.nbytes(), pinned);
    }
  }, "h2d.features");

  // Compute stream waits for the copies, then decompresses the features.
  Event copies_done = copy_.record();
  compute_.wait(copies_done);
  out.x_f32 = Tensor(batch.x.shape(), DType::kF32);
  Tensor x_f32_dev = out.x_f32;
  compute_.enqueue([x_wire_dev, scale_dev, zero_dev, x_f32_dev]() mutable {
    convert_features(x_wire_dev, scale_dev, zero_dev, x_f32_dev);
  }, "dev.decompress_features");
  if (ready != nullptr) {
    *ready = compute_.record();
  }
  if (blocking) {
    compute_.synchronize();
  }
  return out;
}

DeviceBatch DeviceSim::transfer_batch_cached(const PreparedBatch& batch,
                                             const CachePlan& plan,
                                             const FeatureCache& cache,
                                             bool blocking, Event* ready) {
  if (batch.x.size(0) != plan.num_missing) {
    throw std::invalid_argument(
        "transfer_batch_cached: batch.x must hold the plan's missing rows");
  }
  if (plan.from_cache.size() != batch.mfg.n_ids.size()) {
    throw std::invalid_argument("transfer_batch_cached: plan size mismatch");
  }
  DeviceBatch out;
  const bool pinned = batch.x.pinned();
  enqueue_common_transfers(batch, pinned, out);

  // Transfer only the missing rows (and any int8 scale/zero sidecars).
  Tensor missing_dev(batch.x.shape(), batch.x.dtype());
  Tensor scale_dev, zero_dev;
  if (batch.x_scale.defined()) {
    scale_dev = Tensor(batch.x_scale.shape(), batch.x_scale.dtype());
    zero_dev = Tensor(batch.x_zero.shape(), batch.x_zero.dtype());
  }
  const Tensor x_host = batch.x;
  const Tensor scale_host = batch.x_scale;
  const Tensor zero_host = batch.x_zero;
  Tensor missing_copy = missing_dev;
  Tensor scale_copy = scale_dev;
  Tensor zero_copy = zero_dev;
  copy_.enqueue([this, missing_copy, x_host, scale_copy, scale_host,
                 zero_copy, zero_host, pinned]() mutable {
    if (x_host.numel() > 0) {
      dma_.copy(missing_copy.raw(), x_host.raw(), x_host.nbytes(), pinned);
      if (scale_host.defined()) {
        dma_.copy(scale_copy.raw(), scale_host.raw(), scale_host.nbytes(),
                  pinned);
        dma_.copy(zero_copy.raw(), zero_host.raw(), zero_host.nbytes(),
                  pinned);
      }
    }
  }, "h2d.missing_rows");

  // Assemble the full feature matrix on the compute stream: cached rows are
  // device-to-device gathers (no PCIe), missing rows are up-converted from
  // the transferred staging buffer.
  Event copies_done = copy_.record();
  compute_.wait(copies_done);
  const auto num_rows = static_cast<std::int64_t>(plan.from_cache.size());
  // Hit rows come from the plan's snapshot (dynamic policies) or the cache's
  // immutable resident matrix (static policies).
  const std::int64_t f =
      plan.hit_rows.defined()
          ? plan.hit_rows.size(1)
          : (cache.features().defined() && cache.capacity() > 0
                 ? cache.features().size(1)
                 : batch.x.size(1));
  out.x_f32 = Tensor({num_rows, f}, DType::kF32);
  Tensor x_f32_dev = out.x_f32;
  const Tensor cache_feats = cache.features();
  // Copy the plan by value: the caller's plan may die before the stream runs.
  // For dynamic policies this also keeps the hit-row snapshot alive, so later
  // evictions cannot corrupt this in-flight batch.
  auto plan_copy = std::make_shared<CachePlan>(plan);
  compute_.enqueue([missing_dev, scale_dev, zero_dev, x_f32_dev, cache_feats,
                    plan_copy, f]() mutable {
    // Decompress the missing rows once, then scatter both sources.
    Tensor missing_f32;
    if (missing_dev.size(0) > 0) {
      missing_f32 = Tensor(missing_dev.shape(), DType::kF32);
      convert_features(missing_dev, scale_dev, zero_dev, missing_f32);
    }
    const Tensor& hits =
        plan_copy->hit_rows.defined() ? plan_copy->hit_rows : cache_feats;
    float* dst = x_f32_dev.data<float>();
    const std::size_t row_bytes = static_cast<std::size_t>(f) * sizeof(float);
    for (std::size_t i = 0; i < plan_copy->from_cache.size(); ++i) {
      const std::int64_t src_row = plan_copy->source[i];
      const float* src = plan_copy->from_cache[i]
                             ? hits.data<float>() + src_row * f
                             : missing_f32.data<float>() + src_row * f;
      std::memcpy(dst + static_cast<std::int64_t>(i) * f, src, row_bytes);
    }
  }, "dev.assemble_cached");
  if (ready != nullptr) {
    *ready = compute_.record();
  }
  if (blocking) {
    compute_.synchronize();
  }
  return out;
}

}  // namespace salient
