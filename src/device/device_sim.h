// The simulated accelerator device.
//
// Stands in for a CUDA GPU: a compute stream and a copy stream (dedicated
// threads with FIFO semantics), a DMA engine with modelled bandwidth, and
// helpers to move a PreparedBatch to the "device". Device memory is host
// memory — what matters for the system under study is the *pipeline
// structure* (streams, events, pinned staging, transfer ordering), which
// runs unmodified against this device. See DESIGN.md for the substitution
// rationale.
#pragma once

#include <memory>
#include <vector>

#include "device/dma.h"
#include "prep/feature_cache.h"
#include "device/stream.h"
#include "prep/batch.h"
#include "tensor/tensor.h"

namespace salient {

struct DeviceConfig {
  int device_id = 0;
  DmaConfig dma;
  /// Baseline PyG behaviour: after transferring each MFG level's sparse
  /// adjacency, run the validity assertions that force a blocking CPU-GPU
  /// round trip (§4.3). SALIENT sets this to false.
  bool validate_sparse_after_transfer = false;
};

/// A mini-batch resident on the device: adjacency arrays, single-precision
/// features (converted from the half-precision host store on the compute
/// stream), and labels.
struct DeviceBatch {
  std::int64_t index = -1;
  Mfg mfg;       // adjacency arrays are device-side copies
  Tensor x_f32;  // [num_input, F] f32
  Tensor y;      // [batch_size] i64
};

class DeviceSim {
 public:
  explicit DeviceSim(DeviceConfig config = {});

  Stream& compute_stream() { return compute_; }
  Stream& copy_stream() { return copy_; }
  DmaEngine& dma() { return dma_; }
  const DeviceConfig& config() const { return config_; }

  /// Enqueue the full H2D transfer of `batch` on the copy stream and the
  /// f16->f32 feature conversion on the compute stream (after the copy).
  /// Returns the device batch and records `ready` on the compute stream —
  /// kernels enqueued after a wait on `ready` see the complete batch.
  ///
  /// When `blocking`, the call synchronizes before returning (the standard
  /// PyTorch `.to(device)` behaviour of Listing 1); otherwise it returns
  /// immediately (SALIENT's pipelined transfer).
  DeviceBatch transfer_batch(const PreparedBatch& batch, bool blocking,
                             Event* ready);

  /// Cache-aware transfer (paper §8 / GNS-style device cache): `batch.x`
  /// holds only the plan's missing rows; the compute stream assembles the
  /// full f32 feature matrix from the device-resident cache plus the
  /// transferred rows. Transfer volume drops by the cache hit rate.
  DeviceBatch transfer_batch_cached(const PreparedBatch& batch,
                                    const CachePlan& plan,
                                    const FeatureCache& cache, bool blocking,
                                    Event* ready);

 private:
  /// Enqueue the adjacency-array and label DMAs shared by both transfer
  /// paths; fills out.mfg/out.y.
  void enqueue_common_transfers(const PreparedBatch& batch, bool pinned,
                                DeviceBatch& out);

  DeviceConfig config_;
  DmaEngine dma_;
  Stream compute_;
  Stream copy_;
};

}  // namespace salient
