#include "device/dma.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "util/timer.h"

namespace salient {

namespace {

/// Wait until `deadline_s` seconds elapsed on `timer`, sleeping for coarse
/// remainders and spinning for the final stretch (sub-100us precision).
void wait_until(const WallTimer& timer, double deadline_s) {
  for (;;) {
    const double remaining = deadline_s - timer.seconds();
    if (remaining <= 0) return;
    if (remaining > 200e-6) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(remaining - 100e-6));
    }
    // spin for the final stretch
  }
}

}  // namespace

void DmaEngine::copy(void* dst, const void* src, std::size_t bytes,
                     bool pinned) {
  WallTimer t;
  std::memcpy(dst, src, bytes);
  const double rate = config_.bandwidth_gb_per_s *
                      (pinned ? 1.0 : config_.pageable_fraction) * 1e9;
  const double model_s =
      config_.latency_us * 1e-6 + static_cast<double>(bytes) / rate;
  wait_until(t, model_s);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  busy_ns_.fetch_add(t.nanos(), std::memory_order_relaxed);
}

void DmaEngine::round_trip() {
  WallTimer t;
  wait_until(t, config_.round_trip_us * 1e-6);
  busy_ns_.fetch_add(t.nanos(), std::memory_order_relaxed);
}

double DmaEngine::achieved_gb_per_s() const {
  const double s = busy_seconds();
  return s > 0 ? static_cast<double>(bytes_.load()) / s / 1e9 : 0.0;
}

}  // namespace salient
