#include "device/dma.h"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace salient {

namespace {

/// Wait until `deadline_s` seconds elapsed on `timer`, sleeping for coarse
/// remainders and spinning for the final stretch (sub-100us precision).
void wait_until(const WallTimer& timer, double deadline_s) {
  for (;;) {
    const double remaining = deadline_s - timer.seconds();
    if (remaining <= 0) return;
    if (remaining > 200e-6) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(remaining - 100e-6));
    }
    // spin for the final stretch
  }
}

}  // namespace

void DmaEngine::copy(void* dst, const void* src, std::size_t bytes,
                     bool pinned) {
  // The span lands on whichever thread runs the copy — for pipelined
  // execution that is the copy stream, so H2D traffic gets its own trace
  // lane and transfer/compute overlap is directly visible.
  SALIENT_TRACE_SCOPE_ARG("dma.copy", bytes);
  WallTimer t;
  // Transfer-error recovery: each attempt consults the `dma.h2d` failpoint
  // (a real backend would check the engine's error status). Failed attempts
  // retry after exponential backoff; past max_retries the error is
  // propagated as DmaError instead of silently delivering garbage.
  for (int attempt = 0; SALIENT_FAILPOINT("dma.h2d"); ++attempt) {
    static obs::Counter& m_errors =
        obs::Registry::global().counter("dma.errors");
    m_errors.add();
    SALIENT_TRACE_INSTANT("dma.error");
    if (attempt >= config_.max_retries) {
      busy_ns_.fetch_add(t.nanos(), std::memory_order_relaxed);
      throw DmaError("dma.h2d transfer failed after " +
                     std::to_string(attempt + 1) + " attempts");
    }
    static obs::Counter& m_retries =
        obs::Registry::global().counter("dma.retries");
    m_retries.add();
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
        config_.retry_backoff_us * static_cast<double>(1 << attempt)));
  }
  // A zero-length level (e.g. an isolated node's empty adjacency) hands over
  // null pointers; memcpy(null, null, 0) is formally UB, so skip it.
  if (bytes > 0) std::memcpy(dst, src, bytes);
  const double rate = config_.bandwidth_gb_per_s *
                      (pinned ? 1.0 : config_.pageable_fraction) * 1e9;
  const double model_s =
      config_.latency_us * 1e-6 + static_cast<double>(bytes) / rate;
  wait_until(t, model_s);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  busy_ns_.fetch_add(t.nanos(), std::memory_order_relaxed);

  auto& reg = obs::Registry::global();
  static obs::Counter& m_bytes = reg.counter("dma.bytes");
  static obs::Counter& m_copies = reg.counter("dma.copies");
  static obs::Histogram& m_ms = reg.histogram(
      "dma.copy_ms", {0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0});
  m_bytes.add(static_cast<std::int64_t>(bytes));
  m_copies.add();
  m_ms.observe(t.seconds() * 1e3);
}

void DmaEngine::round_trip() {
  SALIENT_TRACE_SCOPE("dma.round_trip");
  WallTimer t;
  wait_until(t, config_.round_trip_us * 1e-6);
  busy_ns_.fetch_add(t.nanos(), std::memory_order_relaxed);
  static obs::Counter& m_round_trips =
      obs::Registry::global().counter("dma.round_trips");
  m_round_trips.add();
}

double DmaEngine::achieved_gb_per_s() const {
  const double s = busy_seconds();
  return s > 0
             ? static_cast<double>(
                   bytes_.load(std::memory_order_relaxed)) /
                   s / 1e9
             : 0.0;
}

}  // namespace salient
