// Bandwidth/latency-modelled DMA engine for host->device transfers.
//
// The paper's transfer analysis (§3.3, §4.3): peak DMA host-to-GPU bandwidth
// on their machine is 12.3 GB/s; the baseline achieves only ~75% of it
// because PyG's sparse-tensor library performs blocking validity assertions
// that add a CPU-GPU round trip after each adjacency transfer; skipping the
// redundant assertions reaches 99% of peak.
//
// This engine really copies the bytes (so data integrity is testable) and
// additionally enforces the modelled transfer time: if the memcpy finished
// faster than bytes/bandwidth (+ per-transfer latency), it waits out the
// remainder. Pageable (non-pinned) sources are penalized, and an optional
// round_trip() models the blocking assertion synchronization.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace salient {

struct DmaConfig {
  double bandwidth_gb_per_s = 12.3;  ///< pinned-memory DMA bandwidth
  double pageable_fraction = 0.45;   ///< pageable transfers: fraction of peak
  double latency_us = 8.0;           ///< per-transfer setup latency
  double round_trip_us = 40.0;       ///< cost of one blocking CPU-GPU sync
  /// Transfer-error recovery: a failed copy (injected via the `dma.h2d`
  /// failpoint; a real backend would surface bus/ECC errors here) is retried
  /// up to this many times with exponential backoff before DmaError.
  int max_retries = 3;
  /// Backoff before retry attempt k is retry_backoff_us * 2^k.
  double retry_backoff_us = 50.0;
};

/// A host-to-device transfer that still failed after max_retries attempts.
struct DmaError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class DmaEngine {
 public:
  explicit DmaEngine(DmaConfig config = {}) : config_(config) {}

  /// Copy `bytes` from src to dst at the modelled rate. Runs on the calling
  /// thread (enqueue on a copy stream for async semantics). Transfer errors
  /// (injected via the `dma.h2d` failpoint) are retried with bounded
  /// exponential backoff; throws DmaError once retries are exhausted.
  void copy(void* dst, const void* src, std::size_t bytes, bool pinned);

  /// Model a blocking CPU-GPU round trip (e.g., a device-side assertion the
  /// host waits on). Costs round_trip_us of wall time.
  void round_trip();

  const DmaConfig& config() const { return config_; }

  /// Total bytes moved through this engine.
  std::size_t bytes_transferred() const { return bytes_; }
  /// Total wall seconds spent inside copy()/round_trip().
  double busy_seconds() const { return busy_ns_ * 1e-9; }
  /// Achieved throughput in GB/s over the engine's lifetime.
  double achieved_gb_per_s() const;

 private:
  DmaConfig config_;
  // Concurrency: no mutex on purpose. config_ is immutable after
  // construction and the counters are independent atomics (relaxed adds,
  // monotonic reads), so there is no multi-field invariant for a capability
  // to protect and nothing for -Wthread-safety to check here.
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::int64_t> busy_ns_{0};
};

}  // namespace salient
