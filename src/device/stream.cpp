#include "device/stream.h"

#include <exception>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace salient {

Event::Event() : state_(std::make_shared<State>()) {}

bool Event::query() const {
  LockGuard lock(state_->mu);
  return state_->done;
}

void Event::synchronize() const {
  UniqueLock lock(state_->mu);
  while (!state_->done) state_->cv.wait(lock);
}

void Event::signal() const {
  {
    LockGuard lock(state_->mu);
    state_->done = true;
  }
  state_->cv.notify_all();
}

Stream::Stream(std::string name)
    : name_(std::move(name)), thread_([this] { loop(); }) {}

Stream::~Stream() {
  {
    LockGuard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Stream::enqueue(std::function<void()> fn, const char* label) {
  {
    LockGuard lock(mu_);
    work_.push_back({std::move(fn), label});
    ++enqueued_;
  }
  cv_.notify_all();
}

Event Stream::record() {
  Event e;
  enqueue([e] { e.signal(); });
  return e;
}

void Stream::wait(Event e) {
  enqueue([e] { e.synchronize(); });
}

void Stream::synchronize() {
  // One critical section end to end (the annotation sweep flagged the old
  // shape, which dropped and re-took mu_ between reading enqueued_ and
  // waiting — correct but needlessly racy-looking and twice the lock work).
  UniqueLock lock(mu_);
  const std::uint64_t target = enqueued_;
  while (completed_ < target) cv_.wait(lock);
}

double Stream::busy_seconds() const {
  LockGuard lock(mu_);
  return busy_seconds_;
}

void Stream::loop() {
  // Name this thread's trace track after the stream ("stream:copy0", ...):
  // transfers and kernels then render as separate lanes, like Figure 1.
  SALIENT_TRACE_THREAD_NAME("stream:" + name_);
  for (;;) {
    WorkItem item;
    {
      UniqueLock lock(mu_);
      while (!stop_ && work_.empty()) cv_.wait(lock);
      if (work_.empty()) return;  // stop requested and queue drained
      item = std::move(work_.front());
      work_.pop_front();
    }
    WallTimer t;
    // `stream.wedge` injects a scripted stall before the item runs (a slow
    // kernel / a saturated copy engine); downstream code must tolerate the
    // delay through its bounded queues, never by losing work.
    SALIENT_FAILPOINT_WEDGE("stream.wedge");
    {
      obs::TraceSpan span(item.label);  // inactive when label is null
      // A throwing work item (e.g. DmaError after exhausted retries) must
      // not tear down the stream thread — the stream marks the error and
      // keeps executing, so events recorded after the faulty item still
      // fire and the pipeline drains instead of deadlocking. CUDA behaves
      // the same way: a failed kernel poisons results, not the stream.
      try {
        item.fn();
      } catch (const std::exception& e) {
        static obs::Counter& m_errors =
            obs::Registry::global().counter("stream.work_errors");
        m_errors.add();
        SALIENT_TRACE_INSTANT("stream.work_error");
        (void)e;
      }
    }
    {
      LockGuard lock(mu_);
      busy_seconds_ += t.seconds();
      ++completed_;
    }
    cv_.notify_all();
  }
}

}  // namespace salient
