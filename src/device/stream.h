// Execution streams for the simulated device.
//
// A Stream is a dedicated thread that executes enqueued work strictly in
// FIFO order — the semantics of a CUDA stream. The device simulator gives
// each device two streams (compute + copy), which is exactly the structure
// SALIENT uses to overlap data transfer with training computation (§4.3):
// "SALIENT uses separate GPU streams for computation and data transfer,
// synchronizing those streams to ensure a training iteration begins after
// the necessary data is transferred."
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "util/thread_annotations.h"

namespace salient {

/// A one-shot synchronization point recorded on a stream (cudaEvent
/// analogue). Copyable value type; all copies share state.
class Event {
 public:
  Event();

  /// True once the recording stream executed past the record point.
  bool query() const;
  /// Block the calling (host) thread until the event completed.
  void synchronize() const;

 private:
  friend class Stream;
  struct State {
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
  };
  void signal() const;
  std::shared_ptr<State> state_;
};

class Stream {
 public:
  explicit Stream(std::string name);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueue work; returns immediately. Work items run in FIFO order.
  /// `label`, when non-null, must be a string with static storage duration
  /// (a literal); the stream thread then records a trace span with that name
  /// around the item's execution, so the work shows up on the stream's track
  /// in a captured Chrome trace (see src/obs/trace.h). Unlabelled items
  /// (event signals, internal waits) are not traced.
  void enqueue(std::function<void()> fn, const char* label = nullptr);

  /// Record an event that completes when all previously enqueued work ran.
  Event record();

  /// Make this stream wait (without blocking the host) until `e` completes
  /// before running subsequently enqueued work (cudaStreamWaitEvent).
  void wait(Event e);

  /// Block the host thread until everything enqueued so far has run.
  void synchronize();

  const std::string& name() const { return name_; }
  /// Total busy seconds (time spent executing work items).
  double busy_seconds() const;

 private:
  void loop();

  struct WorkItem {
    std::function<void()> fn;
    const char* label = nullptr;  // static string; traced when non-null
  };

  std::string name_;  // unguarded: immutable after construction
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<WorkItem> work_ GUARDED_BY(mu_);
  std::uint64_t enqueued_ GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ GUARDED_BY(mu_) = 0;
  double busy_seconds_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread thread_;  // unguarded: set in ctor, joined in dtor only

};

}  // namespace salient
