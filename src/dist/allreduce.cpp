#include "dist/allreduce.h"

#include <stdexcept>

namespace salient {

RingAllreduce::RingAllreduce(int world_size)
    : world_size_(world_size),
      barrier_(world_size),
      buffers_(static_cast<std::size_t>(world_size)) {
  if (world_size < 1) throw std::invalid_argument("RingAllreduce: world size");
}

void RingAllreduce::run(int rank, std::span<float> buffer) {
  if (rank < 0 || rank >= world_size_) {
    throw std::out_of_range("RingAllreduce: rank");
  }
  if (world_size_ == 1) return;
  buffers_[static_cast<std::size_t>(rank)] = buffer;
  barrier_.arrive_and_wait();  // all buffers registered
  if (buffer.size() != buffers_[0].size()) {
    throw std::invalid_argument("RingAllreduce: buffer length mismatch");
  }

  const std::size_t n = buffer.size();
  const auto r = static_cast<std::size_t>(world_size_);
  // Chunk boundaries: chunk c covers [c*n/R, (c+1)*n/R).
  auto chunk_begin = [&](std::size_t c) { return c * n / r; };

  // Phase 1: scatter-reduce. In step s, rank k adds its chunk
  // (k - s - 1 mod R) into the next rank's buffer... equivalently each rank
  // reduces into the chunk it will own. With shared memory we express it as:
  // rank k accumulates chunk (k + 1 + s) from its ring predecessor into its
  // own buffer, stepping the barrier between rounds so reads and writes of
  // the same chunk never race.
  const auto rank_u = static_cast<std::size_t>(rank);
  for (std::size_t s = 0; s < r - 1; ++s) {
    // In step s rank k "receives" chunk (k - s - 1) mod R: it pulls the
    // partial sum of that chunk from its ring predecessor and adds it into
    // its own buffer. Per-step barriers keep reads and writes of any chunk
    // in different rounds, so no copy buffer is needed.
    const std::size_t c = (rank_u + 2 * r - s - 1) % r;
    const std::size_t prev = (rank_u + r - 1) % r;
    const std::size_t b = chunk_begin(c), e = chunk_begin(c + 1);
    const std::span<float> src = buffers_[prev];
    for (std::size_t i = b; i < e; ++i) buffer[i] += src[i];
    barrier_.arrive_and_wait();
  }
  // After R-1 rounds, rank k holds the fully reduced chunk (k + 1) mod R.
  // Phase 2: all-gather — propagate the reduced chunks around the ring.
  for (std::size_t s = 0; s < r - 1; ++s) {
    const std::size_t c = (rank_u + 1 + r - s) % r;
    const std::size_t next = (rank_u + 1) % r;
    const std::size_t b = chunk_begin(c), e = chunk_begin(c + 1);
    const std::span<float> dst = buffers_[next];
    for (std::size_t i = b; i < e; ++i) dst[i] = buffer[i];
    barrier_.arrive_and_wait();
  }
  // Average.
  const float inv = 1.0f / static_cast<float>(world_size_);
  for (std::size_t i = 0; i < n; ++i) buffer[i] *= inv;
  barrier_.arrive_and_wait();
}

}  // namespace salient
