// Ring all-reduce over in-process replicas.
//
// Stands in for the NCCL all-reduce that PyTorch DDP issues after backward:
// given R replicas' gradient buffers (same length), every buffer ends up
// holding the elementwise mean. The implementation is the classic two-phase
// ring (R-1 scatter-reduce steps, then R-1 all-gather steps) with barrier
// synchronization between steps, executed by the replicas' own threads —
// the same communication structure the paper's multi-GPU runs rely on.
#pragma once

#include <barrier>
#include <cstddef>
#include <span>
#include <vector>

namespace salient {

/// Coordination object shared by the R participating threads. Create one per
/// replica group, then have each replica thread call `run(rank, buffer)`
/// with its gradient buffer; all buffers must have equal length.
class RingAllreduce {
 public:
  explicit RingAllreduce(int world_size);

  /// Collective call: blocks until all ranks arrived and the reduction
  /// completed. After return, `buffer` holds the elementwise mean across
  /// ranks. Must be called by exactly `world_size` distinct ranks.
  void run(int rank, std::span<float> buffer);

 private:
  int world_size_;
  std::barrier<> barrier_;
  std::vector<std::span<float>> buffers_;
};

}  // namespace salient
