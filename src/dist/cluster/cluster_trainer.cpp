#include "dist/cluster/cluster_trainer.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstring>
#include <exception>
#include <thread>

#include "dist/allreduce.h"
#include "fault/failpoint.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prep/slicing.h"
#include "sampling/distributed.h"
#include "sampling/fast_sampler.h"
#include "tensor/ops.h"
#include "util/half.h"
#include "util/timer.h"

namespace salient::dist {

namespace {

/// One node's in-flight state for the current global step. Written by the
/// owning node thread in phases A/C; read (and its staging filled) by the
/// rank-0 thread in the serial network phase B — the barriers between the
/// phases are the synchronization.
struct StepState {
  std::int64_t rows = 0;      ///< this node's chunk of the global batch
  double loss_weight = 0;     ///< rows / global batch rows
  double loss = 0;            ///< this node's mean chunk loss
  Mfg mfg;
  RemotePlan rp;
  Tensor x;                   ///< [num_input, F] f32, assembled per source
  Tensor y;                   ///< [rows] i64 labels
  std::vector<Half> stage;    ///< fetched remote rows, wire precision (f16)
};

}  // namespace

ClusterTrainer::ClusterTrainer(const Dataset& dataset, ClusterConfig config)
    : dataset_(dataset),
      config_(std::move(config)),
      partition_(build_cluster_partition(dataset.graph, config_.partition)),
      net_(config_.partition.num_nodes, config_.net) {
  if (config_.batch_size < 1) {
    throw std::invalid_argument("cluster: batch_size must be >= 1");
  }
  // The caches must estimate the trainer's own workload: same fanouts,
  // global batch size and seed family, whatever the caller put in `cache`.
  config_.cache.fanouts = config_.fanouts;
  config_.cache.batch_size = config_.batch_size;
  config_.cache.seed = config_.seed;

  const int world = config_.partition.num_nodes;
  node_clock_.assign(static_cast<std::size_t>(world), 0.0);
  for (int p = 0; p < world; ++p) {
    // Identical model seed => identical initial parameters on every node.
    models_.push_back(nn::make_model(config_.arch, config_.model));
    optimizers_.push_back(std::make_unique<optim::Adam>(
        models_.back()->parameters(), config_.lr));
    caches_.push_back(std::make_unique<RemoteFeatureCache>(
        dataset_, partition_, p, config_.cache));
  }
}

ClusterEpochResult ClusterTrainer::train_epoch(int epoch) {
  const int world = num_nodes();
  const auto worldz = static_cast<std::size_t>(world);
  static obs::Counter& m_node_retries =
      obs::Registry::global().counter("dist.node.retries");
  static obs::Counter& m_stragglers =
      obs::Registry::global().counter("dist.node.stragglers");

  ClusterEpochResult result;
  result.epoch = epoch;
  WallTimer wall;

  // Same epoch-seed derivation and shuffle as the single-node trainer
  // (train/trainer.cpp + prep/salient_loader.cpp) — the parity anchor.
  const std::uint64_t epoch_seed =
      config_.seed * 0x10001ull + static_cast<std::uint64_t>(epoch) + 1;
  std::vector<NodeId> order = dataset_.train_idx;
  schedule_shuffle(order, epoch_seed);
  const auto total = static_cast<std::int64_t>(order.size());
  const std::int64_t batch = config_.batch_size;
  const std::int64_t num_steps = (total + batch - 1) / batch;
  if (num_steps == 0) {
    throw std::invalid_argument("cluster: dataset has no training nodes");
  }

  const std::size_t bytes0 = net_.bytes_on_wire();
  const std::int64_t msgs0 = net_.messages();
  const std::int64_t retr0 = net_.retries();
  const double sim0 =
      *std::max_element(node_clock_.begin(), node_clock_.end());

  const std::int64_t feat_dim = dataset_.feature_dim;
  const Half* feat = dataset_.features.data<Half>();
  std::size_t param_count = 0;
  for (const auto& p : models_[0]->parameters()) {
    param_count += static_cast<std::size_t>(p.data().numel());
  }

  RingAllreduce allreduce(world);
  std::barrier<> bar(world);
  std::vector<StepState> st(worldz);
  std::vector<std::exception_ptr> errors(worldz);
  std::atomic<bool> abort{false};
  std::atomic<std::int64_t> node_retries{0};
  std::vector<double> node_secs(worldz, 0.0);
  double loss_sum = 0;

  auto node_body = [&](int rank) {
    const auto rankz = static_cast<std::size_t>(rank);
    auto& model = *models_[rankz];
    auto& opt = *optimizers_[rankz];
    model.train(true);
    FastSampler sampler(dataset_.graph, config_.fanouts);
    auto params = model.parameters();
    const RemoteFeatureCache& rcache = *caches_[rankz];

    for (std::int64_t b = 0; b < num_steps; ++b) {
      WallTimer t;
      StepState& s = st[rankz];
      const std::int64_t lo = b * batch;
      const std::int64_t hi = std::min(total, lo + batch);
      const std::int64_t global_rows = hi - lo;
      const ChunkRange chunk = chunk_range(global_rows, world, rank);

      // -- Phase A: sample + plan + local/cached feature assembly. A fired
      // `dist.node.fail` discards the attempt's work (the simulated node
      // crash) and redoes it — resampling is deterministic, so recovery is
      // lossless. The retry budget is bounded; exhaustion aborts the epoch.
      bool ok = false;
      for (int attempt = 0; attempt <= config_.max_step_retries && !ok;
           ++attempt) {
        SALIENT_FAILPOINT_WEDGE("dist.node.slow");
        s = StepState{};
        s.rows = chunk.size();
        s.loss_weight = static_cast<double>(s.rows) /
                        static_cast<double>(global_rows);
        if (s.rows > 0) {
          s.mfg = sampler.sample(
              {order.data() + lo + chunk.begin,
               static_cast<std::size_t>(chunk.size())},
              schedule_mix_seed(epoch_seed, b * world + rank));
          s.rp = rcache.plan(s.mfg);
          const std::int64_t in = s.mfg.num_input_nodes();
          s.x = Tensor({in, feat_dim}, DType::kF32);
          float* xd = s.x.data<float>();
          // Cache hits are already device precision (f32).
          const FeatureCache& cache = rcache.cache();
          const float* hit_src =
              cache.dynamic_policy()
                  ? (s.rp.plan.hit_rows.numel() > 0
                         ? s.rp.plan.hit_rows.data<float>()
                         : nullptr)
                  : (cache.capacity() > 0 ? cache.features().data<float>()
                                          : nullptr);
          for (std::size_t i = 0; i < s.rp.plan.from_cache.size(); ++i) {
            if (!s.rp.plan.from_cache[i]) continue;
            std::memcpy(
                xd + static_cast<std::int64_t>(i) * feat_dim,
                hit_src + s.rp.plan.source[i] * feat_dim,
                static_cast<std::size_t>(feat_dim) * sizeof(float));
          }
          // Locally-owned rows: sliced from this node's feature shard and
          // converted f16->f32 per row (elementwise, so bitwise identical
          // to the single-node whole-matrix conversion).
          for (const std::int64_t i : s.rp.local_rows) {
            half_to_float_n(
                feat + s.mfg.n_ids[static_cast<std::size_t>(i)] * feat_dim,
                xd + i * feat_dim, feat_dim);
          }
          s.y = Tensor({s.mfg.batch_size}, DType::kI64);
          slice_labels(dataset_.labels,
                       {s.mfg.n_ids.data(),
                        static_cast<std::size_t>(s.mfg.batch_size)},
                       s.y);
          std::int64_t fetch_rows = 0;
          for (const auto& f : s.rp.fetches) {
            fetch_rows += static_cast<std::int64_t>(f.rows.size());
          }
          s.stage.resize(static_cast<std::size_t>(fetch_rows * feat_dim));
        }
        if (SALIENT_FAILPOINT("dist.node.fail")) {
          node_retries.fetch_add(1, std::memory_order_relaxed);
          m_node_retries.add();
          continue;
        }
        ok = true;
      }
      if (!ok) {
        errors[rankz] = std::make_exception_ptr(ClusterError(
            "cluster: node " + std::to_string(rank) + " failed step " +
            std::to_string(b) + " after " +
            std::to_string(config_.max_step_retries) + " retries"));
      }
      node_secs[rankz] += t.seconds();
      bar.arrive_and_wait();

      // -- Phase B: rank 0 serially moves every node's remote-miss rows
      // over the modelled interconnect in (destination, owner) order, so
      // the simulated clocks are deterministic regardless of thread
      // scheduling. Payloads travel in wire precision (f16).
      if (rank == 0) {
        for (const auto& e : errors) {
          if (e) abort.store(true, std::memory_order_relaxed);
        }
        if (!abort.load(std::memory_order_relaxed)) {
          try {
            std::vector<Half> scratch;
            for (int p = 0; p < world; ++p) {
              StepState& sp = st[static_cast<std::size_t>(p)];
              std::int64_t off = 0;
              for (const auto& f : sp.rp.fetches) {
                const auto rows = static_cast<std::int64_t>(f.rows.size());
                scratch.resize(static_cast<std::size_t>(rows * feat_dim));
                for (std::int64_t k = 0; k < rows; ++k) {
                  std::memcpy(
                      scratch.data() + k * feat_dim,
                      feat + sp.mfg.n_ids[static_cast<std::size_t>(
                                 f.rows[static_cast<std::size_t>(k)])] *
                                 feat_dim,
                      static_cast<std::size_t>(feat_dim) * sizeof(Half));
                }
                const std::size_t nb =
                    static_cast<std::size_t>(rows * feat_dim) * sizeof(Half);
                node_clock_[static_cast<std::size_t>(p)] = net_.transfer(
                    f.owner, p, scratch.data(),
                    sp.stage.data() + off * feat_dim, nb,
                    node_clock_[static_cast<std::size_t>(p)]);
                off += rows;
                result.remote_rows_fetched += rows;
                result.remote_feature_bytes += nb;
              }
              result.remote_hits += sp.rp.remote_hits;
              result.remote_misses += sp.rp.remote_misses;
            }
          } catch (...) {
            errors[0] = std::current_exception();
            abort.store(true, std::memory_order_relaxed);
          }
        }
      }
      bar.arrive_and_wait();
      if (abort.load(std::memory_order_relaxed)) break;

      // -- Phase C: convert the fetched rows, train on the chunk, average
      // gradients across nodes (weighted so the global update equals the
      // gradient of the whole batch's mean loss), and step.
      t.reset();
      {
        std::int64_t off = 0;
        float* xd = s.rows > 0 ? s.x.data<float>() : nullptr;
        for (const auto& f : s.rp.fetches) {
          for (const std::int64_t i : f.rows) {
            half_to_float_n(s.stage.data() + off * feat_dim,
                            xd + i * feat_dim, feat_dim);
            ++off;
          }
        }
      }
      double loss = 0;
      if (s.rows > 0) {
        Variable x(s.x, /*requires_grad=*/false);
        Variable logp = model.forward(x, s.mfg);
        Variable l = nn::nll_loss(logp, s.y);
        model.zero_grad();
        l.backward();
        loss = static_cast<double>(l.data().data<float>()[0]);
      } else {
        model.zero_grad();  // zero contribution to the averaged gradient
      }
      s.loss = loss;
      if (world > 1) {
        // Weight so the all-reduce *mean* equals the global-batch gradient:
        // sum_p (rows_p/B) * grad_p = (1/world) * sum_p flat_p.
        const auto scale = static_cast<float>(
            static_cast<double>(s.rows) * static_cast<double>(world) /
            static_cast<double>(global_rows));
        std::size_t flat_size = 0;
        for (const auto& p : params) {
          flat_size += static_cast<std::size_t>(p.data().numel());
        }
        std::vector<float> flat(flat_size, 0.0f);
        std::size_t off = 0;
        for (const auto& p : params) {
          const auto n = static_cast<std::size_t>(p.data().numel());
          if (p.grad().defined()) {
            const float* g = p.grad().data<float>();
            for (std::size_t i = 0; i < n; ++i) flat[off + i] = g[i] * scale;
          }
          off += n;
        }
        allreduce.run(rank, flat);
        off = 0;
        for (auto& p : params) {
          const auto n = static_cast<std::size_t>(p.data().numel());
          Tensor g(p.data().shape(), DType::kF32);
          std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
                    flat.begin() + static_cast<std::ptrdiff_t>(off + n),
                    g.data<float>());
          p.zero_grad();
          p.accumulate_grad(g);
          off += n;
        }
      }
      opt.step();
      node_secs[rankz] += t.seconds();
      bar.arrive_and_wait();

      // -- Step accounting (rank 0): batch-weighted loss, plus one ring
      // all-reduce pass charged to the simulated network.
      if (rank == 0) {
        double step_loss = 0;
        for (const StepState& sp : st) {
          step_loss += sp.loss_weight * sp.loss;
        }
        loss_sum += step_loss;
        if (world > 1) {
          const double begin =
              *std::max_element(node_clock_.begin(), node_clock_.end());
          const double end =
              net_.allreduce_time(param_count * sizeof(float), begin);
          std::fill(node_clock_.begin(), node_clock_.end(), end);
        }
      }
      bar.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(worldz);
  for (int p = 0; p < world; ++p) threads.emplace_back(node_body, p);
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  result.wall_seconds = wall.seconds();
  result.num_steps = num_steps;
  result.mean_loss = loss_sum / static_cast<double>(num_steps);
  result.node_retries = node_retries.load();
  result.wire_bytes = net_.bytes_on_wire() - bytes0;
  result.net_messages = net_.messages() - msgs0;
  result.net_retries = net_.retries() - retr0;
  result.sim_net_seconds =
      *std::max_element(node_clock_.begin(), node_clock_.end()) - sim0;
  result.node_seconds = node_secs;

  // Epoch-level straggler detection: relative to the median node, with an
  // absolute floor so tiny runs on a loaded host are not misflagged.
  // Lower-middle median: with an even node count the upper-middle element
  // can be the straggler itself (e.g. 2 nodes), which would mask it.
  std::vector<double> sorted = node_secs;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[(sorted.size() - 1) / 2];
  for (int p = 0; p < world; ++p) {
    const double secs = node_secs[static_cast<std::size_t>(p)];
    if (secs > config_.straggler_factor * median &&
        secs > config_.straggler_min_seconds) {
      result.stragglers.push_back(p);
    }
  }
  m_stragglers.add(static_cast<std::int64_t>(result.stragglers.size()));
  return result;
}

bool ClusterTrainer::replicas_in_sync() const {
  if (models_.size() < 2) return true;
  const auto ref = models_[0]->parameters();
  for (std::size_t r = 1; r < models_.size(); ++r) {
    const auto params = models_[r]->parameters();
    if (params.size() != ref.size()) return false;
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!allclose(params[i].data(), ref[i].data(), 0.0, 0.0)) return false;
    }
  }
  return true;
}

}  // namespace salient::dist
