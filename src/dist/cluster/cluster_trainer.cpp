#include "dist/cluster/cluster_trainer.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstring>
#include <exception>
#include <thread>

#include "dist/allreduce.h"
#include "fault/failpoint.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prep/slicing.h"
#include "sampling/distributed.h"
#include "sampling/fast_sampler.h"
#include "tensor/ops.h"
#include "util/half.h"
#include "util/timer.h"

namespace salient::dist {

namespace {

/// One node's in-flight state for one global batch. Written by the owning
/// node thread when the batch is prepared and trained; read (and its staging
/// buffer targeted by posted fetches) by the rank-0 thread in the serialized
/// network phase — the step barriers are the synchronization.
struct StepState {
  std::int64_t rows = 0;      ///< this node's chunk of the global batch
  double loss_weight = 0;     ///< rows / global batch rows
  double loss = 0;            ///< this node's mean chunk loss
  double train_sim = 0;       ///< modelled compute seconds of this chunk
  Mfg mfg;
  RemotePlan rp;
  Tensor x;                   ///< [num_input, F] f32, assembled per source
  Tensor y;                   ///< [rows] i64 labels
  std::vector<Half> stage;    ///< fetched remote rows, wire precision (f16)

  // Pipelined bookkeeping (idle on the bulk-synchronous path):
  std::int64_t batch_index = -1;   ///< global batch this ring slot holds
  std::vector<FetchId> fetch_ids;  ///< posted fetches not yet waited on
  double issue = 0;                ///< sim time the fetches were posted
  double ready = 0;                ///< sim time the last fetch completes
};

/// Phase-A work for one (node, batch) chunk: sample, plan against the remote
/// cache, assemble the f32 input matrix from cache hits and locally-owned
/// rows, slice labels, and size the staging buffer for the remote fetches.
/// The assembly order is fixed, so every step protocol produces identical
/// bits for identical (seed, chunk).
void prepare_chunk(StepState& s, const Dataset& dataset, const Half* feat,
                   std::int64_t feat_dim, FastSampler& sampler,
                   const RemoteFeatureCache& rcache,
                   const std::vector<NodeId>& order, std::int64_t lo,
                   const ChunkRange& chunk, std::int64_t global_rows,
                   std::uint64_t sample_seed, double train_us_per_row) {
  s.rows = chunk.size();
  s.loss_weight =
      static_cast<double>(s.rows) / static_cast<double>(global_rows);
  if (s.rows <= 0) return;
  s.mfg = sampler.sample(
      {order.data() + lo + chunk.begin, static_cast<std::size_t>(chunk.size())},
      sample_seed);
  s.rp = rcache.plan(s.mfg);
  const std::int64_t in = s.mfg.num_input_nodes();
  s.train_sim = train_us_per_row * 1e-6 * static_cast<double>(in);
  s.x = Tensor({in, feat_dim}, DType::kF32);
  float* xd = s.x.data<float>();
  // Cache hits are already device precision (f32).
  const FeatureCache& cache = rcache.cache();
  const float* hit_src =
      cache.dynamic_policy()
          ? (s.rp.plan.hit_rows.numel() > 0 ? s.rp.plan.hit_rows.data<float>()
                                            : nullptr)
          : (cache.capacity() > 0 ? cache.features().data<float>() : nullptr);
  for (std::size_t i = 0; i < s.rp.plan.from_cache.size(); ++i) {
    if (!s.rp.plan.from_cache[i]) continue;
    std::memcpy(xd + static_cast<std::int64_t>(i) * feat_dim,
                hit_src + s.rp.plan.source[i] * feat_dim,
                static_cast<std::size_t>(feat_dim) * sizeof(float));
  }
  // Locally-owned rows: sliced from this node's feature shard and converted
  // f16->f32 per row (elementwise, so bitwise identical to the single-node
  // whole-matrix conversion).
  for (const std::int64_t i : s.rp.local_rows) {
    half_to_float_n(feat + s.mfg.n_ids[static_cast<std::size_t>(i)] * feat_dim,
                    xd + i * feat_dim, feat_dim);
  }
  s.y = Tensor({s.mfg.batch_size}, DType::kI64);
  slice_labels(
      dataset.labels,
      {s.mfg.n_ids.data(), static_cast<std::size_t>(s.mfg.batch_size)}, s.y);
  std::int64_t fetch_rows = 0;
  for (const auto& f : s.rp.fetches) {
    fetch_rows += static_cast<std::int64_t>(f.rows.size());
  }
  s.stage.resize(static_cast<std::size_t>(fetch_rows * feat_dim));
}

/// Convert a chunk's fetched remote rows (f16 staging, committed by the
/// interconnect) into the f32 input matrix, in fetch order.
void convert_fetched_rows(StepState& s, std::int64_t feat_dim) {
  std::int64_t off = 0;
  float* xd = s.rows > 0 ? s.x.data<float>() : nullptr;
  for (const auto& f : s.rp.fetches) {
    for (const std::int64_t i : f.rows) {
      half_to_float_n(s.stage.data() + off * feat_dim, xd + i * feat_dim,
                      feat_dim);
      ++off;
    }
  }
}

/// Phase-C training math for one chunk: forward/backward, weighted gradient
/// all-reduce (so the mean update equals the global-batch gradient), and the
/// optimizer step. Identical between step protocols — this is what makes
/// losses bitwise depth-invariant.
void train_chunk(StepState& s, nn::GnnModel& model,
                 std::vector<Variable>& params, optim::Adam& opt,
                 RingAllreduce& allreduce, int rank, int world,
                 std::int64_t global_rows) {
  double loss = 0;
  if (s.rows > 0) {
    Variable x(s.x, /*requires_grad=*/false);
    Variable logp = model.forward(x, s.mfg);
    Variable l = nn::nll_loss(logp, s.y);
    model.zero_grad();
    l.backward();
    loss = static_cast<double>(l.data().data<float>()[0]);
  } else {
    model.zero_grad();  // zero contribution to the averaged gradient
  }
  s.loss = loss;
  if (world > 1) {
    // Weight so the all-reduce *mean* equals the global-batch gradient:
    // sum_p (rows_p/B) * grad_p = (1/world) * sum_p flat_p.
    const auto scale =
        static_cast<float>(static_cast<double>(s.rows) *
                           static_cast<double>(world) /
                           static_cast<double>(global_rows));
    std::size_t flat_size = 0;
    for (const auto& p : params) {
      flat_size += static_cast<std::size_t>(p.data().numel());
    }
    std::vector<float> flat(flat_size, 0.0f);
    std::size_t off = 0;
    for (const auto& p : params) {
      const auto n = static_cast<std::size_t>(p.data().numel());
      if (p.grad().defined()) {
        const float* g = p.grad().data<float>();
        for (std::size_t i = 0; i < n; ++i) flat[off + i] = g[i] * scale;
      }
      off += n;
    }
    allreduce.run(rank, flat);
    off = 0;
    for (auto& p : params) {
      const auto n = static_cast<std::size_t>(p.data().numel());
      Tensor g(p.data().shape(), DType::kF32);
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
                flat.begin() + static_cast<std::ptrdiff_t>(off + n),
                g.data<float>());
      p.zero_grad();
      p.accumulate_grad(g);
      off += n;
    }
  }
  opt.step();
}

/// Epoch-level straggler detection: relative to the median node, with an
/// absolute floor so tiny runs on a loaded host are not misflagged.
/// Lower-middle median: with an even node count the upper-middle element can
/// be the straggler itself (e.g. 2 nodes), which would mask it.
void flag_stragglers(const ClusterConfig& config,
                     const std::vector<double>& node_secs,
                     ClusterEpochResult& result) {
  static obs::Counter& m_stragglers =
      obs::Registry::global().counter("dist.node.stragglers");
  std::vector<double> sorted = node_secs;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[(sorted.size() - 1) / 2];
  for (std::size_t p = 0; p < node_secs.size(); ++p) {
    if (node_secs[p] > config.straggler_factor * median &&
        node_secs[p] > config.straggler_min_seconds) {
      result.stragglers.push_back(static_cast<int>(p));
    }
  }
  m_stragglers.add(static_cast<std::int64_t>(result.stragglers.size()));
}

}  // namespace

ClusterTrainer::ClusterTrainer(const Dataset& dataset, ClusterConfig config)
    : dataset_(dataset),
      config_(std::move(config)),
      partition_(build_cluster_partition(dataset.graph, config_.partition)),
      net_(config_.partition.num_nodes, config_.net) {
  if (config_.batch_size < 1) {
    throw std::invalid_argument("cluster: batch_size must be >= 1");
  }
  if (config_.pipeline_depth < 0) {
    throw std::invalid_argument("cluster: pipeline_depth must be >= 0");
  }
  if (config_.sim_train_us_per_input_row < 0) {
    throw std::invalid_argument(
        "cluster: sim_train_us_per_input_row must be >= 0");
  }
  // The caches must estimate the trainer's own workload: same fanouts,
  // global batch size and seed family, whatever the caller put in `cache`.
  config_.cache.fanouts = config_.fanouts;
  config_.cache.batch_size = config_.batch_size;
  config_.cache.seed = config_.seed;

  const int world = config_.partition.num_nodes;
  node_clock_.assign(static_cast<std::size_t>(world), 0.0);
  for (int p = 0; p < world; ++p) {
    // Identical model seed => identical initial parameters on every node.
    models_.push_back(nn::make_model(config_.arch, config_.model));
    optimizers_.push_back(std::make_unique<optim::Adam>(
        models_.back()->parameters(), config_.lr));
    caches_.push_back(std::make_unique<RemoteFeatureCache>(
        dataset_, partition_, p, config_.cache));
  }
}

void ClusterTrainer::set_timeline(sim::Timeline* timeline) {
  timeline_ = timeline;
  net_.set_timeline(timeline);
}

ClusterEpochResult ClusterTrainer::train_epoch(int epoch) {
  static obs::Gauge& m_depth =
      obs::Registry::global().gauge("dist.pipeline.depth");
  m_depth.set(static_cast<double>(config_.pipeline_depth));
  if (config_.pipeline_depth == 0) return train_epoch_bulk(epoch);
  return train_epoch_pipelined(epoch);
}

ClusterEpochResult ClusterTrainer::train_epoch_bulk(int epoch) {
  const int world = num_nodes();
  const auto worldz = static_cast<std::size_t>(world);
  static obs::Counter& m_node_retries =
      obs::Registry::global().counter("dist.node.retries");

  ClusterEpochResult result;
  result.epoch = epoch;
  result.pipeline_depth = 0;
  WallTimer wall;

  // Same epoch-seed derivation and shuffle as the single-node trainer
  // (train/trainer.cpp + prep/salient_loader.cpp) — the parity anchor.
  const std::uint64_t epoch_seed =
      config_.seed * 0x10001ull + static_cast<std::uint64_t>(epoch) + 1;
  std::vector<NodeId> order = dataset_.train_idx;
  schedule_shuffle(order, epoch_seed);
  const auto total = static_cast<std::int64_t>(order.size());
  const std::int64_t batch = config_.batch_size;
  const std::int64_t num_steps = (total + batch - 1) / batch;
  if (num_steps == 0) {
    throw std::invalid_argument("cluster: dataset has no training nodes");
  }

  const std::size_t bytes0 = net_.bytes_on_wire();
  const std::int64_t msgs0 = net_.messages();
  const std::int64_t retr0 = net_.retries();
  const double busy0 = net_.busy_seconds();
  const double sim0 =
      *std::max_element(node_clock_.begin(), node_clock_.end());

  const std::int64_t feat_dim = dataset_.feature_dim;
  const Half* feat = dataset_.features.data<Half>();
  std::size_t param_count = 0;
  for (const auto& p : models_[0]->parameters()) {
    param_count += static_cast<std::size_t>(p.data().numel());
  }

  RingAllreduce allreduce(world);
  std::barrier<> bar(world);
  std::vector<StepState> st(worldz);
  std::vector<std::exception_ptr> errors(worldz);
  std::atomic<bool> abort{false};
  std::atomic<std::int64_t> node_retries{0};
  std::vector<double> node_secs(worldz, 0.0);
  double loss_sum = 0;

  auto node_body = [&](int rank) {
    const auto rankz = static_cast<std::size_t>(rank);
    auto& model = *models_[rankz];
    auto& opt = *optimizers_[rankz];
    model.train(true);
    FastSampler sampler(dataset_.graph, config_.fanouts);
    auto params = model.parameters();
    const RemoteFeatureCache& rcache = *caches_[rankz];

    for (std::int64_t b = 0; b < num_steps; ++b) {
      WallTimer t;
      StepState& s = st[rankz];
      const std::int64_t lo = b * batch;
      const std::int64_t hi = std::min(total, lo + batch);
      const std::int64_t global_rows = hi - lo;
      const ChunkRange chunk = chunk_range(global_rows, world, rank);

      // -- Phase A: sample + plan + local/cached feature assembly. A fired
      // `dist.node.fail` discards the attempt's work (the simulated node
      // crash) and redoes it — resampling is deterministic, so recovery is
      // lossless. The retry budget is bounded; exhaustion aborts the epoch.
      bool ok = false;
      for (int attempt = 0; attempt <= config_.max_step_retries && !ok;
           ++attempt) {
        SALIENT_FAILPOINT_WEDGE("dist.node.slow");
        s = StepState{};
        prepare_chunk(s, dataset_, feat, feat_dim, sampler, rcache, order, lo,
                      chunk, global_rows,
                      schedule_mix_seed(epoch_seed, b * world + rank),
                      config_.sim_train_us_per_input_row);
        if (SALIENT_FAILPOINT("dist.node.fail")) {
          node_retries.fetch_add(1, std::memory_order_relaxed);
          m_node_retries.add();
          continue;
        }
        ok = true;
      }
      if (!ok) {
        errors[rankz] = std::make_exception_ptr(ClusterError(
            "cluster: node " + std::to_string(rank) + " failed step " +
            std::to_string(b) + " after " +
            std::to_string(config_.max_step_retries) + " retries"));
      }
      node_secs[rankz] += t.seconds();
      bar.arrive_and_wait();

      // -- Phase B: rank 0 serially moves every node's remote-miss rows
      // over the modelled interconnect in (destination, owner) order, so
      // the simulated clocks are deterministic regardless of thread
      // scheduling. Payloads travel in wire precision (f16).
      if (rank == 0) {
        for (const auto& e : errors) {
          if (e) abort.store(true, std::memory_order_relaxed);
        }
        if (!abort.load(std::memory_order_relaxed)) {
          try {
            std::vector<Half> scratch;
            for (int p = 0; p < world; ++p) {
              StepState& sp = st[static_cast<std::size_t>(p)];
              std::int64_t off = 0;
              for (const auto& f : sp.rp.fetches) {
                const auto rows = static_cast<std::int64_t>(f.rows.size());
                scratch.resize(static_cast<std::size_t>(rows * feat_dim));
                for (std::int64_t k = 0; k < rows; ++k) {
                  std::memcpy(
                      scratch.data() + k * feat_dim,
                      feat + sp.mfg.n_ids[static_cast<std::size_t>(
                                 f.rows[static_cast<std::size_t>(k)])] *
                                 feat_dim,
                      static_cast<std::size_t>(feat_dim) * sizeof(Half));
                }
                const std::size_t nb =
                    static_cast<std::size_t>(rows * feat_dim) * sizeof(Half);
                node_clock_[static_cast<std::size_t>(p)] = net_.transfer(
                    f.owner, p, scratch.data(),
                    sp.stage.data() + off * feat_dim, nb,
                    node_clock_[static_cast<std::size_t>(p)]);
                off += rows;
                result.remote_rows_fetched += rows;
                result.remote_feature_bytes += nb;
              }
              result.remote_hits += sp.rp.remote_hits;
              result.remote_misses += sp.rp.remote_misses;
            }
          } catch (...) {
            errors[0] = std::current_exception();
            abort.store(true, std::memory_order_relaxed);
          }
        }
      }
      bar.arrive_and_wait();
      if (abort.load(std::memory_order_relaxed)) break;

      // -- Phase C: convert the fetched rows, train on the chunk, average
      // gradients across nodes (weighted so the global update equals the
      // gradient of the whole batch's mean loss), and step.
      t.reset();
      convert_fetched_rows(s, feat_dim);
      train_chunk(s, model, params, opt, allreduce, rank, world, global_rows);
      node_secs[rankz] += t.seconds();
      bar.arrive_and_wait();

      // -- Step accounting (rank 0): batch-weighted loss, the modelled
      // compute cost of every chunk (serialized after its fetches — the
      // bulk-synchronous critical path), plus one ring all-reduce pass
      // charged to the simulated network.
      if (rank == 0) {
        double step_loss = 0;
        for (const StepState& sp : st) {
          step_loss += sp.loss_weight * sp.loss;
        }
        loss_sum += step_loss;
        for (int p = 0; p < world; ++p) {
          node_clock_[static_cast<std::size_t>(p)] +=
              st[static_cast<std::size_t>(p)].train_sim;
        }
        if (world > 1) {
          const double begin =
              *std::max_element(node_clock_.begin(), node_clock_.end());
          const double end =
              net_.allreduce_time(param_count * sizeof(float), begin);
          std::fill(node_clock_.begin(), node_clock_.end(), end);
        }
      }
      bar.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(worldz);
  for (int p = 0; p < world; ++p) threads.emplace_back(node_body, p);
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  result.wall_seconds = wall.seconds();
  result.num_steps = num_steps;
  result.mean_loss = loss_sum / static_cast<double>(num_steps);
  result.node_retries = node_retries.load(std::memory_order_relaxed);
  result.wire_bytes = net_.bytes_on_wire() - bytes0;
  result.net_messages = net_.messages() - msgs0;
  result.net_retries = net_.retries() - retr0;
  result.sim_net_seconds = net_.busy_seconds() - busy0;
  result.sim_epoch_seconds =
      *std::max_element(node_clock_.begin(), node_clock_.end()) - sim0;
  result.node_seconds = node_secs;
  flag_stragglers(config_, node_secs, result);
  return result;
}

ClusterEpochResult ClusterTrainer::train_epoch_pipelined(int epoch) {
  const int world = num_nodes();
  const auto worldz = static_cast<std::size_t>(world);
  const int depth = config_.pipeline_depth;
  const int slots = depth + 1;
  static obs::Counter& m_node_retries =
      obs::Registry::global().counter("dist.node.retries");
  static obs::Counter& m_stall_ms =
      obs::Registry::global().counter("dist.pipeline.stall_ms");
  static obs::Counter& m_overlap_ms =
      obs::Registry::global().counter("dist.net.overlap_saved_ms");

  ClusterEpochResult result;
  result.epoch = epoch;
  result.pipeline_depth = depth;
  WallTimer wall;

  const std::uint64_t epoch_seed =
      config_.seed * 0x10001ull + static_cast<std::uint64_t>(epoch) + 1;
  std::vector<NodeId> order = dataset_.train_idx;
  schedule_shuffle(order, epoch_seed);
  const auto total = static_cast<std::int64_t>(order.size());
  const std::int64_t batch = config_.batch_size;
  const std::int64_t num_steps = (total + batch - 1) / batch;
  if (num_steps == 0) {
    throw std::invalid_argument("cluster: dataset has no training nodes");
  }

  const std::size_t bytes0 = net_.bytes_on_wire();
  const std::int64_t msgs0 = net_.messages();
  const std::int64_t retr0 = net_.retries();
  const double busy0 = net_.busy_seconds();
  const double sim0 =
      *std::max_element(node_clock_.begin(), node_clock_.end());

  const std::int64_t feat_dim = dataset_.feature_dim;
  const Half* feat = dataset_.features.data<Half>();
  std::size_t param_count = 0;
  for (const auto& p : models_[0]->parameters()) {
    param_count += static_cast<std::size_t>(p.data().numel());
  }

  RingAllreduce allreduce(world);
  std::barrier<> bar(world);
  // The micro-pipeline: a ring of depth+1 in-flight batches per node. Batch
  // j lives in slot j % slots; by the time slot j % slots is reused (batch
  // j + depth + 1 prepared at step j + 1) batch j has finished training.
  std::vector<std::vector<StepState>> ring(worldz);
  for (auto& r : ring) r.resize(static_cast<std::size_t>(slots));
  std::vector<std::exception_ptr> errors(worldz);
  std::atomic<bool> abort{false};
  std::atomic<std::int64_t> node_retries{0};
  std::vector<double> node_secs(worldz, 0.0);
  double loss_sum = 0;

  // Virtual-clock bookkeeping, written only in the serialized rank-0
  // phases: the previous step's allreduce end (the earliest a node may
  // start anything new) and the current batch's compute start per node.
  std::vector<double> prev_ar_end = node_clock_;
  std::vector<double> compute_start(worldz, 0.0);
  double stall_sum = 0;
  double overlap_sum = 0;

  // Post batch j's remote fetches for every node in deterministic
  // (destination, owner) order, at per-node issue time `issue[p]`. Payload
  // rows are staged from the owner's shard and snapshotted by the
  // interconnect; completion events land in the batch's StepState.
  std::vector<Half> scratch;
  const auto post_batch = [&](std::int64_t j,
                              const std::vector<double>& issue) {
    for (int p = 0; p < world; ++p) {
      StepState& s =
          ring[static_cast<std::size_t>(p)][static_cast<std::size_t>(
              j % slots)];
      s.issue = issue[static_cast<std::size_t>(p)];
      s.ready = s.issue;
      std::int64_t off = 0;
      for (const auto& f : s.rp.fetches) {
        const auto rows = static_cast<std::int64_t>(f.rows.size());
        scratch.resize(static_cast<std::size_t>(rows * feat_dim));
        for (std::int64_t k = 0; k < rows; ++k) {
          std::memcpy(scratch.data() + k * feat_dim,
                      feat + s.mfg.n_ids[static_cast<std::size_t>(
                                 f.rows[static_cast<std::size_t>(k)])] *
                                 feat_dim,
                      static_cast<std::size_t>(feat_dim) * sizeof(Half));
        }
        const std::size_t nb =
            static_cast<std::size_t>(rows * feat_dim) * sizeof(Half);
        const PostedFetch posted =
            net_.post_fetch(f.owner, p, scratch.data(),
                            s.stage.data() + off * feat_dim, nb, s.issue);
        s.fetch_ids.push_back(posted.id);
        s.ready = std::max(s.ready, posted.completion);
        off += rows;
        result.remote_rows_fetched += rows;
        result.remote_feature_bytes += nb;
      }
      result.remote_hits += s.rp.remote_hits;
      result.remote_misses += s.rp.remote_misses;
    }
  };

  auto node_body = [&](int rank) {
    const auto rankz = static_cast<std::size_t>(rank);
    auto& model = *models_[rankz];
    auto& opt = *optimizers_[rankz];
    model.train(true);
    FastSampler sampler(dataset_.graph, config_.fanouts);
    auto params = model.parameters();
    const RemoteFeatureCache& rcache = *caches_[rankz];

    // Drain this node's posted-but-unwaited fetches so an aborted epoch
    // leaves no in-flight messages behind (their completions are already
    // modelled; waiting just commits or discards the payloads).
    const auto drain_in_flight = [&] {
      for (auto& s : ring[rankz]) {
        for (const FetchId id : s.fetch_ids) {
          try {
            net_.wait_fetch(id);
          } catch (...) {
            // Unknown-handle races cannot happen (handles are node-owned);
            // nothing else throws. Draining must never mask the root error.
          }
        }
        s.fetch_ids.clear();
      }
    };

    for (std::int64_t b = 0; b < num_steps; ++b) {
      WallTimer t;
      // Batches entering the window this step: the whole initial window
      // [0, depth] at step 0, then just batch b + depth.
      const ChunkRange admit = pipeline_admit_range(b, depth, num_steps);

      // -- Phase A: sample + plan + assemble every batch entering the
      // pipeline window, exactly one batch ahead of training in steady
      // state. `dist.node.fail` discards the attempt's freshly prepared
      // batches (the simulated node crash) and redoes them — no fetches
      // have been posted for them yet, so recovery is lossless.
      bool ok = false;
      for (int attempt = 0; attempt <= config_.max_step_retries && !ok;
           ++attempt) {
        SALIENT_FAILPOINT_WEDGE("dist.node.slow");
        for (std::int64_t j = admit.begin; j < admit.end; ++j) {
          StepState& s = ring[rankz][static_cast<std::size_t>(j % slots)];
          s = StepState{};
          s.batch_index = j;
          const std::int64_t lo = j * batch;
          const std::int64_t hi = std::min(total, lo + batch);
          const std::int64_t global_rows = hi - lo;
          const ChunkRange chunk = chunk_range(global_rows, world, rank);
          prepare_chunk(s, dataset_, feat, feat_dim, sampler, rcache, order,
                        lo, chunk, global_rows,
                        schedule_mix_seed(epoch_seed, j * world + rank),
                        config_.sim_train_us_per_input_row);
        }
        if (SALIENT_FAILPOINT("dist.node.fail")) {
          node_retries.fetch_add(1, std::memory_order_relaxed);
          m_node_retries.add();
          continue;
        }
        ok = true;
      }
      if (!ok) {
        errors[rankz] = std::make_exception_ptr(ClusterError(
            "cluster: node " + std::to_string(rank) + " failed step " +
            std::to_string(b) + " after " +
            std::to_string(config_.max_step_retries) + " retries"));
      }
      node_secs[rankz] += t.seconds();
      bar.arrive_and_wait();

      // -- Phase B (rank 0, serialized): advance the virtual clock. Batch
      // b's compute start is gated on its completion events; the entering
      // batches' fetches are posted at that compute start — on the wire
      // while batch b trains, which is the overlap this protocol exists
      // for. Posting order is deterministic (batch, destination, owner).
      if (rank == 0) {
        for (const auto& e : errors) {
          if (e) abort.store(true, std::memory_order_relaxed);
        }
        if (!abort.load(std::memory_order_relaxed)) {
          try {
            if (b == 0) {
              // Pipeline fill: batch 0's fetches are posted at the epoch
              // base clock; once its compute start is known the rest of
              // the initial window posts there.
              post_batch(0, prev_ar_end);
            }
            for (int p = 0; p < world; ++p) {
              const auto pz = static_cast<std::size_t>(p);
              const StepState& s =
                  ring[pz][static_cast<std::size_t>(b % slots)];
              compute_start[pz] = std::max(prev_ar_end[pz], s.ready);
              const double stall = compute_start[pz] - prev_ar_end[pz];
              const double span = s.ready - s.issue;
              stall_sum += stall;
              overlap_sum += std::max(0.0, span - stall);
              m_stall_ms.add(static_cast<std::int64_t>(stall * 1e3));
              m_overlap_ms.add(
                  static_cast<std::int64_t>(std::max(0.0, span - stall) * 1e3));
            }
            for (std::int64_t j = std::max<std::int64_t>(1, admit.begin);
                 j < admit.end; ++j) {
              post_batch(j, compute_start);
            }
          } catch (...) {
            errors[0] = std::current_exception();
            abort.store(true, std::memory_order_relaxed);
          }
        }
      }
      bar.arrive_and_wait();
      if (abort.load(std::memory_order_relaxed)) {
        drain_in_flight();
        break;
      }

      // -- Phase C: wait batch b's completion events (committing the
      // fetched payloads), convert, train, allreduce, step — the training
      // math is shared with the bulk path, so losses are depth-invariant.
      t.reset();
      StepState& s = ring[rankz][static_cast<std::size_t>(b % slots)];
      for (const FetchId id : s.fetch_ids) net_.wait_fetch(id);
      s.fetch_ids.clear();
      convert_fetched_rows(s, feat_dim);
      train_chunk(s, model, params, opt, allreduce, rank, world,
                  std::min(total, (b + 1) * batch) - b * batch);
      node_secs[rankz] += t.seconds();
      bar.arrive_and_wait();

      // -- Step accounting (rank 0): batch-weighted loss, per-node compute
      // spans on the virtual clock, one ring all-reduce pass at the step
      // boundary (unchanged from bulk — the optimizer math depends on it).
      if (rank == 0) {
        double step_loss = 0;
        for (int p = 0; p < world; ++p) {
          const auto pz = static_cast<std::size_t>(p);
          const StepState& sp = ring[pz][static_cast<std::size_t>(b % slots)];
          step_loss += sp.loss_weight * sp.loss;
          node_clock_[pz] = compute_start[pz] + sp.train_sim;
          if (timeline_ != nullptr && sp.train_sim > 0) {
            timeline_->add("node" + std::to_string(p) + ".compute",
                           "batch" + std::to_string(b), -1, compute_start[pz],
                           node_clock_[pz]);
          }
        }
        loss_sum += step_loss;
        if (world > 1) {
          const double begin =
              *std::max_element(node_clock_.begin(), node_clock_.end());
          const double end =
              net_.allreduce_time(param_count * sizeof(float), begin);
          std::fill(node_clock_.begin(), node_clock_.end(), end);
        }
        prev_ar_end = node_clock_;
      }
      bar.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(worldz);
  for (int p = 0; p < world; ++p) threads.emplace_back(node_body, p);
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  result.wall_seconds = wall.seconds();
  result.num_steps = num_steps;
  result.mean_loss = loss_sum / static_cast<double>(num_steps);
  result.node_retries = node_retries.load(std::memory_order_relaxed);
  result.wire_bytes = net_.bytes_on_wire() - bytes0;
  result.net_messages = net_.messages() - msgs0;
  result.net_retries = net_.retries() - retr0;
  result.sim_net_seconds = net_.busy_seconds() - busy0;
  result.sim_epoch_seconds =
      *std::max_element(node_clock_.begin(), node_clock_.end()) - sim0;
  result.stall_seconds = stall_sum;
  result.overlap_saved_seconds = overlap_sum;
  result.node_seconds = node_secs;
  flag_stragglers(config_, node_secs, result);
  return result;
}

bool ClusterTrainer::replicas_in_sync() const {
  if (models_.size() < 2) return true;
  const auto ref = models_[0]->parameters();
  for (std::size_t r = 1; r < models_.size(); ++r) {
    const auto params = models_[r]->parameters();
    if (params.size() != ref.size()) return false;
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!allclose(params[i].data(), ref[i].data(), 0.0, 0.0)) return false;
    }
  }
  return true;
}

}  // namespace salient::dist
