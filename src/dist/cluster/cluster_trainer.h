// Multi-node cluster training simulation (docs/DISTRIBUTED.md; the
// SALIENT++ direction of ROADMAP item 1).
//
// Every cluster node is a thread owning a replica of the model, its
// partition shard of the feature store, and a RemoteFeatureCache of hot
// remote rows. Each global mini-batch of the epoch-shuffled training
// schedule is split into per-node contiguous chunks (sampling/distributed.h
// chunk_range). Two step protocols share identical training math:
//
//   pipeline_depth == 0 — the bulk-synchronous protocol: every step runs
//   sample -> fetch -> train in whole-phase barriers, so interconnect
//   fetches sit on the simulated critical path;
//
//   pipeline_depth >= 1 — the pipelined protocol (the SALIENT idea applied
//   across nodes): each node keeps a bounded ring of depth+1 in-flight
//   batches; batch k+depth is sampled and its remote fetches posted on the
//   Interconnect (post_fetch) while batch k trains, and batch k's training
//   starts from its per-batch completion events (wait_fetch) — mirroring
//   the device-stream overlap in SalientLoader. The allreduce stays at step
//   boundaries, so the optimizer math — and therefore every loss — is
//   bitwise identical to the bulk-synchronous path at any depth.
//
// The virtual clock charges a deterministic modelled compute cost per batch
// (sim_train_us_per_input_row), which is the window pipelining hides
// fetches in: simulated epoch time drops while losses stay bitwise equal,
// which is exactly what tools/dist_bench gates.
//
// A 1-node cluster degenerates to the single-node Trainer's exact schedule
// (same epoch seeds, same shuffle, same per-batch sampler seeds, elementwise
// identical feature conversion) and reproduces its loss trajectory bitwise —
// tests/test_cluster.cpp asserts this, which pins the distributed code to
// the validated single-node semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/cluster/interconnect.h"
#include "dist/cluster/partitioner.h"
#include "dist/cluster/remote_cache.h"
#include "graph/dataset.h"
#include "nn/models.h"
#include "optim/adam.h"

/// \file
/// \brief The multi-node cluster training driver (docs/DISTRIBUTED.md).

namespace salient::dist {

/// Configuration of a simulated training cluster.
struct ClusterConfig {
  /// Graph partitioning: node count, assignment strategy, seed, slack.
  ClusterPartitionConfig partition;
  /// Interconnect model: bandwidth, latency, framing, retry budget.
  InterconnectConfig net;
  /// Per-node remote-feature cache. Its `fanouts`, `batch_size` and `seed`
  /// are overwritten with the trainer's own so the presample warmup always
  /// estimates the true workload.
  RemoteCacheConfig cache;
  /// Model architecture name (nn::make_model).
  std::string arch = "sage";
  /// Model dimensions; the shared seed gives every replica identical
  /// initial parameters (the DDP invariant).
  nn::ModelConfig model;
  /// Sampling fanouts per layer, outermost first.
  std::vector<std::int64_t> fanouts{15, 10, 5};
  /// Global mini-batch size (split across nodes by chunk_range).
  std::int64_t batch_size = 1024;
  /// Base seed; epoch seeds derive as seed*0x10001 + epoch + 1, matching
  /// the single-node trainer.
  std::uint64_t seed = 1;
  /// Adam learning rate.
  double lr = 3e-3;
  /// Bounded per-step retries of a failed node step (`dist.node.fail`).
  int max_step_retries = 2;
  /// Micro-pipeline prefetch depth per node: while batch k trains, batches
  /// up to k+depth are sampled and their remote fetches posted on the
  /// interconnect (at most depth+1 batches in flight per node). 0 selects
  /// the bulk-synchronous protocol — exactly the barrier-phased step the
  /// cluster shipped with. Any depth produces bitwise-identical losses;
  /// only simulated epoch time changes. CLI form (tools/dist_bench):
  /// --depths=<list>.
  int pipeline_depth = 2;
  /// Modelled training compute charged to the virtual clock, in
  /// microseconds per MFG input row. Deterministic in the sampled batch, so
  /// simulated epoch times are exactly reproducible; this is the compute
  /// window overlapped fetches hide in. Applied identically to both step
  /// protocols so their simulated epoch times are comparable.
  double sim_train_us_per_input_row = 1.0;
  /// Straggler flagging: a node is flagged when its epoch work time exceeds
  /// straggler_factor * median(node times) ...
  double straggler_factor = 1.5;
  /// ... and this absolute floor (filters scheduler noise on small runs).
  double straggler_min_seconds = 0.25;
};

/// A node step failed even after the configured bounded retries.
struct ClusterError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Statistics of one synchronized cluster epoch.
struct ClusterEpochResult {
  int epoch = 0;               ///< epoch index
  int pipeline_depth = 0;      ///< step protocol the epoch ran under
  double wall_seconds = 0;     ///< host wall time of the epoch
  double sim_net_seconds = 0;  ///< interconnect busy seconds (sum per link)
  double sim_epoch_seconds = 0;  ///< modelled epoch time (fetch+compute+ring)
  double overlap_saved_seconds = 0;  ///< fetch time hidden behind compute
  double stall_seconds = 0;    ///< compute stalled waiting on fetches
  double mean_loss = 0;        ///< batch-weighted mean training loss
  std::int64_t num_steps = 0;  ///< global synchronized steps

  std::int64_t remote_rows_fetched = 0;   ///< feature rows moved over links
  std::size_t remote_feature_bytes = 0;   ///< payload bytes of those rows
  std::size_t wire_bytes = 0;             ///< framed bytes (incl. allreduce)
  std::int64_t net_messages = 0;          ///< delivered messages
  std::int64_t net_retries = 0;           ///< dropped-and-retried messages
  std::int64_t node_retries = 0;          ///< node-step retries (failpoint)
  std::int64_t remote_hits = 0;           ///< remote rows served from cache
  std::int64_t remote_misses = 0;         ///< remote rows fetched over links

  std::vector<double> node_seconds;  ///< per-node epoch work time
  std::vector<int> stragglers;       ///< nodes flagged as stragglers

  /// Fraction of remote rows served from the replication caches.
  double remote_hit_rate() const {
    const auto r = remote_hits + remote_misses;
    return r > 0 ? static_cast<double>(remote_hits) / static_cast<double>(r)
                 : 0.0;
  }
};

/// Driver of a simulated multi-node training cluster.
///
/// Construction partitions the graph and builds every node's replica and
/// remote cache (the presample policy runs its warmup here). train_epoch()
/// is deterministic for a fixed (seed, node count): identical losses,
/// traffic and simulated times on every run.
class ClusterTrainer {
 public:
  /// Build a cluster over `dataset` (borrowed; must outlive the trainer).
  /// \throws std::invalid_argument on bad node counts or cache configs.
  ClusterTrainer(const Dataset& dataset, ClusterConfig config);

  /// Run one synchronized epoch over the dataset's training split,
  /// dispatching on `pipeline_depth`: 0 runs the bulk-synchronous protocol,
  /// >= 1 the pipelined one. In-flight fetches are drained before either
  /// path surfaces an error.
  /// \throws ClusterError when a node step exhausts its bounded retries and
  /// NetError when a message exhausts the interconnect's retry budget.
  ClusterEpochResult train_epoch(int epoch);

  /// Attach a timeline: the interconnect records its message spans and the
  /// pipelined trainer adds per-batch "node<p>.compute" spans (nullptr
  /// detaches). The timeline must outlive the trainer or the next call.
  void set_timeline(sim::Timeline* timeline);

  /// True when all replicas' parameters are exactly equal (the gradient
  /// averaging invariant; tests assert it after every epoch).
  bool replicas_in_sync() const;

  /// The derived cluster partition (ownership, halo and boundary maps).
  const ClusterPartition& partition() const { return partition_; }
  /// Node `p`'s remote-feature replication cache.
  const RemoteFeatureCache& remote_cache(int p) const {
    return *caches_[static_cast<std::size_t>(p)];
  }
  /// Node `r`'s model replica (e.g. replica 0 for evaluation).
  const std::shared_ptr<nn::GnnModel>& replica(int r) const {
    return models_[static_cast<std::size_t>(r)];
  }
  /// The modelled interconnect (whole-run traffic counters).
  Interconnect& interconnect() { return net_; }
  /// Number of cluster nodes.
  int num_nodes() const { return config_.partition.num_nodes; }
  /// The cluster's full configuration (after the cache-config overwrite).
  const ClusterConfig& config() const { return config_; }

 private:
  /// The PR 7 barrier-phased step protocol (pipeline_depth == 0).
  ClusterEpochResult train_epoch_bulk(int epoch);
  /// The overlapped step protocol (pipeline_depth >= 1).
  ClusterEpochResult train_epoch_pipelined(int epoch);

  const Dataset& dataset_;
  ClusterConfig config_;
  ClusterPartition partition_;
  Interconnect net_;
  std::vector<std::shared_ptr<nn::GnnModel>> models_;
  std::vector<std::unique_ptr<optim::Adam>> optimizers_;
  std::vector<std::unique_ptr<RemoteFeatureCache>> caches_;
  /// Per-node simulated clock (seconds); persists across epochs so link
  /// occupancy carries over like the Interconnect's NIC clocks.
  std::vector<double> node_clock_;
  sim::Timeline* timeline_ = nullptr;  ///< borrowed; see set_timeline
};

}  // namespace salient::dist
