#include "dist/cluster/interconnect.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace salient::dist {

Interconnect::Interconnect(int num_nodes, InterconnectConfig config)
    : config_(config), num_nodes_(num_nodes) {
  if (num_nodes < 1) {
    throw std::invalid_argument("interconnect: num_nodes must be >= 1");
  }
  if (config_.link_gbps <= 0) {
    throw std::invalid_argument("interconnect: link_gbps must be > 0");
  }
  LockGuard lock(mu_);
  tx_free_.assign(static_cast<std::size_t>(num_nodes), 0.0);
  rx_free_.assign(static_cast<std::size_t>(num_nodes), 0.0);
}

double Interconnect::wire_seconds(std::size_t bytes,
                                  double degrade_factor) const {
  const double gbps = config_.link_gbps / std::max(1.0, degrade_factor);
  return static_cast<double>(bytes) * 8.0 / (gbps * 1e9);
}

double Interconnect::model_message(int src, int dst, std::size_t bytes,
                                   double start) {
  if (src < 0 || src >= num_nodes_ || dst < 0 || dst >= num_nodes_) {
    throw std::invalid_argument("interconnect: node out of range");
  }
  auto& reg = obs::Registry::global();
  static obs::Counter& m_bytes = reg.counter("dist.net.bytes");
  static obs::Counter& m_messages = reg.counter("dist.net.messages");
  static obs::Counter& m_retries = reg.counter("dist.net.retries");

  const std::size_t framed = bytes + config_.message_overhead_bytes;
  // Duplex occupancy: the message holds src's TX and dst's RX for its whole
  // duration, but leaves src's RX and dst's TX free — opposite-direction
  // messages between the same pair overlap.
  double begin = std::max({start, tx_free_[static_cast<std::size_t>(src)],
                           rx_free_[static_cast<std::size_t>(dst)]});
  double clock = begin;
  const int attempts = 1 + std::max(0, config_.max_retries);
  bool delivered = false;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    // Link degradation: the armed trigger's arg divides the bandwidth for
    // this attempt (e.g. arg 4 => quarter rate).
    double degrade = 1.0;
    if (SALIENT_FAILPOINT("dist.net.degrade")) {
      degrade = std::max(
          1.0,
          fault::Registry::global().failpoint("dist.net.degrade").arg());
    }
    clock += config_.latency_us * 1e-6 + wire_seconds(framed, degrade);
    if (SALIENT_FAILPOINT("dist.net.drop")) {
      // The attempt's wire time is already charged; pay the backoff and
      // retry. The payload is only committed on a successful attempt, so a
      // drop can never leave torn bytes at the receiver.
      ++retries_;
      m_retries.add();
      clock += config_.retry_backoff_us * 1e-6 * static_cast<double>(1 << attempt);
      continue;
    }
    delivered = true;
    break;
  }
  if (!delivered) {
    busy_seconds_ += clock - begin;  // the failed attempts still burned wire
    throw NetError("interconnect: message " + std::to_string(src) + "->" +
                   std::to_string(dst) + " dropped after " +
                   std::to_string(attempts) + " attempts");
  }
  tx_free_[static_cast<std::size_t>(src)] = clock;
  rx_free_[static_cast<std::size_t>(dst)] = clock;
  bytes_ += framed;
  ++messages_;
  busy_seconds_ += clock - begin;
  m_bytes.add(static_cast<std::int64_t>(framed));
  m_messages.add();
  if (timeline_ != nullptr) {
    timeline_->add("net.rx" + std::to_string(dst),
                   "msg" + std::to_string(src), -1, begin, clock);
  }
  return clock;
}

double Interconnect::transfer(int src, int dst, const void* payload, void* out,
                              std::size_t bytes, double start) {
  LockGuard lock(mu_);
  const double clock = model_message(src, dst, bytes, start);
  if (payload != nullptr && out != nullptr && bytes > 0) {
    std::memcpy(out, payload, bytes);
  }
  return clock;
}

PostedFetch Interconnect::post_fetch(int src, int dst, const void* payload,
                                     void* out, std::size_t bytes,
                                     double start) {
  LockGuard lock(mu_);
  const double clock = model_message(src, dst, bytes, start);
  Pending p;
  p.out = out;
  p.completion = clock;
  if (payload != nullptr && out != nullptr && bytes > 0) {
    // Snapshot now so the caller may reuse its staging buffer; the receiver
    // sees the bytes only at wait_fetch, like a NIC receive ring.
    const auto* first = static_cast<const unsigned char*>(payload);
    p.data.assign(first, first + bytes);
  }
  const FetchId id = next_fetch_id_++;
  pending_.emplace(id, std::move(p));
  return {id, clock};
}

double Interconnect::wait_fetch(FetchId id) {
  LockGuard lock(mu_);
  const auto it = pending_.find(id);
  if (it == pending_.end()) {
    throw std::invalid_argument("interconnect: unknown fetch handle " +
                                std::to_string(id));
  }
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (!p.data.empty()) {
    std::memcpy(p.out, p.data.data(), p.data.size());
  }
  return p.completion;
}

std::int64_t Interconnect::pending_fetches() const {
  LockGuard lock(mu_);
  return static_cast<std::int64_t>(pending_.size());
}

double Interconnect::busy_seconds() const {
  LockGuard lock(mu_);
  return busy_seconds_;
}

double Interconnect::allreduce_time(std::size_t buffer_bytes, double start) {
  LockGuard lock(mu_);
  double begin = start;
  for (std::size_t p = 0; p < tx_free_.size(); ++p) {
    begin = std::max({begin, tx_free_[p], rx_free_[p]});
  }
  if (num_nodes_ < 2) return begin;
  // Classic two-phase ring: 2*(N-1) steps, each moving buffer/N per node
  // with every link busy simultaneously (dist/allreduce.h runs the real
  // data movement; this charges its modelled wall cost).
  const auto chunk = static_cast<std::size_t>(
      static_cast<double>(buffer_bytes) / static_cast<double>(num_nodes_));
  const double per_step = config_.latency_us * 1e-6 +
                          wire_seconds(chunk + config_.message_overhead_bytes,
                                       1.0);
  const double end =
      begin + 2.0 * static_cast<double>(num_nodes_ - 1) * per_step;
  for (std::size_t p = 0; p < tx_free_.size(); ++p) {
    tx_free_[p] = end;
    rx_free_[p] = end;
  }
  busy_seconds_ += end - begin;
  if (timeline_ != nullptr) {
    timeline_->add("net.allreduce", "ring", -1, begin, end);
  }
  return end;
}

std::size_t Interconnect::bytes_on_wire() const {
  LockGuard lock(mu_);
  return bytes_;
}

std::int64_t Interconnect::messages() const {
  LockGuard lock(mu_);
  return messages_;
}

std::int64_t Interconnect::retries() const {
  LockGuard lock(mu_);
  return retries_;
}

void Interconnect::set_timeline(sim::Timeline* timeline) {
  LockGuard lock(mu_);
  timeline_ = timeline;
}

}  // namespace salient::dist
