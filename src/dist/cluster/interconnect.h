// Bandwidth/latency-modelled cluster interconnect (docs/DISTRIBUTED.md).
//
// The simulated-cluster analogue of the DMA engine (device/dma.h): where the
// DMA engine models the host->device PCIe link of one machine, this models
// the network links between N simulated nodes — the paper's 10 GigE testbed
// shape. Like the DMA engine it really copies the payload bytes (so data
// integrity is testable under injected faults) and it charges the modelled
// cost of every message: per-message latency plus bytes over the configured
// link bandwidth, serialized on the sender's TX and the receiver's RX NIC
// occupancy. Unlike the DMA engine it advances a *virtual* clock rather than
// sleeping out wall time: a whole epoch-time-vs-cache-size sweep runs in
// seconds and its simulated timings are exactly reproducible.
//
// Messages move either synchronously (transfer: model + commit in one call)
// or asynchronously (post_fetch/wait_fetch: the timing is modelled and the
// payload snapshotted at post, committed at wait) — the async form is what
// the pipelined ClusterTrainer overlaps with training compute. Links are
// full duplex: a node's TX and RX NICs are accounted independently, so
// concurrent opposite-direction messages between two nodes take the time of
// one, not two (tests/test_cluster.cpp pins this).
//
// Fault sites (src/fault/failpoint.h, armed by the chaos suite):
//   * `dist.net.drop`    — the attempt's payload is lost on the wire; the
//     message is retried with bounded backoff (the attempt's time is still
//     charged), and NetError is thrown once retries are exhausted;
//   * `dist.net.degrade` — the attempt's effective bandwidth is divided by
//     the trigger's `arg` (>= 1), modelling link degradation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sim/timeline.h"
#include "util/thread_annotations.h"

/// \file
/// \brief The simulated cluster interconnect: modelled message timing with
/// real payload copies, NIC occupancy serialization, and chaos fault sites.

namespace salient::dist {

/// Link/NIC model parameters for the simulated interconnect.
struct InterconnectConfig {
  /// Per-node full-duplex link bandwidth in gigabits per second (the
  /// paper's testbed interconnect is 10 GigE).
  double link_gbps = 10.0;
  /// Per-message setup latency in microseconds.
  double latency_us = 25.0;
  /// Fixed per-message framing overhead added to every payload.
  std::size_t message_overhead_bytes = 64;
  /// A dropped message (the `dist.net.drop` failpoint) is retried up to
  /// this many times before NetError.
  int max_retries = 3;
  /// Modelled backoff before retry attempt k is retry_backoff_us * 2^k.
  double retry_backoff_us = 100.0;
};

/// A message that still failed after max_retries attempts (injected via the
/// `dist.net.drop` failpoint; a real fabric would surface NIC/switch errors
/// here).
struct NetError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Handle of an in-flight asynchronous fetch (post_fetch / wait_fetch).
using FetchId = std::uint64_t;

/// Result of posting an asynchronous fetch: the handle to wait on plus the
/// message's modelled completion time on the virtual clock. The completion
/// time is known at post — the model computes the whole timing up front —
/// but the payload only becomes readable at wait_fetch, mirroring a real
/// NIC's receive buffer.
struct PostedFetch {
  FetchId id = 0;        ///< pass to wait_fetch exactly once
  double completion = 0; ///< simulated completion time (seconds)
};

/// N-node simulated network. Thread-safe; all timing state is guarded by an
/// internal mutex. Simulated times are seconds on the caller's virtual
/// clock: transfer() receives the sender's earliest-start time and returns
/// the message's completion time, serializing concurrent messages on each
/// node's TX/RX NIC occupancy exactly like the DMA engine serializes its
/// copy engine.
class Interconnect {
 public:
  /// Create a fabric connecting `num_nodes` nodes.
  /// \throws std::invalid_argument when num_nodes < 1.
  explicit Interconnect(int num_nodes, InterconnectConfig config = {});

  /// Send `bytes` of `payload` from node `src` to node `dst`, copying them
  /// into `out` (when both pointers are non-null) on the final successful
  /// attempt. The message starts no earlier than `start` (simulated
  /// seconds) and no earlier than either NIC frees up; the return value is
  /// its completion time. Counts the `dist.net.{bytes,messages,retries}`
  /// metrics and records a timeline span when a timeline is attached.
  /// \throws NetError when every attempt was dropped.
  double transfer(int src, int dst, const void* payload, void* out,
                  std::size_t bytes, double start);

  /// Asynchronous form of transfer(): post `bytes` of `payload` from `src`
  /// to `dst` starting no earlier than `start`, charging the same modelled
  /// cost (latency + framed wire time, serialized on src's TX and dst's RX
  /// NIC occupancy — the two directions of a link are duplex and never
  /// contend with each other). The payload is snapshotted at post so the
  /// caller may reuse its buffer, but it is committed into `out` only at
  /// wait_fetch — the per-batch completion event the pipelined trainer
  /// overlaps sampling and training against. Retries of dropped attempts
  /// (`dist.net.drop`) happen inside the post, so a successfully posted
  /// fetch always delivers the intact payload.
  /// \throws NetError when every attempt was dropped (the model detects
  /// undeliverability at post time because timing is precomputed).
  PostedFetch post_fetch(int src, int dst, const void* payload, void* out,
                         std::size_t bytes, double start);

  /// Complete a posted fetch: commit its payload into the destination
  /// buffer given at post_fetch and return the completion time. Consumes
  /// the handle.
  /// \throws std::invalid_argument on an unknown or already-waited handle.
  double wait_fetch(FetchId id);

  /// Number of posted fetches not yet waited on (the pipelined trainer
  /// drains to zero even when a step fails mid-overlap).
  std::int64_t pending_fetches() const;

  /// Cumulative seconds the fabric spent busy moving messages (including
  /// retried attempts and backoff) and running allreduce rings. Unlike the
  /// per-node clocks this is a sum over links, so overlapped transfers on
  /// different links each contribute their full duration.
  double busy_seconds() const;

  /// Modelled completion time of a ring allreduce over `buffer_bytes` per
  /// node starting at `start`: 2*(N-1) pipeline steps of `buffer_bytes / N`
  /// plus per-step latency. Advances every NIC to the returned time; 0-cost
  /// at N == 1.
  double allreduce_time(std::size_t buffer_bytes, double start);

  /// The fabric's configuration.
  const InterconnectConfig& config() const { return config_; }
  /// Number of connected nodes.
  int num_nodes() const { return num_nodes_; }

  /// Total payload bytes put on the wire (successful messages, overhead
  /// included; retried attempts count once).
  std::size_t bytes_on_wire() const;
  /// Total messages delivered.
  std::int64_t messages() const;
  /// Total retried attempts (dropped by the `dist.net.drop` failpoint).
  std::int64_t retries() const;

  /// Attach a timeline: every delivered message records a span on lane
  /// "net.rx<dst>" (nullptr detaches). The timeline must outlive the
  /// interconnect or the next set_timeline call.
  void set_timeline(sim::Timeline* timeline);

 private:
  /// A posted-but-not-yet-waited fetch: the payload snapshot and where to
  /// commit it.
  struct Pending {
    std::vector<unsigned char> data;
    void* out = nullptr;
    double completion = 0;
  };

  /// Seconds to move `bytes` at the (possibly degraded) link rate.
  double wire_seconds(std::size_t bytes, double degrade_factor) const;

  /// Model one message on the virtual clock (NIC occupancy, drop retries,
  /// metrics, timeline span, busy accounting) and return its completion
  /// time. Shared by transfer() and post_fetch().
  /// \throws NetError when every attempt was dropped.
  double model_message(int src, int dst, std::size_t bytes, double start)
      REQUIRES(mu_);

  const InterconnectConfig config_;  // unguarded: const topology
  const int num_nodes_;              // unguarded: const topology

  mutable Mutex mu_;
  std::vector<double> tx_free_ GUARDED_BY(mu_);  ///< per-node TX NIC free time
  std::vector<double> rx_free_ GUARDED_BY(mu_);  ///< per-node RX NIC free time
  std::size_t bytes_ GUARDED_BY(mu_) = 0;
  std::int64_t messages_ GUARDED_BY(mu_) = 0;
  std::int64_t retries_ GUARDED_BY(mu_) = 0;
  double busy_seconds_ GUARDED_BY(mu_) = 0;
  FetchId next_fetch_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<FetchId, Pending> pending_ GUARDED_BY(mu_);
  sim::Timeline* timeline_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace salient::dist
