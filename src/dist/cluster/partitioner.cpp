#include "dist/cluster/partitioner.h"

#include <algorithm>
#include <stdexcept>

namespace salient::dist {

PartitionStrategy parse_partition_strategy(const std::string& name) {
  if (name == "hash") return PartitionStrategy::kHash;
  if (name == "greedy") return PartitionStrategy::kGreedy;
  throw std::invalid_argument("unknown partition strategy: " + name);
}

const char* partition_strategy_name(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kHash:
      return "hash";
    case PartitionStrategy::kGreedy:
      return "greedy";
  }
  return "unknown";
}

std::int64_t ClusterPartition::total_halo() const {
  std::int64_t total = 0;
  for (const auto& h : halo) total += static_cast<std::int64_t>(h.size());
  return total;
}

ClusterPartition build_cluster_partition(
    const CsrGraph& graph, const ClusterPartitionConfig& config) {
  if (config.num_nodes < 1) {
    throw std::invalid_argument("cluster partition: num_nodes must be >= 1");
  }
  ClusterPartition cp;
  cp.num_nodes = config.num_nodes;
  cp.assignment = config.strategy == PartitionStrategy::kHash
                      ? partition_random(graph, config.num_nodes, config.seed)
                      : partition_ldg(graph, config.num_nodes,
                                      config.capacity_slack);
  cp.edge_cut_ = edge_cut_fraction(graph, cp.assignment);
  cp.balance_ = balance_factor(cp.assignment);

  const auto nodes = static_cast<std::size_t>(config.num_nodes);
  const std::int64_t n = graph.num_nodes();
  cp.owned.assign(nodes, {});
  cp.halo.assign(nodes, {});
  cp.boundary.assign(nodes, std::vector<std::vector<NodeId>>(nodes));

  for (NodeId v = 0; v < n; ++v) {
    cp.owned[static_cast<std::size_t>(cp.owner_of(v))].push_back(v);
  }

  // Halo of p: remote vertices adjacent to p's owned set. Scanning owned
  // vertices in ascending order and deduplicating with a seen-stamp keeps
  // the result deterministic; a final sort yields the ascending layout.
  std::vector<std::int32_t> seen(static_cast<std::size_t>(n), -1);
  for (std::size_t p = 0; p < nodes; ++p) {
    auto& halo = cp.halo[p];
    for (const NodeId v : cp.owned[p]) {
      for (const NodeId u : graph.neighbors(v)) {
        const auto q = cp.owner_of(u);
        if (q == static_cast<std::int32_t>(p)) continue;
        auto& stamp = seen[static_cast<std::size_t>(u)];
        if (stamp == static_cast<std::int32_t>(p)) continue;
        stamp = static_cast<std::int32_t>(p);
        halo.push_back(u);
      }
    }
    std::sort(halo.begin(), halo.end());
    // The boundary view groups p's halo by owner: boundary[q][p] is exactly
    // halo[p] restricted to q-owned vertices, which makes the symmetry
    // invariant true by construction (tests re-derive it independently).
    for (const NodeId u : halo) {
      cp.boundary[static_cast<std::size_t>(cp.owner_of(u))][p].push_back(u);
    }
  }
  return cp;
}

bool ClusterPartition::valid(const CsrGraph& graph) const {
  const std::int64_t n = graph.num_nodes();
  if (num_nodes < 1) return false;
  if (static_cast<std::int64_t>(assignment.assignment.size()) != n) {
    return false;
  }
  const auto nodes = static_cast<std::size_t>(num_nodes);
  if (owned.size() != nodes || halo.size() != nodes ||
      boundary.size() != nodes) {
    return false;
  }
  // Unique ownership + coverage: each vertex in exactly one owned list, and
  // that list belongs to its assigned node.
  std::vector<std::int8_t> covered(static_cast<std::size_t>(n), 0);
  for (std::size_t p = 0; p < nodes; ++p) {
    if (!std::is_sorted(owned[p].begin(), owned[p].end())) return false;
    for (const NodeId v : owned[p]) {
      if (v < 0 || v >= n) return false;
      if (covered[static_cast<std::size_t>(v)]++) return false;
      if (owner_of(v) != static_cast<std::int32_t>(p)) return false;
    }
  }
  for (const auto c : covered) {
    if (c != 1) return false;
  }
  // Halo correctness: halo[p] = remote vertices adjacent to p's owned set.
  std::vector<std::int32_t> seen(static_cast<std::size_t>(n), -1);
  for (std::size_t p = 0; p < nodes; ++p) {
    if (!std::is_sorted(halo[p].begin(), halo[p].end())) return false;
    std::vector<NodeId> expect;
    for (const NodeId v : owned[p]) {
      for (const NodeId u : graph.neighbors(v)) {
        if (owner_of(u) == static_cast<std::int32_t>(p)) continue;
        auto& stamp = seen[static_cast<std::size_t>(u)];
        if (stamp == static_cast<std::int32_t>(p)) continue;
        stamp = static_cast<std::int32_t>(p);
        expect.push_back(u);
      }
    }
    std::sort(expect.begin(), expect.end());
    if (expect != halo[p]) return false;
  }
  // Boundary symmetry: boundary[q][p] == halo[p] restricted to q's vertices.
  for (std::size_t q = 0; q < nodes; ++q) {
    if (boundary[q].size() != nodes) return false;
    if (!boundary[q][q].empty()) return false;
    for (std::size_t p = 0; p < nodes; ++p) {
      std::vector<NodeId> expect;
      for (const NodeId u : halo[p]) {
        if (owner_of(u) == static_cast<std::int32_t>(q)) expect.push_back(u);
      }
      if (expect != boundary[q][p]) return false;
    }
  }
  return true;
}

}  // namespace salient::dist
