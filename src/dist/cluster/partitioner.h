// Cluster-level graph partitioning with halo-vertex ownership maps
// (docs/DISTRIBUTED.md).
//
// The single-machine partitioners in graph/partition.h answer "which part
// does vertex v belong to?". A simulated cluster needs more: every node must
// know which vertices it *owns* (their feature rows live in its share of the
// partitioned feature store), which remote vertices its owned neighborhood
// touches (its *halo* — the candidates for remote fetches and for the
// replication cache), and, symmetrically, which of its owned vertices other
// nodes will ask it for (its per-peer *boundary*). This header derives those
// maps from either assignment strategy and exposes the invariants the test
// suite checks: unique ownership, symmetric halo/boundary views, and full
// coverage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/partition.h"

/// \file
/// \brief Cluster partition: per-node owned/halo/boundary vertex maps derived
/// from a graph partition assignment (docs/DISTRIBUTED.md).

namespace salient::dist {

/// Which assignment strategy builds the underlying vertex->node map.
enum class PartitionStrategy : std::uint8_t {
  /// Uniform hash assignment (graph/partition.h partition_random): the
  /// no-structure baseline. Balanced in expectation, maximal edge cut.
  kHash,
  /// Locality-aware Linear Deterministic Greedy streaming assignment
  /// (partition_ldg, Stanton & Kliot): hubs placed first anchor their
  /// communities, cutting the cross-node halo substantially.
  kGreedy,
};

/// Parse a strategy name ("hash", "greedy").
/// \throws std::invalid_argument on an unknown name.
PartitionStrategy parse_partition_strategy(const std::string& name);

/// The canonical lower-case name of `strategy` (inverse of
/// parse_partition_strategy).
const char* partition_strategy_name(PartitionStrategy strategy);

/// Configuration for build_cluster_partition().
struct ClusterPartitionConfig {
  /// Number of simulated cluster nodes (>= 1).
  int num_nodes = 2;
  /// Assignment strategy deriving the vertex->node map.
  PartitionStrategy strategy = PartitionStrategy::kGreedy;
  /// Seed for the hash strategy (ignored by greedy, which is deterministic).
  std::uint64_t seed = 1;
  /// Greedy strategy: parts may exceed the ideal size by this factor.
  double capacity_slack = 1.05;
};

/// A graph partitioned across N simulated cluster nodes, with the per-node
/// ownership maps a distributed training loop needs.
///
/// Invariants (asserted by tests/test_cluster.cpp):
///  * every vertex appears in exactly one node's `owned` list;
///  * `halo[p]` holds exactly the remote vertices adjacent to p's owned set;
///  * the halo/boundary views are symmetric: vertex v owned by q appears in
///    `halo[p]` if and only if it appears in `boundary[q][p]`;
///  * all per-node vertex lists are sorted ascending (deterministic layout).
struct ClusterPartition {
  /// Number of cluster nodes (the partition count).
  int num_nodes = 1;
  /// The underlying vertex->node assignment.
  GraphPartition assignment;
  /// Per node: the vertices whose feature rows it owns, sorted ascending.
  std::vector<std::vector<NodeId>> owned;
  /// Per node: remote vertices adjacent to at least one owned vertex,
  /// sorted ascending. These are the vertices one-hop expansions reach;
  /// deeper multi-hop expansions may touch remote vertices beyond the halo.
  std::vector<std::vector<NodeId>> halo;
  /// boundary[q][p]: vertices owned by node q that node p's halo contains
  /// (i.e. q-owned vertices adjacent to p's owned set), sorted ascending.
  /// boundary[q][q] is empty.
  std::vector<std::vector<std::vector<NodeId>>> boundary;

  /// The node owning vertex `v`.
  std::int32_t owner_of(NodeId v) const { return assignment.part_of(v); }

  /// Total halo vertices summed over nodes (the replication pressure the
  /// remote-feature cache relieves).
  std::int64_t total_halo() const;

  /// Fraction of graph edges whose endpoints live on different nodes.
  double edge_cut() const { return edge_cut_; }

  /// Largest owned set divided by the ideal size (1.0 = perfectly balanced).
  double balance() const { return balance_; }

  /// Check every structural invariant listed above against `graph`.
  bool valid(const CsrGraph& graph) const;

  /// \cond INTERNAL
  double edge_cut_ = 0.0;
  double balance_ = 1.0;
  /// \endcond
};

/// Partition `graph` across `config.num_nodes` simulated nodes and derive
/// the owned/halo/boundary maps. Deterministic in (graph, config).
/// \throws std::invalid_argument when config.num_nodes < 1.
ClusterPartition build_cluster_partition(const CsrGraph& graph,
                                         const ClusterPartitionConfig& config);

}  // namespace salient::dist
