#include "dist/cluster/remote_cache.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "prep/frequency_table.h"
#include "sampling/distributed.h"
#include "sampling/fast_sampler.h"
#include "util/rng.h"

namespace salient::dist {

namespace {

/// Top-`capacity` of `candidates` under `better`, sorted by `better` so the
/// slot order is deterministic (the remote-candidate analogue of
/// cache_policy.cpp's top_nodes).
template <class Cmp>
std::vector<NodeId> top_candidates(std::vector<NodeId> candidates,
                                   std::int64_t capacity, Cmp better) {
  capacity = std::clamp<std::int64_t>(
      capacity, 0, static_cast<std::int64_t>(candidates.size()));
  std::nth_element(candidates.begin(),
                   candidates.begin() + static_cast<std::ptrdiff_t>(capacity),
                   candidates.end(), better);
  candidates.resize(static_cast<std::size_t>(capacity));
  std::sort(candidates.begin(), candidates.end(), better);
  return candidates;
}

/// Every vertex this node does not own, ascending.
std::vector<NodeId> remote_candidates(const ClusterPartition& partition,
                                      int node, std::int64_t num_nodes_total) {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(num_nodes_total));
  for (NodeId v = 0; v < num_nodes_total; ++v) {
    if (partition.owner_of(v) != node) out.push_back(v);
  }
  return out;
}

/// Static degree-ordered pinning restricted to remote vertices (the GNS
/// baseline lifted to the partitioned setting).
class RemoteDegreePolicy final : public CachePolicy {
 public:
  RemoteDegreePolicy(const ClusterPartition& partition, int node)
      : partition_(&partition), node_(node) {}

  const char* name() const override { return "degree"; }

  std::vector<NodeId> pin(const Dataset& dataset,
                          std::int64_t capacity) override {
    return top_candidates(
        remote_candidates(*partition_, node_, dataset.graph.num_nodes()),
        capacity, [&](NodeId a, NodeId b) {
          const auto da = dataset.graph.degree(a);
          const auto db = dataset.graph.degree(b);
          return da != db ? da > db : a < b;
        });
  }

 private:
  const ClusterPartition* partition_;
  int node_;
};

/// SALIENT++-style presample pinning: replay K warmup epochs of this node's
/// slice of the cluster training schedule (same shuffle, same chunk split,
/// same per-chunk seeds as ClusterTrainer), count how often each *remote*
/// vertex appears in the sampled neighborhood expansions, and pin the
/// top-capacity by (frequency, degree, id). Zero-count ties degrade to
/// remote-degree order.
class RemotePresamplePolicy final : public CachePolicy {
 public:
  RemotePresamplePolicy(const ClusterPartition& partition, int node,
                        RemoteCacheConfig config)
      : partition_(&partition), node_(node), config_(std::move(config)) {}

  const char* name() const override { return "presample"; }

  std::vector<NodeId> pin(const Dataset& dataset,
                          std::int64_t capacity) override {
    if (capacity <= 0) return {};  // always-fetch baseline: skip the warmup
    SALIENT_TRACE_SCOPE("dist.cache.presample");
    static obs::Counter& m_batches =
        obs::Registry::global().counter("dist.presample.batches");

    const std::int64_t n = dataset.graph.num_nodes();
    FrequencyTable freq(n);
    FastSampler sampler(dataset.graph, config_.fanouts);
    std::vector<NodeId> seeds = dataset.train_idx;
    const std::int64_t batch = std::max<std::int64_t>(1, config_.batch_size);
    const auto total = static_cast<std::int64_t>(seeds.size());
    const std::int64_t num_batches = (total + batch - 1) / batch;
    const int world = partition_->num_nodes;

    for (int epoch = 0; epoch < config_.presample_epochs; ++epoch) {
      // Identical epoch-seed derivation and shuffle as the training loop, so
      // the warmup counts the exact expansions the first K epochs will run.
      const std::uint64_t epoch_seed =
          config_.seed * 0x10001ull + static_cast<std::uint64_t>(epoch) + 1;
      schedule_shuffle(seeds, epoch_seed);
      for (std::int64_t b = 0; b < num_batches; ++b) {
        const std::int64_t lo = b * batch;
        const std::int64_t hi = std::min(total, lo + batch);
        const ChunkRange chunk = chunk_range(hi - lo, world, node_);
        if (chunk.empty()) continue;
        const Mfg mfg = sampler.sample(
            {seeds.data() + lo + chunk.begin,
             static_cast<std::size_t>(chunk.size())},
            schedule_mix_seed(epoch_seed, b * world + node_));
        for (const NodeId v : mfg.n_ids) {
          if (partition_->owner_of(v) != node_) freq.add(v);
        }
        m_batches.add();
      }
    }

    std::vector<std::int64_t> counts(static_cast<std::size_t>(n), 0);
    for (const auto& [v, c] : freq.items()) {
      counts[static_cast<std::size_t>(v)] = c;
    }
    return top_candidates(remote_candidates(*partition_, node_, n), capacity,
                          [&](NodeId a, NodeId b) {
                            const auto ca = counts[static_cast<std::size_t>(a)];
                            const auto cb = counts[static_cast<std::size_t>(b)];
                            if (ca != cb) return ca > cb;
                            const auto da = dataset.graph.degree(a);
                            const auto db = dataset.graph.degree(b);
                            return da != db ? da > db : a < b;
                          });
  }

 private:
  const ClusterPartition* partition_;
  int node_;
  RemoteCacheConfig config_;
};

/// Dynamic LRU restricted to remote vertices: delegates the recency
/// machinery to the single-node LRU policy and declines admission of
/// locally-owned vertices (their rows never cross the wire, so replicating
/// them would only waste capacity).
class RemoteLruPolicy final : public CachePolicy {
 public:
  RemoteLruPolicy(const ClusterPartition& partition, int node)
      : partition_(&partition), node_(node) {
    CachePolicyConfig config;
    config.kind = CachePolicyKind::kLru;
    delegate_ = make_cache_policy(config);
  }

  const char* name() const override { return "lru"; }
  bool dynamic() const override { return true; }

  std::vector<NodeId> pin(const Dataset& dataset,
                          std::int64_t capacity) override {
    return delegate_->pin(dataset, capacity);  // cold cache
  }

  std::int64_t admit(NodeId v) override {
    if (partition_->owner_of(v) == node_) return -1;
    return delegate_->admit(v);
  }

  void touch(std::int64_t slot) override { delegate_->touch(slot); }

 private:
  const ClusterPartition* partition_;
  int node_;
  std::unique_ptr<CachePolicy> delegate_;
};

std::unique_ptr<CachePolicy> make_remote_policy(
    const ClusterPartition& partition, int node,
    const RemoteCacheConfig& config) {
  if (config.presample_epochs < 1) {
    throw std::invalid_argument("remote cache: presample_epochs must be >= 1");
  }
  if (config.batch_size < 1) {
    throw std::invalid_argument("remote cache: batch_size must be >= 1");
  }
  switch (config.policy) {
    case CachePolicyKind::kLru:
      return std::make_unique<RemoteLruPolicy>(partition, node);
    case CachePolicyKind::kDegree:
      return std::make_unique<RemoteDegreePolicy>(partition, node);
    case CachePolicyKind::kPresample:
    case CachePolicyKind::kAuto:
      return std::make_unique<RemotePresamplePolicy>(partition, node, config);
  }
  throw std::invalid_argument("remote cache: unknown policy kind");
}

std::int64_t effective_capacity(const Dataset& dataset,
                                const ClusterPartition& partition, int node,
                                const RemoteCacheConfig& config) {
  const std::int64_t n = dataset.graph.num_nodes();
  const auto pct = static_cast<std::int64_t>(config.cache_percentage *
                                             static_cast<double>(n));
  std::int64_t remote = 0;
  for (NodeId v = 0; v < n; ++v) remote += (partition.owner_of(v) != node);
  return std::clamp<std::int64_t>(std::max(config.capacity_nodes, pct), 0,
                                  remote);
}

}  // namespace

RemoteFeatureCache::RemoteFeatureCache(const Dataset& dataset,
                                       const ClusterPartition& partition,
                                       int node,
                                       const RemoteCacheConfig& config)
    : partition_(&partition),
      node_(node),
      cache_(dataset, effective_capacity(dataset, partition, node, config),
             make_remote_policy(partition, node, config)) {
  if (node < 0 || node >= partition.num_nodes) {
    throw std::invalid_argument("remote cache: node out of range");
  }
  const std::int64_t n = dataset.graph.num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    num_remote_ += (partition.owner_of(v) != node);
  }
}

RemotePlan RemoteFeatureCache::plan(const Mfg& mfg) const {
  auto& reg = obs::Registry::global();
  static obs::Counter& m_hits = reg.counter("dist.cache.row_hits");
  static obs::Counter& m_misses = reg.counter("dist.cache.row_misses");

  RemotePlan rp;
  rp.plan = plan_cached_batch(mfg, cache_);
  std::vector<std::vector<std::int64_t>> per_owner(
      static_cast<std::size_t>(partition_->num_nodes));
  for (std::size_t i = 0; i < mfg.n_ids.size(); ++i) {
    if (rp.plan.from_cache[i]) {
      ++rp.remote_hits;  // only remote vertices are ever admitted
      continue;
    }
    const NodeId v = mfg.n_ids[i];
    const auto owner = partition_->owner_of(v);
    if (owner == node_) {
      rp.local_rows.push_back(static_cast<std::int64_t>(i));
    } else {
      per_owner[static_cast<std::size_t>(owner)].push_back(
          static_cast<std::int64_t>(i));
      ++rp.remote_misses;
    }
  }
  for (std::size_t q = 0; q < per_owner.size(); ++q) {
    if (per_owner[q].empty()) continue;
    rp.fetches.push_back({static_cast<int>(q), std::move(per_owner[q])});
  }
  m_hits.add(rp.remote_hits);
  m_misses.add(rp.remote_misses);
  return rp;
}

}  // namespace salient::dist
