// Per-node replication cache of remote vertex features (docs/DISTRIBUTED.md).
//
// In the partitioned cluster each node stores only the feature rows of the
// vertices it owns, so every sampled batch needs the features of remote
// vertices fetched over the interconnect — the cross-node traffic SALIENT++
// identifies as the distributed bottleneck. This cache keeps the *hot*
// remote features replicated locally, and — the SALIENT++ idea — drives
// which those are from neighborhood-expansion frequency estimates computed
// by presampling the node's own slice of the training schedule, rather than
// from recency. It is a thin partition-aware layer over the single-node
// FeatureCache/CachePolicy machinery (prep/cache_policy.h): the policies
// here restrict candidacy to remote vertices and delegate everything else,
// which is exactly the reuse that interface was built for.
#pragma once

#include <cstdint>
#include <vector>

#include "dist/cluster/partitioner.h"
#include "prep/feature_cache.h"

/// \file
/// \brief The per-node remote-feature replication cache and its per-batch
/// fetch plan (docs/DISTRIBUTED.md).

namespace salient::dist {

/// Configuration of one node's remote-feature cache.
struct RemoteCacheConfig {
  /// Placement policy. kDegree and kPresample pin statically over remote
  /// candidates; kLru admits remote misses dynamically; kAuto falls back to
  /// kPresample (the auto probe measures single-node hit rate, which is the
  /// wrong objective here).
  CachePolicyKind policy = CachePolicyKind::kPresample;
  /// Cache capacity as a fraction of |V| in [0, 1] per node.
  double cache_percentage = 0.0;
  /// Absolute per-node capacity override; the effective capacity is
  /// max(capacity_nodes, cache_percentage * |V|), clamped to the node's
  /// remote-vertex count.
  std::int64_t capacity_nodes = 0;
  /// Presample policy: warmup epochs K (>= 1) over the node's slice of the
  /// cluster training schedule.
  int presample_epochs = 2;
  /// Sampling fanouts of the target workload, outermost first.
  std::vector<std::int64_t> fanouts{15, 10, 5};
  /// Global (cluster-wide) mini-batch size of the target workload.
  std::int64_t batch_size = 1024;
  /// Base seed of the target workload (the ClusterTrainer's loader seed);
  /// warmup epochs derive per-epoch seeds from it exactly like training.
  std::uint64_t seed = 1;
};

/// One per-owner remote fetch of a batch's missing rows.
struct RemoteFetch {
  /// The node owning the fetched rows.
  int owner = 0;
  /// Ascending row indices into the MFG's input set (mfg.n_ids).
  std::vector<std::int64_t> rows;
};

/// A partition-aware transfer plan for one mini-batch: every input row is
/// either owned locally, replicated in the remote cache, or listed in a
/// per-owner fetch.
struct RemotePlan {
  /// The underlying cache classification (hits serve from the cache).
  CachePlan plan;
  /// Ascending row indices owned by this node (sliced from the local
  /// feature-store shard).
  std::vector<std::int64_t> local_rows;
  /// Per-owner fetches of the remote misses, ascending owner order; owners
  /// with no missing rows are omitted.
  std::vector<RemoteFetch> fetches;
  /// Remote input rows served from the replication cache.
  std::int64_t remote_hits = 0;
  /// Remote input rows that must cross the interconnect.
  std::int64_t remote_misses = 0;

  /// Remote rows in this batch (hits + misses).
  std::int64_t remote_rows() const { return remote_hits + remote_misses; }
  /// Fraction of remote rows served locally (0 when the batch has none).
  double remote_hit_rate() const {
    const auto r = remote_rows();
    return r > 0 ? static_cast<double>(remote_hits) / static_cast<double>(r)
                 : 0.0;
  }
};

/// One cluster node's replication cache of remote vertex features.
///
/// Construction may be expensive (the presample policy runs its warmup
/// sampling epochs); plan() is cheap and thread-safe. Capacity 0 is a valid
/// always-fetch cache, which is how the uncached baseline is modelled.
class RemoteFeatureCache {
 public:
  /// Build node `node`'s cache over `dataset` under `partition`. Both are
  /// borrowed and must outlive the cache.
  /// \throws std::invalid_argument on an out-of-range node or a config the
  /// underlying policy rejects.
  RemoteFeatureCache(const Dataset& dataset, const ClusterPartition& partition,
                     int node, const RemoteCacheConfig& config);

  /// Classify a sampled batch: cache hits, locally owned rows, and the
  /// per-owner remote fetch lists. Counts the cluster-wide
  /// `dist.cache.row_{hits,misses}` metrics (remote rows only).
  RemotePlan plan(const Mfg& mfg) const;

  /// The underlying feature cache (resident rows, f32 feature matrix).
  const FeatureCache& cache() const { return cache_; }
  /// Effective capacity in rows (after clamping).
  std::int64_t capacity() const { return cache_.capacity(); }
  /// The governing policy's canonical name.
  const char* policy_name() const { return cache_.policy_name(); }
  /// The node this cache belongs to.
  int node() const { return node_; }

 private:
  const ClusterPartition* partition_;  ///< borrowed; outlives the cache
  int node_ = 0;
  std::int64_t num_remote_ = 0;  ///< remote-vertex count (capacity clamp)
  FeatureCache cache_;
};

}  // namespace salient::dist
