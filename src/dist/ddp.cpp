#include "dist/ddp.h"

#include <atomic>
#include <stdexcept>
#include <thread>

#include "nn/loss.h"
#include "prep/slicing.h"
#include "sampling/fast_sampler.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/timer.h"

namespace salient {

DdpTrainer::DdpTrainer(const Dataset& dataset, DdpConfig config)
    : dataset_(dataset), config_(std::move(config)) {
  if (config_.world_size < 1) {
    throw std::invalid_argument("DdpTrainer: world_size");
  }
  for (int r = 0; r < config_.world_size; ++r) {
    // Identical seed => identical initial parameters on every replica.
    models_.push_back(nn::make_model(config_.arch, config_.model));
    optimizers_.push_back(
        std::make_unique<optim::Adam>(models_.back()->parameters(),
                                      config_.lr));
  }
}

DdpEpochResult DdpTrainer::train_epoch(int epoch) {
  const auto world = static_cast<std::size_t>(config_.world_size);
  // Epoch-shuffled node order shared by all replicas (DistributedSampler).
  std::vector<NodeId> order(dataset_.train_idx);
  Xoshiro256ss shuffle_rng(config_.loader.seed +
                           static_cast<std::uint64_t>(epoch) * 7919u);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[bounded_rand(shuffle_rng, i)]);
  }
  // Equal shard sizes so every replica reaches every all-reduce: truncate to
  // a multiple of world_size * batch_size (DistributedSampler pads; we drop).
  const auto bs = static_cast<std::size_t>(config_.loader.batch_size);
  const std::size_t batches_per_replica =
      order.size() / (world * bs);
  if (batches_per_replica == 0) {
    throw std::runtime_error("DdpTrainer: not enough nodes for one batch");
  }

  RingAllreduce allreduce(config_.world_size);
  std::vector<double> replica_loss(world, 0.0);
  WallTimer timer;

  auto replica_body = [&](int rank) {
    auto& model = *models_[static_cast<std::size_t>(rank)];
    auto& opt = *optimizers_[static_cast<std::size_t>(rank)];
    model.train(true);
    FastSampler sampler(dataset_.graph, config_.loader.fanouts);
    auto params = model.parameters();
    double loss_sum = 0;

    for (std::size_t b = 0; b < batches_per_replica; ++b) {
      // Strided shard: batch b of rank k covers the (b*world + k)-th block.
      const std::size_t block = b * world + static_cast<std::size_t>(rank);
      const std::span<const NodeId> nodes(order.data() + block * bs, bs);
      const std::uint64_t batch_seed =
          SplitMix64(config_.loader.seed ^ (block * 0x9e3779b97f4a7c15ull))
              .next();
      Mfg mfg = sampler.sample(nodes, batch_seed);

      Tensor x_f16({mfg.num_input_nodes(), dataset_.feature_dim},
                   dataset_.features.dtype());
      slice_rows_serial(dataset_.features, mfg.n_ids, x_f16);
      Tensor y({mfg.batch_size}, DType::kI64);
      slice_labels(dataset_.labels,
                   {mfg.n_ids.data(), static_cast<std::size_t>(mfg.batch_size)},
                   y);

      Variable x(x_f16.to(DType::kF32));
      Variable logp = model.forward(x, mfg);
      Variable loss = nn::nll_loss(logp, y);
      model.zero_grad();
      loss.backward();
      loss_sum += static_cast<double>(loss.data().data<float>()[0]);

      // Flatten gradients, all-reduce (mean), write back, step.
      std::size_t total = 0;
      for (const auto& p : params) {
        total += static_cast<std::size_t>(p.data().numel());
      }
      std::vector<float> flat(total);
      std::size_t off = 0;
      for (const auto& p : params) {
        const auto n = static_cast<std::size_t>(p.data().numel());
        if (p.grad().defined()) {
          std::copy(p.grad().data<float>(), p.grad().data<float>() + n,
                    flat.begin() + static_cast<std::ptrdiff_t>(off));
        } else {
          std::fill(flat.begin() + static_cast<std::ptrdiff_t>(off),
                    flat.begin() + static_cast<std::ptrdiff_t>(off + n), 0.0f);
        }
        off += n;
      }
      allreduce.run(rank, flat);
      off = 0;
      for (auto& p : params) {
        const auto n = static_cast<std::size_t>(p.data().numel());
        Tensor g(p.data().shape(), DType::kF32);
        std::copy(flat.begin() + static_cast<std::ptrdiff_t>(off),
                  flat.begin() + static_cast<std::ptrdiff_t>(off + n),
                  g.data<float>());
        p.zero_grad();
        p.accumulate_grad(g);
        off += n;
      }
      opt.step();
    }
    replica_loss[static_cast<std::size_t>(rank)] = loss_sum;
  };

  std::vector<std::thread> threads;
  threads.reserve(world);
  for (int r = 0; r < config_.world_size; ++r) {
    threads.emplace_back(replica_body, r);
  }
  for (auto& t : threads) t.join();

  DdpEpochResult result;
  result.epoch_seconds = timer.seconds();
  result.batches_per_replica = static_cast<std::int64_t>(batches_per_replica);
  double total_loss = 0;
  for (const double l : replica_loss) total_loss += l;
  result.mean_loss = total_loss / static_cast<double>(world *
                                                      batches_per_replica);
  return result;
}

bool DdpTrainer::replicas_in_sync() const {
  if (models_.size() < 2) return true;
  const auto ref = models_[0]->parameters();
  for (std::size_t r = 1; r < models_.size(); ++r) {
    const auto params = models_[r]->parameters();
    if (params.size() != ref.size()) return false;
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (!allclose(params[i].data(), ref[i].data(), 0.0, 0.0)) return false;
    }
  }
  return true;
}

}  // namespace salient
