// Distributed-data-parallel training over in-process replicas.
//
// Mirrors the structure of PyTorch DDP as the paper uses it (§6, multi-GPU
// scaling): every replica holds an identical copy of the model, processes
// its shard of the shuffled training set (effective batch size scales with
// the number of replicas), and after each local backward the replicas
// average gradients with a ring all-reduce before stepping their (identical)
// optimizers — keeping parameters bit-wise in sync, which tests assert.
//
// Replicas are threads in one process; wall-clock scaling numbers for the
// paper's cluster come from the calibrated discrete-event simulator (see
// src/sim), not from this class.
#pragma once

#include <memory>
#include <vector>

#include "dist/allreduce.h"
#include "graph/dataset.h"
#include "nn/models.h"
#include "optim/adam.h"
#include "prep/loader_config.h"

namespace salient {

struct DdpConfig {
  int world_size = 2;
  std::string arch = "sage";
  nn::ModelConfig model;  ///< same seed => identical replica initialization
  LoaderConfig loader;    ///< per-replica batch size, fanouts, epoch seed
  double lr = 3e-3;
};

struct DdpEpochResult {
  double epoch_seconds = 0;
  double mean_loss = 0;
  std::int64_t batches_per_replica = 0;
};

class DdpTrainer {
 public:
  DdpTrainer(const Dataset& dataset, DdpConfig config);

  /// One synchronized epoch across all replicas.
  DdpEpochResult train_epoch(int epoch);

  /// True when all replicas' parameters are exactly equal (the DDP
  /// invariant; gradients averaging keeps it).
  bool replicas_in_sync() const;

  /// Access a replica's model (e.g. replica 0 for evaluation).
  const std::shared_ptr<nn::GnnModel>& replica(int r) const {
    return models_[static_cast<std::size_t>(r)];
  }
  int world_size() const { return config_.world_size; }

 private:
  const Dataset& dataset_;
  DdpConfig config_;
  std::vector<std::shared_ptr<nn::GnnModel>> models_;
  std::vector<std::unique_ptr<optim::Adam>> optimizers_;
};

}  // namespace salient
