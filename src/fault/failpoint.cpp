#include "fault/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace salient::fault {

TriggerSpec TriggerSpec::parse(const std::string& text) {
  std::string body = text;
  TriggerSpec spec;
  if (const auto at = body.find('@'); at != std::string::npos) {
    spec.arg = std::stod(body.substr(at + 1));
    body.resize(at);
  }
  std::vector<std::string> parts;
  std::stringstream ss(body);
  for (std::string p; std::getline(ss, p, ':');) parts.push_back(p);
  if (parts.empty()) throw std::invalid_argument("empty failpoint trigger");
  const std::string& mode = parts[0];
  auto want = [&](std::size_t lo, std::size_t hi) {
    if (parts.size() < lo + 1 || parts.size() > hi + 1) {
      throw std::invalid_argument("bad failpoint trigger: " + text);
    }
  };
  if (mode == "off") {
    want(0, 0);
    spec.mode = TriggerMode::kOff;
  } else if (mode == "always") {
    want(0, 0);
    spec.mode = TriggerMode::kAlways;
  } else if (mode == "nth") {
    want(1, 1);
    spec.mode = TriggerMode::kNth;
    spec.n = std::stoull(parts[1]);
  } else if (mode == "every") {
    want(1, 1);
    spec.mode = TriggerMode::kEveryK;
    spec.n = std::stoull(parts[1]);
  } else if (mode == "prob") {
    want(1, 2);
    spec.mode = TriggerMode::kProb;
    spec.p = std::stod(parts[1]);
    if (parts.size() == 3) spec.seed = std::stoull(parts[2]);
  } else {
    throw std::invalid_argument("unknown failpoint trigger: " + text);
  }
  if ((spec.mode == TriggerMode::kNth || spec.mode == TriggerMode::kEveryK) &&
      spec.n == 0) {
    throw std::invalid_argument("failpoint trigger needs N >= 1: " + text);
  }
  return spec;
}

Failpoint::Failpoint(std::string name) : name_(std::move(name)) {}

bool Failpoint::should_fire() {
  // Unarmed fast path: hits are not even counted, so an instrumented binary
  // with no schedule armed pays one relaxed load per site visit.
  if (mode_.load(std::memory_order_relaxed) == TriggerMode::kOff) {
    return false;
  }
  bool fire = false;
  {
    LockGuard lock(mu_);
    if (spec_.mode == TriggerMode::kOff) return false;  // disarmed racily
    const std::uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
    switch (spec_.mode) {
      case TriggerMode::kAlways:
        fire = true;
        break;
      case TriggerMode::kNth:
        fire = hit == spec_.n;
        break;
      case TriggerMode::kEveryK:
        fire = hit % spec_.n == 0;
        break;
      case TriggerMode::kProb:
        fire = static_cast<double>(rng_()) /
                   static_cast<double>(Xoshiro256ss::max()) <
               spec_.p;
        break;
      case TriggerMode::kOff:
        break;
    }
    if (fire) fires_.fetch_add(1, std::memory_order_relaxed);
  }
  if (fire) {
    static obs::Counter& m_fired =
        obs::Registry::global().counter("fault.fired");
    m_fired.add();
  }
  return fire;
}

void Failpoint::arm(const TriggerSpec& spec) {
  LockGuard lock(mu_);
  spec_ = spec;
  rng_ = Xoshiro256ss(spec.seed);
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
  arg_.store(spec.arg, std::memory_order_relaxed);
  mode_.store(spec.mode, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // intentionally leaked
  return *instance;
}

Registry::Registry() {
  // Environment-configured schedules make any binary chaos-testable without
  // code changes: SALIENT_FAILPOINT_SPEC="dma.h2d=every:5,...".
  if (const char* env = std::getenv("SALIENT_FAILPOINT_SPEC")) {
    configure_from_spec(env);
  }
}

Failpoint& Registry::failpoint(const std::string& name) {
  LockGuard lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<Failpoint>(name)).first;
  }
  return *it->second;
}

void Registry::configure(const std::string& name, const TriggerSpec& spec) {
  failpoint(name).arm(spec);
}

void Registry::configure_from_spec(const std::string& spec) {
  std::stringstream ss(spec);
  for (std::string entry; std::getline(ss, entry, ',');) {
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("bad failpoint entry: " + entry);
    }
    configure(entry.substr(0, eq), TriggerSpec::parse(entry.substr(eq + 1)));
  }
}

void Registry::disarm_all() {
  std::vector<Failpoint*> points;
  {
    LockGuard lock(mu_);
    points.reserve(points_.size());
    for (auto& [name, fp] : points_) points.push_back(fp.get());
  }
  for (Failpoint* fp : points) fp->disarm();
}

std::string Registry::dump() const {
  LockGuard lock(mu_);
  std::ostringstream os;
  for (const auto& [name, fp] : points_) {
    os << name << " " << (fp->armed() ? "armed" : "off") << " hits="
       << fp->hits() << " fires=" << fp->fires() << "\n";
  }
  return os.str();
}

void maybe_wedge(Failpoint& fp) {
  if (!fp.should_fire()) return;
  const double us = fp.arg();
  if (us <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
}

}  // namespace salient::fault
