// Deterministic, compile-time-gated fault injection (failpoints).
//
// The pipeline's value is concurrency — sampler workers, pinned slicing,
// overlapped H2D/compute, serving threads — which means its failure modes are
// stalls, queue wedges, allocation failures, transfer errors and worker
// deaths. This framework lets tests *script* those faults deterministically
// instead of waiting for real hardware to misbehave:
//
//   * a process-global registry of named failpoints ("dma.h2d",
//     "prep.worker.die", "queue.prep_out.wedge", ...);
//   * each failpoint is armed with a trigger: fire on the Nth hit, every Kth
//     hit, with seeded probability p per hit, always, or never;
//   * sites consult their failpoint via SALIENT_FAILPOINT("name") — a bool
//     expression that compiles to `false` (and the site's fault branch to
//     dead code) unless the build sets SALIENT_FAILPOINTS=ON;
//   * schedules are configured programmatically (tests) or from the
//     SALIENT_FAILPOINT_SPEC environment variable, e.g.
//       SALIENT_FAILPOINT_SPEC="dma.h2d=every:5,prep.worker.die=nth:3"
//
// Determinism: triggers depend only on a failpoint's own hit counter and its
// own seeded RNG, never on wall time or global randomness. Which *thread*
// takes a given hit may vary with scheduling, but the hardened pipeline is
// required to produce identical results wherever a fault lands (lossless
// recovery) — the property tests/test_chaos.cpp asserts.
//
// Naming convention (docs/TESTING.md): `<subsystem>.<site>[.<fault>]`, e.g.
// dma.h2d, pinned.exhausted, prep.worker.die, serve.prep.fail,
// queue.<name>.wedge, mpmc.<name>.pop_empty; the cluster fault sites
// (docs/DISTRIBUTED.md) are dist.net.drop, dist.net.degrade,
// dist.node.fail and dist.node.slow.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/rng.h"
#include "util/thread_annotations.h"

namespace salient::fault {

/// True when the build compiled the failpoint sites in (CMake option
/// SALIENT_FAILPOINTS=ON). When false, SALIENT_FAILPOINT(...) is the literal
/// `false` and every injected-fault branch is dead code.
#if defined(SALIENT_FAILPOINTS_ENABLED)
inline constexpr bool kFailpointsCompiledIn = true;
#else
inline constexpr bool kFailpointsCompiledIn = false;
#endif

enum class TriggerMode : std::uint8_t {
  kOff,     ///< never fires (the unarmed default)
  kAlways,  ///< fires on every hit
  kNth,     ///< fires exactly once, on hit number N (1-based)
  kEveryK,  ///< fires on hits K, 2K, 3K, ...
  kProb,    ///< fires with probability p per hit (seeded, per-failpoint RNG)
};

/// How an armed failpoint decides to fire, plus an optional numeric argument
/// the site interprets (e.g. wedge duration in microseconds).
struct TriggerSpec {
  TriggerMode mode = TriggerMode::kOff;
  std::uint64_t n = 0;       ///< kNth: the hit; kEveryK: the period
  double p = 0.0;            ///< kProb: per-hit probability
  std::uint64_t seed = 1;    ///< kProb: RNG seed
  double arg = 0.0;          ///< site-interpreted (e.g. wedge microseconds)

  static TriggerSpec off() { return {}; }
  static TriggerSpec always() { return {TriggerMode::kAlways, 0, 0, 1, 0}; }
  static TriggerSpec nth(std::uint64_t hit) {
    return {TriggerMode::kNth, hit, 0, 1, 0};
  }
  static TriggerSpec every(std::uint64_t k) {
    return {TriggerMode::kEveryK, k, 0, 1, 0};
  }
  static TriggerSpec prob(double probability, std::uint64_t seed) {
    return {TriggerMode::kProb, 0, probability, seed, 0};
  }
  TriggerSpec with_arg(double a) const {
    TriggerSpec s = *this;
    s.arg = a;
    return s;
  }

  /// Parse "off" | "always" | "nth:N" | "every:K" | "prob:P[:SEED]", each
  /// optionally suffixed "@ARG". Throws std::invalid_argument on bad input.
  static TriggerSpec parse(const std::string& text);
};

/// One named failpoint. Never destroyed (owned by the registry), so sites
/// may cache references/pointers for the process lifetime.
class Failpoint {
 public:
  explicit Failpoint(std::string name);

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  /// Record a hit and evaluate the armed trigger. One relaxed atomic load
  /// when unarmed; a short mutex-protected section when armed (failpoints
  /// are a test harness, not a hot-path instrument).
  bool should_fire();

  /// Arm with `spec`, resetting the hit/fire counters and the trigger RNG —
  /// re-arming with the same spec reproduces the same schedule.
  void arm(const TriggerSpec& spec);
  void disarm() { arm(TriggerSpec::off()); }

  bool armed() const {
    return mode_.load(std::memory_order_relaxed) != TriggerMode::kOff;
  }
  /// The armed spec's site argument (e.g. wedge microseconds).
  double arg() const { return arg_.load(std::memory_order_relaxed); }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t fires() const {
    return fires_.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  const std::string name_;  // unguarded: const
  std::atomic<TriggerMode> mode_{TriggerMode::kOff};
  std::atomic<double> arg_{0.0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fires_{0};
  Mutex mu_;  // guards spec_/rng_ and the armed-path counter updates
  TriggerSpec spec_ GUARDED_BY(mu_);
  Xoshiro256ss rng_ GUARDED_BY(mu_){1};
};

/// Process-global name -> failpoint registry (intentionally leaked, like the
/// obs registry, so worker threads may consult failpoints during teardown).
class Registry {
 public:
  static Registry& global();

  /// Get or create the named failpoint; the reference is valid forever.
  Failpoint& failpoint(const std::string& name);

  /// Arm `name` with `spec` (creating the failpoint if needed).
  void configure(const std::string& name, const TriggerSpec& spec);

  /// Arm from a comma-separated spec string: "a=nth:3,b=prob:0.1:42@500".
  /// Throws std::invalid_argument on malformed input.
  void configure_from_spec(const std::string& spec);

  /// Disarm every registered failpoint (test isolation helper).
  void disarm_all();

  /// One "name mode hits fires" line per registered failpoint, sorted by
  /// name — printed by the chaos watchdog on timeout.
  std::string dump() const;

 private:
  Registry();

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>> points_ GUARDED_BY(mu_);
};

/// RAII test helper: disarms every failpoint on construction and again on
/// destruction, so chaos tests cannot leak schedules into later tests.
struct ScopedDisarm {
  ScopedDisarm() { Registry::global().disarm_all(); }
  ~ScopedDisarm() { Registry::global().disarm_all(); }
};

/// Sleep for `fp`'s configured argument, in microseconds, when it fires —
/// the standard "wedge" site (stalled producer/consumer/kernel). Defined in
/// failpoint.cpp so headers using it do not pull in <thread>.
void maybe_wedge(Failpoint& fp);

}  // namespace salient::fault

// ---------------------------------------------------------------------------
// Site macros. SALIENT_FAILPOINT(name) is a bool expression; the name must be
// a string literal (each site resolves its failpoint once into a function-
// local static). With SALIENT_FAILPOINTS=OFF it is the literal `false`, so
// the compiler removes the fault branch entirely.
// ---------------------------------------------------------------------------
#if defined(SALIENT_FAILPOINTS_ENABLED)

#define SALIENT_FAILPOINT(name)                                      \
  ([]() -> bool {                                                    \
    static ::salient::fault::Failpoint& _salient_fp =                \
        ::salient::fault::Registry::global().failpoint(name);        \
    return _salient_fp.should_fire();                                \
  }())

/// Stall the calling thread for the failpoint's configured argument
/// (microseconds) when it fires; no-op otherwise.
#define SALIENT_FAILPOINT_WEDGE(name)                                \
  ([]() {                                                            \
    static ::salient::fault::Failpoint& _salient_fp =                \
        ::salient::fault::Registry::global().failpoint(name);        \
    ::salient::fault::maybe_wedge(_salient_fp);                      \
  }())

#else  // failpoints compiled out

#define SALIENT_FAILPOINT(name) (false)
#define SALIENT_FAILPOINT_WEDGE(name) ((void)0)

#endif  // SALIENT_FAILPOINTS_ENABLED
