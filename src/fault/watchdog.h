// Deadlock watchdog for chaos tests.
//
// A chaos run that wedges would otherwise hang until the ctest TIMEOUT
// kills it with no diagnostics. The Watchdog converts a hang into a fast,
// attributable failure: arm it around the section that must make progress;
// if the section does not finish (destruction/disarm) within the deadline,
// the watchdog prints the armed failpoint schedule and their hit counts to
// stderr and aborts the process. Always compiled (it has no fault-injection
// behaviour of its own); the ctest-level timeout remains as the backstop.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "fault/failpoint.h"
#include "util/thread_annotations.h"

namespace salient::fault {

class Watchdog {
 public:
  explicit Watchdog(std::chrono::milliseconds deadline,
                    std::string what = "chaos run")
      : what_(std::move(what)), thread_([this, deadline] {
          const auto deadline_tp = std::chrono::steady_clock::now() + deadline;
          UniqueLock lock(mu_);
          while (!disarmed_) {
            if (cv_.wait_until(lock, deadline_tp) ==
                std::cv_status::timeout) {
              break;
            }
          }
          if (disarmed_) return;  // section completed in time
          std::fprintf(stderr,
                       "[watchdog] '%s' did not complete within deadline — "
                       "likely deadlock/wedge. Failpoint state:\n%s",
                       what_.c_str(), Registry::global().dump().c_str());
          std::fflush(stderr);
          std::abort();
        }) {}

  ~Watchdog() {
    disarm();
    thread_.join();
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Mark the guarded section complete; the watchdog stands down.
  void disarm() {
    {
      LockGuard lock(mu_);
      disarmed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::string what_;  // unguarded: written once before arm()
  Mutex mu_;
  CondVar cv_;
  bool disarmed_ GUARDED_BY(mu_) = false;
  std::thread thread_;  // unguarded: set in ctor, joined in dtor only
};

}  // namespace salient::fault
