#include "graph/builder.h"

#include <algorithm>
#include <stdexcept>

namespace salient {

CsrGraph build_csr(std::int64_t num_nodes, const EdgeList& edges,
                   bool symmetrize, bool dedup) {
  if (edges.src.size() != edges.dst.size()) {
    throw std::invalid_argument("build_csr: src/dst size mismatch");
  }
  const std::size_t m = edges.size();
  const std::size_t total = symmetrize ? 2 * m : m;

  // Counting sort by source: one pass to count degrees, one to place.
  std::vector<std::int64_t> indptr(static_cast<std::size_t>(num_nodes) + 1, 0);
  auto check = [num_nodes](NodeId v) {
    if (v < 0 || v >= num_nodes) {
      throw std::out_of_range("build_csr: node id out of range");
    }
  };
  for (std::size_t i = 0; i < m; ++i) {
    check(edges.src[i]);
    check(edges.dst[i]);
    ++indptr[static_cast<std::size_t>(edges.src[i]) + 1];
    if (symmetrize) ++indptr[static_cast<std::size_t>(edges.dst[i]) + 1];
  }
  for (std::size_t i = 1; i < indptr.size(); ++i) indptr[i] += indptr[i - 1];

  std::vector<NodeId> indices(total);
  std::vector<std::int64_t> cursor(indptr.begin(), indptr.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    indices[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(edges.src[i])]++)] = edges.dst[i];
    if (symmetrize) {
      indices[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(edges.dst[i])]++)] = edges.src[i];
    }
  }

  if (!dedup) return CsrGraph(num_nodes, std::move(indptr), std::move(indices));

  // Sort each row, drop duplicates and self-loops, then compact.
  std::vector<std::int64_t> new_indptr(indptr.size(), 0);
  std::size_t write = 0;
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    const auto b = static_cast<std::size_t>(indptr[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(indptr[static_cast<std::size_t>(v) + 1]);
    std::sort(indices.begin() + static_cast<std::ptrdiff_t>(b),
              indices.begin() + static_cast<std::ptrdiff_t>(e));
    NodeId prev = -1;
    for (std::size_t k = b; k < e; ++k) {
      const NodeId u = indices[k];
      if (u == v || u == prev) continue;  // self-loop or duplicate
      indices[write++] = u;
      prev = u;
    }
    new_indptr[static_cast<std::size_t>(v) + 1] =
        static_cast<std::int64_t>(write);
  }
  indices.resize(write);
  indices.shrink_to_fit();
  return CsrGraph(num_nodes, std::move(new_indptr), std::move(indices));
}

}  // namespace salient
