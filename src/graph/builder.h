// COO -> CSR construction with optional symmetrization and deduplication.
#pragma once

#include <vector>

#include "graph/csr.h"

namespace salient {

/// An edge list (directed, parallel arrays).
struct EdgeList {
  std::vector<NodeId> src;
  std::vector<NodeId> dst;

  std::size_t size() const { return src.size(); }
  void push(NodeId s, NodeId d) {
    src.push_back(s);
    dst.push_back(d);
  }
};

/// Build a CSR graph from an edge list.
/// `symmetrize` adds the reverse of every edge (making the graph undirected);
/// `dedup` removes parallel edges and self-loops after sorting each row.
CsrGraph build_csr(std::int64_t num_nodes, const EdgeList& edges,
                   bool symmetrize = true, bool dedup = true);

}  // namespace salient
