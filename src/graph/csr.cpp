#include "graph/csr.h"

#include <stdexcept>

namespace salient {

CsrGraph::CsrGraph(std::int64_t num_nodes, std::vector<std::int64_t> indptr,
                   std::vector<NodeId> indices)
    : num_nodes_(num_nodes),
      indptr_(std::move(indptr)),
      indices_(std::move(indices)) {
  if (!valid()) throw std::invalid_argument("CsrGraph: invalid CSR arrays");
}

bool CsrGraph::valid() const {
  if (num_nodes_ < 0) return false;
  if (static_cast<std::int64_t>(indptr_.size()) != num_nodes_ + 1) return false;
  if (indptr_.front() != 0) return false;
  if (indptr_.back() != static_cast<std::int64_t>(indices_.size())) {
    return false;
  }
  for (std::size_t i = 1; i < indptr_.size(); ++i) {
    if (indptr_[i] < indptr_[i - 1]) return false;
  }
  for (const NodeId v : indices_) {
    if (v < 0 || v >= num_nodes_) return false;
  }
  return true;
}

}  // namespace salient
