// Compressed-sparse-row graph representation.
//
// The input graph for sampling is stored exactly as PyG/DGL store it for
// NeighborSampler: a CSR adjacency (indptr/indices) over node IDs. Graphs are
// made undirected by symmetrization at build time, matching the common
// practice noted in the paper (§6, "All graphs were made undirected").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace salient {

using NodeId = std::int64_t;

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of prebuilt CSR arrays. indptr must have
  /// num_nodes+1 monotone entries starting at 0 and ending at indices.size().
  CsrGraph(std::int64_t num_nodes, std::vector<std::int64_t> indptr,
           std::vector<NodeId> indices);

  std::int64_t num_nodes() const { return num_nodes_; }
  /// Number of directed adjacency entries (2x the undirected edge count).
  std::int64_t num_edges() const {
    return static_cast<std::int64_t>(indices_.size());
  }

  /// Out-degree of v.
  std::int64_t degree(NodeId v) const {
    return indptr_[static_cast<std::size_t>(v) + 1] -
           indptr_[static_cast<std::size_t>(v)];
  }

  /// Neighbor list of v.
  std::span<const NodeId> neighbors(NodeId v) const {
    const auto b = static_cast<std::size_t>(indptr_[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(indptr_[static_cast<std::size_t>(v) + 1]);
    return {indices_.data() + b, e - b};
  }

  const std::vector<std::int64_t>& indptr() const { return indptr_; }
  const std::vector<NodeId>& indices() const { return indices_; }

  /// Validate structural invariants (monotone indptr, in-range indices).
  bool valid() const;

  /// Average degree (num_edges / num_nodes).
  double avg_degree() const {
    return num_nodes_ ? static_cast<double>(num_edges()) /
                            static_cast<double>(num_nodes_)
                      : 0.0;
  }

 private:
  std::int64_t num_nodes_ = 0;
  std::vector<std::int64_t> indptr_{0};
  std::vector<NodeId> indices_;
};

}  // namespace salient
