#include "graph/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace salient {

namespace {

double unit_uniform(Xoshiro256ss& rng) {
  return (static_cast<double>(rng()) + 0.5) / 18446744073709551616.0;
}

}  // namespace

Dataset generate_dataset(const DatasetConfig& c) {
  if (c.train_frac + c.val_frac + c.test_frac > 1.0 + 1e-9) {
    throw std::invalid_argument("generate_dataset: split fractions > 1");
  }
  SbmParams sp;
  sp.num_nodes = c.num_nodes;
  sp.num_blocks = c.num_classes;
  sp.avg_degree = c.avg_degree;
  sp.exponent = c.powerlaw_exponent;
  sp.max_degree = c.max_degree;
  sp.p_in = c.p_in;
  sp.seed = c.seed;
  SbmGraph sg = sbm_powerlaw(sp);

  Dataset ds;
  ds.name = c.name;
  ds.graph = std::move(sg.graph);
  ds.num_classes = c.num_classes;
  ds.feature_dim = c.feature_dim;

  Xoshiro256ss rng(c.seed ^ 0x9e3779b97f4a7c15ull);

  // Class centroids: random +/- feature_signal patterns.
  std::vector<float> centroids(
      static_cast<std::size_t>(c.num_classes * c.feature_dim));
  for (auto& v : centroids) {
    v = (rng() & 1) ? static_cast<float>(c.feature_signal)
                    : -static_cast<float>(c.feature_signal);
  }

  // Labels: planted community with label noise.
  ds.labels = Tensor({c.num_nodes}, DType::kI64);
  std::int64_t* py = ds.labels.data<std::int64_t>();
  for (std::int64_t v = 0; v < c.num_nodes; ++v) {
    if (unit_uniform(rng) < c.label_noise) {
      py[v] = static_cast<std::int64_t>(
          bounded_rand(rng, static_cast<std::uint64_t>(c.num_classes)));
    } else {
      py[v] = sg.block[static_cast<std::size_t>(v)];
    }
  }

  // Features: centroid of the *true* community plus uniform noise, stored in
  // the configured precision (f16 by default, as in the paper's host store).
  // Uniform noise keeps generation cheap at papers-sim scale. Rows are
  // generated into an f32 staging buffer and bulk-converted, so the f16 path
  // uses the hardware converters (util/half.h) instead of a scalar loop.
  if (c.feature_dtype != DType::kF16 && c.feature_dtype != DType::kF32) {
    throw std::invalid_argument("generate_dataset: feature_dtype not f16/f32");
  }
  ds.features = Tensor({c.num_nodes, c.feature_dim}, c.feature_dtype);
  const auto noise = static_cast<float>(c.feature_noise);
  std::vector<float> row(static_cast<std::size_t>(c.feature_dim));
  for (std::int64_t v = 0; v < c.num_nodes; ++v) {
    const float* cen =
        centroids.data() +
        static_cast<std::size_t>(sg.block[static_cast<std::size_t>(v)]) *
            static_cast<std::size_t>(c.feature_dim);
    for (std::int64_t j = 0; j < c.feature_dim; ++j) {
      const auto u = static_cast<float>(2.0 * unit_uniform(rng) - 1.0);
      row[static_cast<std::size_t>(j)] = cen[j] + noise * u;
    }
    if (c.feature_dtype == DType::kF16) {
      float_to_half_n(row.data(),
                      ds.features.data<Half>() + v * c.feature_dim,
                      row.size());
    } else {
      std::copy(row.begin(), row.end(),
                ds.features.data<float>() + v * c.feature_dim);
    }
  }

  // Splits: a random permutation divided by the configured fractions.
  std::vector<NodeId> perm(static_cast<std::size_t>(c.num_nodes));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[bounded_rand(rng, i)]);
  }
  const auto n_train = static_cast<std::size_t>(
      c.train_frac * static_cast<double>(c.num_nodes));
  const auto n_val =
      static_cast<std::size_t>(c.val_frac * static_cast<double>(c.num_nodes));
  const auto n_test =
      static_cast<std::size_t>(c.test_frac * static_cast<double>(c.num_nodes));
  ds.train_idx.assign(perm.begin(), perm.begin() + n_train);
  ds.val_idx.assign(perm.begin() + n_train, perm.begin() + n_train + n_val);
  ds.test_idx.assign(perm.begin() + n_train + n_val,
                     perm.begin() + std::min(perm.size(), n_train + n_val + n_test));
  return ds;
}

DatasetConfig arxiv_sim_config(double scale) {
  // ogbn-arxiv: 169K nodes, 1.2M edges, f=128, 40 classes,
  // splits 91K/30K/48K (54%/18%/28%). Default scale keeps full size.
  DatasetConfig c;
  c.name = "arxiv-sim";
  c.num_nodes = static_cast<std::int64_t>(169000 * scale);
  c.feature_dim = 128;
  c.num_classes = 40;
  c.avg_degree = 14.0;  // 2*1.2M/169K directed adjacency entries
  c.powerlaw_exponent = 2.6;
  c.max_degree = 1000;
  c.train_frac = 0.54;
  c.val_frac = 0.18;
  c.test_frac = 0.28;
  c.seed = 41;
  return c;
}

DatasetConfig products_sim_config(double scale) {
  // ogbn-products: 2.4M nodes, 62M edges, f=100, 47 classes,
  // splits 197K/39K/2.2M (8%/1.6%/90%). Default scaled to 300K nodes.
  DatasetConfig c;
  c.name = "products-sim";
  c.num_nodes = static_cast<std::int64_t>(300000 * scale);
  c.feature_dim = 100;
  c.num_classes = 47;
  c.avg_degree = 25.0;  // paper's avg directed degree ~51; halved for scale
  c.powerlaw_exponent = 2.3;
  c.max_degree = 5000;
  c.train_frac = 0.08;
  c.val_frac = 0.016;
  c.test_frac = 0.9;
  c.seed = 42;
  return c;
}

DatasetConfig papers_sim_config(double scale) {
  // ogbn-papers100M: 111M nodes, 1.6B edges, f=128, 172 classes,
  // splits 1.2M/125K/214K (1.1%/0.11%/0.19%). Default scaled to 1M nodes.
  DatasetConfig c;
  c.name = "papers-sim";
  c.num_nodes = static_cast<std::int64_t>(1000000 * scale);
  c.feature_dim = 128;
  c.num_classes = 172;
  c.avg_degree = 16.0;
  c.powerlaw_exponent = 2.4;
  c.max_degree = 10000;
  c.train_frac = 0.011;
  c.val_frac = 0.0011;
  c.test_frac = 0.0019;
  c.seed = 43;
  return c;
}

DatasetConfig preset_config(const std::string& name, double scale) {
  if (name == "arxiv-sim") return arxiv_sim_config(scale);
  if (name == "products-sim") return products_sim_config(scale);
  if (name == "papers-sim") return papers_sim_config(scale);
  throw std::invalid_argument("preset_config: unknown preset " + name);
}

}  // namespace salient
