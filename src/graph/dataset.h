// Synthetic node-classification datasets standing in for the OGB benchmarks.
//
// Each dataset couples a DC-SBM power-law graph with features and labels that
// make the classification task learnable through neighborhood aggregation:
// a node's true class is its planted community, its feature vector is a
// weak (low signal-to-noise) copy of the class centroid, and neighbors are
// mostly same-community — so a GNN that aggregates more (higher fanout)
// denoises better. This preserves the fanout-vs-accuracy tradeoffs studied in
// the paper's Table 6 and Figure 3 without the proprietary OGB data.
//
// Node features are stored in half precision, exactly like the paper's host
// feature store ("half-precision floating point for feature vectors in host
// memory", §3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "graph/generator.h"
#include "tensor/tensor.h"

namespace salient {

struct DatasetConfig {
  std::string name = "synthetic";
  std::int64_t num_nodes = 10000;
  std::int64_t feature_dim = 64;
  std::int64_t num_classes = 10;
  double avg_degree = 10.0;
  double powerlaw_exponent = 2.5;
  std::int64_t max_degree = 1000;
  double p_in = 0.8;            ///< intra-community edge probability
  double feature_signal = 0.3;  ///< centroid magnitude in features
  double feature_noise = 1.0;   ///< additive noise magnitude
  double label_noise = 0.05;    ///< fraction of randomly relabeled nodes
  double train_frac = 0.5;
  double val_frac = 0.2;
  double test_frac = 0.3;
  std::uint64_t seed = 1;
  /// Storage dtype of the host feature store: kF16 (the paper's default,
  /// "half-precision floating point for feature vectors in host memory", §3)
  /// or kF32 (uncompressed baseline for the compressed-pipeline A/Bs).
  DType feature_dtype = DType::kF16;
};

struct Dataset {
  std::string name;
  CsrGraph graph;
  Tensor features;  ///< [N, f] host feature store (f16 default, or f32)
  Tensor labels;    ///< [N] i64 class indices
  std::vector<NodeId> train_idx;
  std::vector<NodeId> val_idx;
  std::vector<NodeId> test_idx;
  std::int64_t num_classes = 0;
  std::int64_t feature_dim = 0;

  /// Bytes held by the feature store (the dominant memory cost).
  std::size_t feature_bytes() const { return features.nbytes(); }
};

/// Generate a dataset from a config (deterministic in config.seed).
Dataset generate_dataset(const DatasetConfig& config);

/// Preset configs mirroring the shape of the OGB datasets in Table 4,
/// scaled by `scale` (scale=1 keeps the per-preset default size chosen to be
/// generable and trainable on a small machine; see DESIGN.md).
DatasetConfig arxiv_sim_config(double scale = 1.0);
DatasetConfig products_sim_config(double scale = 1.0);
DatasetConfig papers_sim_config(double scale = 1.0);

/// Look up a preset by name ("arxiv-sim", "products-sim", "papers-sim").
DatasetConfig preset_config(const std::string& name, double scale = 1.0);

}  // namespace salient
