#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/builder.h"
#include "util/rng.h"

namespace salient {

namespace {

/// Sample a degree from a discrete power law P(d) ~ d^-exponent on
/// [1, max_degree] via inverse-CDF of the continuous Pareto, rounded down.
std::int64_t sample_powerlaw_degree(Xoshiro256ss& rng, double exponent,
                                    std::int64_t max_degree) {
  const double u =
      (static_cast<double>(rng()) + 0.5) / 18446744073709551616.0;  // (0,1)
  // Inverse CDF of Pareto with x_min=1: x = (1-u)^(-1/(alpha-1)).
  const double x = std::pow(1.0 - u, -1.0 / (exponent - 1.0));
  const auto d = static_cast<std::int64_t>(x);
  return std::clamp<std::int64_t>(d, 1, max_degree);
}

/// Scale a degree sequence so its mean is ~avg_degree (keeps minimum 1).
void rescale_degrees(std::vector<std::int64_t>& deg, double avg_degree,
                     Xoshiro256ss& rng) {
  double sum = 0;
  for (auto d : deg) sum += static_cast<double>(d);
  const double mean = sum / static_cast<double>(deg.size());
  const double f = avg_degree / mean;
  for (auto& d : deg) {
    const double scaled = static_cast<double>(d) * f;
    auto floor_d = static_cast<std::int64_t>(scaled);
    // Stochastic rounding keeps the mean on target without bias.
    const double frac = scaled - static_cast<double>(floor_d);
    const double u =
        (static_cast<double>(rng()) + 0.5) / 18446744073709551616.0;
    d = std::max<std::int64_t>(1, floor_d + (u < frac ? 1 : 0));
  }
}

/// Pair up stubs of the configuration model into an edge list.
EdgeList pair_stubs(const std::vector<std::int64_t>& deg, Xoshiro256ss& rng) {
  std::size_t total = 0;
  for (auto d : deg) total += static_cast<std::size_t>(d);
  std::vector<NodeId> stubs;
  stubs.reserve(total);
  for (std::size_t v = 0; v < deg.size(); ++v) {
    for (std::int64_t k = 0; k < deg[v]; ++k) {
      stubs.push_back(static_cast<NodeId>(v));
    }
  }
  // Fisher-Yates shuffle, then pair consecutive stubs.
  for (std::size_t i = stubs.size(); i > 1; --i) {
    const std::size_t j = bounded_rand(rng, i);
    std::swap(stubs[i - 1], stubs[j]);
  }
  EdgeList edges;
  const std::size_t pairs = stubs.size() / 2;
  edges.src.reserve(pairs);
  edges.dst.reserve(pairs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    edges.push(stubs[i], stubs[i + 1]);
  }
  return edges;
}

}  // namespace

CsrGraph erdos_renyi(std::int64_t num_nodes, double avg_degree,
                     std::uint64_t seed) {
  if (num_nodes <= 1) throw std::invalid_argument("erdos_renyi: num_nodes");
  Xoshiro256ss rng(seed);
  const auto num_edges =
      static_cast<std::int64_t>(avg_degree * static_cast<double>(num_nodes) / 2.0);
  EdgeList edges;
  edges.src.reserve(static_cast<std::size_t>(num_edges));
  edges.dst.reserve(static_cast<std::size_t>(num_edges));
  for (std::int64_t i = 0; i < num_edges; ++i) {
    const auto s = static_cast<NodeId>(
        bounded_rand(rng, static_cast<std::uint64_t>(num_nodes)));
    const auto d = static_cast<NodeId>(
        bounded_rand(rng, static_cast<std::uint64_t>(num_nodes)));
    edges.push(s, d);
  }
  return build_csr(num_nodes, edges, /*symmetrize=*/true, /*dedup=*/true);
}

CsrGraph powerlaw_configuration(std::int64_t num_nodes, double avg_degree,
                                double exponent, std::int64_t max_degree,
                                std::uint64_t seed) {
  if (num_nodes <= 1) {
    throw std::invalid_argument("powerlaw_configuration: num_nodes");
  }
  if (exponent <= 1.0) {
    throw std::invalid_argument("powerlaw_configuration: exponent must be > 1");
  }
  Xoshiro256ss rng(seed);
  std::vector<std::int64_t> deg(static_cast<std::size_t>(num_nodes));
  for (auto& d : deg) d = sample_powerlaw_degree(rng, exponent, max_degree);
  rescale_degrees(deg, avg_degree, rng);
  EdgeList edges = pair_stubs(deg, rng);
  return build_csr(num_nodes, edges, /*symmetrize=*/true, /*dedup=*/true);
}

SbmGraph sbm_powerlaw(const SbmParams& p) {
  if (p.num_nodes <= 1 || p.num_blocks <= 0) {
    throw std::invalid_argument("sbm_powerlaw: bad sizes");
  }
  Xoshiro256ss rng(p.seed);

  // Assign blocks uniformly and draw power-law degree weights.
  std::vector<std::int32_t> block(static_cast<std::size_t>(p.num_nodes));
  std::vector<std::int64_t> deg(static_cast<std::size_t>(p.num_nodes));
  for (std::size_t v = 0; v < block.size(); ++v) {
    block[v] = static_cast<std::int32_t>(
        bounded_rand(rng, static_cast<std::uint64_t>(p.num_blocks)));
    deg[v] = sample_powerlaw_degree(rng, p.exponent, p.max_degree);
  }
  rescale_degrees(deg, p.avg_degree, rng);

  // Stub lists: global and per block, enabling O(1) degree-weighted sampling
  // of edge endpoints (a stub appears deg[v] times for node v).
  std::vector<NodeId> global_stubs;
  std::vector<std::vector<NodeId>> block_stubs(
      static_cast<std::size_t>(p.num_blocks));
  for (std::size_t v = 0; v < deg.size(); ++v) {
    for (std::int64_t k = 0; k < deg[v]; ++k) {
      global_stubs.push_back(static_cast<NodeId>(v));
      block_stubs[static_cast<std::size_t>(block[v])].push_back(
          static_cast<NodeId>(v));
    }
  }

  const auto num_edges = static_cast<std::int64_t>(
      p.avg_degree * static_cast<double>(p.num_nodes) / 2.0);
  const auto p_in_threshold = static_cast<std::uint64_t>(
      p.p_in * static_cast<double>(Xoshiro256ss::max()));
  EdgeList edges;
  edges.src.reserve(static_cast<std::size_t>(num_edges));
  edges.dst.reserve(static_cast<std::size_t>(num_edges));
  for (std::int64_t e = 0; e < num_edges; ++e) {
    const NodeId s = global_stubs[bounded_rand(rng, global_stubs.size())];
    NodeId d;
    if (rng() <= p_in_threshold) {
      const auto& bs = block_stubs[static_cast<std::size_t>(
          block[static_cast<std::size_t>(s)])];
      d = bs[bounded_rand(rng, bs.size())];
    } else {
      d = global_stubs[bounded_rand(rng, global_stubs.size())];
    }
    edges.push(s, d);
  }
  SbmGraph out;
  out.graph = build_csr(p.num_nodes, edges, /*symmetrize=*/true,
                        /*dedup=*/true);
  out.block = std::move(block);
  return out;
}

}  // namespace salient
