// Synthetic graph generators.
//
// The OGB benchmark graphs (ogbn-arxiv/products/papers100M) are not available
// offline, so the evaluation runs on synthetic stand-ins whose degree
// distribution (power law), community structure (degree-corrected stochastic
// block model) and feature/label generation (noisy community centroids)
// preserve the properties the paper's experiments depend on: heavy-tailed
// neighborhood-expansion cost, and labels that are recoverable from sampled
// neighborhoods so fanout-vs-accuracy tradeoffs are meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace salient {

/// Erdos-Renyi G(n, m)-style random graph (undirected, deduped).
CsrGraph erdos_renyi(std::int64_t num_nodes, double avg_degree,
                     std::uint64_t seed);

/// Power-law degree sequence graph via the configuration model (undirected,
/// deduped). `exponent` is the power-law exponent (typ. 2.0-3.0); degrees are
/// clamped to [1, max_degree].
CsrGraph powerlaw_configuration(std::int64_t num_nodes, double avg_degree,
                                double exponent, std::int64_t max_degree,
                                std::uint64_t seed);

/// Degree-corrected stochastic block model combined with a power-law degree
/// sequence. `num_blocks` communities; each edge endpoint is drawn by degree
/// weight, and with probability `p_in` the second endpoint is drawn from the
/// same community (else from the whole graph).
struct SbmParams {
  std::int64_t num_nodes = 0;
  std::int64_t num_blocks = 10;
  double avg_degree = 10.0;
  double exponent = 2.5;      ///< power-law exponent for degree weights
  std::int64_t max_degree = 1000;
  double p_in = 0.8;          ///< probability an edge stays intra-community
  std::uint64_t seed = 1;
};

/// The generated graph plus the planted community of each node.
struct SbmGraph {
  CsrGraph graph;
  std::vector<std::int32_t> block;  ///< block[v] in [0, num_blocks)
};

SbmGraph sbm_powerlaw(const SbmParams& params);

}  // namespace salient
