#include "graph/io.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace salient {

namespace {

constexpr char kMagic[4] = {'S', 'A', 'L', 'D'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("load_dataset: truncated file");
  return v;
}

template <typename T>
void write_vec(std::ofstream& os, const std::vector<T>& v) {
  write_pod(os, static_cast<std::int64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::ifstream& is, std::int64_t max_len) {
  const auto len = read_pod<std::int64_t>(is);
  if (len < 0 || len > max_len) {
    throw std::runtime_error("load_dataset: implausible array length");
  }
  std::vector<T> v(static_cast<std::size_t>(len));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!is) throw std::runtime_error("load_dataset: truncated file");
  return v;
}

}  // namespace

void save_dataset(const Dataset& ds, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_dataset: cannot open " + path);
  os.write(kMagic, 4);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(ds.name.size()));
  os.write(ds.name.data(), static_cast<std::streamsize>(ds.name.size()));
  write_pod(os, ds.graph.num_nodes());
  write_pod(os, ds.num_classes);
  write_pod(os, ds.feature_dim);
  write_vec(os, ds.graph.indptr());
  write_vec(os, ds.graph.indices());
  write_pod(os, static_cast<std::uint8_t>(ds.features.dtype()));
  os.write(static_cast<const char*>(ds.features.raw()),
           static_cast<std::streamsize>(ds.features.nbytes()));
  os.write(static_cast<const char*>(ds.labels.raw()),
           static_cast<std::streamsize>(ds.labels.nbytes()));
  write_vec(os, ds.train_idx);
  write_vec(os, ds.val_idx);
  write_vec(os, ds.test_idx);
  if (!os) throw std::runtime_error("save_dataset: write failed");
}

Dataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_dataset: cannot open " + path);
  char magic[4];
  is.read(magic, 4);
  const auto version = read_pod<std::uint32_t>(is);
  if (!is || std::memcmp(magic, kMagic, 4) != 0 || version != kVersion) {
    throw std::runtime_error("load_dataset: bad header");
  }
  Dataset ds;
  const auto name_len = read_pod<std::uint32_t>(is);
  if (name_len > 4096) throw std::runtime_error("load_dataset: name length");
  ds.name.resize(name_len);
  is.read(ds.name.data(), name_len);

  const auto num_nodes = read_pod<std::int64_t>(is);
  ds.num_classes = read_pod<std::int64_t>(is);
  ds.feature_dim = read_pod<std::int64_t>(is);
  if (num_nodes < 0 || ds.num_classes <= 0 || ds.feature_dim <= 0) {
    throw std::runtime_error("load_dataset: bad dimensions");
  }
  constexpr std::int64_t kMaxLen = 1LL << 40;
  auto indptr = read_vec<std::int64_t>(is, kMaxLen);
  auto indices = read_vec<NodeId>(is, kMaxLen);
  // CsrGraph's constructor validates the CSR invariants.
  ds.graph = CsrGraph(num_nodes, std::move(indptr), std::move(indices));

  const auto dtype = static_cast<DType>(read_pod<std::uint8_t>(is));
  if (dtype != DType::kF16 && dtype != DType::kF32) {
    throw std::runtime_error("load_dataset: bad feature dtype");
  }
  ds.features = Tensor({num_nodes, ds.feature_dim}, dtype);
  is.read(static_cast<char*>(ds.features.raw()),
          static_cast<std::streamsize>(ds.features.nbytes()));
  ds.labels = Tensor({num_nodes}, DType::kI64);
  is.read(static_cast<char*>(ds.labels.raw()),
          static_cast<std::streamsize>(ds.labels.nbytes()));
  if (!is) throw std::runtime_error("load_dataset: truncated file");

  ds.train_idx = read_vec<NodeId>(is, num_nodes);
  ds.val_idx = read_vec<NodeId>(is, num_nodes);
  ds.test_idx = read_vec<NodeId>(is, num_nodes);

  // Validate labels and splits.
  const std::int64_t* labels = ds.labels.data<std::int64_t>();
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    if (labels[v] < 0 || labels[v] >= ds.num_classes) {
      throw std::runtime_error("load_dataset: label out of range");
    }
  }
  for (const auto* split : {&ds.train_idx, &ds.val_idx, &ds.test_idx}) {
    for (const NodeId v : *split) {
      if (v < 0 || v >= num_nodes) {
        throw std::runtime_error("load_dataset: split node out of range");
      }
    }
  }
  return ds;
}

}  // namespace salient
