// Dataset serialization: save/load a full Dataset (graph, features, labels,
// splits) to a self-describing binary file, so users can import real graphs
// (e.g. converted OGB data) instead of the synthetic generators, and so
// generated datasets can be reused across runs without regeneration.
//
// Format (little-endian):
//   magic "SALD", version u32
//   name_len u32, name bytes
//   num_nodes i64, num_classes i64, feature_dim i64
//   indptr i64[num_nodes+1], indices_len i64, indices i64[...]
//   feature dtype u8, raw feature bytes
//   labels i64[num_nodes]
//   3x (split_len i64, split i64[...])   — train/val/test
#pragma once

#include <string>

#include "graph/dataset.h"

namespace salient {

/// Write `dataset` to `path` (overwrites). Throws on I/O failure.
void save_dataset(const Dataset& dataset, const std::string& path);

/// Load a dataset saved by save_dataset. Validates the header and all
/// structural invariants (CSR validity, label/split ranges); throws
/// std::runtime_error on any mismatch or truncation.
Dataset load_dataset(const std::string& path);

}  // namespace salient
