#include "graph/partition.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.h"

namespace salient {

GraphPartition partition_random(const CsrGraph& graph, int num_parts,
                                std::uint64_t seed) {
  if (num_parts < 1) throw std::invalid_argument("partition_random: parts");
  GraphPartition p;
  p.num_parts = num_parts;
  p.assignment.resize(static_cast<std::size_t>(graph.num_nodes()));
  Xoshiro256ss rng(seed);
  for (auto& a : p.assignment) {
    a = static_cast<std::int32_t>(
        bounded_rand(rng, static_cast<std::uint64_t>(num_parts)));
  }
  return p;
}

GraphPartition partition_ldg(const CsrGraph& graph, int num_parts,
                             double capacity_slack) {
  if (num_parts < 1) throw std::invalid_argument("partition_ldg: parts");
  if (capacity_slack < 1.0) {
    throw std::invalid_argument("partition_ldg: capacity_slack < 1");
  }
  const std::int64_t n = graph.num_nodes();
  GraphPartition p;
  p.num_parts = num_parts;
  p.assignment.assign(static_cast<std::size_t>(n), -1);

  const double capacity =
      capacity_slack * static_cast<double>(n) / num_parts;
  std::vector<std::int64_t> load(static_cast<std::size_t>(num_parts), 0);
  std::vector<std::int64_t> neighbor_count(
      static_cast<std::size_t>(num_parts), 0);

  // Stream nodes in descending-degree order: hubs anchor their communities.
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return graph.degree(a) > graph.degree(b);
  });

  for (const NodeId v : order) {
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    for (const NodeId u : graph.neighbors(v)) {
      const std::int32_t part = p.assignment[static_cast<std::size_t>(u)];
      if (part >= 0) ++neighbor_count[static_cast<std::size_t>(part)];
    }
    // LDG score: neighbors in part * (1 - load/capacity).
    int best = 0;
    double best_score = -1;
    for (int k = 0; k < num_parts; ++k) {
      const double penalty =
          1.0 - static_cast<double>(load[static_cast<std::size_t>(k)]) /
                    capacity;
      if (penalty <= 0) continue;  // part full
      const double score =
          static_cast<double>(neighbor_count[static_cast<std::size_t>(k)]) *
              penalty +
          penalty * 1e-9;  // tie-break toward the least-loaded part
      if (score > best_score) {
        best_score = score;
        best = k;
      }
    }
    p.assignment[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(best);
    ++load[static_cast<std::size_t>(best)];
  }
  return p;
}

double edge_cut_fraction(const CsrGraph& graph, const GraphPartition& p) {
  if (static_cast<std::int64_t>(p.assignment.size()) != graph.num_nodes()) {
    throw std::invalid_argument("edge_cut_fraction: partition size");
  }
  std::int64_t cut = 0;
  const std::int64_t total = graph.num_edges();
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const NodeId u : graph.neighbors(v)) {
      cut += (p.part_of(u) != p.part_of(v));
    }
  }
  return total > 0 ? static_cast<double>(cut) / static_cast<double>(total)
                   : 0.0;
}

double balance_factor(const GraphPartition& p) {
  if (p.assignment.empty()) return 1.0;
  std::vector<std::int64_t> load(static_cast<std::size_t>(p.num_parts), 0);
  for (const auto a : p.assignment) {
    ++load[static_cast<std::size_t>(a)];
  }
  const auto max_load = *std::max_element(load.begin(), load.end());
  const double ideal =
      static_cast<double>(p.assignment.size()) / p.num_parts;
  return static_cast<double>(max_load) / ideal;
}

}  // namespace salient
