// Graph partitioning for distributed GNN training (paper §8, future work).
//
// "An additional avenue of future work is distributing the graph and node
// data ... Graph partitioning will inevitably be invoked, but the objective
// may consider not only edge cut and load balance but also the cost of
// multi-hop neighborhood sampling."
//
// This implements the standard streaming baseline pair:
//   * partition_random — hash assignment (the no-structure baseline);
//   * partition_ldg    — Linear Deterministic Greedy (Stanton & Kliot):
//     nodes stream in degree order and each goes to the part holding most of
//     its already-placed neighbors, weighted by a capacity penalty.
// plus the metrics the paper's objective mentions: edge-cut fraction, load
// balance, and — the sampling-specific cost — the fraction of a sampled
// MFG's edges that cross partitions (each such edge is a remote neighbor
// fetch in a distributed sampler).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace salient {

struct GraphPartition {
  int num_parts = 1;
  std::vector<std::int32_t> assignment;  ///< node -> part in [0, num_parts)

  std::int32_t part_of(NodeId v) const {
    return assignment[static_cast<std::size_t>(v)];
  }
};

/// Uniform hash assignment.
GraphPartition partition_random(const CsrGraph& graph, int num_parts,
                                std::uint64_t seed);

/// Linear Deterministic Greedy streaming partitioner. `capacity_slack` > 1
/// allows parts to exceed the ideal size by that factor; nodes stream in
/// descending-degree order (hubs placed first anchor their communities).
GraphPartition partition_ldg(const CsrGraph& graph, int num_parts,
                             double capacity_slack = 1.05);

/// Fraction of graph edges whose endpoints land in different parts.
double edge_cut_fraction(const CsrGraph& graph, const GraphPartition& p);

/// Largest part size divided by the ideal (num_nodes / num_parts); 1.0 is
/// perfectly balanced.
double balance_factor(const GraphPartition& p);

}  // namespace salient
