#include "nn/activations.h"

#include "autograd/functions.h"

namespace salient::nn {

Variable relu(const Variable& x) { return autograd::relu(x); }

Variable leaky_relu(const Variable& x, double slope) {
  return autograd::leaky_relu(x, slope);
}

Variable log_softmax(const Variable& x) { return autograd::log_softmax(x); }

Variable Dropout::forward(const Variable& x) {
  return autograd::dropout(x, p_, is_training(), next_seed());
}

}  // namespace salient::nn
