// Functional activations and a Dropout module (torch.nn.functional flavour).
#pragma once

#include "autograd/variable.h"
#include "nn/module.h"

namespace salient::nn {

/// max(x, 0).
Variable relu(const Variable& x);
/// Leaky ReLU with the PyTorch default slope 0.01.
Variable leaky_relu(const Variable& x, double slope = 0.01);
/// Row-wise log-softmax.
Variable log_softmax(const Variable& x);

/// Inverted dropout. Each forward in training mode draws a fresh mask from
/// the module's deterministic seed stream (see Module::set_seed).
class Dropout : public Module {
 public:
  explicit Dropout(double p) : p_(p) {}
  Variable forward(const Variable& x);
  double p() const { return p_; }

 private:
  double p_;
};

}  // namespace salient::nn
