#include "nn/batchnorm.h"

#include "autograd/functions.h"

namespace salient::nn {

BatchNorm1d::BatchNorm1d(std::int64_t num_features, double momentum,
                         double eps)
    : momentum_(momentum), eps_(eps) {
  gamma_ = register_parameter("weight", Tensor::ones({num_features}));
  beta_ = register_parameter("bias", Tensor::zeros({num_features}));
  running_mean_ = register_buffer("running_mean",
                                  Tensor::zeros({num_features}));
  running_var_ = register_buffer("running_var", Tensor::ones({num_features}));
}

Variable BatchNorm1d::forward(const Variable& x) {
  return autograd::batch_norm(x, gamma_, beta_, running_mean_, running_var_,
                              is_training(), momentum_, eps_);
}

}  // namespace salient::nn
