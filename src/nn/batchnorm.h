// 1-D batch normalization (torch.nn.BatchNorm1d semantics).
#pragma once

#include "nn/module.h"

namespace salient::nn {

class BatchNorm1d : public Module {
 public:
  explicit BatchNorm1d(std::int64_t num_features, double momentum = 0.1,
                       double eps = 1e-5);

  /// Normalize rows of a [M, num_features] input. In training mode uses
  /// batch statistics and updates the running estimates; in eval mode uses
  /// the running estimates.
  Variable forward(const Variable& x);

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  double momentum_;
  double eps_;
  Variable gamma_;
  Variable beta_;
  Tensor running_mean_;
  Tensor running_var_;
};

}  // namespace salient::nn
