#include "nn/gat_conv.h"

#include <cmath>
#include <vector>

#include "autograd/functions.h"

namespace salient::nn {

namespace {

/// Per-head attention scores: h is [N, H*F], att is [H, F];
/// out[i,h] = sum_j h[i, h*F+j] * att[h,j]. A small custom autograd op
/// (a plain matmul cannot express the per-head block structure).
Variable per_head_score(const Variable& h, const Variable& att,
                        std::int64_t heads) {
  const Tensor th = h.data();
  const Tensor tatt = att.data();
  const std::int64_t n = th.size(0);
  const std::int64_t f = tatt.size(1);
  auto forward = [&](auto zero) {
    using T = decltype(zero);
    Tensor out({n, heads}, th.dtype());
    const T* ph = th.data<T>();
    const T* pa = tatt.data<T>();
    T* po = out.data<T>();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t hd = 0; hd < heads; ++hd) {
        double s = 0;
        for (std::int64_t j = 0; j < f; ++j) {
          s += double(ph[i * heads * f + hd * f + j]) *
               double(pa[hd * f + j]);
        }
        po[i * heads + hd] = static_cast<T>(s);
      }
    }
    return out;
  };
  Tensor out = th.dtype() == DType::kF32 ? forward(0.0f) : forward(0.0);
  return make_op_result(
      "PerHeadScore", std::move(out), {h, att},
      [th, tatt, heads, n, f](const Tensor& g) {
        auto backward = [&](auto zero) {
          using T = decltype(zero);
          Tensor dh(th.shape(), th.dtype());
          Tensor datt(tatt.shape(), tatt.dtype());
          const T* ph = th.data<T>();
          const T* pa = tatt.data<T>();
          const T* pg = g.data<T>();
          T* pdh = dh.data<T>();
          T* pda = datt.data<T>();
          for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t hd = 0; hd < heads; ++hd) {
              const double gv = double(pg[i * heads + hd]);
              for (std::int64_t j = 0; j < f; ++j) {
                pdh[i * heads * f + hd * f + j] =
                    static_cast<T>(gv * double(pa[hd * f + j]));
                pda[hd * f + j] += static_cast<T>(
                    gv * double(ph[i * heads * f + hd * f + j]));
              }
            }
          }
          return std::vector<Tensor>{std::move(dh), std::move(datt)};
        };
        return g.dtype() == DType::kF32 ? backward(0.0f) : backward(0.0);
      });
}

/// Saved forward state for the custom backward. Per destination row the edge
/// order is [sampled edges..., self edge]; alpha/dmask are flat arrays of
/// size (num_edges + num_dst) * heads.
template <typename T>
struct GatCtx {
  std::shared_ptr<const std::vector<std::int64_t>> indptr;
  std::shared_ptr<const std::vector<std::int64_t>> indices;
  std::int64_t num_dst = 0;
  std::int64_t heads = 1;
  std::vector<T> alpha;  // softmax weights per (edge|self) x head
  std::vector<T> dmask;  // LeakyReLU'(z_pre) per (edge|self) x head
  Tensor h;              // saved input projections [S, H*F]
};

template <typename T>
Tensor gat_forward(const Tensor& h, const Tensor& s_src, const Tensor& s_dst,
                   GatCtx<T>& ctx, double slope) {
  const auto& indptr = *ctx.indptr;
  const auto& indices = *ctx.indices;
  const std::int64_t d_count = ctx.num_dst;
  const std::int64_t heads = ctx.heads;
  const std::int64_t f = h.size(1) / heads;
  const T* ph = h.data<T>();
  const T* pss = s_src.data<T>();
  const T* psd = s_dst.data<T>();

  const auto num_edges = static_cast<std::int64_t>(indices.size());
  const auto slots = static_cast<std::size_t>((num_edges + d_count) * heads);
  ctx.alpha.assign(slots, T(0));
  ctx.dmask.assign(slots, T(0));

  Tensor out({d_count, heads * f}, h.dtype());
  T* po = out.data<T>();

  for (std::int64_t v = 0; v < d_count; ++v) {
    const std::int64_t b = indptr[static_cast<std::size_t>(v)];
    const std::int64_t e = indptr[static_cast<std::size_t>(v) + 1];
    const std::int64_t m = e - b + 1;  // +1 for the self edge
    for (std::int64_t hd = 0; hd < heads; ++hd) {
      double zmax = -1e300;
      for (std::int64_t k = 0; k < m; ++k) {
        const std::int64_t u =
            (k < m - 1) ? indices[static_cast<std::size_t>(b + k)] : v;
        const std::size_t slot = static_cast<std::size_t>(
            ((k < m - 1) ? (b + k) : (num_edges + v)) * heads + hd);
        const double zpre =
            double(pss[u * heads + hd]) + double(psd[v * heads + hd]);
        const double z = zpre > 0 ? zpre : slope * zpre;
        ctx.alpha[slot] = static_cast<T>(z);  // temporarily store z
        ctx.dmask[slot] = static_cast<T>(zpre > 0 ? 1.0 : slope);
        zmax = std::max(zmax, z);
      }
      double denom = 0;
      for (std::int64_t k = 0; k < m; ++k) {
        const std::size_t slot = static_cast<std::size_t>(
            ((k < m - 1) ? (b + k) : (num_edges + v)) * heads + hd);
        const double w = std::exp(double(ctx.alpha[slot]) - zmax);
        ctx.alpha[slot] = static_cast<T>(w);
        denom += w;
      }
      T* orow = po + v * heads * f + hd * f;
      for (std::int64_t k = 0; k < m; ++k) {
        const std::int64_t u =
            (k < m - 1) ? indices[static_cast<std::size_t>(b + k)] : v;
        const std::size_t slot = static_cast<std::size_t>(
            ((k < m - 1) ? (b + k) : (num_edges + v)) * heads + hd);
        const T a = static_cast<T>(double(ctx.alpha[slot]) / denom);
        ctx.alpha[slot] = a;
        const T* hrow = ph + u * heads * f + hd * f;
        for (std::int64_t j = 0; j < f; ++j) orow[j] += a * hrow[j];
      }
    }
  }
  return out;
}

template <typename T>
std::vector<Tensor> gat_backward(const Tensor& g, const GatCtx<T>& ctx,
                                 std::int64_t num_src) {
  const auto& indptr = *ctx.indptr;
  const auto& indices = *ctx.indices;
  const std::int64_t d_count = ctx.num_dst;
  const std::int64_t heads = ctx.heads;
  const std::int64_t f = ctx.h.size(1) / heads;
  const T* ph = ctx.h.template data<T>();
  const T* pg = g.data<T>();
  const auto num_edges = static_cast<std::int64_t>(indices.size());

  Tensor dh({num_src, heads * f}, g.dtype());
  Tensor ds_src({num_src, heads}, g.dtype());
  Tensor ds_dst({d_count, heads}, g.dtype());
  T* pdh = dh.data<T>();
  T* pdss = ds_src.data<T>();
  T* pdsd = ds_dst.data<T>();

  std::vector<double> dalpha;
  for (std::int64_t v = 0; v < d_count; ++v) {
    const std::int64_t b = indptr[static_cast<std::size_t>(v)];
    const std::int64_t e = indptr[static_cast<std::size_t>(v) + 1];
    const std::int64_t m = e - b + 1;
    for (std::int64_t hd = 0; hd < heads; ++hd) {
      const T* grow = pg + v * heads * f + hd * f;
      dalpha.assign(static_cast<std::size_t>(m), 0.0);
      double dot = 0;  // sum_k alpha_k * dalpha_k (softmax backward)
      for (std::int64_t k = 0; k < m; ++k) {
        const std::int64_t u =
            (k < m - 1) ? indices[static_cast<std::size_t>(b + k)] : v;
        const std::size_t slot = static_cast<std::size_t>(
            ((k < m - 1) ? (b + k) : (num_edges + v)) * heads + hd);
        const double a = double(ctx.alpha[slot]);
        const T* hrow = ph + u * heads * f + hd * f;
        double da = 0;
        for (std::int64_t j = 0; j < f; ++j) {
          da += double(grow[j]) * double(hrow[j]);
          pdh[u * heads * f + hd * f + j] +=
              static_cast<T>(a * double(grow[j]));
        }
        dalpha[static_cast<std::size_t>(k)] = da;
        dot += a * da;
      }
      for (std::int64_t k = 0; k < m; ++k) {
        const std::int64_t u =
            (k < m - 1) ? indices[static_cast<std::size_t>(b + k)] : v;
        const std::size_t slot = static_cast<std::size_t>(
            ((k < m - 1) ? (b + k) : (num_edges + v)) * heads + hd);
        const double a = double(ctx.alpha[slot]);
        const double dz = a * (dalpha[static_cast<std::size_t>(k)] - dot) *
                          double(ctx.dmask[slot]);
        pdss[u * heads + hd] += static_cast<T>(dz);
        pdsd[v * heads + hd] += static_cast<T>(dz);
      }
    }
  }
  return {std::move(dh), std::move(ds_src), std::move(ds_dst)};
}

}  // namespace

Variable gat_edge_softmax_aggregate(
    const Variable& h, const Variable& s_src, const Variable& s_dst,
    std::shared_ptr<const std::vector<std::int64_t>> indptr,
    std::shared_ptr<const std::vector<std::int64_t>> indices,
    std::int64_t num_dst, double slope, std::int64_t heads) {
  const std::int64_t num_src = h.data().size(0);
  if (h.data().size(1) % heads != 0 || s_src.data().size(1) != heads ||
      s_dst.data().size(1) != heads) {
    throw std::invalid_argument("gat_edge_softmax_aggregate: head layout");
  }
  auto run = [&](auto zero) {
    using T = decltype(zero);
    auto ctx = std::make_shared<GatCtx<T>>();
    ctx->indptr = indptr;
    ctx->indices = indices;
    ctx->num_dst = num_dst;
    ctx->heads = heads;
    ctx->h = h.data();
    Tensor out =
        gat_forward<T>(h.data(), s_src.data(), s_dst.data(), *ctx, slope);
    return make_op_result("GatAggregate", std::move(out), {h, s_src, s_dst},
                          [ctx, num_src](const Tensor& g) {
                            return gat_backward<T>(g, *ctx, num_src);
                          });
  };
  return h.data().dtype() == DType::kF32 ? run(0.0f) : run(0.0);
}

GatConv::GatConv(std::int64_t in_channels, std::int64_t out_channels,
                 bool bias, double negative_slope, std::uint64_t init_seed,
                 std::int64_t heads)
    : slope_(negative_slope), heads_(heads) {
  if (heads < 1) throw std::invalid_argument("GatConv: heads < 1");
  lin_ = register_module(
      "lin", std::make_shared<Linear>(in_channels, heads * out_channels,
                                      bias, init_seed));
  const double k = 1.0 / std::sqrt(static_cast<double>(out_channels));
  att_src_ = register_parameter(
      "att_src",
      Tensor::uniform({heads, out_channels}, init_seed ^ 0xa1, -k, k));
  att_dst_ = register_parameter(
      "att_dst",
      Tensor::uniform({heads, out_channels}, init_seed ^ 0xa2, -k, k));
}

Variable GatConv::forward(const Variable& x, const MfgLevel& level) {
  Variable h = lin_->forward(x);  // [S, heads*out]
  Variable s_src = per_head_score(h, att_src_, heads_);  // [S, heads]
  Variable h_dst = autograd::narrow_rows(h, 0, level.num_dst);
  Variable s_dst = per_head_score(h_dst, att_dst_, heads_);  // [D, heads]
  return gat_edge_softmax_aggregate(
      h, s_src, s_dst,
      std::shared_ptr<const std::vector<std::int64_t>>(level.indptr),
      std::shared_ptr<const std::vector<std::int64_t>>(level.indices),
      level.num_dst, slope_, heads_);
}

}  // namespace salient::nn
