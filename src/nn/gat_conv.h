// Graph attention convolution, PyG GATConv semantics. The paper's
// experiments use heads=1 and bias=false (Appendix A Listing 2); multi-head
// attention with concatenated head outputs is supported as the natural
// extension (outputs are [D, heads*out_channels], as in PyG's concat=True).
//
// For a bipartite level and head h:
//   z_e^h   = LeakyReLU(a_l^h . W^h x_src + a_r^h . W^h x_dst, slope)
//   alpha^h = softmax of z^h over the incoming edges of each destination
//   out_v^h = sum_e alpha_e^h (W^h x)_src    (+ implicit self edge: each
//             destination attends over its sampled neighbors and itself)
//
// The edge-softmax-aggregate step is a dedicated autograd node because it
// has no efficient expression in terms of the dense primitives.
#pragma once

#include "nn/linear.h"
#include "sampling/mfg.h"

namespace salient::nn {

/// Custom autograd op: h is [S, H*F] (H heads of width F side by side),
/// s_src [S, H] / s_dst [D, H] are per-head score contributions. Computes
/// the per-head attention-weighted aggregation -> [D, H*F] with a
/// per-destination softmax over edge scores z = LeakyReLU(s_src+s_dst).
/// Each destination's edge set includes an implicit self edge.
Variable gat_edge_softmax_aggregate(
    const Variable& h, const Variable& s_src, const Variable& s_dst,
    std::shared_ptr<const std::vector<std::int64_t>> indptr,
    std::shared_ptr<const std::vector<std::int64_t>> indices,
    std::int64_t num_dst, double slope, std::int64_t heads);

class GatConv : public Module {
 public:
  GatConv(std::int64_t in_channels, std::int64_t out_channels,
          bool bias = false, double negative_slope = 0.2,
          std::uint64_t init_seed = 13, std::int64_t heads = 1);

  /// Output is [num_dst, heads * out_channels] (concatenated heads).
  Variable forward(const Variable& x, const MfgLevel& level);

  std::int64_t heads() const { return heads_; }

 private:
  double slope_;
  std::int64_t heads_;
  std::shared_ptr<Linear> lin_;  // shared projection to heads*out
  Variable att_src_;             // [heads, out]
  Variable att_dst_;             // [heads, out]
};

}  // namespace salient::nn
