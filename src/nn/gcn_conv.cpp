#include "nn/gcn_conv.h"

#include <cmath>

#include "autograd/functions.h"

namespace salient::nn {

NormalizedAdjacency normalize_adjacency(const CsrGraph& graph) {
  const std::int64_t n = graph.num_nodes();
  auto indptr = std::make_shared<std::vector<std::int64_t>>();
  auto indices = std::make_shared<std::vector<std::int64_t>>();
  auto weights = std::make_shared<std::vector<double>>();
  indptr->reserve(static_cast<std::size_t>(n) + 1);
  indices->reserve(static_cast<std::size_t>(graph.num_edges() + n));
  weights->reserve(indices->capacity());
  indptr->push_back(0);
  auto inv_sqrt_deg = [&](NodeId v) {
    return 1.0 / std::sqrt(static_cast<double>(graph.degree(v)) + 1.0);
  };
  for (NodeId v = 0; v < n; ++v) {
    const double dv = inv_sqrt_deg(v);
    // self loop
    indices->push_back(v);
    weights->push_back(dv * dv);
    for (const NodeId u : graph.neighbors(v)) {
      indices->push_back(u);
      weights->push_back(dv * inv_sqrt_deg(u));
    }
    indptr->push_back(static_cast<std::int64_t>(indices->size()));
  }
  NormalizedAdjacency adj;
  adj.num_nodes = n;
  adj.indptr = std::move(indptr);
  adj.indices = std::move(indices);
  adj.weights = std::move(weights);
  return adj;
}

GcnConv::GcnConv(std::int64_t in_channels, std::int64_t out_channels,
                 bool bias, std::uint64_t init_seed) {
  lin_ = register_module(
      "lin", std::make_shared<Linear>(in_channels, out_channels, bias,
                                      init_seed));
}

Variable GcnConv::forward(const Variable& x, const NormalizedAdjacency& adj) {
  // Aggregate first (SpMM on the narrower input), then project.
  Variable agg = autograd::spmm_weighted(adj.indptr, adj.indices, adj.weights,
                                         x, adj.num_nodes);
  return lin_->forward(agg);
}

}  // namespace salient::nn
