// Graph convolutional layer (Kipf & Welling) over a precomputed normalized
// adjacency — the model behind the full-batch systems the paper compares
// against in Table 7 (NeuGraph, Roc both train GCNs full-batch).
//
//   out = Ahat X W^T + b,   Ahat = D^-1/2 (A + I) D^-1/2
//
// The normalized adjacency is built once per graph (NormalizedAdjacency)
// and shared across layers/epochs; the layer itself is a weighted SpMM plus
// a Linear.
#pragma once

#include <memory>
#include <vector>

#include "graph/csr.h"
#include "nn/linear.h"

namespace salient::nn {

/// Ahat in CSR form with per-edge normalization weights (self loops added).
struct NormalizedAdjacency {
  std::int64_t num_nodes = 0;
  std::shared_ptr<const std::vector<std::int64_t>> indptr;
  std::shared_ptr<const std::vector<std::int64_t>> indices;
  std::shared_ptr<const std::vector<double>> weights;
};

/// Build D^-1/2 (A + I) D^-1/2 from an undirected CSR graph.
NormalizedAdjacency normalize_adjacency(const CsrGraph& graph);

class GcnConv : public Module {
 public:
  GcnConv(std::int64_t in_channels, std::int64_t out_channels,
          bool bias = true, std::uint64_t init_seed = 19);

  /// x is the full-graph feature matrix [N, in]; returns [N, out].
  Variable forward(const Variable& x, const NormalizedAdjacency& adj);

 private:
  std::shared_ptr<Linear> lin_;
};

}  // namespace salient::nn
