#include "nn/gin_conv.h"

#include "autograd/functions.h"

namespace salient::nn {

GinMlp::GinMlp(std::int64_t in_channels, std::int64_t hidden_channels,
               std::uint64_t init_seed) {
  lin1_ = register_module(
      "lin1", std::make_shared<Linear>(in_channels, hidden_channels,
                                       /*bias=*/true, init_seed));
  bn_ = register_module("bn", std::make_shared<BatchNorm1d>(hidden_channels));
  lin2_ = register_module(
      "lin2", std::make_shared<Linear>(hidden_channels, hidden_channels,
                                       /*bias=*/true, init_seed ^ 0x61));
}

Variable GinMlp::forward(const Variable& x) {
  // lin1's ReLU cannot fuse past the batch norm; lin2 + ReLU fuse into one
  // gemm_epilogue store pass.
  Variable h = relu(bn_->forward(lin1_->forward(x)));
  return lin2_->forward_act(h);
}

GinConv::GinConv(std::shared_ptr<GinMlp> mlp, double eps) : eps_(eps) {
  mlp_ = register_module("nn", std::move(mlp));
}

Variable GinConv::forward(const Variable& x, const MfgLevel& level) {
  Variable agg = autograd::spmm_sum(
      std::shared_ptr<const std::vector<std::int64_t>>(level.indptr),
      std::shared_ptr<const std::vector<std::int64_t>>(level.indices), x,
      level.num_dst);
  Variable x_dst = autograd::narrow_rows(x, 0, level.num_dst);
  Variable combined =
      autograd::add(agg, autograd::scale(x_dst, 1.0 + eps_));
  return mlp_->forward(combined);
}

}  // namespace salient::nn
