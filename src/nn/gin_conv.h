// Graph isomorphism convolution (PyG GINConv semantics, eps = 0 fixed).
//
//   out_v = MLP( (1 + eps) * x_dst[v] + sum_{u in N(v)} x_src[u] )
//
// The MLP is supplied by the caller as in the paper's GIN listing
// (Linear -> BatchNorm1d -> ReLU -> Linear -> ReLU).
#pragma once

#include <functional>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "sampling/mfg.h"

namespace salient::nn {

/// The two-layer MLP used inside the paper's GINConv blocks.
class GinMlp : public Module {
 public:
  GinMlp(std::int64_t in_channels, std::int64_t hidden_channels,
         std::uint64_t init_seed = 17);
  Variable forward(const Variable& x);

 private:
  std::shared_ptr<Linear> lin1_;
  std::shared_ptr<BatchNorm1d> bn_;
  std::shared_ptr<Linear> lin2_;
};

class GinConv : public Module {
 public:
  GinConv(std::shared_ptr<GinMlp> mlp, double eps = 0.0);

  Variable forward(const Variable& x, const MfgLevel& level);

 private:
  std::shared_ptr<GinMlp> mlp_;
  double eps_;
};

}  // namespace salient::nn
