#include "nn/linear.h"

#include <cmath>

#include "autograd/functions.h"

namespace salient::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, bool bias,
               std::uint64_t init_seed)
    : in_(in_features), out_(out_features) {
  const double k = 1.0 / std::sqrt(static_cast<double>(in_features));
  weight_ = register_parameter(
      "weight", Tensor::uniform({out_features, in_features}, init_seed, -k, k));
  if (bias) {
    bias_ = register_parameter(
        "bias", Tensor::uniform({out_features}, init_seed ^ 0xb1a5, -k, k));
  }
}

Variable Linear::forward(const Variable& x) {
  return autograd::linear(x, weight_, bias_);
}

Variable Linear::forward_act(const Variable& x, double dropout_p,
                             std::uint64_t seed) {
  return autograd::linear_act(x, weight_, bias_, dropout_p, is_training(),
                              seed);
}

}  // namespace salient::nn
