// Fully connected layer (torch.nn.Linear semantics and initialization).
#pragma once

#include "nn/module.h"

namespace salient::nn {

class Linear : public Module {
 public:
  /// Weight is [out_features, in_features]; Kaiming-uniform initialized
  /// (U[-k, k] with k = 1/sqrt(in_features)), bias likewise when present.
  Linear(std::int64_t in_features, std::int64_t out_features,
         bool bias = true, std::uint64_t init_seed = 7);

  /// y = x W^T (+ b).
  Variable forward(const Variable& x);

  /// Fused y = dropout(relu(x W^T + b)): one gemm_epilogue call instead of
  /// GEMM + three elementwise passes (autograd::linear_act). dropout_p = 0
  /// (or eval mode) fuses just bias+ReLU. Requires the layer to have a bias.
  Variable forward_act(const Variable& x, double dropout_p = 0.0,
                       std::uint64_t seed = 0);

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  Variable weight_;
  Variable bias_;
};

/// Identity module (torch.nn.Identity), used by GraphSAGE-RI's residual list.
class Identity : public Module {
 public:
  Variable forward(const Variable& x) { return x; }
};

}  // namespace salient::nn
