#include "nn/loss.h"

#include "autograd/functions.h"

namespace salient::nn {

Variable nll_loss(const Variable& logp, const Tensor& target) {
  return autograd::nll_loss(logp, target);
}

Variable cross_entropy(const Variable& logits, const Tensor& target) {
  return autograd::nll_loss(autograd::log_softmax(logits), target);
}

}  // namespace salient::nn
