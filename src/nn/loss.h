// Classification losses.
#pragma once

#include "autograd/variable.h"

namespace salient::nn {

/// Mean negative log-likelihood of row-wise log-probabilities `logp` against
/// i64 class targets (the loss_fn of Listing 1; models emit log_softmax).
Variable nll_loss(const Variable& logp, const Tensor& target);

/// Convenience: log_softmax + nll in one call for raw logits.
Variable cross_entropy(const Variable& logits, const Tensor& target);

}  // namespace salient::nn
