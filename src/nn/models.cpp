#include "nn/models.h"

#include <stdexcept>

#include "autograd/functions.h"

namespace salient::nn {

namespace {

void check_config(const ModelConfig& c) {
  if (c.in_channels <= 0 || c.hidden_channels <= 0 || c.out_channels <= 0 ||
      c.num_layers < 2) {
    throw std::invalid_argument("ModelConfig: bad dimensions");
  }
}

}  // namespace

// --- GraphSAGE (Listing 1) --------------------------------------------------

GraphSage::GraphSage(const ModelConfig& c) {
  check_config(c);
  // kwargs = dict(bias=False), as in the listing. The listing's final conv
  // maps hidden->hidden (leaving out_channels unused); we map hidden->out so
  // the model classifies, matching the released SALIENT code.
  convs_.push_back(register_module(
      "conv0", std::make_shared<SageConv>(c.in_channels, c.hidden_channels,
                                          false, c.seed + 0)));
  for (int i = 1; i < c.num_layers - 1; ++i) {
    convs_.push_back(register_module(
        "conv" + std::to_string(i),
        std::make_shared<SageConv>(c.hidden_channels, c.hidden_channels,
                                   false, c.seed + static_cast<unsigned>(i))));
  }
  convs_.push_back(register_module(
      "conv" + std::to_string(c.num_layers - 1),
      std::make_shared<SageConv>(c.hidden_channels, c.out_channels, false,
                                 c.seed + 97)));
  dropout_ = register_module("dropout", std::make_shared<Dropout>(0.5));
  set_seed(c.seed);
}

Variable GraphSage::forward(const Variable& x, const Mfg& mfg) {
  if (mfg.levels.size() != convs_.size()) {
    throw std::invalid_argument("GraphSage: MFG depth != model depth");
  }
  Variable h = x;
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    h = convs_[i]->forward(h, mfg.levels[i]);
    if (i + 1 != convs_.size()) {
      h = relu(h);
      h = dropout_->forward(h);
    }
  }
  return log_softmax(h);
}

Variable GraphSage::apply_layer(int i, const Variable& x,
                                const MfgLevel& level) {
  Variable h = convs_[static_cast<std::size_t>(i)]->forward(x, level);
  if (i + 1 != num_layers()) {
    h = relu(h);
    h = dropout_->forward(h);
  }
  return h;
}

Variable GraphSage::finalize(const Variable& x) { return log_softmax(x); }

// --- GAT (Listing 2) ----------------------------------------------------------

Gat::Gat(const ModelConfig& c) {
  check_config(c);
  convs_.push_back(register_module(
      "conv0", std::make_shared<GatConv>(c.in_channels, c.hidden_channels,
                                         false, 0.2, c.seed + 0)));
  for (int i = 1; i < c.num_layers - 1; ++i) {
    convs_.push_back(register_module(
        "conv" + std::to_string(i),
        std::make_shared<GatConv>(c.hidden_channels, c.hidden_channels, false,
                                  0.2, c.seed + static_cast<unsigned>(i))));
  }
  convs_.push_back(register_module(
      "conv" + std::to_string(c.num_layers - 1),
      std::make_shared<GatConv>(c.hidden_channels, c.out_channels, false, 0.2,
                                c.seed + 97)));
  dropout_ = register_module("dropout", std::make_shared<Dropout>(0.5));
  set_seed(c.seed);
}

Variable Gat::forward(const Variable& x, const Mfg& mfg) {
  if (mfg.levels.size() != convs_.size()) {
    throw std::invalid_argument("Gat: MFG depth != model depth");
  }
  Variable h = x;
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    h = convs_[i]->forward(h, mfg.levels[i]);
    if (i + 1 != convs_.size()) {
      h = relu(h);
      h = dropout_->forward(h);
    }
  }
  return log_softmax(h);
}

Variable Gat::apply_layer(int i, const Variable& x, const MfgLevel& level) {
  Variable h = convs_[static_cast<std::size_t>(i)]->forward(x, level);
  if (i + 1 != num_layers()) {
    h = relu(h);
    h = dropout_->forward(h);
  }
  return h;
}

Variable Gat::finalize(const Variable& x) { return log_softmax(x); }

// --- GIN (Listing 3) -----------------------------------------------------------

Gin::Gin(const ModelConfig& c) {
  check_config(c);
  convs_.push_back(register_module(
      "conv0",
      std::make_shared<GinConv>(std::make_shared<GinMlp>(
          c.in_channels, c.hidden_channels, c.seed + 0))));
  for (int i = 1; i < c.num_layers; ++i) {
    convs_.push_back(register_module(
        "conv" + std::to_string(i),
        std::make_shared<GinConv>(std::make_shared<GinMlp>(
            c.hidden_channels, c.hidden_channels,
            c.seed + static_cast<unsigned>(i)))));
  }
  lin1_ = register_module(
      "lin1", std::make_shared<Linear>(c.hidden_channels, c.hidden_channels,
                                       true, c.seed + 51));
  lin2_ = register_module(
      "lin2", std::make_shared<Linear>(c.hidden_channels, c.out_channels,
                                       true, c.seed + 52));
  dropout_ = register_module("dropout", std::make_shared<Dropout>(0.5));
  set_seed(c.seed);
}

Variable Gin::forward(const Variable& x, const Mfg& mfg) {
  if (mfg.levels.size() != convs_.size()) {
    throw std::invalid_argument("Gin: MFG depth != model depth");
  }
  Variable h = x;
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    h = convs_[i]->forward(h, mfg.levels[i]);
  }
  return finalize(h);
}

Variable Gin::apply_layer(int i, const Variable& x, const MfgLevel& level) {
  return convs_[static_cast<std::size_t>(i)]->forward(x, level);
}

Variable Gin::finalize(const Variable& x) {
  // Fused bias+ReLU+dropout epilogue: the classifier head's three
  // elementwise passes ride the lin1 GEMM store. The dropout decisions come
  // from the counter-based stream seeded by this module's seed stream.
  Variable h = lin1_->forward_act(x, dropout_->p(), next_seed());
  return log_softmax(lin2_->forward(h));
}

// --- GraphSAGE-RI (Listing 4) ----------------------------------------------------

GraphSageRi::GraphSageRi(const ModelConfig& c) {
  check_config(c);
  convs_.push_back(register_module(
      "conv0", std::make_shared<SageConv>(c.in_channels, c.hidden_channels,
                                          false, c.seed + 0)));
  bns_.push_back(
      register_module("bn0", std::make_shared<BatchNorm1d>(c.hidden_channels)));
  res_linears_.push_back(register_module(
      "res0", std::make_shared<Linear>(c.in_channels, c.hidden_channels, true,
                                       c.seed + 31)));
  for (int i = 1; i < c.num_layers; ++i) {
    convs_.push_back(register_module(
        "conv" + std::to_string(i),
        std::make_shared<SageConv>(c.hidden_channels, c.hidden_channels,
                                   false, c.seed + static_cast<unsigned>(i))));
    bns_.push_back(register_module(
        "bn" + std::to_string(i),
        std::make_shared<BatchNorm1d>(c.hidden_channels)));
    res_linears_.push_back(nullptr);  // torch.nn.Identity
  }
  // Inception-like head over [input, layer1, ..., layerL] concatenated.
  const std::int64_t concat_dim =
      c.in_channels + c.num_layers * c.hidden_channels;
  mlp1_ = register_module(
      "mlp1", std::make_shared<Linear>(concat_dim, c.hidden_channels, true,
                                       c.seed + 71));
  mlp2_ = register_module(
      "mlp2", std::make_shared<Linear>(c.hidden_channels, c.out_channels,
                                       true, c.seed + 72));
  dropout_ = register_module("dropout", std::make_shared<Dropout>(0.1));
  set_seed(c.seed);
}

Variable GraphSageRi::forward(const Variable& x, const Mfg& mfg) {
  if (mfg.levels.size() != convs_.size()) {
    throw std::invalid_argument("GraphSageRi: MFG depth != model depth");
  }
  const std::int64_t end_size = mfg.batch_size;
  std::vector<Variable> collect;
  Variable h = dropout_->forward(x);
  collect.push_back(autograd::narrow_rows(h, 0, end_size));
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    const auto& level = mfg.levels[i];
    Variable h_target = autograd::narrow_rows(h, 0, level.num_dst);
    // Listing 4 applies independent dropout to x and x_target before the
    // conv; we apply one dropout to the source matrix (the target rows are
    // its prefix), which differs only in the mask drawn for the root term.
    h = convs_[i]->forward(dropout_->forward(h), level);
    h = bns_[i]->forward(h);
    h = leaky_relu(h);
    h = dropout_->forward(h);
    collect.push_back(autograd::narrow_rows(h, 0, end_size));
    if (res_linears_[i]) {
      h = autograd::add(h, res_linears_[i]->forward(h_target));
    } else {
      h = autograd::add(h, h_target);
    }
  }
  Variable cat = autograd::concat_cols(collect);
  return finalize_from_concat(cat);
}

Variable GraphSageRi::finalize_from_concat(const Variable& cat) {
  Variable h = leaky_relu(mlp1_->forward(cat));
  h = dropout_->forward(h);
  return log_softmax(mlp2_->forward(h));
}

Variable GraphSageRi::apply_layer(int, const Variable&, const MfgLevel&) {
  throw std::logic_error(
      "GraphSageRi: layer-wise inference unsupported (dense connections)");
}

Variable GraphSageRi::finalize(const Variable&) {
  throw std::logic_error(
      "GraphSageRi: layer-wise inference unsupported (dense connections)");
}

std::shared_ptr<GnnModel> make_model(const std::string& arch,
                                     const ModelConfig& config) {
  if (arch == "sage") return std::make_shared<GraphSage>(config);
  if (arch == "gat") return std::make_shared<Gat>(config);
  if (arch == "gin") return std::make_shared<Gin>(config);
  if (arch == "sage-ri") return std::make_shared<GraphSageRi>(config);
  throw std::invalid_argument("make_model: unknown architecture " + arch);
}

}  // namespace salient::nn
