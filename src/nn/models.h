// The paper's four GNN architectures (Appendix A, Listings 1-4):
// GraphSAGE, GAT, GIN, and GraphSAGE-RI (residual + Inception-like head).
//
// All models consume a sampled MFG exactly like the PyG listings: layer i
// aggregates over MFG level i, `x_target = x[:num_dst]`, and the output is
// row-wise log-softmax over the mini-batch nodes. The same forward serves
// training and sampled inference (the unification argued for in §5).
//
// For full-neighborhood layer-wise inference (Table 6's "fanout: all"
// column), models additionally expose apply_layer()/finalize(): apply_layer
// runs conv i plus the inter-layer nonlinearity on one bipartite level, and
// finalize maps the last hidden representation to log-probabilities.
// GraphSAGE-RI's dense connections make it layer-wise-unfriendly (each layer
// output feeds the final concat — the extra-storage case §5 mentions), so it
// reports supports_layerwise() == false, mirroring the paper's fallback to
// fanout (100,100,100) on ogbn-papers100M.
#pragma once

#include <memory>
#include <string>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/gat_conv.h"
#include "nn/gin_conv.h"
#include "nn/linear.h"
#include "nn/sage_conv.h"
#include "sampling/mfg.h"

namespace salient::nn {

struct ModelConfig {
  std::int64_t in_channels = 0;
  std::int64_t hidden_channels = 256;
  std::int64_t out_channels = 0;
  int num_layers = 3;
  std::uint64_t seed = 123;  ///< parameter init + dropout stream seed
};

class GnnModel : public Module {
 public:
  /// Full forward over a sampled MFG -> [batch_size, out] log-probabilities.
  virtual Variable forward(const Variable& x, const Mfg& mfg) = 0;
  /// Architecture name ("sage", "gat", "gin", "sage-ri").
  virtual const char* arch() const = 0;
  virtual int num_layers() const = 0;

  /// True when the model supports layer-wise full-neighborhood inference.
  virtual bool supports_layerwise() const { return true; }
  /// Conv layer i + inter-layer nonlinearity on one bipartite level.
  virtual Variable apply_layer(int i, const Variable& x,
                               const MfgLevel& level) = 0;
  /// Map the last layer's representation to log-probabilities.
  virtual Variable finalize(const Variable& x) = 0;
};

/// Listing 1. Final conv maps hidden -> out_channels.
class GraphSage final : public GnnModel {
 public:
  explicit GraphSage(const ModelConfig& config);
  Variable forward(const Variable& x, const Mfg& mfg) override;
  const char* arch() const override { return "sage"; }
  int num_layers() const override { return static_cast<int>(convs_.size()); }
  Variable apply_layer(int i, const Variable& x,
                       const MfgLevel& level) override;
  Variable finalize(const Variable& x) override;

 private:
  std::vector<std::shared_ptr<SageConv>> convs_;
  std::shared_ptr<Dropout> dropout_;
};

/// Listing 2.
class Gat final : public GnnModel {
 public:
  explicit Gat(const ModelConfig& config);
  Variable forward(const Variable& x, const Mfg& mfg) override;
  const char* arch() const override { return "gat"; }
  int num_layers() const override { return static_cast<int>(convs_.size()); }
  Variable apply_layer(int i, const Variable& x,
                       const MfgLevel& level) override;
  Variable finalize(const Variable& x) override;

 private:
  std::vector<std::shared_ptr<GatConv>> convs_;
  std::shared_ptr<Dropout> dropout_;
};

/// Listing 3: GIN convs followed by a two-linear prediction head.
class Gin final : public GnnModel {
 public:
  explicit Gin(const ModelConfig& config);
  Variable forward(const Variable& x, const Mfg& mfg) override;
  const char* arch() const override { return "gin"; }
  int num_layers() const override { return static_cast<int>(convs_.size()); }
  Variable apply_layer(int i, const Variable& x,
                       const MfgLevel& level) override;
  Variable finalize(const Variable& x) override;

 private:
  std::vector<std::shared_ptr<GinConv>> convs_;
  std::shared_ptr<Linear> lin1_;
  std::shared_ptr<Linear> lin2_;
  std::shared_ptr<Dropout> dropout_;
};

/// Listing 4: residual connections + Inception-like concat head.
class GraphSageRi final : public GnnModel {
 public:
  explicit GraphSageRi(const ModelConfig& config);
  Variable forward(const Variable& x, const Mfg& mfg) override;
  const char* arch() const override { return "sage-ri"; }
  int num_layers() const override { return static_cast<int>(convs_.size()); }
  bool supports_layerwise() const override { return false; }
  Variable apply_layer(int i, const Variable& x,
                       const MfgLevel& level) override;
  Variable finalize(const Variable& x) override;

 private:
  Variable finalize_from_concat(const Variable& cat);

  std::vector<std::shared_ptr<SageConv>> convs_;
  std::vector<std::shared_ptr<BatchNorm1d>> bns_;
  std::vector<std::shared_ptr<Linear>> res_linears_;  // null => identity
  std::shared_ptr<Linear> mlp1_;
  std::shared_ptr<Linear> mlp2_;
  std::shared_ptr<Dropout> dropout_;
};

/// Factory over the architecture name used throughout benches/examples.
std::shared_ptr<GnnModel> make_model(const std::string& arch,
                                     const ModelConfig& config);

}  // namespace salient::nn
