#include "nn/module.h"

namespace salient::nn {

std::vector<Variable> Module::parameters() const {
  std::vector<Variable> out;
  for (const auto& [name, v] : named_parameters()) out.push_back(v);
  return out;
}

std::vector<std::pair<std::string, Variable>> Module::named_parameters()
    const {
  std::vector<std::pair<std::string, Variable>> out;
  collect("", out);
  return out;
}

void Module::collect(
    const std::string& prefix,
    std::vector<std::pair<std::string, Variable>>& out) const {
  for (const auto& [name, v] : params_) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, v);
  }
  for (const auto& [name, child] : children_) {
    child->collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

void Module::zero_grad() {
  for (auto& v : parameters()) v.zero_grad();
}

void Module::train(bool mode) {
  training_ = mode;
  for (auto& [name, child] : children_) child->train(mode);
}

void Module::set_seed(std::uint64_t seed) {
  seed_stream_ = SplitMix64(seed);
  std::uint64_t child_seed = seed;
  for (auto& [name, child] : children_) {
    child_seed = SplitMix64(child_seed ^ 0xabcdef1234567ull).next();
    child->set_seed(child_seed);
  }
}

std::int64_t Module::num_parameters() const {
  std::int64_t n = 0;
  for (const auto& v : parameters()) n += v.data().numel();
  return n;
}

Variable Module::register_parameter(std::string name, Tensor init) {
  Variable v(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), v);
  return v;
}

Tensor Module::register_buffer(std::string name, Tensor init) {
  buffers_.emplace_back(std::move(name), init);
  return init;
}

std::vector<std::pair<std::string, Tensor>> Module::named_buffers() const {
  std::vector<std::pair<std::string, Tensor>> out;
  collect_buffers("", out);
  return out;
}

void Module::collect_buffers(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>& out) const {
  for (const auto& [name, t] : buffers_) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, t);
  }
  for (const auto& [name, child] : children_) {
    child->collect_buffers(prefix.empty() ? name : prefix + "." + name, out);
  }
}

}  // namespace salient::nn
