// Module base class: parameter registration, train/eval mode, RNG state.
//
// Mirrors the slice of torch.nn.Module the paper's model code (Appendix A)
// relies on: registered parameters are discovered recursively for the
// optimizer and DDP gradient synchronization; `train(bool)` toggles dropout
// and batch-norm behaviour.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "util/rng.h"

namespace salient::nn {

class Module {
 public:
  virtual ~Module() = default;

  /// All parameters of this module and its children, in registration order.
  /// The returned Variables share state with the module (mutating their
  /// .data() updates the model).
  std::vector<Variable> parameters() const;

  /// Named parameters with hierarchical dotted names.
  std::vector<std::pair<std::string, Variable>> named_parameters() const;

  /// Named non-parameter state (e.g. batch-norm running statistics) with
  /// hierarchical dotted names; included in checkpoints.
  std::vector<std::pair<std::string, Tensor>> named_buffers() const;

  /// Drop all accumulated gradients.
  void zero_grad();

  /// Toggle training mode recursively (affects dropout / batch norm).
  void train(bool mode = true);
  bool is_training() const { return training_; }

  /// Seed the module tree's dropout RNG streams deterministically.
  void set_seed(std::uint64_t seed);

  /// Total scalar parameter count.
  std::int64_t num_parameters() const;

 protected:
  Module() = default;

  /// Register a parameter; returns a handle sharing state with the stored one.
  Variable register_parameter(std::string name, Tensor init);

  /// Register a buffer; the returned tensor shares storage with the stored
  /// one (in-place updates are visible to both).
  Tensor register_buffer(std::string name, Tensor init);

  /// Register a child module (held by shared_ptr; returns the same pointer
  /// for convenient member initialization).
  template <typename M>
  std::shared_ptr<M> register_module(std::string name, std::shared_ptr<M> m) {
    children_.emplace_back(std::move(name), m);
    return m;
  }

  /// Next per-call dropout seed from this module's RNG stream.
  std::uint64_t next_seed() { return seed_stream_.next(); }

  bool training_ = true;

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, Variable>>& out) const;

  void collect_buffers(const std::string& prefix,
                       std::vector<std::pair<std::string, Tensor>>& out) const;

  std::vector<std::pair<std::string, Variable>> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  SplitMix64 seed_stream_{0x5a11e47u};
};

}  // namespace salient::nn
