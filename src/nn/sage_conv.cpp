#include "nn/sage_conv.h"

#include "autograd/functions.h"

namespace salient::nn {

SageConv::SageConv(std::int64_t in_channels, std::int64_t out_channels,
                   bool bias, std::uint64_t init_seed,
                   SageAggregator aggregator)
    : aggregator_(aggregator) {
  lin_neigh_ = register_module(
      "lin_l", std::make_shared<Linear>(in_channels, out_channels, bias,
                                        init_seed));
  lin_root_ = register_module(
      "lin_r", std::make_shared<Linear>(in_channels, out_channels,
                                        /*bias=*/false, init_seed ^ 0x5eed));
  if (aggregator_ == SageAggregator::kPool) {
    lin_pool_ = register_module(
        "lin_pool", std::make_shared<Linear>(in_channels, in_channels,
                                             /*bias=*/true,
                                             init_seed ^ 0x9001));
  }
}

Variable SageConv::forward(const Variable& x, const MfgLevel& level) {
  auto indptr = std::shared_ptr<const std::vector<std::int64_t>>(level.indptr);
  auto indices =
      std::shared_ptr<const std::vector<std::int64_t>>(level.indices);
  Variable agg;
  switch (aggregator_) {
    case SageAggregator::kMean:
      agg = autograd::spmm_mean(indptr, indices, x, level.num_dst);
      break;
    case SageAggregator::kMax:
      agg = autograd::spmm_max(indptr, indices, x, level.num_dst);
      break;
    case SageAggregator::kPool: {
      // Fused bias+ReLU epilogue on the pool transform.
      Variable transformed = lin_pool_->forward_act(x);
      agg = autograd::spmm_max(indptr, indices, transformed, level.num_dst);
      break;
    }
  }
  // Root term on the destination prefix.
  Variable x_dst = autograd::narrow_rows(x, 0, level.num_dst);
  return autograd::add(lin_neigh_->forward(agg), lin_root_->forward(x_dst));
}

}  // namespace salient::nn
