// GraphSAGE convolution (mean aggregator), PyG SAGEConv semantics.
//
// For a bipartite MFG level with sources x_src and destinations
// x_dst = x_src[:num_dst]:
//   out = lin_l(mean_{u in N(v)} x_src[u]) + lin_r(x_dst[v])
// matching torch_geometric.nn.SAGEConv((in, in), out) with mean aggregation.
// Aggregator variants (§2.1: "AGG is a mean, LSTM, or pooling operator"):
//   kMean — the paper's default;
//   kMax  — elementwise max of neighbor features;
//   kPool — max-pooling aggregator: max over relu(lin_pool(x_src)), the
//           GraphSAGE-pool variant of Hamilton et al.
#pragma once

#include "nn/activations.h"
#include "nn/linear.h"
#include "sampling/mfg.h"

namespace salient::nn {

enum class SageAggregator { kMean, kMax, kPool };

class SageConv : public Module {
 public:
  SageConv(std::int64_t in_channels, std::int64_t out_channels,
           bool bias = false, std::uint64_t init_seed = 11,
           SageAggregator aggregator = SageAggregator::kMean);

  /// x is the source-node feature matrix [num_src, in]; the level supplies
  /// the bipartite adjacency and the destination prefix size.
  Variable forward(const Variable& x, const MfgLevel& level);

  SageAggregator aggregator() const { return aggregator_; }

 private:
  SageAggregator aggregator_;
  std::shared_ptr<Linear> lin_neigh_;  // applied to the aggregated neighbors
  std::shared_ptr<Linear> lin_root_;   // applied to the destination nodes
  std::shared_ptr<Linear> lin_pool_;   // pre-pooling transform (kPool only)
};

}  // namespace salient::nn
