#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>

namespace salient::nn {

namespace {

constexpr char kMagic[4] = {'S', 'A', 'L', 'C'};
constexpr std::uint32_t kVersion = 1;

void write_tensor(std::ofstream& os, const std::string& name,
                  const Tensor& t) {
  const auto name_len = static_cast<std::uint32_t>(name.size());
  os.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  const auto dtype = static_cast<std::uint8_t>(t.dtype());
  os.write(reinterpret_cast<const char*>(&dtype), 1);
  const auto rank = static_cast<std::uint32_t>(t.dim());
  os.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (const auto d : t.shape()) {
    os.write(reinterpret_cast<const char*>(&d), sizeof(d));
  }
  os.write(static_cast<const char*>(t.raw()),
           static_cast<std::streamsize>(t.nbytes()));
}

/// Read one entry; returns (name, tensor).
std::pair<std::string, Tensor> read_tensor(std::ifstream& is) {
  std::uint32_t name_len = 0;
  is.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  std::uint8_t dtype = 0;
  is.read(reinterpret_cast<char*>(&dtype), 1);
  std::uint32_t rank = 0;
  is.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (rank > 8) throw std::runtime_error("checkpoint: implausible rank");
  std::vector<std::int64_t> shape(rank);
  for (auto& d : shape) {
    is.read(reinterpret_cast<char*>(&d), sizeof(d));
  }
  Tensor t(shape, static_cast<DType>(dtype));
  is.read(static_cast<char*>(t.raw()),
          static_cast<std::streamsize>(t.nbytes()));
  if (!is) throw std::runtime_error("checkpoint: truncated file");
  return {std::move(name), std::move(t)};
}

}  // namespace

void save_checkpoint(const Module& module, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_checkpoint: cannot open " + path);
  os.write(kMagic, 4);
  os.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const auto params = module.named_parameters();
  const auto buffers = module.named_buffers();
  const auto count = static_cast<std::uint64_t>(params.size() +
                                                buffers.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, v] : params) {
    write_tensor(os, "param." + name, v.data());
  }
  for (const auto& [name, t] : buffers) {
    write_tensor(os, "buffer." + name, t);
  }
  if (!os) throw std::runtime_error("save_checkpoint: write failed");
}

void load_checkpoint(Module& module, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_checkpoint: cannot open " + path);
  char magic[4];
  is.read(magic, 4);
  std::uint32_t version = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!is || std::memcmp(magic, kMagic, 4) != 0 || version != kVersion) {
    throw std::runtime_error("load_checkpoint: bad header");
  }
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));

  std::map<std::string, Tensor> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    auto [name, t] = read_tensor(is);
    entries.emplace(std::move(name), std::move(t));
  }

  auto restore = [&entries](const std::string& key, Tensor dst) {
    auto it = entries.find(key);
    if (it == entries.end()) {
      throw std::runtime_error("load_checkpoint: missing entry " + key);
    }
    if (it->second.dtype() != dst.dtype() ||
        it->second.shape() != dst.shape()) {
      throw std::runtime_error("load_checkpoint: shape/dtype mismatch for " +
                               key);
    }
    std::memcpy(dst.raw(), it->second.raw(), dst.nbytes());
    entries.erase(it);
  };
  auto params = module.named_parameters();
  for (auto& [name, v] : params) {
    restore("param." + name, v.data());
  }
  auto buffers = module.named_buffers();
  for (auto& [name, t] : buffers) {
    restore("buffer." + name, t);
  }
  if (!entries.empty()) {
    throw std::runtime_error("load_checkpoint: unexpected extra entry " +
                             entries.begin()->first);
  }
}

}  // namespace salient::nn
