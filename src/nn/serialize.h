// Model checkpointing: save/load the named parameters and buffers of a
// Module tree to a simple self-describing binary format.
//
// Format (little-endian):
//   magic "SALC", version u32
//   entry count u64
//   per entry: name_len u32, name bytes, dtype u8, rank u32,
//              dims i64[rank], raw element bytes
// Loading matches entries by name and validates dtype/shape; unmatched names
// on either side are an error (strict round trip), keeping silent
// architecture mismatches from corrupting a model.
#pragma once

#include <string>

#include "nn/module.h"

namespace salient::nn {

/// Write all parameters and buffers of `module` to `path` (overwrites).
void save_checkpoint(const Module& module, const std::string& path);

/// Load a checkpoint saved by save_checkpoint into `module` (in place).
/// Throws std::runtime_error on I/O failure, format error, or any
/// name/shape/dtype mismatch.
void load_checkpoint(Module& module, const std::string& path);

}  // namespace salient::nn
