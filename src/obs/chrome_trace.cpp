#include "obs/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <set>

namespace salient::obs::chrome_trace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

namespace {

void append_number(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void append_common(std::string& out, const char* name, char ph, double ts_us,
                   int tid) {
  out += "{\"name\":\"";
  append_escaped(out, name);
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"ts\":";
  append_number(out, ts_us);
  out += ",\"pid\":";
  out += std::to_string(kHostPid);
  out += ",\"tid\":";
  out += std::to_string(tid);
}

}  // namespace

void write(std::ostream& os, const std::vector<CollectedEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Process + thread naming metadata first, so viewers label the tracks.
  comma();
  append_common(out, "process_name", 'M', 0, 0);
  out += ",\"args\":{\"name\":\"salient\"}}";
  std::set<int> named;
  for (const auto& ce : events) {
    if (ce.thread_name.empty() || !named.insert(ce.tid).second) continue;
    comma();
    append_common(out, "thread_name", 'M', 0, ce.tid);
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, ce.thread_name);
    out += "\"}}";
  }

  for (const auto& ce : events) {
    const TraceEvent& e = ce.event;
    comma();
    switch (e.kind) {
      case EventKind::kComplete:
        append_common(out, e.name, 'X', e.ts_us, ce.tid);
        out += ",\"dur\":";
        append_number(out, e.dur_us);
        break;
      case EventKind::kInstant:
        append_common(out, e.name, 'i', e.ts_us, ce.tid);
        out += ",\"s\":\"t\"";
        break;
      case EventKind::kAsyncBegin:
      case EventKind::kAsyncEnd:
        append_common(out, e.name,
                      e.kind == EventKind::kAsyncBegin ? 'b' : 'e', e.ts_us,
                      ce.tid);
        out += ",\"cat\":\"salient\",\"id\":";
        out += std::to_string(e.id);
        break;
      case EventKind::kCounter:
        append_common(out, e.name, 'C', e.ts_us, ce.tid);
        out += ",\"args\":{\"value\":";
        out += std::to_string(static_cast<std::int64_t>(e.id));
        out += "}";
        break;
    }
    if (e.kind != EventKind::kCounter && e.arg != kNoArg) {
      out += ",\"args\":{\"v\":";
      out += std::to_string(e.arg);
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  os << out;
}

bool write_file(const std::string& path,
                const std::vector<CollectedEvent>& events) {
  std::ofstream os(path);
  if (!os) return false;
  write(os, events);
  return os.good();
}

}  // namespace salient::obs::chrome_trace
