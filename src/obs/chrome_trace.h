// Chrome `trace_event` JSON exporter.
//
// Writes the "JSON Array Format" wrapped in an object:
//   {"traceEvents":[ {...}, {...} ], "displayTimeUnit":"ms"}
// Every event carries the keys `name`, `ph`, `ts`, `pid`, `tid` (plus `dur`
// for complete events, `cat`/`id` for async events, `args` where present),
// which is what chrome://tracing and https://ui.perfetto.dev expect. Thread
// tracks are labelled with `thread_name` metadata ('M') events, so the
// preparation workers, the copy stream, the compute stream, and the main
// thread render as separately named lanes.
//
// The trace-event format reference:
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace salient::obs::chrome_trace {

/// Process id used for host-side (recorder) events.
inline constexpr int kHostPid = 1;

/// Append `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters).
void append_escaped(std::string& out, const std::string& s);

/// Serialize `events` (as returned by TraceRecorder::collect()) to `os`.
void write(std::ostream& os, const std::vector<CollectedEvent>& events);

/// write() to a file; returns false when the file cannot be written.
bool write_file(const std::string& path,
                const std::vector<CollectedEvent>& events);

}  // namespace salient::obs::chrome_trace
