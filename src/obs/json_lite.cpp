#include "obs/json_lite.h"

#include <cctype>
#include <cstdlib>

namespace salient::obs::json {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : text_(text), error_(error) {}

  bool parse_document(Value& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage");
    return true;
  }

 private:
  bool fail(const std::string& msg) {
    error_ = msg + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out.type = Value::Type::kString;
        return parse_string(out.string);
      case 't':
        return parse_literal("true", out, Value::Type::kBool, true);
      case 'f':
        return parse_literal("false", out, Value::Type::kBool, false);
      case 'n':
        return parse_literal("null", out, Value::Type::kNull, false);
      default:
        return parse_number(out);
    }
  }

  bool parse_literal(const char* lit, Value& out, Value::Type type,
                     bool boolean) {
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return fail(std::string("expected '") + lit + "'");
      }
    }
    out.type = type;
    out.boolean = boolean;
    return true;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      any = true;
      ++pos_;
    }
    if (!any) return fail("expected a value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out.type = Value::Type::kNumber;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char esc = text_[pos_];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out += esc;
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return fail("short \\u escape");
            // Decode to a single byte when in range; multi-byte code points
            // are replaced with '?' (fine for validation purposes).
            const std::string hex = text_.substr(pos_ + 1, 4);
            char* end = nullptr;
            const long cp = std::strtol(hex.c_str(), &end, 16);
            if (end == nullptr || *end != '\0') return fail("bad \\u escape");
            out += cp < 0x80 ? static_cast<char>(cp) : '?';
            pos_ += 4;
            break;
          }
          default:
            return fail("unknown escape");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    return fail("unterminated string");
  }

  bool parse_array(Value& out) {
    out.type = Value::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value item;
      skip_ws();
      if (!parse_value(item)) return false;
      out.array.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Value& out) {
    out.type = Value::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      skip_ws();
      Value item;
      if (!parse_value(item)) return false;
      out.object.emplace(std::move(key), std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse(const std::string& text, Value& out, std::string& error) {
  out = Value{};
  error.clear();
  return Parser(text, error).parse_document(out);
}

}  // namespace salient::obs::json
