// Minimal recursive-descent JSON parser.
//
// Just enough JSON to *validate and inspect* the files this repo emits
// (Chrome traces from obs/chrome_trace.h, metrics dumps from obs/metrics.h)
// without an external dependency: objects, arrays, strings with the common
// escapes, numbers, true/false/null. Strict on structure (unbalanced or
// trailing garbage fails), lenient on nothing. Used by tests/test_obs.cpp
// and the `trace_check` ctest tool.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace salient::obs::json {

/// A parsed JSON value (tree-owning; no references into the input text).
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parse `text` as one JSON document. Returns false (and sets `error` to a
/// "message at offset N" string) on any syntax error or trailing garbage.
bool parse(const std::string& text, Value& out, std::string& error);

}  // namespace salient::obs::json
