#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/chrome_trace.h"  // append_escaped

namespace salient::obs {

namespace {

void atomic_add_double(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (
      !a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be ascending");
  }
  counts_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

double Histogram::quantile(double q) const {
  const auto total = total_count();
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::int64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      if (i == bounds_.size()) return bounds_.back();  // overflow: clamp
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = (rank - static_cast<double>(cum)) /
                          static_cast<double>(in_bucket);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    cum += in_bucket;
  }
  return bounds_.back();
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked, see trace.cpp
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  LockGuard lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge || e.histogram) {
    throw std::invalid_argument("Registry: '" + name +
                                "' already registered with another kind");
  }
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  LockGuard lock(mu_);
  Entry& e = entries_[name];
  if (e.counter || e.histogram) {
    throw std::invalid_argument("Registry: '" + name +
                                "' already registered with another kind");
  }
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  LockGuard lock(mu_);
  Entry& e = entries_[name];
  if (e.counter || e.gauge) {
    throw std::invalid_argument("Registry: '" + name +
                                "' already registered with another kind");
  }
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *e.histogram;
}

std::string Registry::dump_text() const {
  LockGuard lock(mu_);
  std::ostringstream os;
  for (const auto& [name, e] : entries_) {  // std::map: already name-sorted
    if (e.counter) {
      os << name << ' ' << e.counter->value() << '\n';
    } else if (e.gauge) {
      os << name << ' ' << e.gauge->value() << '\n';
    } else if (e.histogram) {
      const Histogram& h = *e.histogram;
      os << name << " count=" << h.total_count() << " mean=" << h.mean()
         << " buckets=[";
      for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
        if (i) os << ' ';
        if (i < h.bounds().size()) {
          os << "le" << h.bounds()[i] << ':' << h.bucket_count(i);
        } else {
          os << "inf:" << h.bucket_count(i);
        }
      }
      os << "]\n";
    }
  }
  return os.str();
}

void Registry::write_json(std::ostream& os) const {
  LockGuard lock(mu_);
  std::string out = "{\n";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out += ",\n";
    first = false;
    out += "\"";
    chrome_trace::append_escaped(out, name);
    out += "\":";
    std::ostringstream v;
    if (e.counter) {
      v << e.counter->value();
    } else if (e.gauge) {
      v << e.gauge->value();
    } else if (e.histogram) {
      const Histogram& h = *e.histogram;
      v << "{\"count\":" << h.total_count() << ",\"sum\":" << h.sum()
        << ",\"bounds\":[";
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        if (i) v << ',';
        v << h.bounds()[i];
      }
      v << "],\"counts\":[";
      for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
        if (i) v << ',';
        v << h.bucket_count(i);
      }
      v << "]}";
    } else {
      v << "null";
    }
    out += v.str();
  }
  out += "\n}\n";
  os << out;
}

bool Registry::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return os.good();
}

void Registry::reset() {
  LockGuard lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace salient::obs
