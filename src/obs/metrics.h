// Process-wide metrics registry: counters, gauges, fixed-bucket histograms.
//
// Companion to the tracer (obs/trace.h): where a trace answers "what
// happened when, on which thread", metrics answer "how much, in total" —
// bytes DMA'd, batches prepared, pinned-pool misses, per-phase blocking
// seconds (the Table 1 breakdown). All instruments are updated with relaxed
// atomics so hot paths (loader workers, stream threads) can bump them
// without coordination; the registry is always compiled in because a relaxed
// atomic add is cheaper than any gating worth maintaining.
//
// Idiom for hot paths — resolve the instrument once, not per update:
//   static obs::Counter& c = obs::Registry::global().counter("dma.bytes");
//   c.add(nbytes);
//
// Instruments live for the process lifetime; references never dangle.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace salient::obs {

/// Monotonically increasing integer counter.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Double-valued instrument supporting both set() (gauge semantics) and
/// add() (accumulator semantics, e.g. seconds of blocking time).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-boundary histogram. A value v lands in the first bucket whose upper
/// bound satisfies v <= bound; values above the last bound land in the
/// implicit +Inf overflow bucket. Boundaries are set at registration and
/// immutable afterwards.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket `i`; i == bounds().size() is the +Inf bucket.
  std::int64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::int64_t total_count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const auto n = total_count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  /// Approximate quantile (q in [0,1]) assuming a uniform distribution
  /// within each bucket: finds the bucket holding rank q*count and
  /// interpolates linearly between its bounds. Values in the +Inf overflow
  /// bucket clamp to the last finite bound. Returns 0 when empty. This is
  /// how serving latency p50/p95/p99 are reported (src/serve/).
  double quantile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;  // bounds.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> instrument registry. Lookup takes a mutex; cache the returned
/// reference (instruments are never deleted, so references stay valid).
class Registry {
 public:
  /// The process-global registry (intentionally leaked, like the tracer).
  static Registry& global();

  /// Get or create the named instrument. Re-registering an existing name
  /// with a different instrument kind throws std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` must be non-empty and ascending; it is only consulted on first
  /// registration of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Human-readable dump, one `name value` line per instrument, sorted by
  /// name. Histograms dump count/mean plus per-bucket counts.
  std::string dump_text() const;

  /// Machine-readable dump: one JSON object keyed by instrument name.
  void write_json(std::ostream& os) const;
  /// write_json() to a file; returns false when the file cannot be written.
  bool write_json_file(const std::string& path) const;

  /// Zero every instrument (registrations persist). Test helper.
  void reset();

 private:
  Registry() = default;

  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace salient::obs
