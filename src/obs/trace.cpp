#include "obs/trace.h"

#include <algorithm>

#include "obs/chrome_trace.h"

namespace salient::obs {

namespace detail {

ThreadBuffer::~ThreadBuffer() {
  for (auto& slot : chunks_) {
    delete slot.load(std::memory_order_acquire);
  }
}

void ThreadBuffer::append(const TraceEvent& e) {
  const std::size_t idx = count_.load(std::memory_order_relaxed);
  const std::size_t chunk_idx = idx / kChunkSize;
  if (chunk_idx >= kMaxChunks) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  chunk->events[idx % kChunkSize] = e;
  count_.store(idx + 1, std::memory_order_release);
}

void ThreadBuffer::set_name(std::string name) {
  LockGuard lock(name_mu_);
  name_ = std::move(name);
}

std::string ThreadBuffer::name() const {
  LockGuard lock(name_mu_);
  return name_;
}

}  // namespace detail

TraceRecorder& TraceRecorder::global() {
  // Leaked on purpose: stream/worker threads may record while statics are
  // being torn down, and a destructed recorder would be use-after-free.
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

detail::ThreadBuffer& TraceRecorder::local_buffer() {
  thread_local detail::ThreadBuffer* tls = nullptr;
  if (tls == nullptr) {
    LockGuard lock(mu_);
    const int tid = static_cast<int>(buffers_.size()) + 1;
    buffers_.push_back(std::make_unique<detail::ThreadBuffer>(tid));
    tls = buffers_.back().get();
  }
  return *tls;
}

void TraceRecorder::record(const TraceEvent& e) {
  if (!enabled()) return;
  local_buffer().append(e);
}

void TraceRecorder::set_thread_name(std::string name) {
  local_buffer().set_name(std::move(name));
}

const char* TraceRecorder::intern(const std::string& s) {
  LockGuard lock(mu_);
  interned_.push_back(std::make_unique<std::string>(s));
  return interned_.back()->c_str();
}

std::vector<CollectedEvent> TraceRecorder::collect() const {
  std::vector<CollectedEvent> out;
  LockGuard lock(mu_);
  for (const auto& buf : buffers_) {
    const std::size_t n = buf->size();
    const std::string name = buf->name();
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back({buf->at(i), buf->tid(), name});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CollectedEvent& a, const CollectedEvent& b) {
                     return a.event.ts_us < b.event.ts_us;
                   });
  return out;
}

std::size_t TraceRecorder::dropped() const {
  LockGuard lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) n += buf->dropped();
  return n;
}

void TraceRecorder::reset() {
  LockGuard lock(mu_);
  for (const auto& buf : buffers_) buf->clear();
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  chrome_trace::write(os, collect());
}

void trace_instant(const char* name, std::int64_t arg) {
  TraceRecorder& r = TraceRecorder::global();
  if (!r.enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_us = r.now_us();
  e.arg = arg;
  e.kind = EventKind::kInstant;
  r.record(e);
}

void trace_async_begin(const char* name, std::uint64_t id, std::int64_t arg) {
  TraceRecorder& r = TraceRecorder::global();
  if (!r.enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_us = r.now_us();
  e.id = id;
  e.arg = arg;
  e.kind = EventKind::kAsyncBegin;
  r.record(e);
}

void trace_async_end(const char* name, std::uint64_t id) {
  TraceRecorder& r = TraceRecorder::global();
  if (!r.enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_us = r.now_us();
  e.id = id;
  e.kind = EventKind::kAsyncEnd;
  r.record(e);
}

void trace_counter(const char* name, std::int64_t value) {
  TraceRecorder& r = TraceRecorder::global();
  if (!r.enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_us = r.now_us();
  e.id = static_cast<std::uint64_t>(value);
  e.kind = EventKind::kCounter;
  r.record(e);
}

bool write_chrome_trace_file(const std::string& path) {
  return chrome_trace::write_file(path, TraceRecorder::global().collect());
}

}  // namespace salient::obs
