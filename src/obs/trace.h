// Span-based tracing with per-thread lock-free buffers.
//
// The paper's entire argument is made in timelines (Figure 1: the serial
// PyTorch workflow vs. SALIENT's overlapped pipeline). This subsystem makes
// that overlap *observable* in this reproduction: every interesting stretch
// of work — a sampling call in a preparation worker, a DMA on the copy
// stream, a training step on the compute stream — records a span, and the
// Chrome `trace_event` exporter (obs/chrome_trace.h) turns the recording
// into a file that chrome://tracing or https://ui.perfetto.dev renders with
// one track per thread. Worker threads, the H2D copy stream, and the GPU
// compute lane show up as separate lanes, exactly like Figure 1.
//
// Design:
//   * one global TraceRecorder; threads register a ThreadBuffer lazily on
//     first use (mutex only at registration, never on the hot path);
//   * appends are lock-free: the owning thread is the only writer, events
//     land in fixed-size chunks published through atomic pointers, and a
//     release-store of the count makes them visible to the exporter;
//   * recording is gated twice: at compile time (the SALIENT_TRACE_* macros
//     expand to nothing unless the build defines SALIENT_TRACING_ENABLED,
//     i.e. the CMake option SALIENT_TRACING is ON) and at run time (a
//     relaxed atomic flag, off by default, so an instrumented binary pays
//     one predictable branch per span when tracing is not requested).
//
// Usage:
//   obs::TraceRecorder::global().enable(true);
//   {
//     SALIENT_TRACE_THREAD_NAME("prep-worker-0");
//     SALIENT_TRACE_SCOPE("prep.sample");          // RAII span
//     ...work...
//   }
//   obs::write_chrome_trace_file("trace.json");
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace salient::obs {

/// True when the build compiled the tracing macros in (CMake option
/// SALIENT_TRACING=ON). When false every SALIENT_TRACE_* macro is a no-op
/// and instrumented code carries zero tracing overhead.
#if defined(SALIENT_TRACING_ENABLED)
inline constexpr bool kTracingCompiledIn = true;
#else
inline constexpr bool kTracingCompiledIn = false;
#endif

/// Chrome trace_event phases this recorder emits.
enum class EventKind : std::uint8_t {
  kComplete,    ///< 'X': a span with a start and a duration
  kInstant,     ///< 'i': a point-in-time marker
  kAsyncBegin,  ///< 'b': start of an async span (matched by name + id)
  kAsyncEnd,    ///< 'e': end of an async span
  kCounter,     ///< 'C': a sampled counter value (renders as a graph track)
};

/// Sentinel for "no numeric argument attached to this event".
inline constexpr std::int64_t kNoArg = INT64_MIN;

/// One recorded event. `name` must outlive the recorder: pass string
/// literals, or intern dynamic strings via TraceRecorder::intern().
struct TraceEvent {
  const char* name = "";
  double ts_us = 0;      ///< microseconds since the recorder epoch
  double dur_us = 0;     ///< kComplete only
  std::uint64_t id = 0;  ///< async id (kAsyncBegin/End) or counter value
  std::int64_t arg = kNoArg;  ///< optional numeric arg (exported as args.v)
  EventKind kind = EventKind::kComplete;
};

/// An event annotated with the track it was recorded on.
struct CollectedEvent {
  TraceEvent event;
  int tid = 0;              ///< recorder-assigned track id
  std::string thread_name;  ///< empty if the thread never named itself
};

namespace detail {

/// Per-thread event storage. Only the owning thread appends; the exporter
/// reads concurrently via acquire/release on `count_`. Chunks are allocated
/// on demand and never freed before the recorder resets, so readers can
/// follow published chunk pointers without synchronizing with the writer.
class ThreadBuffer {
 public:
  static constexpr std::size_t kChunkSize = 4096;
  static constexpr std::size_t kMaxChunks = 1024;  // 4M events / thread cap

  explicit ThreadBuffer(int tid) : tid_(tid) {}
  ~ThreadBuffer();

  ThreadBuffer(const ThreadBuffer&) = delete;
  ThreadBuffer& operator=(const ThreadBuffer&) = delete;

  void append(const TraceEvent& e);

  int tid() const { return tid_; }
  std::size_t size() const { return count_.load(std::memory_order_acquire); }
  std::size_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Read event `i`; only valid for i < a previously observed size().
  const TraceEvent& at(std::size_t i) const {
    return chunks_[i / kChunkSize].load(std::memory_order_acquire)
        ->events[i % kChunkSize];
  }

  void set_name(std::string name);
  std::string name() const;

  /// Discard all events (test use; the owning thread must be quiescent).
  void clear() { count_.store(0, std::memory_order_release); }

 private:
  struct Chunk {
    TraceEvent events[kChunkSize];
  };

  int tid_;  // unguarded: assigned once at registration
  // count_/dropped_/chunks_ are the lock-free append path: single-writer
  // atomics with acquire/release publication, deliberately outside any
  // capability. Only the (cold) track name is mutex-guarded.
  std::atomic<std::size_t> count_{0};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  mutable Mutex name_mu_;
  std::string name_ GUARDED_BY(name_mu_);
};

}  // namespace detail

/// Process-global trace recorder. All methods are thread-safe.
class TraceRecorder {
 public:
  /// The singleton every macro records into. Never destroyed (intentionally
  /// leaked) so worker threads may still record during static destruction.
  static TraceRecorder& global();

  /// Turn recording on/off at run time. Off by default.
  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the recorder was constructed (steady clock). This is
  /// the common timebase of every event, so spans recorded by different
  /// threads are mutually ordered.
  double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Record an event on the calling thread's buffer (no-op when disabled).
  void record(const TraceEvent& e);

  /// Name the calling thread's track ("prep-worker-3", "stream:copy0", ...).
  /// Works even while recording is disabled so late enables keep the names.
  void set_thread_name(std::string name);

  /// Copy a dynamic string into recorder-owned storage and return a pointer
  /// valid for the recorder's lifetime (event names must outlive export).
  const char* intern(const std::string& s);

  /// Snapshot all events recorded so far, across all threads, sorted by
  /// timestamp.
  std::vector<CollectedEvent> collect() const;

  /// Total events dropped because a thread hit its buffer cap.
  std::size_t dropped() const;

  /// Discard all recorded events (buffers stay registered). Test/benchmark
  /// helper; recording threads must be quiescent when this runs.
  void reset();

  /// Serialize everything recorded so far as Chrome trace_event JSON
  /// (see obs/chrome_trace.h for the format notes).
  void write_chrome_trace(std::ostream& os) const;

 private:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  detail::ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;  // unguarded: ctor-set
  mutable Mutex mu_;  // guards buffers_ registration and interned_
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<std::string>> interned_ GUARDED_BY(mu_);
};

/// RAII guard recording one kComplete span from construction to destruction.
/// Near-zero cost when the recorder is disabled (one relaxed atomic load);
/// compiles to an empty object when SALIENT_TRACING is OFF. A null `name`
/// deactivates the span (callers with optional labels pass them through).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t arg = kNoArg) {
#if defined(SALIENT_TRACING_ENABLED)
    TraceRecorder& r = TraceRecorder::global();
    if (name != nullptr && r.enabled()) {
      name_ = name;
      arg_ = arg;
      start_us_ = r.now_us();
      active_ = true;
    }
#else
    (void)name;
    (void)arg;
#endif
  }
  ~TraceSpan() {
#if defined(SALIENT_TRACING_ENABLED)
    if (active_) {
      TraceRecorder& r = TraceRecorder::global();
      TraceEvent e;
      e.name = name_;
      e.ts_us = start_us_;
      e.dur_us = r.now_us() - start_us_;
      e.arg = arg_;
      e.kind = EventKind::kComplete;
      r.record(e);
    }
#endif
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = "";
  double start_us_ = 0;
  std::int64_t arg_ = kNoArg;
  bool active_ = false;
};

// Non-RAII helpers behind the macros (all runtime-gated on enabled()).

/// Record an instant marker.
void trace_instant(const char* name, std::int64_t arg = kNoArg);
/// Begin/end an async span; begin and end may come from different threads
/// and are matched by (name, id) — e.g. one span per mini-batch lifetime.
void trace_async_begin(const char* name, std::uint64_t id,
                       std::int64_t arg = kNoArg);
void trace_async_end(const char* name, std::uint64_t id);
/// Sample a counter value (renders as a graph track in the trace viewer).
void trace_counter(const char* name, std::int64_t value);

/// Convenience: serialize the global recorder to `path`; false on IO error.
bool write_chrome_trace_file(const std::string& path);

}  // namespace salient::obs

// ---------------------------------------------------------------------------
// Tracing macros. These are the only interface hot paths should use: with
// SALIENT_TRACING=OFF they expand to nothing, so instrumented code compiles
// to exactly what it was before instrumentation.
// ---------------------------------------------------------------------------
#if defined(SALIENT_TRACING_ENABLED)

#define SALIENT_TRACE_CONCAT_IMPL(a, b) a##b
#define SALIENT_TRACE_CONCAT(a, b) SALIENT_TRACE_CONCAT_IMPL(a, b)

/// RAII span covering the rest of the enclosing scope.
#define SALIENT_TRACE_SCOPE(name)                                   \
  ::salient::obs::TraceSpan SALIENT_TRACE_CONCAT(_salient_trace_span_, \
                                                 __LINE__) { name }
/// RAII span with a numeric argument (batch index, byte count, ...).
#define SALIENT_TRACE_SCOPE_ARG(name, arg)                             \
  ::salient::obs::TraceSpan SALIENT_TRACE_CONCAT(_salient_trace_span_, \
                                                 __LINE__) {           \
    name, static_cast<std::int64_t>(arg)                               \
  }
#define SALIENT_TRACE_INSTANT(name) ::salient::obs::trace_instant(name)
#define SALIENT_TRACE_ASYNC_BEGIN(name, id) \
  ::salient::obs::trace_async_begin(name, static_cast<std::uint64_t>(id))
#define SALIENT_TRACE_ASYNC_END(name, id) \
  ::salient::obs::trace_async_end(name, static_cast<std::uint64_t>(id))
#define SALIENT_TRACE_COUNTER(name, value) \
  ::salient::obs::trace_counter(name, static_cast<std::int64_t>(value))
#define SALIENT_TRACE_THREAD_NAME(name) \
  ::salient::obs::TraceRecorder::global().set_thread_name(name)

#else  // tracing compiled out: every macro is a statement-shaped no-op

#define SALIENT_TRACE_SCOPE(name) ((void)0)
#define SALIENT_TRACE_SCOPE_ARG(name, arg) ((void)0)
#define SALIENT_TRACE_INSTANT(name) ((void)0)
#define SALIENT_TRACE_ASYNC_BEGIN(name, id) ((void)0)
#define SALIENT_TRACE_ASYNC_END(name, id) ((void)0)
#define SALIENT_TRACE_COUNTER(name, value) ((void)0)
#define SALIENT_TRACE_THREAD_NAME(name) ((void)0)

#endif  // SALIENT_TRACING_ENABLED
