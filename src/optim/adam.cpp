#include "optim/adam.h"

#include <cmath>
#include <stdexcept>

#include "tensor/kernel_config.h"

namespace salient::optim {

Adam::Adam(std::vector<Variable> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::zeros(p.data().shape(), p.data().dtype()));
    v_.push_back(Tensor::zeros(p.data().shape(), p.data().dtype()));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    if (!p.grad().defined()) continue;
    Tensor& data = p.data();
    const Tensor& grad = p.grad();
    const std::int64_t n = data.numel();
    // Elementwise and independent per parameter, so the parallel version is
    // bitwise identical to the serial one (ops::parallel_for_n keeps small
    // parameter blocks serial via the shared cost heuristic).
    auto update = [&](auto* pd, const auto* pg, auto* pm, auto* pv) {
      using T = std::remove_reference_t<decltype(pd[0])>;
      ops::parallel_for_n(n, n, [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) {
          double g = double(pg[i]);
          if (weight_decay_ != 0.0) g += weight_decay_ * double(pd[i]);
          const double m = beta1_ * double(pm[i]) + (1 - beta1_) * g;
          const double v = beta2_ * double(pv[i]) + (1 - beta2_) * g * g;
          pm[i] = static_cast<T>(m);
          pv[i] = static_cast<T>(v);
          const double mhat = m / bc1;
          const double vhat = v / bc2;
          pd[i] = static_cast<T>(double(pd[i]) -
                                 lr_ * mhat / (std::sqrt(vhat) + eps_));
        }
      });
    };
    if (data.dtype() == DType::kF32) {
      update(data.data<float>(), grad.data<float>(), m_[k].data<float>(),
             v_[k].data<float>());
    } else if (data.dtype() == DType::kF64) {
      update(data.data<double>(), grad.data<double>(), m_[k].data<double>(),
             v_[k].data<double>());
    } else {
      throw std::runtime_error("Adam: unsupported parameter dtype");
    }
  }
}

}  // namespace salient::optim
