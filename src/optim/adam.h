// Adam (Kingma & Ba, 2015) — the optimizer used by the paper's training
// loops. Matches torch.optim.Adam defaults, including bias correction.
#pragma once

#include "optim/optimizer.h"

namespace salient::optim {

class Adam final : public Optimizer {
 public:
  explicit Adam(std::vector<Variable> params, double lr = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8,
                double weight_decay = 0.0);

  void step() override;

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }
  std::int64_t step_count() const { return t_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;  // first-moment estimates
  std::vector<Tensor> v_;  // second-moment estimates
};

}  // namespace salient::optim
