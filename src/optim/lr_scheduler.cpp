#include "optim/lr_scheduler.h"

#include "tensor/ops.h"

namespace salient::optim {

double clip_grad_norm(const std::vector<Variable>& params, double max_norm) {
  double sq = 0;
  for (const auto& p : params) {
    if (!p.grad().defined()) continue;
    const Tensor& g = p.grad();
    if (g.dtype() == DType::kF32) {
      for (const float v : g.span<float>()) {
        sq += double(v) * double(v);
      }
    } else {
      for (const double v : g.span<double>()) {
        sq += v * v;
      }
    }
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0) {
    const double scale = max_norm / norm;
    // Variables are value-semantic handles over shared state: mutating a
    // copy's gradient mutates the parameter's.
    for (Variable p : params) {
      if (!p.grad().defined()) continue;
      Tensor scaled = ops::scale(p.grad(), scale);
      p.zero_grad();
      p.accumulate_grad(scaled);
    }
  }
  return norm;
}

}  // namespace salient::optim
