// Learning-rate schedules and gradient clipping — standard training
// utilities for longer runs (the paper trains 25 epochs for Figure 6).
#pragma once

#include <cmath>
#include <vector>

#include "optim/adam.h"

namespace salient::optim {

/// Base interface: call step() once per epoch after the optimizer steps.
class LrScheduler {
 public:
  explicit LrScheduler(Adam& optimizer)
      : optimizer_(&optimizer), base_lr_(optimizer.lr()) {}
  virtual ~LrScheduler() = default;

  /// Advance one epoch and update the optimizer's learning rate.
  void step() {
    ++epoch_;
    optimizer_->set_lr(lr_at(epoch_));
  }

  int epoch() const { return epoch_; }
  double base_lr() const { return base_lr_; }

 protected:
  /// The learning rate for epoch `e` (e starts at 1 after the first step).
  virtual double lr_at(int e) const = 0;

 private:
  Adam* optimizer_;
  double base_lr_;
  int epoch_ = 0;
};

/// Multiply the LR by `gamma` every `step_size` epochs (torch StepLR).
class StepLr final : public LrScheduler {
 public:
  StepLr(Adam& optimizer, int step_size, double gamma = 0.1)
      : LrScheduler(optimizer), step_size_(step_size), gamma_(gamma) {}

 protected:
  double lr_at(int e) const override {
    return base_lr() * std::pow(gamma_, e / step_size_);
  }

 private:
  int step_size_;
  double gamma_;
};

/// Cosine annealing from base_lr to eta_min over t_max epochs.
class CosineLr final : public LrScheduler {
 public:
  CosineLr(Adam& optimizer, int t_max, double eta_min = 0.0)
      : LrScheduler(optimizer), t_max_(t_max), eta_min_(eta_min) {}

 protected:
  double lr_at(int e) const override {
    const double t = std::min(e, t_max_);
    return eta_min_ + (base_lr() - eta_min_) *
                          (1 + std::cos(M_PI * t / t_max_)) / 2;
  }

 private:
  int t_max_;
  double eta_min_;
};

/// Clip the global L2 norm of the parameters' gradients to `max_norm`
/// (torch.nn.utils.clip_grad_norm_). Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Variable>& params, double max_norm);

}  // namespace salient::optim
