// Optimizer base class over Variable parameter lists.
#pragma once

#include <vector>

#include "autograd/variable.h"

namespace salient::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Apply one update using the parameters' accumulated gradients.
  /// Parameters with no gradient are skipped.
  virtual void step() = 0;

  /// Clear all parameter gradients (Listing 1's optimizer.zero_grad()).
  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

  const std::vector<Variable>& params() const { return params_; }

 protected:
  std::vector<Variable> params_;
};

}  // namespace salient::optim
