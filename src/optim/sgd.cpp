#include "optim/sgd.h"

#include <stdexcept>

#include "tensor/ops.h"

namespace salient::optim {

Sgd::Sgd(std::vector<Variable> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.push_back(Tensor::zeros(p.data().shape(), p.data().dtype()));
    }
  }
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    if (!p.grad().defined()) continue;
    if (momentum_ == 0.0) {
      ops::axpy_(p.data(), p.grad(), -lr_);
    } else {
      // v = momentum * v + grad; p -= lr * v
      Tensor& v = velocity_[k];
      Tensor scaled = ops::scale(v, momentum_);
      ops::axpy_(scaled, p.grad(), 1.0);
      v = std::move(scaled);
      ops::axpy_(p.data(), v, -lr_);
    }
  }
}

}  // namespace salient::optim
