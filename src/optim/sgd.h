// Plain SGD with optional momentum, for baseline comparisons and tests.
#pragma once

#include "optim/optimizer.h"

namespace salient::optim {

class Sgd final : public Optimizer {
 public:
  explicit Sgd(std::vector<Variable> params, double lr = 1e-2,
               double momentum = 0.0);

  void step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<Tensor> velocity_;
};

}  // namespace salient::optim
