#include "prep/baseline_loader.h"

#include <cstring>

#include "prep/slicing.h"
#include "sampling/baseline_sampler.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace salient {

namespace {

std::uint64_t mix_seed(std::uint64_t seed, std::int64_t index) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ull *
                        static_cast<std::uint64_t>(index + 1)));
  return sm.next();
}

}  // namespace

BaselineLoader::BaselineLoader(const Dataset& dataset,
                               std::span<const NodeId> nodes,
                               LoaderConfig config,
                               std::shared_ptr<PinnedPool> pool)
    : dataset_(dataset),
      config_(std::move(config)),
      pool_(pool ? std::move(pool) : std::make_shared<PinnedPool>()),
      epoch_nodes_(nodes.begin(), nodes.end()) {
  if (config_.shuffle) {
    Xoshiro256ss rng(config_.seed);
    for (std::size_t i = epoch_nodes_.size(); i > 1; --i) {
      std::swap(epoch_nodes_[i - 1], epoch_nodes_[bounded_rand(rng, i)]);
    }
  }
  const auto n = static_cast<std::int64_t>(epoch_nodes_.size());
  num_batches_ = (n + config_.batch_size - 1) / config_.batch_size;
  num_workers_ = std::max(1, config_.num_workers);
  const int workers = num_workers_;
  worker_queues_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    // prefetch_factor=2, as in the PyTorch DataLoader default.
    worker_queues_.push_back(
        std::make_unique<BlockingQueue<std::vector<std::int64_t>>>(2));
  }
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

BaselineLoader::~BaselineLoader() {
  for (auto& q : worker_queues_) q->close();
  for (auto& t : workers_) t.join();
}

void BaselineLoader::worker_loop(int worker_id) {
  BaselineSampler sampler(dataset_.graph, config_.fanouts);
  const auto n = static_cast<std::int64_t>(epoch_nodes_.size());
  const auto workers = static_cast<std::int64_t>(num_workers_);
  // Static round-robin partition of batches across workers.
  for (std::int64_t b = worker_id; b < num_batches_; b += workers) {
    const std::int64_t begin = b * config_.batch_size;
    const std::int64_t end = std::min(n, (b + 1) * config_.batch_size);
    const std::span<const NodeId> batch_nodes(
        epoch_nodes_.data() + begin, static_cast<std::size_t>(end - begin));
    Mfg mfg = sampler.sample(batch_nodes, mix_seed(config_.seed, b));
    // The IPC write: flatten the MFG into one buffer (worker-side copy).
    std::vector<std::int64_t> blob = serialize_mfg(mfg);
    if (!worker_queues_[static_cast<std::size_t>(worker_id)]->push(
            std::move(blob))) {
      return;  // loader shut down early
    }
  }
}

std::optional<PreparedBatch> BaselineLoader::next() {
  if (next_index_ >= num_batches_) return std::nullopt;
  const std::int64_t b = next_index_++;
  auto& queue = *worker_queues_[static_cast<std::size_t>(
      b % static_cast<std::int64_t>(worker_queues_.size()))];
  auto blob = queue.pop();
  if (!blob.has_value()) return std::nullopt;

  PreparedBatch batch;
  batch.index = b;
  // The IPC read: re-materialize the MFG (consumer-side copy).
  batch.mfg = deserialize_mfg(*blob);

  // PyTorch-style parallel slicing into pageable memory...
  Tensor x_pageable({batch.mfg.num_input_nodes(), dataset_.feature_dim},
                    dataset_.features.dtype());
  slice_rows_parallel(dataset_.features, batch.mfg.n_ids, x_pageable,
                      ThreadPool::global());
  if (config_.feature_dtype == dataset_.features.dtype()) {
    // ...followed by the pin_memory copy into a staging buffer.
    batch.x = pool_->acquire(
        {batch.mfg.num_input_nodes(), dataset_.feature_dim},
        dataset_.features.dtype());
    std::memcpy(batch.x.raw(), x_pageable.raw(), x_pageable.nbytes());
  } else {
    // Compressed wire format: the pin_memory copy doubles as the
    // conversion/quantization pass (one write into pinned staging either
    // way). Identity ids re-gather the already-sliced pageable rows.
    std::vector<NodeId> iota(
        static_cast<std::size_t>(batch.mfg.num_input_nodes()));
    for (std::size_t i = 0; i < iota.size(); ++i) {
      iota[i] = static_cast<NodeId>(i);
    }
    stage_feature_rows(x_pageable, iota, config_.feature_dtype, *pool_,
                       batch);
  }

  batch.y = pool_->acquire({batch.mfg.batch_size}, DType::kI64);
  slice_labels(dataset_.labels,
               {batch.mfg.n_ids.data(),
                static_cast<std::size_t>(batch.mfg.batch_size)},
               batch.y);
  return batch;
}

void BaselineLoader::recycle(PreparedBatch&& batch) {
  release_batch_buffers(*pool_, std::move(batch));
}

}  // namespace salient
