// Baseline batch preparation: an emulation of the PyTorch DataLoader +
// multiprocessing pipeline that the performance-engineered PyG baseline of
// the paper uses (§3.2).
//
// Structure, matching the baseline's behaviour:
//   * mini-batches are *statically partitioned* round-robin across workers
//     (the PyTorch DataLoader scheme the paper contrasts with SALIENT's
//     dynamic load balancing);
//   * each worker runs the PyG-style BaselineSampler, then *serializes* the
//     sampled MFG into a flat buffer — the stand-in for pickling tensors
//     through POSIX shared memory between processes;
//   * the consumer deserializes (the second copy of the IPC round trip),
//     then slices features with the PyTorch parallel slicing path on the
//     shared thread pool, into pageable memory, and finally copies into a
//     pinned staging buffer (the DataLoader pin_memory stage);
//   * batches are consumed in epoch order (DataLoader semantics), so a slow
//     worker stalls the consumer even when other workers have batches ready.
//
// As with SalientLoader, one instance drives one epoch.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "graph/dataset.h"
#include "prep/batch.h"
#include "prep/loader_config.h"
#include "prep/pinned_pool.h"
#include "util/blocking_queue.h"

namespace salient {

class BaselineLoader {
 public:
  BaselineLoader(const Dataset& dataset, std::span<const NodeId> nodes,
                 LoaderConfig config, std::shared_ptr<PinnedPool> pool = {});
  ~BaselineLoader();

  BaselineLoader(const BaselineLoader&) = delete;
  BaselineLoader& operator=(const BaselineLoader&) = delete;

  /// Blocking: the next prepared batch in epoch order, or nullopt at end.
  /// Performs the consumer-side work (deserialize, slice, pin) inline —
  /// this is the blocking cost Table 1 attributes to batch preparation.
  std::optional<PreparedBatch> next();

  void recycle(PreparedBatch&& batch);

  std::int64_t num_batches() const { return num_batches_; }

 private:
  void worker_loop(int worker_id);

  const Dataset& dataset_;
  LoaderConfig config_;
  std::shared_ptr<PinnedPool> pool_;
  std::vector<NodeId> epoch_nodes_;
  std::int64_t num_batches_ = 0;
  std::int64_t next_index_ = 0;
  int num_workers_ = 1;

  /// One bounded queue per worker; batch b is produced by worker b % P and
  /// consumed in order (the DataLoader's round-robin collection).
  std::vector<std::unique_ptr<BlockingQueue<std::vector<std::int64_t>>>>
      worker_queues_;
  std::vector<std::thread> workers_;
};

}  // namespace salient
