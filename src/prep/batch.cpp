#include "prep/batch.h"

#include <stdexcept>
#include <utility>

#include "prep/pinned_pool.h"
#include "prep/slicing.h"

namespace salient {

void stage_feature_rows(const Tensor& features, std::span<const NodeId> ids,
                        DType wire_dtype, PinnedPool& pool,
                        PreparedBatch& batch) {
  const auto n = static_cast<std::int64_t>(ids.size());
  const std::int64_t f = features.size(1);
  switch (wire_dtype) {
    case DType::kF16:
    case DType::kF32:
      batch.x = pool.acquire({n, f}, wire_dtype);
      slice_rows_convert_serial(features, ids, batch.x);
      break;
    case DType::kInt8Q:
      batch.x = pool.acquire({n, f}, DType::kInt8Q);
      batch.x_scale = pool.acquire({n}, DType::kF32);
      batch.x_zero = pool.acquire({n}, DType::kF32);
      slice_rows_quantize_serial(features, ids, batch.x, batch.x_scale,
                                 batch.x_zero);
      break;
    default:
      throw std::invalid_argument(
          "stage_feature_rows: feature_dtype must be f16/f32/i8q");
  }
}

void release_batch_buffers(PinnedPool& pool, PreparedBatch&& batch) {
  pool.release(std::move(batch.x));
  pool.release(std::move(batch.y));
  if (batch.x_scale.defined()) pool.release(std::move(batch.x_scale));
  if (batch.x_zero.defined()) pool.release(std::move(batch.x_zero));
}

std::vector<std::int64_t> serialize_mfg(const Mfg& mfg) {
  std::vector<std::int64_t> buf;
  std::size_t total = 3;  // num_levels, batch_size, n_ids size
  for (const auto& l : mfg.levels) {
    total += 4 + l.indptr->size() + l.indices->size();
  }
  total += mfg.n_ids.size();
  buf.reserve(total);

  buf.push_back(static_cast<std::int64_t>(mfg.levels.size()));
  buf.push_back(mfg.batch_size);
  buf.push_back(static_cast<std::int64_t>(mfg.n_ids.size()));
  for (const auto& l : mfg.levels) {
    buf.push_back(l.num_src);
    buf.push_back(l.num_dst);
    buf.push_back(static_cast<std::int64_t>(l.indptr->size()));
    buf.push_back(static_cast<std::int64_t>(l.indices->size()));
    buf.insert(buf.end(), l.indptr->begin(), l.indptr->end());
    buf.insert(buf.end(), l.indices->begin(), l.indices->end());
  }
  buf.insert(buf.end(), mfg.n_ids.begin(), mfg.n_ids.end());
  return buf;
}

Mfg deserialize_mfg(const std::vector<std::int64_t>& buf) {
  std::size_t pos = 0;
  auto take = [&](std::size_t n) {
    if (pos + n > buf.size()) {
      throw std::runtime_error("deserialize_mfg: truncated buffer");
    }
    const std::size_t p = pos;
    pos += n;
    return p;
  };
  Mfg mfg;
  const auto num_levels = static_cast<std::size_t>(buf[take(1)]);
  mfg.batch_size = buf[take(1)];
  const auto n_ids_size = static_cast<std::size_t>(buf[take(1)]);
  mfg.levels.reserve(num_levels);
  for (std::size_t i = 0; i < num_levels; ++i) {
    MfgLevel l;
    l.num_src = buf[take(1)];
    l.num_dst = buf[take(1)];
    const auto indptr_size = static_cast<std::size_t>(buf[take(1)]);
    const auto indices_size = static_cast<std::size_t>(buf[take(1)]);
    const std::size_t p1 = take(indptr_size);
    l.indptr = std::make_shared<std::vector<std::int64_t>>(
        buf.begin() + static_cast<std::ptrdiff_t>(p1),
        buf.begin() + static_cast<std::ptrdiff_t>(p1 + indptr_size));
    const std::size_t p2 = take(indices_size);
    l.indices = std::make_shared<std::vector<std::int64_t>>(
        buf.begin() + static_cast<std::ptrdiff_t>(p2),
        buf.begin() + static_cast<std::ptrdiff_t>(p2 + indices_size));
    mfg.levels.push_back(std::move(l));
  }
  const std::size_t p3 = take(n_ids_size);
  mfg.n_ids.assign(buf.begin() + static_cast<std::ptrdiff_t>(p3),
                   buf.begin() + static_cast<std::ptrdiff_t>(p3 + n_ids_size));
  return mfg;
}

}  // namespace salient
