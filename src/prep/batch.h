// A fully prepared mini-batch, plus MFG serialization helpers.
//
// PreparedBatch is the hand-off unit between batch preparation and training:
// the sampled MFG, the sliced (half-precision) feature rows for all input
// nodes, and the sliced labels for the mini-batch nodes — the tuple
// `(xs, ys, Gs)` of Listing 1 in the paper.
//
// The serialization helpers emulate what PyTorch multiprocessing DataLoader
// workers do to deliver a sampled subgraph to the main process: the MFG's
// arrays are flattened into one contiguous buffer (the write into POSIX
// shared memory) and re-materialized on the consumer side (the read out of
// it). SALIENT's shared-memory threads skip both copies — that difference is
// one of the effects §4.2 measures.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "prep/feature_cache.h"
#include "sampling/mfg.h"
#include "tensor/tensor.h"

namespace salient {

struct PreparedBatch {
  std::int64_t index = -1;  ///< position of this batch within the epoch
  Mfg mfg;
  Tensor x;  ///< [num_input_nodes, F] features (f16), pinned when pooled;
             ///< with a cache plan, only the plan's missing rows
  Tensor y;  ///< [batch_size] labels (i64)
  /// Set when the batch was prepared against a device feature cache:
  /// x holds only the cache-missing rows and the device assembles the rest
  /// (paper §8 / GNS-style caching).
  std::shared_ptr<const CachePlan> cache_plan;

  /// Total bytes this batch moves host->device (adjacency + features +
  /// labels), the quantity driving the transfer phase.
  std::size_t transfer_bytes() const {
    return mfg.adjacency_bytes() + x.nbytes() + y.nbytes();
  }
};

/// Flatten an MFG into a single contiguous int64 buffer.
std::vector<std::int64_t> serialize_mfg(const Mfg& mfg);

/// Inverse of serialize_mfg.
Mfg deserialize_mfg(const std::vector<std::int64_t>& buffer);

}  // namespace salient
