// A fully prepared mini-batch, plus MFG serialization helpers.
//
// PreparedBatch is the hand-off unit between batch preparation and training:
// the sampled MFG, the sliced (half-precision) feature rows for all input
// nodes, and the sliced labels for the mini-batch nodes — the tuple
// `(xs, ys, Gs)` of Listing 1 in the paper.
//
// The serialization helpers emulate what PyTorch multiprocessing DataLoader
// workers do to deliver a sampled subgraph to the main process: the MFG's
// arrays are flattened into one contiguous buffer (the write into POSIX
// shared memory) and re-materialized on the consumer side (the read out of
// it). SALIENT's shared-memory threads skip both copies — that difference is
// one of the effects §4.2 measures.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "prep/feature_cache.h"
#include "sampling/mfg.h"
#include "tensor/tensor.h"

namespace salient {

struct PreparedBatch {
  std::int64_t index = -1;  ///< position of this batch within the epoch
  Mfg mfg;
  Tensor x;  ///< [num_input_nodes, F] features in the loader's wire dtype
             ///< (f16 default; f32 or per-row int8), pinned when pooled;
             ///< with a cache plan, only the plan's missing rows
  Tensor y;  ///< [batch_size] labels (i64)
  /// Per-row dequantization parameters, defined only when x is kInt8Q:
  /// [x.size(0)] f32 scales and zero-points (tensor/quantize.h). They ride
  /// the same DMA as x and the device consumes them when assembling the
  /// f32 compute copy.
  Tensor x_scale;
  Tensor x_zero;
  /// Set when the batch was prepared against a device feature cache:
  /// x holds only the cache-missing rows and the device assembles the rest
  /// (paper §8 / GNS-style caching).
  std::shared_ptr<const CachePlan> cache_plan;

  /// Bytes of feature payload this batch moves host->device: the (possibly
  /// compressed) rows plus, for int8, their per-row scale/zero sidecar.
  /// The compressed-pipeline A/Bs assert on the f32/f16/int8 ratios of this
  /// quantity (tests/test_train.cpp).
  std::size_t feature_bytes() const {
    std::size_t b = x.nbytes();
    if (x_scale.defined()) b += x_scale.nbytes();
    if (x_zero.defined()) b += x_zero.nbytes();
    return b;
  }

  /// Total bytes this batch moves host->device (adjacency + features +
  /// labels), the quantity driving the transfer phase.
  std::size_t transfer_bytes() const {
    return mfg.adjacency_bytes() + feature_bytes() + y.nbytes();
  }
};

class PinnedPool;

/// Slice the feature rows of `ids` into `batch.x` (and, for kInt8Q,
/// `batch.x_scale`/`batch.x_zero`) in the loader's wire dtype, staged in
/// buffers acquired from `pool`. This is the single entry point both loaders
/// use to produce the compressed feature payload:
///   * wire == store dtype: plain bytewise gather;
///   * f16 <-> f32: converting gather (bulk converters, no intermediate);
///   * kInt8Q: per-row affine quantizing gather plus scale/zero sidecars.
/// \throws std::invalid_argument for any other wire dtype.
void stage_feature_rows(const Tensor& features, std::span<const NodeId> ids,
                        DType wire_dtype, PinnedPool& pool,
                        PreparedBatch& batch);

/// Release batch.x / batch.y and any scale/zero sidecars back to `pool`.
/// The loaders' recycle() methods delegate here so every acquired staging
/// buffer is returned no matter which wire dtype produced the batch.
void release_batch_buffers(PinnedPool& pool, PreparedBatch&& batch);

/// Flatten an MFG into a single contiguous int64 buffer.
std::vector<std::int64_t> serialize_mfg(const Mfg& mfg);

/// Inverse of serialize_mfg.
Mfg deserialize_mfg(const std::vector<std::int64_t>& buffer);

}  // namespace salient
