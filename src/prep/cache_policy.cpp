#include "prep/cache_policy.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prep/feature_cache.h"
#include "prep/frequency_table.h"
#include "sampling/fast_sampler.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace salient {

namespace {

/// Same per-batch seed mixing as the loaders: warmup/probe MFGs depend only
/// on (seed, batch index), never on worker scheduling.
std::uint64_t mix_seed(std::uint64_t seed, std::int64_t index) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ull *
                        static_cast<std::uint64_t>(index + 1)));
  return sm.next();
}

/// The vertex set a warmup/probe pass samples from (falls back to every
/// vertex when the requested split is empty).
std::vector<NodeId> resolve_seeds(const Dataset& ds, PresampleSeeds which) {
  std::vector<NodeId> out;
  switch (which) {
    case PresampleSeeds::kTrain:
      out = ds.train_idx;
      break;
    case PresampleSeeds::kTest:
      out = ds.test_idx;
      break;
    case PresampleSeeds::kAll:
      break;
  }
  if (out.empty()) {
    out.resize(static_cast<std::size_t>(ds.graph.num_nodes()));
    std::iota(out.begin(), out.end(), 0);
  }
  return out;
}

/// Deterministic epoch shuffle (the loader's Fisher-Yates, same seeding).
void shuffle_nodes(std::vector<NodeId>& nodes, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  for (std::size_t i = nodes.size(); i > 1; --i) {
    std::swap(nodes[i - 1], nodes[bounded_rand(rng, i)]);
  }
}

/// Top-`capacity` vertices under `better` (a strict weak order over node
/// ids). The result is sorted by `better`, so slot order is deterministic.
template <class Cmp>
std::vector<NodeId> top_nodes(std::int64_t num_nodes, std::int64_t capacity,
                              Cmp better) {
  std::vector<NodeId> order(static_cast<std::size_t>(num_nodes));
  std::iota(order.begin(), order.end(), 0);
  capacity = std::clamp<std::int64_t>(capacity, 0, num_nodes);
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(capacity),
                   order.end(), better);
  order.resize(static_cast<std::size_t>(capacity));
  std::sort(order.begin(), order.end(), better);
  return order;
}

/// Static degree-ordered pinning (GNS-style; the historical default).
/// Ties break toward the smaller id, so placement is fully deterministic.
class DegreePolicy final : public CachePolicy {
 public:
  const char* name() const override { return "degree"; }

  std::vector<NodeId> pin(const Dataset& dataset,
                          std::int64_t capacity) override {
    return top_nodes(dataset.graph.num_nodes(), capacity,
                     [&](NodeId a, NodeId b) {
                       const auto da = dataset.graph.degree(a);
                       const auto db = dataset.graph.degree(b);
                       return da != db ? da > db : a < b;
                     });
  }
};

/// Static presample-based pinning: K warmup sampling epochs through
/// FastSampler, vertex access counts in a FrequencyTable, top-x% pinned.
/// Zero-count ties fall back to degree order, so an interrupted warmup
/// (the `prep.cache.presample.abort` failpoint) degrades gracefully to the
/// degree policy instead of pinning arbitrary rows.
class PresamplePolicy final : public CachePolicy {
 public:
  explicit PresamplePolicy(CachePolicyConfig config)
      : config_(std::move(config)) {}

  const char* name() const override { return "presample"; }

  std::vector<NodeId> pin(const Dataset& dataset,
                          std::int64_t capacity) override {
    SALIENT_TRACE_SCOPE("prep.cache.presample");
    auto& reg = obs::Registry::global();
    static obs::Counter& m_batches = reg.counter("prep.presample.batches");
    static obs::Counter& m_aborts = reg.counter("prep.presample.aborts");
    static obs::Gauge& m_distinct = reg.gauge("prep.presample.distinct");

    const std::int64_t n = dataset.graph.num_nodes();
    FrequencyTable freq(n);
    std::vector<NodeId> seeds =
        resolve_seeds(dataset, config_.presample_seeds);
    const std::int64_t batch = std::max<std::int64_t>(1, config_.batch_size);
    const auto total = static_cast<std::int64_t>(seeds.size());
    const std::int64_t num_batches = (total + batch - 1) / batch;
    std::atomic<bool> aborted{false};
    std::atomic<std::int64_t> counted{0};

    for (int epoch = 0; epoch < config_.presample_epochs; ++epoch) {
      if (aborted.load(std::memory_order_relaxed)) break;
      SALIENT_TRACE_SCOPE("prep.cache.presample.epoch");
      const std::uint64_t epoch_seed =
          config_.seed * 0x10001ull + static_cast<std::uint64_t>(epoch) + 1;
      shuffle_nodes(seeds, epoch_seed);

      auto count_range = [&](std::int64_t begin, std::int64_t end) {
        FastSampler sampler(dataset.graph, config_.fanouts);
        for (std::int64_t b = begin; b < end; ++b) {
          if (aborted.load(std::memory_order_relaxed)) return;
          if (SALIENT_FAILPOINT("prep.cache.presample.abort")) {
            // Interrupted warmup: stop counting, keep what we have. The
            // zero-count remainder of the ranking degrades to degree order.
            aborted.store(true, std::memory_order_relaxed);
            m_aborts.add();
            return;
          }
          const std::int64_t lo = b * batch;
          const std::int64_t hi = std::min(total, lo + batch);
          const Mfg mfg = sampler.sample(
              {seeds.data() + lo, static_cast<std::size_t>(hi - lo)},
              mix_seed(epoch_seed, b));
          for (const NodeId v : mfg.n_ids) freq.add(v);
          counted.fetch_add(1, std::memory_order_relaxed);
        }
      };
      if (config_.presample_workers > 0) {
        ThreadPool pool(static_cast<std::size_t>(config_.presample_workers));
        pool.parallel_for(0, num_batches, count_range);
      } else {
        count_range(0, num_batches);
      }
    }
    m_batches.add(counted.load(std::memory_order_relaxed));
    m_distinct.set(static_cast<double>(freq.distinct()));

    // Scatter the flat table's counts to a dense ranking array and pin the
    // top-capacity by (frequency, degree, id) — a deterministic total order.
    std::vector<std::int64_t> counts(static_cast<std::size_t>(n), 0);
    for (const auto& [v, c] : freq.items()) {
      counts[static_cast<std::size_t>(v)] = c;
    }
    return top_nodes(n, capacity, [&](NodeId a, NodeId b) {
      const auto ca = counts[static_cast<std::size_t>(a)];
      const auto cb = counts[static_cast<std::size_t>(b)];
      if (ca != cb) return ca > cb;
      const auto da = dataset.graph.degree(a);
      const auto db = dataset.graph.degree(b);
      return da != db ? da > db : a < b;
    });
  }

 private:
  CachePolicyConfig config_;
};

/// Dynamic least-recently-used admission/eviction over the cache's slots:
/// cold start, admit every miss, evict the slot whose last touch is oldest.
/// Recency is an intrusive doubly-linked list over slot indices — O(1) per
/// hook. All hooks run under the FeatureCache lock.
class LruPolicy final : public CachePolicy {
 public:
  const char* name() const override { return "lru"; }
  bool dynamic() const override { return true; }

  std::vector<NodeId> pin(const Dataset& dataset,
                          std::int64_t capacity) override {
    (void)dataset;
    capacity_ = capacity;
    prev_.assign(static_cast<std::size_t>(capacity), -1);
    next_.assign(static_cast<std::size_t>(capacity), -1);
    head_ = tail_ = -1;
    used_ = 0;
    return {};  // cold cache
  }

  std::int64_t admit(NodeId v) override {
    (void)v;
    if (capacity_ == 0) return -1;
    std::int64_t slot;
    if (used_ < capacity_) {
      slot = used_++;
    } else {
      slot = tail_;
      detach(slot);
    }
    push_front(slot);
    return slot;
  }

  void touch(std::int64_t slot) override {
    detach(slot);
    push_front(slot);
  }

 private:
  void detach(std::int64_t slot) {
    const auto s = static_cast<std::size_t>(slot);
    if (prev_[s] >= 0) {
      next_[static_cast<std::size_t>(prev_[s])] = next_[s];
    } else if (head_ == slot) {
      head_ = next_[s];
    }
    if (next_[s] >= 0) {
      prev_[static_cast<std::size_t>(next_[s])] = prev_[s];
    } else if (tail_ == slot) {
      tail_ = prev_[s];
    }
    prev_[s] = next_[s] = -1;
  }

  void push_front(std::int64_t slot) {
    const auto s = static_cast<std::size_t>(slot);
    prev_[s] = -1;
    next_[s] = head_;
    if (head_ >= 0) prev_[static_cast<std::size_t>(head_)] = slot;
    head_ = slot;
    if (tail_ < 0) tail_ = slot;
  }

  std::int64_t capacity_ = 0;
  std::int64_t used_ = 0;
  std::int64_t head_ = -1, tail_ = -1;
  std::vector<std::int64_t> prev_, next_;  // intrusive recency list
};

/// Auto-selection: build each concrete candidate, plan a fixed probe stream
/// of sampled batches against it, read the observed hit rate from the
/// `prep.cache.row_{hits,misses}` counters in the obs metrics registry, and
/// delegate every subsequent hook to the winner. Candidates are ranked
/// presample > degree > lru on ties (prefer static placement: it plans
/// lock-free and is the policy the distributed cache reuses).
class AutoPolicy final : public CachePolicy {
 public:
  explicit AutoPolicy(CachePolicyConfig config) : config_(std::move(config)) {}

  const char* name() const override {
    if (!delegate_) return "auto";
    switch (selected_) {
      case CachePolicyKind::kLru:
        return "auto(lru)";
      case CachePolicyKind::kDegree:
        return "auto(degree)";
      case CachePolicyKind::kPresample:
        return "auto(presample)";
      case CachePolicyKind::kAuto:
        break;
    }
    return "auto";
  }

  std::vector<NodeId> pin(const Dataset& dataset,
                          std::int64_t capacity) override {
    SALIENT_TRACE_SCOPE("prep.cache.auto_select");
    auto& reg = obs::Registry::global();
    obs::Counter& hits = reg.counter("prep.cache.row_hits");
    obs::Counter& misses = reg.counter("prep.cache.row_misses");

    // The fixed probe stream every candidate is measured against.
    std::vector<NodeId> seeds =
        resolve_seeds(dataset, config_.presample_seeds);
    shuffle_nodes(seeds, config_.seed ^ 0xa070c4c8e5ull);
    const std::int64_t batch = std::max<std::int64_t>(1, config_.batch_size);
    const int probes = std::max(1, config_.auto_probe_batches);

    constexpr CachePolicyKind kCandidates[] = {CachePolicyKind::kPresample,
                                               CachePolicyKind::kDegree,
                                               CachePolicyKind::kLru};
    double best_rate = -1.0;
    for (const CachePolicyKind kind : kCandidates) {
      CachePolicyConfig cand = config_;
      cand.kind = kind;
      const FeatureCache trial(dataset, capacity, make_cache_policy(cand));
      FastSampler sampler(dataset.graph, config_.fanouts);
      const std::int64_t h0 = hits.value(), m0 = misses.value();
      for (int b = 0; b < probes; ++b) {
        const std::size_t lo =
            (static_cast<std::size_t>(b) * static_cast<std::size_t>(batch)) %
            std::max<std::size_t>(seeds.size(), 1);
        const std::size_t hi =
            std::min(seeds.size(), lo + static_cast<std::size_t>(batch));
        const Mfg mfg =
            sampler.sample({seeds.data() + lo, hi - lo},
                           mix_seed(config_.seed ^ 0x5eedull, b));
        (void)plan_cached_batch(mfg, trial);
      }
      const auto dh = static_cast<double>(hits.value() - h0);
      const auto dm = static_cast<double>(misses.value() - m0);
      const double rate = dh + dm > 0 ? dh / (dh + dm) : 0.0;
      reg.gauge(std::string("prep.cache.auto.hit_rate.") +
                cache_policy_name(kind))
          .set(rate);
      if (rate > best_rate) {
        best_rate = rate;
        selected_ = kind;
      }
    }
    reg.gauge("prep.cache.auto.selected")
        .set(static_cast<double>(static_cast<int>(selected_)));

    CachePolicyConfig winner = config_;
    winner.kind = selected_;
    delegate_ = make_cache_policy(winner);
    return delegate_->pin(dataset, capacity);
  }

  bool dynamic() const override {
    return delegate_ ? delegate_->dynamic() : false;
  }
  std::int64_t admit(NodeId v) override { return delegate_->admit(v); }
  void touch(std::int64_t slot) override { delegate_->touch(slot); }

 private:
  CachePolicyConfig config_;
  CachePolicyKind selected_ = CachePolicyKind::kDegree;
  std::unique_ptr<CachePolicy> delegate_;
};

}  // namespace

CachePolicyKind parse_cache_policy(const std::string& name) {
  if (name == "lru") return CachePolicyKind::kLru;
  if (name == "degree") return CachePolicyKind::kDegree;
  if (name == "presample") return CachePolicyKind::kPresample;
  if (name == "auto") return CachePolicyKind::kAuto;
  throw std::invalid_argument("unknown cache policy: " + name);
}

const char* cache_policy_name(CachePolicyKind kind) {
  switch (kind) {
    case CachePolicyKind::kLru:
      return "lru";
    case CachePolicyKind::kDegree:
      return "degree";
    case CachePolicyKind::kPresample:
      return "presample";
    case CachePolicyKind::kAuto:
      return "auto";
  }
  return "unknown";
}

std::unique_ptr<CachePolicy> make_cache_policy(
    const CachePolicyConfig& config) {
  if (config.presample_epochs < 1) {
    throw std::invalid_argument("cache policy: presample_epochs must be >= 1");
  }
  if (config.batch_size < 1) {
    throw std::invalid_argument("cache policy: batch_size must be >= 1");
  }
  switch (config.kind) {
    case CachePolicyKind::kLru:
      return std::make_unique<LruPolicy>();
    case CachePolicyKind::kDegree:
      return std::make_unique<DegreePolicy>();
    case CachePolicyKind::kPresample:
      return std::make_unique<PresamplePolicy>(config);
    case CachePolicyKind::kAuto:
      return std::make_unique<AutoPolicy>(config);
  }
  throw std::invalid_argument("unknown cache policy kind");
}

}  // namespace salient
