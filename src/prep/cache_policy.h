// Pluggable feature-cache policies (docs/CACHING.md).
//
// The device feature cache (prep/feature_cache.h) hides host->device feature
// traffic, but *which* rows it keeps resident is a policy decision. SALIENT++
// and the FGNN/GNNLab line of systems show that for neighborhood-sampling
// workloads, static frequency-informed placement (degree-ordered, or counted
// from warmup sampling epochs) decisively beats dynamic LRU — the access
// stream is a near-stationary power law, so recency learns nothing that
// frequency does not already know, while paying admission/eviction churn on
// every batch. This header makes the policy a first-class, swappable object
// so the same cache body serves all of them, and so the distributed
// remote-feature cache (ROADMAP item 1) can reuse the interface unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/dataset.h"

/// \file
/// \brief The CachePolicy interface and its configuration: pluggable
/// admission/eviction/pinning strategies for the device feature cache.

/// \namespace salient
/// \brief Root namespace of the SALIENT reproduction.
namespace salient {

/// Identifies a feature-cache policy implementation (docs/CACHING.md).
enum class CachePolicyKind : std::uint8_t {
  /// Dynamic least-recently-used: cold start, admit every miss, evict the
  /// least recently planned row. The classic baseline the static policies
  /// are measured against.
  kLru,
  /// Static degree-ordered pinning (GNS-style): the `capacity` highest
  /// degree vertices are pinned at construction and never change.
  kDegree,
  /// Static presample-based pinning (FGNN/GNNLab-style): run K warmup
  /// sampling epochs, count vertex access frequency in a flat hash table,
  /// pin the top-`capacity` vertices by observed frequency.
  kPresample,
  /// Auto-selection: probe each concrete policy on a short sampled access
  /// stream, read the observed `prep.cache.row_{hits,misses}` hit rate from
  /// the obs metrics registry, and delegate to the winner.
  kAuto,
};

/// Parse a policy name ("lru", "degree", "presample", "auto").
/// \throws std::invalid_argument on an unknown name.
CachePolicyKind parse_cache_policy(const std::string& name);

/// The canonical lower-case name of `kind` (inverse of parse_cache_policy).
const char* cache_policy_name(CachePolicyKind kind);

/// Which vertex set the presample warmup epochs sample from.
enum class PresampleSeeds : std::uint8_t {
  kTrain,  ///< the training split (training pipelines)
  kTest,   ///< the test split (serving pipelines)
  kAll,    ///< every vertex (workload-agnostic placement)
};

/// Everything a policy needs beyond the dataset: the sampling shape of the
/// workload it should optimize for, and its own tuning knobs. Owners
/// (Trainer, InferenceServer) fill this from their loader/serve configs so
/// the warmup epochs match the real workload's fanouts and batch size.
struct CachePolicyConfig {
  /// Which policy to build (the `--cache-policy` CLI knob).
  CachePolicyKind kind = CachePolicyKind::kDegree;
  /// Presample: number of warmup sampling epochs K (>= 1). More epochs
  /// sharpen the frequency estimate at linear warmup cost; K=2..3 is ample
  /// for power-law graphs (docs/CACHING.md).
  int presample_epochs = 2;
  /// Presample: warmup worker threads (0 = serial). Counting is
  /// deterministic across any worker count.
  int presample_workers = 0;
  /// Presample: which vertex set seeds the warmup epochs.
  PresampleSeeds presample_seeds = PresampleSeeds::kTrain;
  /// Per-layer sampling fanouts of the target workload, outermost first.
  std::vector<std::int64_t> fanouts{15, 10, 5};
  /// Mini-batch size of the target workload.
  std::int64_t batch_size = 1024;
  /// Seed for warmup/probe sampling (mixed per batch, so counting is
  /// independent of worker scheduling).
  std::uint64_t seed = 1;
  /// Auto: probe batches planned per candidate policy when measuring
  /// hit rates.
  int auto_probe_batches = 8;
};

/// Strategy interface deciding which feature rows live in a FeatureCache.
///
/// A policy participates at two points in a cache's life:
///
///  * **Pinning** — pin() chooses the initial resident vertex set at cache
///    construction. Static policies (degree, presample) do all their work
///    here and are immutable afterwards, which is what makes them lock-free
///    to plan against.
///  * **Admission/eviction** — dynamic policies (dynamic() == true) are
///    additionally consulted once per planned batch row: touch() on every
///    hit updates recency state, admit() on every miss either names a
///    victim slot to overwrite or declines the admission. Both hooks are
///    invoked by FeatureCache under its internal cache lock, so
///    implementations need no synchronization of their own.
///
/// The contract is deliberately minimal so the distributed remote-feature
/// cache (ROADMAP item 1) can implement it over per-node remote-vertex sets
/// without touching the cache body.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  /// The policy's canonical name (for metrics and logs).
  virtual const char* name() const = 0;

  /// Pinning hook: choose up to `capacity` vertices to make resident at
  /// construction. Called exactly once, before any other hook. May be
  /// expensive (the presample policy runs its warmup epochs here). Dynamic
  /// policies may return fewer than `capacity` vertices (LRU returns none —
  /// a cold cache); the returned set seeds slots 0..n-1 in order and the
  /// policy must account for those slots as already occupied.
  virtual std::vector<NodeId> pin(const Dataset& dataset,
                                  std::int64_t capacity) = 0;

  /// Whether the resident set changes at plan time (admission/eviction).
  /// Dynamic caches take a lock per planned batch and snapshot hit rows;
  /// static caches plan lock-free. Queried after pin().
  virtual bool dynamic() const { return false; }

  /// Eviction+admission hook (dynamic policies only; under the cache lock).
  /// A plan found `v` missing: return the slot to overwrite with `v`'s row
  /// (evicting that slot's current resident, if any), or -1 to decline the
  /// admission. The cache applies all slot bookkeeping.
  virtual std::int64_t admit(NodeId v) {
    (void)v;
    return -1;
  }

  /// Access hook (dynamic policies only; under the cache lock): a plan hit
  /// resident slot `slot` — update recency/frequency state.
  virtual void touch(std::int64_t slot) { (void)slot; }
};

/// Build a policy from `config` (the factory behind the `--cache-policy`
/// knob). \throws std::invalid_argument on invalid configuration (e.g.
/// presample_epochs < 1).
std::unique_ptr<CachePolicy> make_cache_policy(const CachePolicyConfig& config);

}  // namespace salient
