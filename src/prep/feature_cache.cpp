#include "prep/feature_cache.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "prep/slicing.h"

namespace salient {

FeatureCache::FeatureCache(const Dataset& dataset, std::int64_t capacity)
    : FeatureCache(dataset, capacity,
                   make_cache_policy(CachePolicyConfig{})) {}

FeatureCache::FeatureCache(const Dataset& dataset, std::int64_t capacity,
                           const CachePolicyConfig& config)
    : FeatureCache(dataset, capacity, make_cache_policy(config)) {}

FeatureCache::FeatureCache(const Dataset& dataset, std::int64_t capacity,
                           std::unique_ptr<CachePolicy> policy)
    : dataset_(&dataset), policy_(std::move(policy)) {
  if (!policy_) {
    throw std::invalid_argument("FeatureCache: null policy");
  }
  const std::int64_t n = dataset.graph.num_nodes();
  capacity_ = std::clamp<std::int64_t>(capacity, 0, n);
  feature_dim_ = dataset.feature_dim;

  std::vector<NodeId> pinned = policy_->pin(dataset, capacity_);
  if (static_cast<std::int64_t>(pinned.size()) > capacity_) {
    throw std::logic_error("FeatureCache: policy pinned beyond capacity");
  }
  dynamic_ = policy_->dynamic();

  // Materialize the pinned rows in device precision.
  Tensor host_rows({static_cast<std::int64_t>(pinned.size()), feature_dim_},
                   dataset.features.dtype());
  slice_rows_serial(dataset.features, pinned, host_rows);
  const Tensor pinned_f32 = host_rows.to(DType::kF32);

  if (!dynamic_) {
    slot_.assign(static_cast<std::size_t>(n), -1);
    features_ = pinned_f32;
    for (std::size_t s = 0; s < pinned.size(); ++s) {
      slot_[static_cast<std::size_t>(pinned[s])] =
          static_cast<std::int64_t>(s);
    }
    return;
  }
  LockGuard lock(mu_);
  dyn_slot_.assign(static_cast<std::size_t>(n), -1);
  node_of_slot_.assign(static_cast<std::size_t>(capacity_), -1);
  dyn_features_ = Tensor({capacity_, feature_dim_}, DType::kF32);
  const std::size_t row_bytes =
      static_cast<std::size_t>(feature_dim_) * sizeof(float);
  for (std::size_t s = 0; s < pinned.size(); ++s) {
    dyn_slot_[static_cast<std::size_t>(pinned[s])] =
        static_cast<std::int64_t>(s);
    node_of_slot_[s] = pinned[s];
    std::memcpy(dyn_features_.data<float>() +
                    static_cast<std::int64_t>(s) * feature_dim_,
                pinned_f32.data<float>() +
                    static_cast<std::int64_t>(s) * feature_dim_,
                row_bytes);
  }
}

std::int64_t FeatureCache::slot_of(NodeId v) const {
  if (!dynamic_) {
    return v >= 0 && v < static_cast<NodeId>(slot_.size())
               ? slot_[static_cast<std::size_t>(v)]
               : -1;
  }
  LockGuard lock(mu_);
  return v >= 0 && v < static_cast<NodeId>(dyn_slot_.size())
             ? dyn_slot_[static_cast<std::size_t>(v)]
             : -1;
}

std::vector<NodeId> FeatureCache::resident_nodes() const {
  std::vector<NodeId> out;
  if (!dynamic_) {
    for (std::size_t v = 0; v < slot_.size(); ++v) {
      if (slot_[v] >= 0) out.push_back(static_cast<NodeId>(v));
    }
    return out;  // ascending by construction
  }
  LockGuard lock(mu_);
  for (const NodeId v : node_of_slot_) {
    if (v >= 0) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t FeatureCache::device_bytes() const {
  if (!dynamic_) return features_.nbytes();
  return static_cast<std::size_t>(capacity_) *
         static_cast<std::size_t>(feature_dim_) * sizeof(float);
}

CachePlan FeatureCache::plan_static(const Mfg& mfg) const {
  CachePlan plan;
  plan.from_cache.reserve(mfg.n_ids.size());
  plan.source.reserve(mfg.n_ids.size());
  for (const NodeId v : mfg.n_ids) {
    const std::int64_t slot =
        v >= 0 && v < static_cast<NodeId>(slot_.size())
            ? slot_[static_cast<std::size_t>(v)]
            : -1;
    if (slot >= 0) {
      plan.from_cache.push_back(1);
      plan.source.push_back(slot);
    } else {
      plan.from_cache.push_back(0);
      plan.source.push_back(plan.num_missing++);
    }
  }
  return plan;
}

CachePlan FeatureCache::plan_dynamic(const Mfg& mfg) const {
  CachePlan plan;
  plan.from_cache.reserve(mfg.n_ids.size());
  plan.source.reserve(mfg.n_ids.size());
  const std::size_t row_floats = static_cast<std::size_t>(feature_dim_);
  std::vector<float> hit_staging;  // hits * F, snapshotted under the lock
  std::vector<NodeId> admitted_nodes;
  std::vector<std::int64_t> admitted_slots;
  {
    LockGuard lock(mu_);
    const float* feat = dyn_features_.data<float>();
    for (const NodeId v : mfg.n_ids) {
      const bool in_range =
          v >= 0 && v < static_cast<NodeId>(dyn_slot_.size());
      const std::int64_t slot =
          in_range ? dyn_slot_[static_cast<std::size_t>(v)] : -1;
      if (slot >= 0) {
        policy_->touch(slot);
        plan.from_cache.push_back(1);
        plan.source.push_back(
            static_cast<std::int64_t>(hit_staging.size() / row_floats));
        const float* row = feat + slot * feature_dim_;
        hit_staging.insert(hit_staging.end(), row, row + feature_dim_);
      } else {
        plan.from_cache.push_back(0);
        plan.source.push_back(plan.num_missing++);
        if (capacity_ > 0 && in_range) {
          const std::int64_t victim = policy_->admit(v);
          if (victim >= 0) {
            // Retarget the slot; the row contents are written below. No hit
            // later in this batch can reference the victim slot (input node
            // ids are unique), so deferring the copy is safe.
            const NodeId old = node_of_slot_[static_cast<std::size_t>(victim)];
            if (old >= 0) dyn_slot_[static_cast<std::size_t>(old)] = -1;
            node_of_slot_[static_cast<std::size_t>(victim)] = v;
            dyn_slot_[static_cast<std::size_t>(v)] = victim;
            admitted_nodes.push_back(v);
            admitted_slots.push_back(victim);
          }
        }
      }
    }
    if (!admitted_nodes.empty()) {
      // One batched slice + convert for all admissions of this plan.
      Tensor host({static_cast<std::int64_t>(admitted_nodes.size()),
                   feature_dim_},
                  dataset_->features.dtype());
      slice_rows_serial(dataset_->features, admitted_nodes, host);
      const Tensor rows_f32 = host.to(DType::kF32);
      const std::size_t row_bytes = row_floats * sizeof(float);
      for (std::size_t i = 0; i < admitted_slots.size(); ++i) {
        std::memcpy(dyn_features_.data<float>() +
                        admitted_slots[i] * feature_dim_,
                    rows_f32.data<float>() +
                        static_cast<std::int64_t>(i) * feature_dim_,
                    row_bytes);
      }
    }
  }
  const auto hits =
      static_cast<std::int64_t>(hit_staging.size() / row_floats);
  plan.hit_rows = Tensor({hits, feature_dim_}, DType::kF32);
  if (hits > 0) {
    std::memcpy(plan.hit_rows.raw(), hit_staging.data(),
                hit_staging.size() * sizeof(float));
  }
  return plan;
}

CachePlan plan_cached_batch(const Mfg& mfg, const FeatureCache& cache) {
  // Whole-run hit/miss totals for the metrics dump: the cache's measured hit
  // ratio (vs. the capacity/|V| lower bound) without running the ablation
  // bench. hit_rate = hits / (hits + misses). The auto policy probes read
  // the same counters to rank candidate policies (docs/CACHING.md).
  auto& reg = obs::Registry::global();
  static obs::Counter& m_hits = reg.counter("prep.cache.row_hits");
  static obs::Counter& m_misses = reg.counter("prep.cache.row_misses");

  CachePlan plan = cache.dynamic_policy() ? cache.plan_dynamic(mfg)
                                          : cache.plan_static(mfg);
  const auto total = static_cast<std::int64_t>(plan.from_cache.size());
  m_hits.add(total - plan.num_missing);
  m_misses.add(plan.num_missing);
  return plan;
}

std::vector<NodeId> missing_node_ids(const Mfg& mfg, const CachePlan& plan) {
  std::vector<NodeId> missing;
  missing.reserve(static_cast<std::size_t>(plan.num_missing));
  for (std::size_t i = 0; i < mfg.n_ids.size(); ++i) {
    if (!plan.from_cache[i]) missing.push_back(mfg.n_ids[i]);
  }
  return missing;
}

void slice_missing_rows(const Dataset& dataset, const Mfg& mfg,
                        const CachePlan& plan, Tensor& out) {
  if (out.size(0) != plan.num_missing ||
      out.size(1) != dataset.feature_dim ||
      out.dtype() != dataset.features.dtype()) {
    throw std::invalid_argument("slice_missing_rows: bad output buffer");
  }
  slice_rows_serial(dataset.features, missing_node_ids(mfg, plan), out);
}

}  // namespace salient
