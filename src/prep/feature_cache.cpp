#include "prep/feature_cache.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.h"
#include "prep/slicing.h"

namespace salient {

FeatureCache::FeatureCache(const Dataset& dataset, std::int64_t capacity) {
  const std::int64_t n = dataset.graph.num_nodes();
  capacity_ = std::clamp<std::int64_t>(capacity, 0, n);
  slot_.assign(static_cast<std::size_t>(n), -1);

  // Select the capacity highest-degree nodes (partial sort).
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(),
                   order.begin() + static_cast<std::ptrdiff_t>(capacity_),
                   order.end(), [&](NodeId a, NodeId b) {
                     return dataset.graph.degree(a) > dataset.graph.degree(b);
                   });
  order.resize(static_cast<std::size_t>(capacity_));

  // Materialize their features in device precision.
  Tensor host_rows({capacity_, dataset.feature_dim},
                   dataset.features.dtype());
  slice_rows_serial(dataset.features, order, host_rows);
  features_ = host_rows.to(DType::kF32);
  for (std::size_t s = 0; s < order.size(); ++s) {
    slot_[static_cast<std::size_t>(order[s])] = static_cast<std::int64_t>(s);
  }
}

CachePlan plan_cached_batch(const Mfg& mfg, const FeatureCache& cache) {
  // Whole-run hit/miss totals for the metrics dump: the cache's measured hit
  // ratio (vs. the capacity/|V| lower bound) without running the ablation
  // bench. hit_rate = hits / (hits + misses).
  auto& reg = obs::Registry::global();
  static obs::Counter& m_hits = reg.counter("prep.cache.row_hits");
  static obs::Counter& m_misses = reg.counter("prep.cache.row_misses");

  CachePlan plan;
  plan.from_cache.reserve(mfg.n_ids.size());
  plan.source.reserve(mfg.n_ids.size());
  for (const NodeId v : mfg.n_ids) {
    const std::int64_t slot = cache.slot_of(v);
    if (slot >= 0) {
      plan.from_cache.push_back(1);
      plan.source.push_back(slot);
    } else {
      plan.from_cache.push_back(0);
      plan.source.push_back(plan.num_missing++);
    }
  }
  const auto total = static_cast<std::int64_t>(plan.from_cache.size());
  m_hits.add(total - plan.num_missing);
  m_misses.add(plan.num_missing);
  return plan;
}

void slice_missing_rows(const Dataset& dataset, const Mfg& mfg,
                        const CachePlan& plan, Tensor& out) {
  if (out.size(0) != plan.num_missing ||
      out.size(1) != dataset.feature_dim ||
      out.dtype() != dataset.features.dtype()) {
    throw std::invalid_argument("slice_missing_rows: bad output buffer");
  }
  std::vector<NodeId> missing;
  missing.reserve(static_cast<std::size_t>(plan.num_missing));
  for (std::size_t i = 0; i < mfg.n_ids.size(); ++i) {
    if (!plan.from_cache[i]) missing.push_back(mfg.n_ids[i]);
  }
  slice_rows_serial(dataset.features, missing, out);
}

}  // namespace salient
