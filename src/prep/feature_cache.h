// Device-resident feature caching (paper §8, future work).
//
// "one must avail of additional techniques such as GPU-based slicing (Min
// et al., 2021) or caching data on the GPU (Dong et al., 2021) to reduce the
// slicing or data transfer volume."
//
// This implements the static degree-ordered cache of GNS (Dong et al.): the
// features of the `capacity` highest-degree nodes are kept resident on the
// device in compute precision (f32). Because node-wise sampling visits
// high-degree nodes far more often than uniformly (every neighbor list they
// appear in can sample them), the cache hit rate is much higher than
// capacity/|V| — the effect the ablation bench quantifies.
//
// Pipeline integration: the preparation side slices only the *missing* rows
// into pinned staging (prepare_cached_batch), and the device assembles the
// full feature matrix from the cache plus the transferred rows on the
// compute stream (DeviceSim::transfer_batch_cached).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/dataset.h"
#include "sampling/mfg.h"
#include "tensor/tensor.h"

namespace salient {

class FeatureCache {
 public:
  /// Build a cache of the `capacity` highest-degree nodes' features,
  /// converted to f32 (the device compute precision). capacity 0 is a valid
  /// always-miss cache.
  FeatureCache(const Dataset& dataset, std::int64_t capacity);

  std::int64_t capacity() const { return capacity_; }
  /// Cached feature matrix [capacity, F] (device-resident f32).
  const Tensor& features() const { return features_; }

  /// Cache slot of node `v`, or -1 when not cached. O(1).
  std::int64_t slot_of(NodeId v) const {
    return v >= 0 && v < static_cast<NodeId>(slot_.size())
               ? slot_[static_cast<std::size_t>(v)]
               : -1;
  }

  /// Bytes of device memory the cache occupies.
  std::size_t device_bytes() const { return features_.nbytes(); }

 private:
  std::int64_t capacity_ = 0;
  Tensor features_;                 // [capacity, F] f32
  std::vector<std::int64_t> slot_;  // node -> slot or -1
};

/// A transfer plan for one mini-batch against a cache: row i of the batch's
/// input set comes either from cache slot `source[i]` (when from_cache[i])
/// or from transferred-missing-row `source[i]`.
struct CachePlan {
  std::vector<std::uint8_t> from_cache;  // per input node
  std::vector<std::int64_t> source;      // cache slot or missing-row index
  std::int64_t num_missing = 0;

  double hit_rate() const {
    return from_cache.empty()
               ? 0.0
               : 1.0 - static_cast<double>(num_missing) /
                           static_cast<double>(from_cache.size());
  }
};

/// Classify the MFG's input nodes against the cache and slice only the
/// missing rows from the host feature store into `x_missing` (preallocated
/// by the caller as [num_missing, F] in the host feature dtype; call with
/// undefined tensor first to obtain the plan, then with the buffer).
CachePlan plan_cached_batch(const Mfg& mfg, const FeatureCache& cache);

/// Slice the plan's missing rows from the host store into `out`
/// ([plan.num_missing, F], host feature dtype).
void slice_missing_rows(const Dataset& dataset, const Mfg& mfg,
                        const CachePlan& plan, Tensor& out);

}  // namespace salient
