// Device-resident feature caching (paper §8, future work) with pluggable
// placement policies (docs/CACHING.md).
//
// "one must avail of additional techniques such as GPU-based slicing (Min
// et al., 2021) or caching data on the GPU (Dong et al., 2021) to reduce the
// slicing or data transfer volume."
//
// The cache keeps the features of up to `capacity` vertices resident on the
// device in compute precision (f32). Which vertices those are is decided by
// a CachePolicy (prep/cache_policy.h): static degree-ordered pinning (the
// GNS cache of Dong et al., the default), static presample-based pinning
// (FGNN/GNNLab-style warmup frequency counting), dynamic LRU, or an
// auto-selection mode. Because node-wise sampling visits high-degree nodes
// far more often than uniformly, frequency-informed placement achieves hit
// rates much higher than capacity/|V| — the effect the ablation bench and
// the `serve_loadgen --sweep-cache` curves quantify.
//
// Pipeline integration: the preparation side slices only the *missing* rows
// into pinned staging (plan_cached_batch + slice_missing_rows), and the
// device assembles the full feature matrix from the cache plus the
// transferred rows on the compute stream (DeviceSim::transfer_batch_cached).
//
// Concurrency: caches built with a static policy are immutable after
// construction and planned against lock-free from any number of loader /
// serve prep workers. A dynamic policy (LRU) mutates the resident set at
// plan time, so plans take the internal cache mutex and carry a snapshot of
// their hit rows (CachePlan::hit_rows) — in-flight batches stay coherent
// even if their rows are evicted before the device consumes the plan.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/dataset.h"
#include "prep/cache_policy.h"
#include "sampling/mfg.h"
#include "tensor/tensor.h"
#include "util/thread_annotations.h"

/// \file
/// \brief The device feature cache, its per-batch transfer plan, and the
/// cache-aware slicing helpers.

namespace salient {

class FeatureCache;

/// A transfer plan for one mini-batch against a cache: row i of the batch's
/// input set comes either from the cache (when from_cache[i]) or from
/// transferred-missing-row `source[i]`.
struct CachePlan {
  /// Per input node: 1 when served from the cache, 0 when transferred.
  std::vector<std::uint8_t> from_cache;
  /// Per input node: for misses, the dense missing-row index (0-based in
  /// input order). For hits: the cache slot (static policies) or the row in
  /// `hit_rows` (dynamic policies, where hit_rows is defined).
  std::vector<std::int64_t> source;
  /// Number of rows the host must still transfer.
  std::int64_t num_missing = 0;
  /// Dynamic policies only: an f32 snapshot [hits, F] of the hit rows,
  /// taken atomically with the plan so later evictions cannot corrupt
  /// in-flight batches. Undefined for static policies (the device reads
  /// FeatureCache::features() directly — it never changes).
  Tensor hit_rows;

  /// Fraction of input rows served from the cache (0 on an empty plan).
  double hit_rate() const {
    return from_cache.empty()
               ? 0.0
               : 1.0 - static_cast<double>(num_missing) /
                           static_cast<double>(from_cache.size());
  }
};

/// Classify the MFG's input nodes against the cache, count the whole-run
/// `prep.cache.row_{hits,misses}` metrics, and (for dynamic policies) apply
/// the policy's admission/eviction decisions. Thread-safe.
CachePlan plan_cached_batch(const Mfg& mfg, const FeatureCache& cache);

/// Device-resident feature cache over a policy-selected vertex set.
///
/// Construction materializes the policy's pinned rows in device precision
/// (f32); capacity 0 is a valid always-miss cache. Instances are shared
/// across loader/serve workers via shared_ptr<const FeatureCache>; all
/// const member functions are thread-safe.
class FeatureCache {
 public:
  /// Degree-ordered static cache of the `capacity` highest-degree nodes
  /// (backward-compatible default policy).
  FeatureCache(const Dataset& dataset, std::int64_t capacity);

  /// Build with the policy described by `config` (the `--cache-policy`
  /// CLI surface; see CachePolicyConfig).
  FeatureCache(const Dataset& dataset, std::int64_t capacity,
               const CachePolicyConfig& config);

  /// Build over an explicit policy instance (tests, custom policies). The
  /// cache borrows `dataset`, which must outlive it.
  FeatureCache(const Dataset& dataset, std::int64_t capacity,
               std::unique_ptr<CachePolicy> policy);

  /// Maximum resident rows (clamped to the dataset's node count).
  std::int64_t capacity() const { return capacity_; }

  /// The governing policy's canonical name (e.g. "degree", "lru").
  const char* policy_name() const { return policy_->name(); }

  /// Whether the resident set mutates at plan time (see CachePolicy).
  bool dynamic_policy() const { return dynamic_; }

  /// Static policies: the resident feature matrix [capacity, F]
  /// (device-resident f32), immutable after construction. Undefined for
  /// dynamic policies — their plans carry CachePlan::hit_rows instead.
  const Tensor& features() const { return features_; }

  /// Cache slot of node `v`, or -1 when not resident. Static policies:
  /// lock-free O(1). Dynamic policies: takes the cache lock and reports the
  /// current resident set (a moving target under concurrent planning).
  std::int64_t slot_of(NodeId v) const;

  /// The resident vertex set, sorted ascending (test/diagnostic helper;
  /// takes the cache lock for dynamic policies).
  std::vector<NodeId> resident_nodes() const;

  /// Bytes of device memory the cache occupies.
  std::size_t device_bytes() const;

 private:
  friend CachePlan plan_cached_batch(const Mfg& mfg, const FeatureCache& cache);

  /// Lock-free plan against the immutable resident set.
  CachePlan plan_static(const Mfg& mfg) const;
  /// Locked plan: snapshot hits, consult the policy on misses, apply
  /// admissions/evictions.
  CachePlan plan_dynamic(const Mfg& mfg) const;

  const Dataset* dataset_ = nullptr;  ///< borrowed; outlives the cache
  std::unique_ptr<CachePolicy> policy_;
  bool dynamic_ = false;
  std::int64_t capacity_ = 0;
  std::int64_t feature_dim_ = 0;

  // Static-policy state: immutable after construction, read lock-free.
  Tensor features_;                 ///< [capacity, F] f32
  std::vector<std::int64_t> slot_;  ///< node -> slot or -1

  /// Guards every dyn_* member plus the policy's admission/recency state
  /// (dynamic policies only; never taken by static-policy caches).
  mutable Mutex mu_;
  mutable Tensor dyn_features_ GUARDED_BY(mu_);  ///< [capacity, F] f32
  mutable std::vector<std::int64_t> dyn_slot_ GUARDED_BY(mu_);
  mutable std::vector<NodeId> node_of_slot_ GUARDED_BY(mu_);
};

/// The node ids of the plan's cache-missing rows, in the order the device
/// expects them in the staged miss buffer (the loaders feed this list to
/// stage_feature_rows so misses can ship compressed).
std::vector<NodeId> missing_node_ids(const Mfg& mfg, const CachePlan& plan);

/// Slice the plan's missing rows from the host store into `out`
/// ([plan.num_missing, F], host feature dtype).
void slice_missing_rows(const Dataset& dataset, const Mfg& mfg,
                        const CachePlan& plan, Tensor& out);

}  // namespace salient
