// Flat concurrent frequency table for pre-sampling access estimation.
//
// The presample cache policy (prep/cache_policy.h, docs/CACHING.md) runs K
// warmup sampling epochs and counts how often each vertex appears in an
// MFG's input set. FGNN keeps these counts in a GPU frequency hashmap and
// GNNLab in a parallel CPU hash table; this is the same structure for this
// repository's CPU pipeline: a fixed-capacity open-addressing ("flat") hash
// table whose key slots are claimed with a CAS and whose counts are relaxed
// atomic adds, so warmup workers count concurrently without locks.
//
// Determinism: the *map* this table represents (key -> count) depends only
// on the multiset of add() calls, never on thread interleaving — CAS
// claiming permutes which physical slot a key lands in, but each key's
// count is a commutative sum of atomic adds. items() therefore returns a
// scheduling-independent result, which is what makes presample cache
// placement reproducible across pool sizes (tests/test_cache_policy.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "check/shim.h"

namespace salient {

/// Fixed-capacity concurrent open-addressing counter table, keyed by
/// non-negative 64-bit ids (vertex ids). Lock-free: inserts claim a slot
/// with a single CAS, counts accumulate with relaxed atomic adds.
class FrequencyTable {
 public:
  /// Sentinel stored in unclaimed key slots.
  static constexpr std::int64_t kEmpty = -1;

  /// Build a table able to hold `max_keys` distinct keys. The slot array is
  /// sized to the next power of two >= 2*max_keys, keeping the load factor
  /// <= 0.5 so linear probes stay short.
  explicit FrequencyTable(std::int64_t max_keys) {
    std::int64_t want = std::max<std::int64_t>(max_keys, 1) * 2;
    slots_ = 1;
    while (slots_ < want) slots_ <<= 1;
    mask_ = slots_ - 1;
    keys_ = std::make_unique<check::atomic<std::int64_t>[]>(
        static_cast<std::size_t>(slots_));
    counts_ = std::make_unique<check::atomic<std::int64_t>[]>(
        static_cast<std::size_t>(slots_));
    for (std::int64_t i = 0; i < slots_; ++i) {
      keys_[static_cast<std::size_t>(i)].store(kEmpty,
                                               std::memory_order_relaxed);
      counts_[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    }
  }

  /// Add `n` to `key`'s count, inserting the key on first sight. Thread-safe
  /// and wait-free in the common (already-inserted) case. Throws
  /// std::length_error if more distinct keys than `max_keys` are inserted
  /// (the table never resizes — size it from |V|).
  void add(std::int64_t key, std::int64_t n = 1) {
    std::size_t i = probe_start(key);
    for (std::int64_t step = 0; step < slots_; ++step) {
      std::int64_t k = keys_[i].load(std::memory_order_acquire);
      if (k == kEmpty) {
        std::int64_t expected = kEmpty;
        if (keys_[i].compare_exchange_strong(expected, key,
                                             std::memory_order_acq_rel)) {
          distinct_.fetch_add(1, std::memory_order_relaxed);
          k = key;
        } else {
          k = expected;  // another thread claimed the slot; re-examine it
        }
      }
      if (k == key) {
        counts_[i].fetch_add(n, std::memory_order_relaxed);
        return;
      }
      i = (i + 1) & static_cast<std::size_t>(mask_);
    }
    throw std::length_error("FrequencyTable: table full");
  }

  /// `key`'s accumulated count (0 when never inserted). Safe concurrently
  /// with add(), in which case it returns a recent value.
  std::int64_t count(std::int64_t key) const {
    std::size_t i = probe_start(key);
    for (std::int64_t step = 0; step < slots_; ++step) {
      const std::int64_t k = keys_[i].load(std::memory_order_acquire);
      if (k == kEmpty) return 0;
      if (k == key) return counts_[i].load(std::memory_order_relaxed);
      i = (i + 1) & static_cast<std::size_t>(mask_);
    }
    return 0;
  }

  /// Number of distinct keys inserted so far.
  std::int64_t distinct() const {
    return distinct_.load(std::memory_order_relaxed);
  }

  /// Snapshot of every (key, count) pair, in unspecified order. Call after
  /// the concurrent phase; the contents are deterministic as a map (see the
  /// file comment) even though the order is not — sort before comparing.
  std::vector<std::pair<std::int64_t, std::int64_t>> items() const {
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    out.reserve(static_cast<std::size_t>(distinct()));
    for (std::int64_t i = 0; i < slots_; ++i) {
      const std::int64_t k =
          keys_[static_cast<std::size_t>(i)].load(std::memory_order_acquire);
      if (k != kEmpty) {
        out.emplace_back(k, counts_[static_cast<std::size_t>(i)].load(
                                std::memory_order_relaxed));
      }
    }
    return out;
  }

 private:
  std::size_t probe_start(std::int64_t key) const {
    // SplitMix64-style finalizer: spreads dense vertex ids across the table.
    auto x = static_cast<std::uint64_t>(key) + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x & static_cast<std::uint64_t>(mask_));
  }

  std::int64_t slots_ = 0;
  std::int64_t mask_ = 0;
  std::unique_ptr<check::atomic<std::int64_t>[]> keys_;
  std::unique_ptr<check::atomic<std::int64_t>[]> counts_;
  check::atomic<std::int64_t> distinct_{0};
};

}  // namespace salient
