// Shared configuration for the batch-preparation loaders.
#pragma once

#include <cstdint>
#include <vector>

#include "prep/cache_policy.h"
#include "tensor/dtype.h"

/// \file
/// \brief Shared configuration for the batch-preparation loaders
/// (BaselineLoader, SalientLoader) and their device feature cache.

namespace salient {

/// Knobs shared by every batch-preparation loader. One LoaderConfig
/// describes the sampling shape of a workload (batch size, fanouts,
/// parallelism, seeding) plus the device feature cache it should run
/// against; Trainer and InferenceServer derive their cache's
/// CachePolicyConfig from these fields so warmup sampling matches the real
/// workload (docs/CACHING.md).
struct LoaderConfig {
  /// Destination nodes per mini-batch.
  std::int64_t batch_size = 1024;
  /// Per-layer sampling fanouts, outermost (input) layer first.
  std::vector<std::int64_t> fanouts{15, 10, 5};
  /// Number of preparation workers: multiprocessing DataLoader workers for
  /// the baseline, shared-memory C++ threads for SALIENT.
  int num_workers = 1;
  /// Bound on prepared batches buffered ahead of the consumer.
  std::size_t queue_capacity = 4;
  /// Epoch seed: drives shuffling and the per-batch sampling RNG. The
  /// per-batch RNG is seeded by mix(seed, batch index), so the sampled MFGs
  /// are identical regardless of worker count and scheduling.
  std::uint64_t seed = 1;
  /// Shuffle the seed-node order each epoch.
  bool shuffle = true;

  /// Device feature-cache placement policy (the `--cache-policy` CLI knob;
  /// see CachePolicyKind and docs/CACHING.md). Only consulted when a cache
  /// is enabled (cache_percentage > 0 or an owner-provided capacity).
  CachePolicyKind cache_policy = CachePolicyKind::kDegree;
  /// Device feature-cache capacity as a fraction of |V| in [0, 1]
  /// (the `--cache-pct` CLI knob). 0 disables the cache unless the owner
  /// specifies an absolute capacity (e.g. TrainConfig::feature_cache_nodes).
  double cache_percentage = 0.0;
  /// Presample policy: warmup sampling epochs K (>= 1; see
  /// CachePolicyConfig::presample_epochs).
  int presample_epochs = 2;

  /// On-the-wire dtype of the sliced feature rows — what crosses the
  /// (simulated) PCIe link per batch:
  ///   * kF16 (default): rows stay/convert to half precision, halving
  ///     feature transfer bytes vs f32 (paper §3);
  ///   * kF32: uncompressed rows (the baseline the A/Bs compare against);
  ///   * kInt8Q: per-row affine int8 (tensor/quantize.h) — ~4x fewer bytes
  ///     than f32, plus an 8-byte/row scale/zero sidecar the device uses to
  ///     dequantize.
  /// The loaders convert/quantize during slicing, so the pinned staging
  /// buffers and the DMA both see only the compressed form.
  DType feature_dtype = DType::kF16;
};

}  // namespace salient
