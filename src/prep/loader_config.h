// Shared configuration for the batch-preparation loaders.
#pragma once

#include <cstdint>
#include <vector>

namespace salient {

struct LoaderConfig {
  std::int64_t batch_size = 1024;
  std::vector<std::int64_t> fanouts{15, 10, 5};
  /// Number of preparation workers: multiprocessing DataLoader workers for
  /// the baseline, shared-memory C++ threads for SALIENT.
  int num_workers = 1;
  /// Bound on prepared batches buffered ahead of the consumer.
  std::size_t queue_capacity = 4;
  /// Epoch seed: drives shuffling and the per-batch sampling RNG. The
  /// per-batch RNG is seeded by mix(seed, batch index), so the sampled MFGs
  /// are identical regardless of worker count and scheduling.
  std::uint64_t seed = 1;
  bool shuffle = true;
};

}  // namespace salient
