#include "prep/pinned_pool.h"

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace salient {

namespace {

std::size_t bytes_for(const std::vector<std::int64_t>& shape, DType dtype) {
  std::size_t n = 1;
  for (auto d : shape) n *= static_cast<std::size_t>(d);
  return n * dtype_size(dtype);
}

/// Buckets are rounded up to 64KiB multiples so that mini-batches of
/// slightly varying size reuse the same buffers.
std::size_t bucket_of(std::size_t nbytes) {
  constexpr std::size_t kBucket = 64 * 1024;
  return ((nbytes + kBucket - 1) / kBucket) * kBucket;
}

}  // namespace

std::optional<StoragePtr> PinnedPool::take_idle(std::size_t bucket) {
  auto it = free_by_size_.find(bucket);
  if (it == free_by_size_.end() || it->second.empty()) return std::nullopt;
  StoragePtr storage = std::move(it->second.back());
  it->second.pop_back();
  return storage;
}

Tensor PinnedPool::acquire(std::vector<std::int64_t> shape, DType dtype) {
  auto& reg = obs::Registry::global();
  static obs::Counter& m_acquires = reg.counter("pinned_pool.acquires");
  static obs::Counter& m_misses = reg.counter("pinned_pool.misses");
  static obs::Counter& m_waits = reg.counter("pinned_pool.backpressure_waits");
  static obs::Counter& m_overshoots = reg.counter("pinned_pool.overshoots");
  m_acquires.add();
  const std::size_t bucket = bucket_of(bytes_for(shape, dtype));
  bool overshoot = false;
  {
    check::UniqueLock lock(mu_);
    for (;;) {
      if (auto storage = take_idle(bucket)) {
        return Tensor::wrap_storage(std::move(*storage), std::move(shape),
                                    dtype);
      }
      // `pinned.exhausted` injects a transient allocation failure: behave
      // exactly as if the budget were exhausted for this round — wait for a
      // release, then retry — so the backpressure path is exercised without
      // real memory pressure.
      const bool injected = SALIENT_FAILPOINT("pinned.exhausted");
      const bool over_budget =
          config_.max_bytes > 0 &&
          allocated_bytes_ + bucket > config_.max_bytes;
      if (!injected && (!over_budget || overshoot)) break;  // go allocate
      ++backpressure_waits_;
      m_waits.add();
      SALIENT_TRACE_INSTANT("pinned_pool.backpressure");
      if (cv_released_.wait_for(lock, config_.acquire_timeout) ==
          std::cv_status::timeout) {
        // No release arrived: degrade gracefully rather than deadlock the
        // pipeline — allocate anyway, accounting for a budget overshoot.
        overshoot = true;
        if (over_budget) {
          ++overshoots_;
          m_overshoots.add();
        }
        break;
      }
      // A buffer was released (or a spurious wakeup): loop and retry.
    }
    ++allocs_;
    allocated_bytes_ += bucket;
  }
  // Pool miss: a fresh page-locked allocation (the expensive case the pool
  // exists to amortize) — worth an instant marker in the trace.
  m_misses.add();
  SALIENT_TRACE_INSTANT("pinned_pool.alloc");
  auto storage = std::make_shared<Storage>(bucket, /*pinned=*/true);
  return Tensor::wrap_storage(std::move(storage), std::move(shape), dtype);
}

std::optional<Tensor> PinnedPool::try_acquire(std::vector<std::int64_t> shape,
                                              DType dtype) {
  const std::size_t bucket = bucket_of(bytes_for(shape, dtype));
  {
    check::LockGuard lock(mu_);
    if (auto storage = take_idle(bucket)) {
      return Tensor::wrap_storage(std::move(*storage), std::move(shape),
                                  dtype);
    }
    if (config_.max_bytes > 0 &&
        allocated_bytes_ + bucket > config_.max_bytes) {
      return std::nullopt;
    }
    ++allocs_;
    allocated_bytes_ += bucket;
  }
  auto storage = std::make_shared<Storage>(bucket, /*pinned=*/true);
  return Tensor::wrap_storage(std::move(storage), std::move(shape), dtype);
}

void PinnedPool::release(Tensor t) {
  if (!t.defined() || !t.pinned()) return;
  {
    check::LockGuard lock(mu_);
    free_by_size_[t.storage()->nbytes()].push_back(t.storage());
  }
  cv_released_.notify_one();
}

std::size_t PinnedPool::idle_count() const {
  check::LockGuard lock(mu_);
  std::size_t n = 0;
  for (const auto& [sz, v] : free_by_size_) n += v.size();
  return n;
}

std::size_t PinnedPool::alloc_count() const {
  check::LockGuard lock(mu_);
  return allocs_;
}

std::size_t PinnedPool::allocated_bytes() const {
  check::LockGuard lock(mu_);
  return allocated_bytes_;
}

std::size_t PinnedPool::backpressure_waits() const {
  check::LockGuard lock(mu_);
  return backpressure_waits_;
}

std::size_t PinnedPool::overshoots() const {
  check::LockGuard lock(mu_);
  return overshoots_;
}

}  // namespace salient
