#include "prep/pinned_pool.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace salient {

namespace {

std::size_t bytes_for(const std::vector<std::int64_t>& shape, DType dtype) {
  std::size_t n = 1;
  for (auto d : shape) n *= static_cast<std::size_t>(d);
  return n * dtype_size(dtype);
}

/// Buckets are rounded up to 64KiB multiples so that mini-batches of
/// slightly varying size reuse the same buffers.
std::size_t bucket_of(std::size_t nbytes) {
  constexpr std::size_t kBucket = 64 * 1024;
  return ((nbytes + kBucket - 1) / kBucket) * kBucket;
}

}  // namespace

Tensor PinnedPool::acquire(std::vector<std::int64_t> shape, DType dtype) {
  auto& reg = obs::Registry::global();
  static obs::Counter& m_acquires = reg.counter("pinned_pool.acquires");
  static obs::Counter& m_misses = reg.counter("pinned_pool.misses");
  m_acquires.add();
  const std::size_t bucket = bucket_of(bytes_for(shape, dtype));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = free_by_size_.find(bucket);
    if (it != free_by_size_.end() && !it->second.empty()) {
      StoragePtr storage = std::move(it->second.back());
      it->second.pop_back();
      return Tensor::wrap_storage(std::move(storage), std::move(shape), dtype);
    }
    ++allocs_;
  }
  // Pool miss: a fresh page-locked allocation (the expensive case the pool
  // exists to amortize) — worth an instant marker in the trace.
  m_misses.add();
  SALIENT_TRACE_INSTANT("pinned_pool.alloc");
  auto storage = std::make_shared<Storage>(bucket, /*pinned=*/true);
  return Tensor::wrap_storage(std::move(storage), std::move(shape), dtype);
}

void PinnedPool::release(Tensor t) {
  if (!t.defined() || !t.pinned()) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_by_size_[t.storage()->nbytes()].push_back(t.storage());
}

std::size_t PinnedPool::idle_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [sz, v] : free_by_size_) n += v.size();
  return n;
}

}  // namespace salient
