// Reusable pool of pinned staging buffers.
//
// SALIENT's preparation threads write sliced tensors "directly into pinned
// memory accessible by the main process" (§4.2). Allocating page-locked
// memory is expensive in the real system, so staging buffers are pooled and
// recycled across mini-batches. The pool hands out Tensors whose Storage is
// flagged pinned; returning a buffer of the same byte size makes it available
// for the next batch.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace salient {

class PinnedPool {
 public:
  PinnedPool() = default;

  /// Get a pinned tensor of the given shape/dtype, recycling a previously
  /// released buffer of the same byte size when available.
  Tensor acquire(std::vector<std::int64_t> shape, DType dtype);

  /// Return a pinned tensor's storage to the pool. The caller must not touch
  /// the tensor afterwards.
  void release(Tensor t);

  /// Number of idle buffers currently pooled.
  std::size_t idle_count() const;
  /// Total allocations performed (i.e., pool misses).
  std::size_t alloc_count() const { return allocs_; }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::size_t, std::vector<StoragePtr>> free_by_size_;
  std::size_t allocs_ = 0;
};

}  // namespace salient
