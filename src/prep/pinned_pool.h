// Reusable pool of pinned staging buffers.
//
// SALIENT's preparation threads write sliced tensors "directly into pinned
// memory accessible by the main process" (§4.2). Allocating page-locked
// memory is expensive in the real system, so staging buffers are pooled and
// recycled across mini-batches. The pool hands out Tensors whose Storage is
// flagged pinned; returning a buffer of the same byte size makes it available
// for the next batch.
//
// Robustness: page-locked memory is a scarce, registered resource, so the
// pool supports an optional byte budget. When the budget is exhausted,
// acquire() applies *backpressure* — it blocks until a buffer is released —
// instead of growing without bound or aborting; after `acquire_timeout` it
// degrades gracefully by allocating past the budget (counted as
// pinned_pool.overshoots) so a mis-sized budget can never deadlock the
// pipeline. The failpoint `pinned.exhausted` injects transient allocation
// failures to exercise this path deterministically (tests/test_chaos.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/shim.h"
#include "tensor/tensor.h"
#include "util/thread_annotations.h"

namespace salient {

struct PinnedPoolConfig {
  /// Byte budget across live + idle buffers; 0 means unbounded (the
  /// historical behaviour).
  std::size_t max_bytes = 0;
  /// How long acquire() waits for a release before overshooting the budget.
  std::chrono::milliseconds acquire_timeout{200};
};

class PinnedPool {
 public:
  PinnedPool() = default;
  explicit PinnedPool(PinnedPoolConfig config) : config_(config) {}

  /// Get a pinned tensor of the given shape/dtype, recycling a previously
  /// released buffer of the same byte size when available. Under an
  /// exhausted budget this blocks for a release (backpressure) and, past
  /// the configured timeout, allocates anyway (graceful degradation).
  Tensor acquire(std::vector<std::int64_t> shape, DType dtype);

  /// Non-blocking acquire: nullopt when the budget is exhausted and no
  /// recyclable buffer exists (never allocates past the budget).
  std::optional<Tensor> try_acquire(std::vector<std::int64_t> shape,
                                    DType dtype);

  /// Return a pinned tensor's storage to the pool. The caller must not touch
  /// the tensor afterwards. Wakes one waiter blocked in acquire().
  void release(Tensor t);

  /// Number of idle buffers currently pooled.
  std::size_t idle_count() const;
  /// Total allocations performed (i.e., pool misses).
  std::size_t alloc_count() const;
  /// Bytes across all buffers this pool has allocated (live + idle).
  std::size_t allocated_bytes() const;
  /// Times acquire() blocked on an exhausted budget.
  std::size_t backpressure_waits() const;
  /// Times acquire() allocated past the budget after waiting out the
  /// timeout.
  std::size_t overshoots() const;

  const PinnedPoolConfig& config() const { return config_; }

 private:
  /// Take a recycled buffer of `bucket` bytes if one is idle.
  std::optional<StoragePtr> take_idle(std::size_t bucket) REQUIRES(mu_);

  PinnedPoolConfig config_;  // unguarded: immutable after construction
  mutable check::Mutex mu_;
  check::CondVar cv_released_;
  std::unordered_map<std::size_t, std::vector<StoragePtr>> free_by_size_
      GUARDED_BY(mu_);
  std::size_t allocs_ GUARDED_BY(mu_) = 0;
  std::size_t allocated_bytes_ GUARDED_BY(mu_) = 0;
  std::size_t backpressure_waits_ GUARDED_BY(mu_) = 0;
  std::size_t overshoots_ GUARDED_BY(mu_) = 0;
};

}  // namespace salient
