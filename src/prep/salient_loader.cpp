#include "prep/salient_loader.h"

#include <chrono>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prep/slicing.h"
#include "sampling/fast_sampler.h"
#include "util/rng.h"

namespace salient {

namespace {

std::uint64_t mix_seed(std::uint64_t seed, std::int64_t index) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ull *
                        static_cast<std::uint64_t>(index + 1)));
  return sm.next();
}

/// Idle backoff while the input queue reports empty but batches remain
/// outstanding (claimed by other workers, or a transient injected miss).
constexpr std::chrono::microseconds kIdleBackoff{200};

}  // namespace

SalientLoader::SalientLoader(const Dataset& dataset,
                             std::span<const NodeId> nodes,
                             LoaderConfig config,
                             std::shared_ptr<PinnedPool> pool,
                             std::shared_ptr<const FeatureCache> cache)
    : dataset_(dataset),
      config_(std::move(config)),
      pool_(pool ? std::move(pool) : std::make_shared<PinnedPool>()),
      cache_(std::move(cache)),
      epoch_nodes_(nodes.begin(), nodes.end()),
      input_queue_(nodes.empty()
                       ? 2
                       : (nodes.size() / static_cast<std::size_t>(
                                             config_.batch_size) +
                          2)),
      output_queue_(config_.queue_capacity) {
  input_queue_.set_fault_site("prep_in");
  output_queue_.set_fault_site("prep_out");
  if (config_.shuffle) {
    Xoshiro256ss rng(config_.seed);
    for (std::size_t i = epoch_nodes_.size(); i > 1; --i) {
      std::swap(epoch_nodes_[i - 1], epoch_nodes_[bounded_rand(rng, i)]);
    }
  }
  const auto n = static_cast<std::int64_t>(epoch_nodes_.size());
  num_batches_ = (n + config_.batch_size - 1) / config_.batch_size;
  pending_.store(num_batches_, std::memory_order_relaxed);
  // Fill the lock-free input queue with every batch descriptor up front;
  // workers pop dynamically, which load-balances the highly variable
  // per-batch neighborhood-expansion work.
  for (std::int64_t b = 0; b < num_batches_; ++b) {
    enqueue_desc({b, b * config_.batch_size,
                  std::min(n, (b + 1) * config_.batch_size)});
  }
  const int workers = std::max(1, config_.num_workers);
  LockGuard lock(workers_mu_);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

SalientLoader::~SalientLoader() {
  output_queue_.close();  // unblock producers if the consumer bailed early
  // A dying worker may respawn a replacement while we join, so drain the
  // thread vector until it stays empty (respawn_worker refuses to spawn
  // once the output queue is closed, which happened-before this loop).
  for (;;) {
    std::vector<std::thread> threads;
    {
      LockGuard lock(workers_mu_);
      threads.swap(workers_);
    }
    if (threads.empty()) break;
    for (auto& t : threads) t.join();
  }
}

void SalientLoader::enqueue_desc(const BatchDesc& desc) {
  // Capacity covers every descriptor by construction, so only a transient
  // (injected) full condition can make this fail — retry, never drop. The
  // closed() escape keeps shutdown (which discards undelivered batches
  // anyway) from spinning against an always-on injected fault.
  while (!input_queue_.try_push(desc)) {
    if (output_queue_.closed()) return;
    std::this_thread::sleep_for(kIdleBackoff);
  }
}

void SalientLoader::respawn_worker(int worker_index) {
  LockGuard lock(workers_mu_);
  if (output_queue_.closed()) return;  // shutting down: no replacement
  worker_deaths_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& m_deaths =
      obs::Registry::global().counter("prep.worker.deaths");
  m_deaths.add();
  SALIENT_TRACE_INSTANT("prep.worker.respawn");
  workers_.emplace_back(
      [this, worker_index] { worker_loop(worker_index); });
}

void SalientLoader::worker_loop(int worker_index) {
  // Each preparation worker is its own trace track ("prep-worker-N"): a
  // captured trace shows sampling/slicing running ahead of the consumer,
  // which is the overlap Figure 1(b) illustrates.
  SALIENT_TRACE_THREAD_NAME("prep-worker-" + std::to_string(worker_index));
  static obs::Counter& m_prepared =
      obs::Registry::global().counter("prep.batches_prepared");
  FastSampler sampler(dataset_.graph, config_.fanouts);
  BatchDesc desc;
  // Exit on "every batch delivered" or shutdown — never on an empty input
  // queue alone, which can be a transient miss (other workers hold the
  // remaining descriptors, or the mpmc.prep_in.pop_empty failpoint fired).
  while (pending_.load(std::memory_order_acquire) > 0 &&
         !output_queue_.closed()) {
    if (!input_queue_.try_pop(desc)) {
      std::this_thread::sleep_for(kIdleBackoff);
      continue;
    }

    // `prep.worker.die` simulates this worker crashing while holding a
    // claimed, not-yet-delivered batch. Recovery: put the descriptor back
    // for the surviving workers (no batch lost; it was never delivered, so
    // none duplicated either), spawn a replacement thread, and unwind.
    if (SALIENT_FAILPOINT("prep.worker.die")) {
      enqueue_desc(desc);
      respawn_worker(worker_index);
      return;
    }

    // The async "batch" span begins here and ends when the trainer retires
    // the batch (train/trainer.cpp) — the full per-batch pipeline latency.
    SALIENT_TRACE_ASYNC_BEGIN("batch", desc.index);

    // 1. Neighborhood sampling and MFG construction (fused).
    const std::span<const NodeId> batch_nodes(
        epoch_nodes_.data() + desc.begin,
        static_cast<std::size_t>(desc.end - desc.begin));
    PreparedBatch batch;
    batch.index = desc.index;
    {
      SALIENT_TRACE_SCOPE_ARG("prep.sample", desc.index);
      batch.mfg =
          sampler.sample(batch_nodes, mix_seed(config_.seed, desc.index));
    }

    // 2. Serial slicing directly into pinned staging buffers. With a device
    // feature cache, only the cache-missing rows are sliced/staged.
    {
      SALIENT_TRACE_SCOPE_ARG("prep.slice", desc.index);
      // Rows leave the host in config_.feature_dtype: converted (f16/f32)
      // or per-row int8-quantized during the gather, so pinned staging and
      // the DMA only ever see the wire format.
      if (cache_) {
        auto plan = std::make_shared<CachePlan>(
            plan_cached_batch(batch.mfg, *cache_));
        const std::vector<NodeId> missing =
            missing_node_ids(batch.mfg, *plan);
        stage_feature_rows(dataset_.features, missing,
                           config_.feature_dtype, *pool_, batch);
        batch.cache_plan = std::move(plan);
      } else {
        stage_feature_rows(dataset_.features, batch.mfg.n_ids,
                           config_.feature_dtype, *pool_, batch);
      }
      batch.y = pool_->acquire({batch.mfg.batch_size}, DType::kI64);
      slice_labels(dataset_.labels,
                   {batch.mfg.n_ids.data(),
                    static_cast<std::size_t>(batch.mfg.batch_size)},
                   batch.y);
    }
    m_prepared.add();

    // 3. Zero-copy hand-off to the consumer. Only a delivered batch counts
    // against pending_ — exactly-once delivery is what the chaos suite
    // asserts under injected faults.
    if (!output_queue_.push(std::move(batch))) return;  // loader shut down
    pending_.fetch_sub(1, std::memory_order_release);
  }
}

std::optional<PreparedBatch> SalientLoader::next() {
  if (delivered_ >= num_batches_) return std::nullopt;
  auto batch = output_queue_.pop();
  if (batch.has_value()) ++delivered_;
  return batch;
}

void SalientLoader::recycle(PreparedBatch&& batch) {
  release_batch_buffers(*pool_, std::move(batch));
}

}  // namespace salient
