// SALIENT's shared-memory parallel batch preparation (paper §4.2).
//
// Design, matching the paper:
//   * C++ worker threads prepare batches *end-to-end*: each performs
//     neighborhood sampling (FastSampler) and then serial tensor slicing,
//     sequentially, for one mini-batch at a time;
//   * workers balance load dynamically by popping mini-batch descriptors
//     from a lock-free input queue ("Threads balance load dynamically via a
//     lock-free input queue that contains the destination nodes for each
//     mini-batch");
//   * sliced tensors are written directly into pinned staging buffers drawn
//     from a recycling pool — zero-copy hand-off to the consumer, unlike the
//     multiprocessing baseline which copies through POSIX shared memory;
//   * prepared batches flow to the consumer through a bounded queue so that
//     preparation runs ahead of GPU training by a controlled amount.
//
// A loader instance drives ONE epoch (construct per epoch; destruction joins
// the workers). Slicing happens while the consumer is blocked on training —
// the overlap that Figure 1(b) illustrates.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "graph/dataset.h"
#include "prep/batch.h"
#include "prep/loader_config.h"
#include "prep/pinned_pool.h"
#include "util/blocking_queue.h"
#include "util/mpmc_queue.h"

namespace salient {

/// One-epoch pipelined batch-preparation engine (the paper's SALIENT
/// loader). Worker threads pull mini-batch descriptors from a lock-free
/// queue, sample + slice each batch into pinned staging buffers, and push
/// the result to a bounded output queue that next() drains.
class SalientLoader {
 public:
  /// Start preparing an epoch over `nodes` (typically the training split).
  /// `pool` may be shared across epochs to recycle pinned buffers; a private
  /// pool is created when null.
  /// `cache` (optional) enables cache-aware preparation: workers slice only
  /// the rows the device cache misses (paper §8 feature caching) and attach
  /// the transfer plan to each batch.
  SalientLoader(const Dataset& dataset, std::span<const NodeId> nodes,
                LoaderConfig config, std::shared_ptr<PinnedPool> pool = {},
                std::shared_ptr<const FeatureCache> cache = {});
  /// Stops and joins the worker threads; undelivered batches are dropped.
  ~SalientLoader();

  SalientLoader(const SalientLoader&) = delete;
  SalientLoader& operator=(const SalientLoader&) = delete;

  /// Blocking: the next prepared batch, or nullopt at end of epoch.
  std::optional<PreparedBatch> next();

  /// Return a consumed batch's staging buffers to the pool. Call after the
  /// batch's tensors were transferred to the device.
  void recycle(PreparedBatch&& batch);

  /// Total mini-batches this epoch will produce (ceil(nodes / batch_size)).
  std::int64_t num_batches() const { return num_batches_; }
  /// The pinned staging pool in use; pass it to the next epoch's loader to
  /// keep recycling the same buffers.
  const std::shared_ptr<PinnedPool>& pool() const { return pool_; }

  /// Workers that died (the `prep.worker.die` failpoint) and were respawned
  /// with their in-flight batch re-enqueued — each death is recovered with
  /// no batch lost or duplicated.
  std::int64_t worker_deaths() const {
    return worker_deaths_.load(std::memory_order_relaxed);
  }

 private:
  struct BatchDesc {
    std::int64_t index = -1;
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };

  void worker_loop(int worker_index);
  /// Push `desc` onto the input queue, retrying through transient (injected)
  /// full conditions — a descriptor is never dropped.
  void enqueue_desc(const BatchDesc& desc);
  /// Spawn a replacement after a worker death (no-op during shutdown).
  void respawn_worker(int worker_index);

  const Dataset& dataset_;
  LoaderConfig config_;
  std::shared_ptr<PinnedPool> pool_;
  std::shared_ptr<const FeatureCache> cache_;
  std::vector<NodeId> epoch_nodes_;
  std::int64_t num_batches_ = 0;
  /// Confined to the consumer thread (only next() touches it) — a contract
  /// the capability analysis cannot express, so it stays unannotated.
  std::int64_t delivered_ = 0;

  MpmcQueue<BatchDesc> input_queue_;
  BlockingQueue<PreparedBatch> output_queue_;
  /// Batches not yet handed to the output queue. Workers exit on zero — not
  /// on an empty input queue, which can be a transient (injected) miss.
  std::atomic<std::int64_t> pending_{0};
  std::atomic<std::int64_t> worker_deaths_{0};
  Mutex workers_mu_;  // serializes respawn against the destructor's join
  std::vector<std::thread> workers_ GUARDED_BY(workers_mu_);
};

}  // namespace salient
