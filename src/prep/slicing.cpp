#include "prep/slicing.h"

#include <cstring>
#include <stdexcept>

namespace salient {

namespace {

void check_slice_args(const Tensor& src, std::span<const NodeId> ids,
                      const Tensor& out) {
  if (src.dim() != 2 || out.dim() != 2 || out.dtype() != src.dtype() ||
      out.size(1) != src.size(1) ||
      out.size(0) != static_cast<std::int64_t>(ids.size())) {
    throw std::runtime_error("slice_rows: bad destination shape/dtype");
  }
}

void copy_row_range(const Tensor& src, std::span<const NodeId> ids,
                    Tensor& out, std::int64_t begin, std::int64_t end) {
  const std::size_t row_bytes =
      static_cast<std::size_t>(src.size(1)) * dtype_size(src.dtype());
  const char* ps = static_cast<const char*>(src.raw());
  char* pd = static_cast<char*>(out.raw());
  const std::int64_t n = src.size(0);
  for (std::int64_t k = begin; k < end; ++k) {
    const NodeId i = ids[static_cast<std::size_t>(k)];
    if (i < 0 || i >= n) throw std::out_of_range("slice_rows: node id");
    std::memcpy(pd + static_cast<std::size_t>(k) * row_bytes,
                ps + static_cast<std::size_t>(i) * row_bytes, row_bytes);
  }
}

}  // namespace

void slice_rows_serial(const Tensor& src, std::span<const NodeId> ids,
                       Tensor& out) {
  check_slice_args(src, ids, out);
  copy_row_range(src, ids, out, 0, static_cast<std::int64_t>(ids.size()));
}

void slice_rows_parallel(const Tensor& src, std::span<const NodeId> ids,
                         Tensor& out, ThreadPool& pool) {
  check_slice_args(src, ids, out);
  pool.parallel_for(0, static_cast<std::int64_t>(ids.size()),
                    [&](std::int64_t b, std::int64_t e) {
                      copy_row_range(src, ids, out, b, e);
                    });
}

void slice_labels(const Tensor& labels, std::span<const NodeId> ids,
                  Tensor& out) {
  if (labels.dim() != 1 || labels.dtype() != DType::kI64 || out.dim() != 1 ||
      out.dtype() != DType::kI64 ||
      out.size(0) != static_cast<std::int64_t>(ids.size())) {
    throw std::runtime_error("slice_labels: bad arguments");
  }
  const std::int64_t* ps = labels.data<std::int64_t>();
  std::int64_t* pd = out.data<std::int64_t>();
  const std::int64_t n = labels.size(0);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    const NodeId i = ids[k];
    if (i < 0 || i >= n) throw std::out_of_range("slice_labels: node id");
    pd[k] = ps[i];
  }
}

}  // namespace salient
