#include "prep/slicing.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/kernel_config.h"
#include "tensor/quantize.h"
#include "util/half.h"

namespace salient {

namespace {

void check_slice_args(const Tensor& src, std::span<const NodeId> ids,
                      const Tensor& out) {
  if (src.dim() != 2 || out.dim() != 2 || out.dtype() != src.dtype() ||
      out.size(1) != src.size(1) ||
      out.size(0) != static_cast<std::int64_t>(ids.size())) {
    throw std::runtime_error("slice_rows: bad destination shape/dtype");
  }
}

/// Validate every id in one pass so the copy loops stay branch-free — the
/// per-iteration throw check used to sit on the pinned-slice hot path (§4.2).
void check_ids(std::span<const NodeId> ids, std::int64_t n, const char* op) {
  const auto lim = static_cast<std::uint64_t>(n);
  std::uint64_t bad = 0;
  for (const NodeId i : ids) {
    bad |= static_cast<std::uint64_t>(static_cast<std::uint64_t>(i) >= lim);
  }
  if (bad) throw std::out_of_range(std::string(op) + ": node id");
}

/// Branch-free row gather; ids must be pre-validated.
void copy_row_range(const Tensor& src, std::span<const NodeId> ids,
                    Tensor& out, std::int64_t begin, std::int64_t end) {
  const std::size_t row_bytes =
      static_cast<std::size_t>(src.size(1)) * dtype_size(src.dtype());
  const char* ps = static_cast<const char*>(src.raw());
  char* pd = static_cast<char*>(out.raw());
  for (std::int64_t k = begin; k < end; ++k) {
    const NodeId i = ids[static_cast<std::size_t>(k)];
    std::memcpy(pd + static_cast<std::size_t>(k) * row_bytes,
                ps + static_cast<std::size_t>(i) * row_bytes, row_bytes);
  }
}

}  // namespace

void slice_rows_serial(const Tensor& src, std::span<const NodeId> ids,
                       Tensor& out) {
  check_slice_args(src, ids, out);
  check_ids(ids, src.size(0), "slice_rows");
  copy_row_range(src, ids, out, 0, static_cast<std::int64_t>(ids.size()));
}

void slice_rows_parallel(const Tensor& src, std::span<const NodeId> ids,
                         Tensor& out, ThreadPool& pool) {
  check_slice_args(src, ids, out);
  check_ids(ids, src.size(0), "slice_rows");
  pool.parallel_for(0, static_cast<std::int64_t>(ids.size()),
                    [&](std::int64_t b, std::int64_t e) {
                      copy_row_range(src, ids, out, b, e);
                    });
}

void slice_rows_convert_serial(const Tensor& src, std::span<const NodeId> ids,
                               Tensor& out) {
  if (src.dtype() == out.dtype()) {
    slice_rows_serial(src, ids, out);
    return;
  }
  if (src.dim() != 2 || out.dim() != 2 || out.size(1) != src.size(1) ||
      out.size(0) != static_cast<std::int64_t>(ids.size())) {
    throw std::runtime_error("slice_rows_convert: bad destination shape");
  }
  check_ids(ids, src.size(0), "slice_rows_convert");
  const std::int64_t f = src.size(1);
  const auto n = static_cast<std::int64_t>(ids.size());
  if (src.dtype() == DType::kF16 && out.dtype() == DType::kF32) {
    const Half* ps = src.data<Half>();
    float* pd = out.data<float>();
    for (std::int64_t k = 0; k < n; ++k) {
      half_to_float_n(ps + static_cast<std::int64_t>(ids[k]) * f, pd + k * f,
                      static_cast<std::size_t>(f));
    }
  } else if (src.dtype() == DType::kF32 && out.dtype() == DType::kF16) {
    const float* ps = src.data<float>();
    Half* pd = out.data<Half>();
    for (std::int64_t k = 0; k < n; ++k) {
      float_to_half_n(ps + static_cast<std::int64_t>(ids[k]) * f, pd + k * f,
                      static_cast<std::size_t>(f));
    }
  } else {
    throw std::runtime_error("slice_rows_convert: dtypes must be f16/f32");
  }
}

void slice_rows_quantize_serial(const Tensor& src, std::span<const NodeId> ids,
                                Tensor& out, Tensor& scale, Tensor& zero) {
  const auto n = static_cast<std::int64_t>(ids.size());
  const std::int64_t f = src.size(1);
  if (src.dim() != 2 || out.dim() != 2 || out.dtype() != DType::kInt8Q ||
      out.size(1) != f || out.size(0) != n || scale.numel() != n ||
      zero.numel() != n || scale.dtype() != DType::kF32 ||
      zero.dtype() != DType::kF32) {
    throw std::runtime_error("slice_rows_quantize: bad destination buffers");
  }
  if (src.dtype() != DType::kF16 && src.dtype() != DType::kF32) {
    throw std::runtime_error("slice_rows_quantize: src must be f16/f32");
  }
  if (f == 0) return;
  check_ids(ids, src.size(0), "slice_rows_quantize");
  std::int8_t* pd = out.data<std::int8_t>();
  float* pscale = scale.data<float>();
  float* pzero = zero.data<float>();
  std::vector<float> stage(static_cast<std::size_t>(f));
  for (std::int64_t k = 0; k < n; ++k) {
    const auto row = static_cast<std::int64_t>(ids[k]);
    const float* prow;
    if (src.dtype() == DType::kF16) {
      half_to_float_n(src.data<Half>() + row * f, stage.data(),
                      static_cast<std::size_t>(f));
      prow = stage.data();
    } else {
      prow = src.data<float>() + row * f;
    }
    ops::quantize_row(prow, f, pd + k * f, pscale + k, pzero + k);
  }
}

void slice_labels(const Tensor& labels, std::span<const NodeId> ids,
                  Tensor& out) {
  if (labels.dim() != 1 || labels.dtype() != DType::kI64 || out.dim() != 1 ||
      out.dtype() != DType::kI64 ||
      out.size(0) != static_cast<std::int64_t>(ids.size())) {
    throw std::runtime_error("slice_labels: bad arguments");
  }
  check_ids(ids, labels.size(0), "slice_labels");
  const std::int64_t* ps = labels.data<std::int64_t>();
  std::int64_t* pd = out.data<std::int64_t>();
  const auto n = static_cast<std::int64_t>(ids.size());
  // Large batches gather in parallel; the shared kernel grain keeps typical
  // serve-path batches serial.
  ops::parallel_for_n(n, n, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t k = b; k < e; ++k) {
      pd[k] = ps[ids[static_cast<std::size_t>(k)]];
    }
  });
}

}  // namespace salient
