#include "prep/slicing.h"

#include <cstring>
#include <stdexcept>

#include "tensor/kernel_config.h"

namespace salient {

namespace {

void check_slice_args(const Tensor& src, std::span<const NodeId> ids,
                      const Tensor& out) {
  if (src.dim() != 2 || out.dim() != 2 || out.dtype() != src.dtype() ||
      out.size(1) != src.size(1) ||
      out.size(0) != static_cast<std::int64_t>(ids.size())) {
    throw std::runtime_error("slice_rows: bad destination shape/dtype");
  }
}

/// Validate every id in one pass so the copy loops stay branch-free — the
/// per-iteration throw check used to sit on the pinned-slice hot path (§4.2).
void check_ids(std::span<const NodeId> ids, std::int64_t n, const char* op) {
  const auto lim = static_cast<std::uint64_t>(n);
  std::uint64_t bad = 0;
  for (const NodeId i : ids) {
    bad |= static_cast<std::uint64_t>(static_cast<std::uint64_t>(i) >= lim);
  }
  if (bad) throw std::out_of_range(std::string(op) + ": node id");
}

/// Branch-free row gather; ids must be pre-validated.
void copy_row_range(const Tensor& src, std::span<const NodeId> ids,
                    Tensor& out, std::int64_t begin, std::int64_t end) {
  const std::size_t row_bytes =
      static_cast<std::size_t>(src.size(1)) * dtype_size(src.dtype());
  const char* ps = static_cast<const char*>(src.raw());
  char* pd = static_cast<char*>(out.raw());
  for (std::int64_t k = begin; k < end; ++k) {
    const NodeId i = ids[static_cast<std::size_t>(k)];
    std::memcpy(pd + static_cast<std::size_t>(k) * row_bytes,
                ps + static_cast<std::size_t>(i) * row_bytes, row_bytes);
  }
}

}  // namespace

void slice_rows_serial(const Tensor& src, std::span<const NodeId> ids,
                       Tensor& out) {
  check_slice_args(src, ids, out);
  check_ids(ids, src.size(0), "slice_rows");
  copy_row_range(src, ids, out, 0, static_cast<std::int64_t>(ids.size()));
}

void slice_rows_parallel(const Tensor& src, std::span<const NodeId> ids,
                         Tensor& out, ThreadPool& pool) {
  check_slice_args(src, ids, out);
  check_ids(ids, src.size(0), "slice_rows");
  pool.parallel_for(0, static_cast<std::int64_t>(ids.size()),
                    [&](std::int64_t b, std::int64_t e) {
                      copy_row_range(src, ids, out, b, e);
                    });
}

void slice_labels(const Tensor& labels, std::span<const NodeId> ids,
                  Tensor& out) {
  if (labels.dim() != 1 || labels.dtype() != DType::kI64 || out.dim() != 1 ||
      out.dtype() != DType::kI64 ||
      out.size(0) != static_cast<std::int64_t>(ids.size())) {
    throw std::runtime_error("slice_labels: bad arguments");
  }
  check_ids(ids, labels.size(0), "slice_labels");
  const std::int64_t* ps = labels.data<std::int64_t>();
  std::int64_t* pd = out.data<std::int64_t>();
  const auto n = static_cast<std::int64_t>(ids.size());
  // Large batches gather in parallel; the shared kernel grain keeps typical
  // serve-path batches serial.
  ops::parallel_for_n(n, n, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t k = b; k < e; ++k) {
      pd[k] = ps[ids[static_cast<std::size_t>(k)]];
    }
  });
}

}  // namespace salient
