// Feature/label tensor slicing (paper §3.2, §4.2).
//
// Slicing extracts the feature rows of every node in the sampled MFG and the
// label entries of the mini-batch nodes. Two strategies are provided:
//   * slice_rows_parallel — the PyTorch-style path: one slice parallelized
//     across OpenMP-like threads (the shared pool). Used by the baseline
//     loader in the main process.
//   * slice_rows_serial — SALIENT's path: a serial copy, because each batch
//     preparation thread slices its own batch end-to-end ("By using a serial
//     tensor-slicing code ... SALIENT improves cache locality and avoids
//     contention between threads").
// Both write into a caller-provided destination so SALIENT can target pinned
// staging memory directly.
#pragma once

#include <span>

#include "graph/csr.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace salient {

/// out[k,:] = src[ids[k],:]. `out` must be preallocated [ids.size(), F] with
/// src's dtype. Works for any dtype (bytewise row copies).
void slice_rows_serial(const Tensor& src, std::span<const NodeId> ids,
                       Tensor& out);

/// Same, parallelized over `pool` (rows split into contiguous chunks).
void slice_rows_parallel(const Tensor& src, std::span<const NodeId> ids,
                         Tensor& out, ThreadPool& pool);

/// out[k] = labels[ids[k]] for 1-D i64 labels.
void slice_labels(const Tensor& labels, std::span<const NodeId> ids,
                  Tensor& out);

/// Converting row gather for the compressed feature pipeline: `src` and
/// `out` are f16 or f32 in any combination; rows are converted in flight
/// through the bulk converters (util/half.h) while being gathered, so no
/// intermediate full-precision copy of the batch materializes. Equal dtypes
/// degrade to the plain bytewise gather.
void slice_rows_convert_serial(const Tensor& src, std::span<const NodeId> ids,
                               Tensor& out);

/// Quantizing row gather: src (f16 or f32) rows are gathered and per-row
/// affine int8-quantized (tensor/quantize.h) into `out`
/// ([ids.size(), F] kInt8Q) with their scales/zero-points written to the
/// preallocated [ids.size()] f32 `scale`/`zero` tensors. This is the
/// int8 wire format's producer: quantization happens once, at slice time,
/// so the DMA moves 1 byte per element plus 8 bytes per row.
void slice_rows_quantize_serial(const Tensor& src, std::span<const NodeId> ids,
                                Tensor& out, Tensor& scale, Tensor& zero);

}  // namespace salient
