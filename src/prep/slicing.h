// Feature/label tensor slicing (paper §3.2, §4.2).
//
// Slicing extracts the feature rows of every node in the sampled MFG and the
// label entries of the mini-batch nodes. Two strategies are provided:
//   * slice_rows_parallel — the PyTorch-style path: one slice parallelized
//     across OpenMP-like threads (the shared pool). Used by the baseline
//     loader in the main process.
//   * slice_rows_serial — SALIENT's path: a serial copy, because each batch
//     preparation thread slices its own batch end-to-end ("By using a serial
//     tensor-slicing code ... SALIENT improves cache locality and avoids
//     contention between threads").
// Both write into a caller-provided destination so SALIENT can target pinned
// staging memory directly.
#pragma once

#include <span>

#include "graph/csr.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace salient {

/// out[k,:] = src[ids[k],:]. `out` must be preallocated [ids.size(), F] with
/// src's dtype. Works for any dtype (bytewise row copies).
void slice_rows_serial(const Tensor& src, std::span<const NodeId> ids,
                       Tensor& out);

/// Same, parallelized over `pool` (rows split into contiguous chunks).
void slice_rows_parallel(const Tensor& src, std::span<const NodeId> ids,
                         Tensor& out, ThreadPool& pool);

/// out[k] = labels[ids[k]] for 1-D i64 labels.
void slice_labels(const Tensor& labels, std::span<const NodeId> ids,
                  Tensor& out);

}  // namespace salient
