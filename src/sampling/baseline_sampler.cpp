#include "sampling/baseline_sampler.h"

#include "sampling/sampler_impl.h"

namespace salient {

BaselineSampler::BaselineSampler(const CsrGraph& graph,
                                 std::vector<std::int64_t> fanouts,
                                 std::uint64_t seed)
    : graph_(graph), fanouts_(std::move(fanouts)), rng_(seed) {}

Mfg BaselineSampler::sample(std::span<const NodeId> batch) {
  return sample_mfg<StdIdMap, StdSetSampler, /*Fused=*/false,
                    /*Reserve=*/false>(graph_, batch, fanouts_, rng_);
}

Mfg BaselineSampler::sample(std::span<const NodeId> batch,
                            std::uint64_t seed) {
  StdMt19937 rng(seed);
  return sample_mfg<StdIdMap, StdSetSampler, /*Fused=*/false,
                    /*Reserve=*/false>(graph_, batch, fanouts_, rng);
}

}  // namespace salient
