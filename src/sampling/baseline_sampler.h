// Baseline neighborhood sampler: a faithful C++ re-implementation of the
// algorithmic/data-structure choices of PyG's NeighborSampler, used as the
// comparison point throughout the evaluation ("PyG" rows/curves).
//
// Choices: std::unordered_map ID map, std::unordered_set rejection sampling,
// two-phase (unfused) sample-then-relabel construction, no container
// pre-sizing, std::mt19937_64 randomness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sampling/mfg.h"
#include "util/rng.h"

namespace salient {

class BaselineSampler {
 public:
  /// The sampler borrows `graph`, which must outlive it.
  BaselineSampler(const CsrGraph& graph, std::vector<std::int64_t> fanouts,
                  std::uint64_t seed = 1);

  /// Sample the MFG for one mini-batch of destination nodes.
  Mfg sample(std::span<const NodeId> batch);

  /// Deterministic variant: sample with a fresh RNG seeded by `seed`.
  /// Loaders use this so results are independent of worker scheduling.
  Mfg sample(std::span<const NodeId> batch, std::uint64_t seed);

  const std::vector<std::int64_t>& fanouts() const { return fanouts_; }

 private:
  const CsrGraph& graph_;
  std::vector<std::int64_t> fanouts_;
  StdMt19937 rng_;
};

}  // namespace salient
