#include "sampling/distributed.h"

#include <algorithm>
#include <stdexcept>

#include "sampling/fast_sampler.h"
#include "util/rng.h"

namespace salient {

double mfg_cross_partition_fraction(const Mfg& mfg, const GraphPartition& p) {
  std::int64_t cross = 0, total = 0;
  for (const auto& level : mfg.levels) {
    for (std::int64_t d = 0; d < level.num_dst; ++d) {
      const auto dst_part =
          p.part_of(mfg.n_ids[static_cast<std::size_t>(d)]);
      for (std::int64_t e = (*level.indptr)[static_cast<std::size_t>(d)];
           e < (*level.indptr)[static_cast<std::size_t>(d) + 1]; ++e) {
        const NodeId src_global = mfg.n_ids[static_cast<std::size_t>(
            (*level.indices)[static_cast<std::size_t>(e)])];
        cross += (p.part_of(src_global) != dst_part);
        ++total;
      }
    }
  }
  return total > 0 ? static_cast<double>(cross) / static_cast<double>(total)
                   : 0.0;
}

double estimate_sampling_comm_fraction(const CsrGraph& graph,
                                       const GraphPartition& p,
                                       std::span<const NodeId> nodes,
                                       std::span<const std::int64_t> fanouts,
                                       std::int64_t batch_size,
                                       int num_batches, std::uint64_t seed) {
  FastSampler sampler(graph,
                      std::vector<std::int64_t>(fanouts.begin(),
                                                fanouts.end()));
  // Sample batches from a shuffled copy of the node list.
  std::vector<NodeId> pool(nodes.begin(), nodes.end());
  Xoshiro256ss rng(seed);
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[bounded_rand(rng, i)]);
  }
  double sum = 0;
  int measured = 0;
  for (int b = 0; b < num_batches; ++b) {
    const std::int64_t begin = b * batch_size;
    if (begin >= static_cast<std::int64_t>(pool.size())) break;
    const std::int64_t end = std::min<std::int64_t>(
        begin + batch_size, static_cast<std::int64_t>(pool.size()));
    Mfg mfg = sampler.sample(
        {pool.data() + begin, static_cast<std::size_t>(end - begin)},
        seed + static_cast<unsigned>(b) + 1);
    sum += mfg_cross_partition_fraction(mfg, p);
    ++measured;
  }
  return measured > 0 ? sum / measured : 0.0;
}

ChunkRange chunk_range(std::int64_t rows, int num_nodes, int node) {
  const auto world = static_cast<std::int64_t>(std::max(1, num_nodes));
  const auto rank = static_cast<std::int64_t>(node);
  const std::int64_t base = rows / world;
  const std::int64_t rem = rows % world;
  const std::int64_t begin = rank * base + std::min(rank, rem);
  return {begin, begin + base + (rank < rem ? 1 : 0)};
}

std::uint64_t schedule_mix_seed(std::uint64_t seed, std::int64_t index) {
  SplitMix64 sm(seed ^
                (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index + 1)));
  return sm.next();
}

void schedule_shuffle(std::vector<NodeId>& nodes, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  for (std::size_t i = nodes.size(); i > 1; --i) {
    std::swap(nodes[i - 1], nodes[bounded_rand(rng, i)]);
  }
}

ChunkRange pipeline_admit_range(std::int64_t step, int depth,
                                std::int64_t num_steps) {
  if (step < 0 || depth < 0 || num_steps < 1) {
    throw std::invalid_argument("pipeline_admit_range: bad step/depth/steps");
  }
  const std::int64_t last = std::min<std::int64_t>(step + depth, num_steps - 1);
  const std::int64_t first = step == 0 ? 0 : step + depth;
  return {first, std::max(first, last + 1)};
}

std::vector<std::vector<std::int64_t>> group_rows_by_owner(
    const Mfg& mfg, const GraphPartition& p) {
  std::vector<std::vector<std::int64_t>> rows(
      static_cast<std::size_t>(std::max(1, p.num_parts)));
  for (std::size_t i = 0; i < mfg.n_ids.size(); ++i) {
    rows[static_cast<std::size_t>(p.part_of(mfg.n_ids[i]))].push_back(
        static_cast<std::int64_t>(i));
  }
  return rows;
}

}  // namespace salient
