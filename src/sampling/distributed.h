// Distributed-sampling cost analysis (paper §8, future work).
//
// In a distributed deployment the graph is partitioned across machines and
// every sampled edge whose source lives on a different partition than its
// destination is a remote neighbor fetch. These helpers quantify that cost
// for sampled MFGs under a given partition — the metric the paper says a
// sampling-aware partitioning objective should optimize.
#pragma once

#include <cstdint>
#include <span>

#include "graph/partition.h"
#include "sampling/mfg.h"

namespace salient {

/// Fraction of an MFG's sampled edges that cross partitions — the remote-
/// fetch share a distributed neighborhood sampler would pay.
double mfg_cross_partition_fraction(const Mfg& mfg, const GraphPartition& p);

/// Average cross-partition fraction over sampled mini-batches of `batch`
/// nodes drawn from `nodes`, using the fast sampler with `fanouts`.
/// A cheap Monte-Carlo estimate of a partitioning's distributed-sampling
/// communication cost.
double estimate_sampling_comm_fraction(const CsrGraph& graph,
                                       const GraphPartition& p,
                                       std::span<const NodeId> nodes,
                                       std::span<const std::int64_t> fanouts,
                                       std::int64_t batch_size,
                                       int num_batches, std::uint64_t seed);

/// A contiguous sub-range [begin, end) of a mini-batch's rows.
struct ChunkRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  std::int64_t size() const { return end - begin; }
  bool empty() const { return end <= begin; }
};

/// Balanced contiguous split of `rows` batch rows across `num_nodes` cluster
/// nodes: node `node` receives rows [begin, end) with sizes differing by at
/// most one (the first rows % num_nodes nodes take the extra row). At
/// num_nodes == 1 the range is the whole batch, which is what lets a 1-node
/// cluster replay the single-node loader's batches exactly
/// (docs/DISTRIBUTED.md). Deterministic; both the ClusterTrainer's runtime
/// schedule and the remote presample warmup use it so frequency estimation
/// sees the true per-node workload.
ChunkRange chunk_range(std::int64_t rows, int num_nodes, int node);

/// The loaders' per-batch seed mixing (prep/salient_loader.cpp): SplitMix64
/// over seed ^ golden-ratio * (index + 1). The cluster trainer seeds chunk
/// (batch, node) pairs with index = batch * num_nodes + node, which at one
/// node collapses to the single-node loader's per-batch seed — the keystone
/// of the 1-node bitwise-parity guarantee (docs/DISTRIBUTED.md). The remote
/// presample warmup uses the same mixing so it counts the exact expansions
/// training will sample.
std::uint64_t schedule_mix_seed(std::uint64_t seed, std::int64_t index);

/// The loaders' deterministic epoch shuffle (Fisher-Yates over
/// Xoshiro256ss(seed)); same algorithm and seeding as SalientLoader, for the
/// same parity reason as schedule_mix_seed.
void schedule_shuffle(std::vector<NodeId>& nodes, std::uint64_t seed);

/// Group an MFG's input rows by owning partition: result[q] holds the
/// ascending row indices i (into mfg.n_ids) with p.part_of(n_ids[i]) == q.
/// The per-owner fetch lists a distributed feature loader would issue when
/// nothing is cached; tests cross-check RemoteFeatureCache plans against it.
std::vector<std::vector<std::int64_t>> group_rows_by_owner(
    const Mfg& mfg, const GraphPartition& p);

/// The batches a depth-bounded micro-pipeline admits at step `step` of an
/// epoch with `num_steps` batches: step 0 fills the whole initial window
/// [0, min(depth, num_steps-1)], every later step admits just the entering
/// batch step + depth (empty once the epoch tail has nothing left). Summed
/// over steps, every batch in [0, num_steps) is admitted exactly once, at
/// the latest step that still keeps it `depth` batches ahead of training —
/// the schedule both the pipelined ClusterTrainer and its property tests
/// derive their in-flight windows from. depth == 0 degenerates to one batch
/// per step (the bulk-synchronous schedule).
/// \throws std::invalid_argument on negative step/depth or num_steps < 1.
ChunkRange pipeline_admit_range(std::int64_t step, int depth,
                                std::int64_t num_steps);

}  // namespace salient
