// Distributed-sampling cost analysis (paper §8, future work).
//
// In a distributed deployment the graph is partitioned across machines and
// every sampled edge whose source lives on a different partition than its
// destination is a remote neighbor fetch. These helpers quantify that cost
// for sampled MFGs under a given partition — the metric the paper says a
// sampling-aware partitioning objective should optimize.
#pragma once

#include <cstdint>
#include <span>

#include "graph/partition.h"
#include "sampling/mfg.h"

namespace salient {

/// Fraction of an MFG's sampled edges that cross partitions — the remote-
/// fetch share a distributed neighborhood sampler would pay.
double mfg_cross_partition_fraction(const Mfg& mfg, const GraphPartition& p);

/// Average cross-partition fraction over sampled mini-batches of `batch`
/// nodes drawn from `nodes`, using the fast sampler with `fanouts`.
/// A cheap Monte-Carlo estimate of a partitioning's distributed-sampling
/// communication cost.
double estimate_sampling_comm_fraction(const CsrGraph& graph,
                                       const GraphPartition& p,
                                       std::span<const NodeId> nodes,
                                       std::span<const std::int64_t> fanouts,
                                       std::int64_t batch_size,
                                       int num_batches, std::uint64_t seed);

}  // namespace salient
