#include "sampling/fast_sampler.h"

#include "sampling/sampler_impl.h"

namespace salient {

FastSampler::FastSampler(const CsrGraph& graph,
                         std::vector<std::int64_t> fanouts, std::uint64_t seed)
    : graph_(graph), fanouts_(std::move(fanouts)), rng_(seed) {}

Mfg FastSampler::sample(std::span<const NodeId> batch) {
  return sample_mfg<FlatIdMap, ArraySetSampler, /*Fused=*/true,
                    /*Reserve=*/true>(graph_, batch, fanouts_, rng_);
}

Mfg FastSampler::sample(std::span<const NodeId> batch, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return sample_mfg<FlatIdMap, ArraySetSampler, /*Fused=*/true,
                    /*Reserve=*/true>(graph_, batch, fanouts_, rng);
}

}  // namespace salient
