#include "sampling/fast_sampler.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/sampler_impl.h"

namespace salient {

namespace {

/// Whole-run sampler totals for the metrics dump (`--metrics-out`).
void count_sampled_mfg(const Mfg& mfg) {
  auto& reg = obs::Registry::global();
  static obs::Counter& batches = reg.counter("sampler.batches");
  static obs::Counter& input_nodes = reg.counter("sampler.input_nodes");
  batches.add();
  input_nodes.add(mfg.num_input_nodes());
}

}  // namespace

FastSampler::FastSampler(const CsrGraph& graph,
                         std::vector<std::int64_t> fanouts, std::uint64_t seed)
    : graph_(graph), fanouts_(std::move(fanouts)), rng_(seed) {}

Mfg FastSampler::sample(std::span<const NodeId> batch) {
  SALIENT_TRACE_SCOPE_ARG("sample.mfg", batch.size());
  Mfg mfg = sample_mfg<FlatIdMap, ArraySetSampler, /*Fused=*/true,
                       /*Reserve=*/true>(graph_, batch, fanouts_, rng_);
  count_sampled_mfg(mfg);
  return mfg;
}

Mfg FastSampler::sample(std::span<const NodeId> batch, std::uint64_t seed) {
  SALIENT_TRACE_SCOPE_ARG("sample.mfg", batch.size());
  Xoshiro256ss rng(seed);
  Mfg mfg = sample_mfg<FlatIdMap, ArraySetSampler, /*Fused=*/true,
                       /*Reserve=*/true>(graph_, batch, fanouts_, rng);
  count_sampled_mfg(mfg);
  return mfg;
}

}  // namespace salient
