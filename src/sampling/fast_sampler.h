// SALIENT's fast neighborhood sampler (paper §4.1).
//
// The winning configuration from the design-space exploration of Figure 2:
// flat ("swiss-table"-style) ID map, array set with linear-scan membership,
// fused sampling + MFG construction, container pre-sizing from the fanout
// bound, and a fast non-cryptographic RNG. Per the paper this is ~2.5x the
// PyG sampler's throughput (Table 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sampling/mfg.h"
#include "util/rng.h"

namespace salient {

/// Fused neighborhood sampler + MFG builder in SALIENT's winning
/// configuration (flat ID map, linear-scan sample set, pre-sized
/// containers, xoshiro RNG). One instance is cheap; loader workers
/// construct one per thread. Not thread-safe: share the graph, not the
/// sampler.
class FastSampler {
 public:
  /// The sampler borrows `graph`, which must outlive it.
  FastSampler(const CsrGraph& graph, std::vector<std::int64_t> fanouts,
              std::uint64_t seed = 1);

  /// Sample the MFG for one mini-batch of destination nodes.
  Mfg sample(std::span<const NodeId> batch);

  /// Deterministic variant: sample with a fresh RNG seeded by `seed`.
  /// Loaders use this so results are independent of worker scheduling.
  Mfg sample(std::span<const NodeId> batch, std::uint64_t seed);

  /// Per-layer fanouts, outermost (input) layer first.
  const std::vector<std::int64_t>& fanouts() const { return fanouts_; }

 private:
  const CsrGraph& graph_;
  std::vector<std::int64_t> fanouts_;
  Xoshiro256ss rng_;
};

}  // namespace salient
