// Global-to-local node ID mapping policies for MFG construction.
//
// The paper identifies the ID-map data structure as the single most impactful
// sampler design choice (Figure 2): "Changing the C++ STL hash map ... to a
// flat swiss-table implementation yields a 2x speedup." We provide:
//   * StdIdMap  — std::unordered_map, the baseline PyG-style choice;
//   * FlatIdMap — open-addressing flat hash table (power-of-two capacity,
//     linear probing, fibonacci hashing), our stand-in for the swiss table.
//
// Both expose the same interface:
//   reserve(n)                   — pre-size for ~n keys
//   get_or_insert(g, locals)     — local ID of global g, appending g to
//                                  `locals` when first seen
//   clear()                      — reset for reuse
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/csr.h"

namespace salient {

/// Baseline: std::unordered_map (node-based, pointer-chasing buckets).
class StdIdMap {
 public:
  static constexpr const char* kName = "std_map";

  void reserve(std::size_t n) { map_.reserve(n); }

  std::int64_t get_or_insert(NodeId g, std::vector<NodeId>& locals) {
    auto [it, inserted] =
        map_.try_emplace(g, static_cast<std::int64_t>(locals.size()));
    if (inserted) locals.push_back(g);
    return it->second;
  }

  void clear() { map_.clear(); }

 private:
  std::unordered_map<NodeId, std::int64_t> map_;
};

/// Flat open-addressing hash map: contiguous storage, linear probing.
/// Tombstone-free (we only insert and clear), max load factor 0.75.
class FlatIdMap {
 public:
  static constexpr const char* kName = "flat_map";
  static constexpr NodeId kEmpty = -1;

  FlatIdMap() { allocate(64); }

  void reserve(std::size_t n) {
    std::size_t want = 64;
    while (want * 3 / 4 < n) want <<= 1;
    if (want <= capacity_) return;
    // Fast path after clear(): an empty table can grow by reallocating
    // directly instead of scanning the old slots for keys to re-insert —
    // the common reserve-per-minibatch pattern hits this every time.
    if (size_ == 0) {
      allocate(want);
    } else {
      rehash(want);
    }
  }

  std::int64_t get_or_insert(NodeId g, std::vector<NodeId>& locals) {
    // Probe first: pure lookup hits (the overwhelming majority once a
    // frontier saturates) return without touching the load-factor check.
    std::size_t i = probe_start(g);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == g) return values_[i];
      i = (i + 1) & (capacity_ - 1);
    }
    // Miss: grow if the insert would cross the 0.75 load factor, then
    // re-probe (the rehash moved every key).
    if ((size_ + 1) * 4 > capacity_ * 3) {
      rehash(capacity_ * 2);
      i = probe_start(g);
      while (keys_[i] != kEmpty) i = (i + 1) & (capacity_ - 1);
    }
    keys_[i] = g;
    const auto local = static_cast<std::int64_t>(locals.size());
    values_[i] = local;
    locals.push_back(g);
    ++size_;
    return local;
  }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    size_ = 0;
  }

 private:
  std::size_t probe_start(NodeId g) const {
    // Fibonacci hashing spreads sequential IDs across the table.
    const auto h =
        static_cast<std::uint64_t>(g) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h >> shift_) & (capacity_ - 1);
  }

  /// Size the table for `new_capacity` slots with no keys to carry over.
  void allocate(std::size_t new_capacity) {
    capacity_ = new_capacity;
    shift_ = 64 - static_cast<unsigned>(__builtin_ctzll(capacity_));
    keys_.assign(capacity_, kEmpty);
    values_.assign(capacity_, 0);
    size_ = 0;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<NodeId> old_keys = std::move(keys_);
    std::vector<std::int64_t> old_values = std::move(values_);
    allocate(new_capacity);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      std::size_t j = probe_start(old_keys[i]);
      while (keys_[j] != kEmpty) j = (j + 1) & (capacity_ - 1);
      keys_[j] = old_keys[i];
      values_[j] = old_values[i];
      ++size_;
    }
  }

  std::vector<NodeId> keys_;
  std::vector<std::int64_t> values_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  unsigned shift_ = 58;
};

}  // namespace salient
