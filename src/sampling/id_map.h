// Global-to-local node ID mapping policies for MFG construction.
//
// The paper identifies the ID-map data structure as the single most impactful
// sampler design choice (Figure 2): "Changing the C++ STL hash map ... to a
// flat swiss-table implementation yields a 2x speedup." We provide:
//   * StdIdMap  — std::unordered_map, the baseline PyG-style choice;
//   * FlatIdMap — open-addressing flat hash table (power-of-two capacity,
//     linear probing, fibonacci hashing), our stand-in for the swiss table.
//
// Both expose the same interface:
//   reserve(n)                   — pre-size for ~n keys
//   get_or_insert(g, locals)     — local ID of global g, appending g to
//                                  `locals` when first seen
//   clear()                      — reset for reuse
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/csr.h"

namespace salient {

/// Baseline: std::unordered_map (node-based, pointer-chasing buckets).
class StdIdMap {
 public:
  static constexpr const char* kName = "std_map";

  void reserve(std::size_t n) { map_.reserve(n); }

  std::int64_t get_or_insert(NodeId g, std::vector<NodeId>& locals) {
    auto [it, inserted] =
        map_.try_emplace(g, static_cast<std::int64_t>(locals.size()));
    if (inserted) locals.push_back(g);
    return it->second;
  }

  void clear() { map_.clear(); }

 private:
  std::unordered_map<NodeId, std::int64_t> map_;
};

/// Flat open-addressing hash map: contiguous storage, linear probing.
/// Tombstone-free (we only insert and clear), max load factor 0.75.
class FlatIdMap {
 public:
  static constexpr const char* kName = "flat_map";
  static constexpr NodeId kEmpty = -1;

  FlatIdMap() { rehash(64); }

  void reserve(std::size_t n) {
    std::size_t want = 64;
    while (want * 3 / 4 < n) want <<= 1;
    if (want > capacity_) rehash(want);
  }

  std::int64_t get_or_insert(NodeId g, std::vector<NodeId>& locals) {
    if ((size_ + 1) * 4 > capacity_ * 3) rehash(capacity_ * 2);
    std::size_t i = probe_start(g);
    for (;;) {
      if (keys_[i] == kEmpty) {
        keys_[i] = g;
        const auto local = static_cast<std::int64_t>(locals.size());
        values_[i] = local;
        locals.push_back(g);
        ++size_;
        return local;
      }
      if (keys_[i] == g) return values_[i];
      i = (i + 1) & (capacity_ - 1);
    }
  }

  void clear() {
    std::fill(keys_.begin(), keys_.end(), kEmpty);
    size_ = 0;
  }

 private:
  std::size_t probe_start(NodeId g) const {
    // Fibonacci hashing spreads sequential IDs across the table.
    const auto h =
        static_cast<std::uint64_t>(g) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h >> shift_) & (capacity_ - 1);
  }

  void rehash(std::size_t new_capacity) {
    std::vector<NodeId> old_keys = std::move(keys_);
    std::vector<std::int64_t> old_values = std::move(values_);
    capacity_ = new_capacity;
    shift_ = 64 - static_cast<unsigned>(__builtin_ctzll(capacity_));
    keys_.assign(capacity_, kEmpty);
    values_.assign(capacity_, 0);
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      std::size_t j = probe_start(old_keys[i]);
      while (keys_[j] != kEmpty) j = (j + 1) & (capacity_ - 1);
      keys_[j] = old_keys[i];
      values_[j] = old_values[i];
      ++size_;
    }
  }

  std::vector<NodeId> keys_;
  std::vector<std::int64_t> values_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  unsigned shift_ = 58;
};

}  // namespace salient
