#include "sampling/mfg.h"

namespace salient {

std::int64_t Mfg::total_edges() const {
  std::int64_t e = 0;
  for (const auto& l : levels) e += l.num_edges();
  return e;
}

std::size_t Mfg::adjacency_bytes() const {
  std::size_t b = 0;
  for (const auto& l : levels) {
    b += (l.indptr ? l.indptr->size() : 0) * sizeof(std::int64_t);
    b += (l.indices ? l.indices->size() : 0) * sizeof(std::int64_t);
  }
  return b;
}

bool Mfg::valid() const {
  if (levels.empty()) return false;
  // Outermost source set must match n_ids.
  if (levels.front().num_src != static_cast<std::int64_t>(n_ids.size())) {
    return false;
  }
  if (levels.back().num_dst != batch_size) return false;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto& l = levels[i];
    if (!l.indptr || !l.indices) return false;
    if (l.num_dst > l.num_src) return false;  // prefix property
    if (static_cast<std::int64_t>(l.indptr->size()) != l.num_dst + 1) {
      return false;
    }
    if (l.indptr->front() != 0) return false;
    for (std::size_t k = 1; k < l.indptr->size(); ++k) {
      if ((*l.indptr)[k] < (*l.indptr)[k - 1]) return false;
    }
    if (l.indptr->back() != static_cast<std::int64_t>(l.indices->size())) {
      return false;
    }
    for (const auto s : *l.indices) {
      if (s < 0 || s >= l.num_src) return false;
    }
    // Chaining: this level's destinations are the next level's sources.
    if (i + 1 < levels.size() && l.num_dst != levels[i + 1].num_src) {
      return false;
    }
  }
  return true;
}

}  // namespace salient
