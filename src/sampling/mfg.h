// Message-flow graphs (MFGs): the sampled multi-hop neighborhood structure
// produced by node-wise neighborhood sampling (paper §4.1).
//
// An MFG for a mini-batch B with L layers is a sequence of bipartite graphs.
// Following the PyG convention the paper's models use (Appendix A):
//   * each level's destination nodes are a prefix of its source nodes
//     (local IDs coincide: dst i == src i), so the model can compute
//     `x_target = x[:num_dst]`;
//   * levels are stored in model-consumption order: levels[0] is the
//     outermost hop (largest source set, consumed by the first conv layer)
//     and levels[L-1] has the mini-batch nodes as destinations;
//   * `n_ids` maps local IDs of the largest source set back to global node
//     IDs; feature slicing gathers feature rows for exactly these nodes.
//
// Per-level adjacency is destination-major CSR with *local* source IDs, the
// layout the SpMM aggregation kernels consume directly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr.h"

namespace salient {

/// One bipartite level of an MFG.
struct MfgLevel {
  std::int64_t num_src = 0;
  std::int64_t num_dst = 0;
  /// CSR over destinations: size num_dst+1.
  std::shared_ptr<const std::vector<std::int64_t>> indptr;
  /// Edge targets: local source IDs, size indptr->back().
  std::shared_ptr<const std::vector<std::int64_t>> indices;

  std::int64_t num_edges() const {
    return indptr ? indptr->back() : 0;
  }
};

/// A complete sampled message-flow graph for one mini-batch.
struct Mfg {
  std::vector<MfgLevel> levels;   ///< model order (outermost first)
  std::vector<NodeId> n_ids;      ///< global IDs of the largest source set
  std::int64_t batch_size = 0;    ///< destinations of the final level

  /// Total edges across all levels (the data-volume driver for transfer).
  std::int64_t total_edges() const;
  /// Total nodes in the largest source set.
  std::int64_t num_input_nodes() const {
    return static_cast<std::int64_t>(n_ids.size());
  }
  /// Bytes of adjacency data this MFG transfers to the device.
  std::size_t adjacency_bytes() const;

  /// Check all structural invariants (prefix property, ID ranges, monotone
  /// indptr, level chaining num_dst == next num_src).
  bool valid() const;
};

}  // namespace salient
