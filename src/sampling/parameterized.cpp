#include "sampling/parameterized.h"

#include <stdexcept>

#include "sampling/sampler_impl.h"

namespace salient {

namespace {

const char* kMapNames[] = {"std_map", "flat_map"};
const char* kSetNames[] = {"std_set", "flat_set", "array_set", "fisher_yates"};
const char* kFusedNames[] = {"unfused", "fused"};
const char* kReserveNames[] = {"no_reserve", "reserve"};
const char* kRngNames[] = {"mt19937", "xoshiro", "pcg32"};

/// Nested compile-time dispatch: resolve the runtime variant indices into the
/// corresponding sample_mfg / sample_one_hop instantiation. The Op functor is
/// called with five policy tags.
template <class Op>
auto dispatch(const SamplerVariant& v, Op&& op) {
  auto with_rng = [&](auto map_tag, auto set_tag, auto fused_tag,
                      auto reserve_tag) {
    switch (v.rng) {
      case 0:
        return op(map_tag, set_tag, fused_tag, reserve_tag,
                  std::type_identity<StdMt19937>{});
      case 1:
        return op(map_tag, set_tag, fused_tag, reserve_tag,
                  std::type_identity<Xoshiro256ss>{});
      case 2:
        return op(map_tag, set_tag, fused_tag, reserve_tag,
                  std::type_identity<Pcg32>{});
      default:
        throw std::invalid_argument("SamplerVariant: rng index");
    }
  };
  auto with_reserve = [&](auto map_tag, auto set_tag, auto fused_tag) {
    switch (v.reserve) {
      case 0:
        return with_rng(map_tag, set_tag, fused_tag,
                        std::bool_constant<false>{});
      case 1:
        return with_rng(map_tag, set_tag, fused_tag,
                        std::bool_constant<true>{});
      default:
        throw std::invalid_argument("SamplerVariant: reserve index");
    }
  };
  auto with_fused = [&](auto map_tag, auto set_tag) {
    switch (v.fused) {
      case 0:
        return with_reserve(map_tag, set_tag, std::bool_constant<false>{});
      case 1:
        return with_reserve(map_tag, set_tag, std::bool_constant<true>{});
      default:
        throw std::invalid_argument("SamplerVariant: fused index");
    }
  };
  auto with_set = [&](auto map_tag) {
    switch (v.set) {
      case 0:
        return with_fused(map_tag, std::type_identity<StdSetSampler>{});
      case 1:
        return with_fused(map_tag, std::type_identity<FlatSetSampler>{});
      case 2:
        return with_fused(map_tag, std::type_identity<ArraySetSampler>{});
      case 3:
        return with_fused(map_tag, std::type_identity<FisherYatesSampler>{});
      default:
        throw std::invalid_argument("SamplerVariant: set index");
    }
  };
  switch (v.map) {
    case 0:
      return with_set(std::type_identity<StdIdMap>{});
    case 1:
      return with_set(std::type_identity<FlatIdMap>{});
    default:
      throw std::invalid_argument("SamplerVariant: map index");
  }
}

}  // namespace

std::string SamplerVariant::name() const {
  return std::string(kMapNames[map]) + "/" + kSetNames[set] + "/" +
         kFusedNames[fused] + "/" + kReserveNames[reserve] + "/" +
         kRngNames[rng];
}

bool SamplerVariant::is_baseline() const {
  return map == 0 && set == 0 && fused == 0 && reserve == 0 && rng == 0;
}

bool SamplerVariant::is_salient() const {
  return map == 1 && set == 2 && fused == 1 && reserve == 1 && rng == 1;
}

std::vector<SamplerVariant> all_sampler_variants() {
  std::vector<SamplerVariant> out;
  out.reserve(96);
  for (int map = 0; map < 2; ++map)
    for (int set = 0; set < 4; ++set)
      for (int fused = 0; fused < 2; ++fused)
        for (int reserve = 0; reserve < 2; ++reserve)
          for (int rng = 0; rng < 3; ++rng)
            out.push_back({map, set, fused, reserve, rng});
  return out;
}

Mfg sample_with_variant(const SamplerVariant& v, const CsrGraph& g,
                        std::span<const NodeId> batch,
                        std::span<const std::int64_t> fanouts,
                        std::uint64_t seed) {
  return dispatch(v, [&](auto map_tag, auto set_tag, auto fused_tag,
                         auto reserve_tag, auto rng_tag) -> Mfg {
    using Map = typename decltype(map_tag)::type;
    using Set = typename decltype(set_tag)::type;
    using Rng = typename decltype(rng_tag)::type;
    Rng rng(seed);
    return sample_mfg<Map, Set, decltype(fused_tag)::value,
                      decltype(reserve_tag)::value>(g, batch, fanouts, rng);
  });
}

std::int64_t run_hop_with_variant(const SamplerVariant& v, const CsrGraph& g,
                                  std::span<const NodeId> frontier,
                                  std::int64_t fanout, std::uint64_t seed) {
  return dispatch(v, [&](auto map_tag, auto set_tag, auto fused_tag,
                         auto reserve_tag, auto rng_tag) -> std::int64_t {
    using Map = typename decltype(map_tag)::type;
    using Set = typename decltype(set_tag)::type;
    using Rng = typename decltype(rng_tag)::type;
    Rng rng(seed);
    Map map;
    std::vector<NodeId> locals;
    locals.reserve(frontier.size());
    for (const NodeId n : frontier) map.get_or_insert(n, locals);
    MfgLevel level =
        sample_one_hop<Map, Set, decltype(fused_tag)::value,
                       decltype(reserve_tag)::value>(
            g, map, locals, static_cast<std::int64_t>(frontier.size()), fanout,
            rng);
    return level.num_edges();
  });
}

}  // namespace salient
