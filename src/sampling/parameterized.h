// Runtime registry over the sampler design space (paper §4.1, Figure 2).
//
// "Overall, the space of possible design choices and optimizations is too
// large to explore manually. We designed a parameterized implementation of
// sampled MFG generation to systematically explore this optimization space."
//
// The space here is 2 ID maps x 4 without-replacement sets x 2 construction
// fusions x 2 reserve policies x 3 RNGs = 96 instantiations of
// sample_mfg<...>, each addressable by index or name, exactly the population
// benchmarked in Figure 2.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "sampling/mfg.h"

namespace salient {

/// One point in the sampler design space.
struct SamplerVariant {
  int map = 0;      ///< 0: std_map, 1: flat_map
  int set = 0;      ///< 0: std_set, 1: flat_set, 2: array_set, 3: fisher_yates
  int fused = 0;    ///< 0: unfused (two-phase), 1: fused
  int reserve = 0;  ///< 0: no pre-sizing, 1: reserve
  int rng = 0;      ///< 0: mt19937, 1: xoshiro256**, 2: pcg32

  /// Canonical name, e.g. "flat_map/array_set/fused/reserve/xoshiro".
  std::string name() const;
  /// True for the configuration matching PyG's NeighborSampler.
  bool is_baseline() const;
  /// True for SALIENT's production configuration.
  bool is_salient() const;
};

/// All 96 points of the design space, in a fixed deterministic order.
std::vector<SamplerVariant> all_sampler_variants();

/// Sample a full MFG with the given variant (seeded independently).
Mfg sample_with_variant(const SamplerVariant& v, const CsrGraph& g,
                        std::span<const NodeId> batch,
                        std::span<const std::int64_t> fanouts,
                        std::uint64_t seed);

/// Run a single hop of sampling+relabeling on a fixed frontier, returning the
/// number of edges produced. This is the unit the Figure 2 microbenchmark
/// times ("we benchmark each individual hop of the reference trace").
std::int64_t run_hop_with_variant(const SamplerVariant& v, const CsrGraph& g,
                                  std::span<const NodeId> frontier,
                                  std::int64_t fanout, std::uint64_t seed);

}  // namespace salient
