// "Sampling without replacement" set policies.
//
// To sample d of a node's neighbors without replacement, the sampler needs a
// set structure to reject duplicate draws. The paper explores this choice in
// its design space (Figure 2) and lands on a plain array with linear search:
// "Despite its linear search complexity, the array set benefits from cache
// locality" (§4.1, +17% over the flat hash set). Policies:
//   * StdSetSampler    — std::unordered_set of drawn positions (baseline);
//   * FlatSetSampler   — flat open-addressing set of positions;
//   * ArraySetSampler  — drawn positions kept in a small array, membership
//                        by linear scan (the paper's winner);
//   * FisherYatesSampler — partial Fisher-Yates over a scratch copy of the
//                        neighbor list (no rejection, O(deg) copy).
//
// Every policy implements:
//   template <class Rng>
//   static void sample(std::span<const NodeId> neighbors, std::int64_t fanout,
//                      Rng& rng, std::vector<NodeId>& out);
// appending min(fanout, deg) distinct neighbors to `out`. When deg <= fanout
// the entire neighborhood is taken (no sampling).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "graph/csr.h"
#include "util/rng.h"

namespace salient {

namespace sample_detail {

/// Copy the full neighborhood (deg <= fanout fast path).
inline void take_all(std::span<const NodeId> neighbors,
                     std::vector<NodeId>& out) {
  out.insert(out.end(), neighbors.begin(), neighbors.end());
}

}  // namespace sample_detail

struct StdSetSampler {
  static constexpr const char* kName = "std_set";

  template <class Rng>
  static void sample(std::span<const NodeId> neighbors, std::int64_t fanout,
                     Rng& rng, std::vector<NodeId>& out) {
    const auto deg = static_cast<std::int64_t>(neighbors.size());
    if (deg <= fanout) {
      sample_detail::take_all(neighbors, out);
      return;
    }
    // A fresh set per vertex, as PyG's sample_adj does (the allocation and
    // rehash churn is part of the baseline behaviour being measured).
    std::unordered_set<std::int64_t> picked;
    while (static_cast<std::int64_t>(picked.size()) < fanout) {
      const auto pos = static_cast<std::int64_t>(
          bounded_rand(rng, static_cast<std::uint64_t>(deg)));
      if (picked.insert(pos).second) {
        out.push_back(neighbors[static_cast<std::size_t>(pos)]);
      }
    }
  }
};

struct FlatSetSampler {
  static constexpr const char* kName = "flat_set";

  template <class Rng>
  static void sample(std::span<const NodeId> neighbors, std::int64_t fanout,
                     Rng& rng, std::vector<NodeId>& out) {
    const auto deg = static_cast<std::int64_t>(neighbors.size());
    if (deg <= fanout) {
      sample_detail::take_all(neighbors, out);
      return;
    }
    // Flat set of positions; capacity = next pow2 >= 2*fanout.
    thread_local std::vector<std::int64_t> table;
    std::size_t cap = 16;
    while (cap < static_cast<std::size_t>(2 * fanout)) cap <<= 1;
    table.assign(cap, -1);
    std::int64_t count = 0;
    while (count < fanout) {
      const auto pos = static_cast<std::int64_t>(
          bounded_rand(rng, static_cast<std::uint64_t>(deg)));
      std::size_t i =
          (static_cast<std::uint64_t>(pos) * 0x9e3779b97f4a7c15ull >> 32) &
          (cap - 1);
      bool dup = false;
      while (table[i] != -1) {
        if (table[i] == pos) {
          dup = true;
          break;
        }
        i = (i + 1) & (cap - 1);
      }
      if (dup) continue;
      table[i] = pos;
      out.push_back(neighbors[static_cast<std::size_t>(pos)]);
      ++count;
    }
  }
};

struct ArraySetSampler {
  static constexpr const char* kName = "array_set";

  template <class Rng>
  static void sample(std::span<const NodeId> neighbors, std::int64_t fanout,
                     Rng& rng, std::vector<NodeId>& out) {
    const auto deg = static_cast<std::int64_t>(neighbors.size());
    if (deg <= fanout) {
      sample_detail::take_all(neighbors, out);
      return;
    }
    thread_local std::vector<std::int64_t> picked;
    picked.clear();
    while (static_cast<std::int64_t>(picked.size()) < fanout) {
      const auto pos = static_cast<std::int64_t>(
          bounded_rand(rng, static_cast<std::uint64_t>(deg)));
      bool dup = false;
      for (const auto p : picked) {
        if (p == pos) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      picked.push_back(pos);
      out.push_back(neighbors[static_cast<std::size_t>(pos)]);
    }
  }
};

struct FisherYatesSampler {
  static constexpr const char* kName = "fisher_yates";

  template <class Rng>
  static void sample(std::span<const NodeId> neighbors, std::int64_t fanout,
                     Rng& rng, std::vector<NodeId>& out) {
    const auto deg = static_cast<std::int64_t>(neighbors.size());
    if (deg <= fanout) {
      sample_detail::take_all(neighbors, out);
      return;
    }
    thread_local std::vector<NodeId> scratch;
    scratch.assign(neighbors.begin(), neighbors.end());
    for (std::int64_t k = 0; k < fanout; ++k) {
      const auto j = k + static_cast<std::int64_t>(bounded_rand(
                             rng, static_cast<std::uint64_t>(deg - k)));
      std::swap(scratch[static_cast<std::size_t>(k)],
                scratch[static_cast<std::size_t>(j)]);
      out.push_back(scratch[static_cast<std::size_t>(k)]);
    }
  }
};

}  // namespace salient
