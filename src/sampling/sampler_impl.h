// The parameterized MFG sampling algorithm (paper §4.1).
//
// This is the single implementation behind the baseline sampler, the fast
// sampler, and the 96-variant design-space exploration of Figure 2. The
// template parameters are the design choices the paper identifies as most
// impactful:
//   IdMap   — global->local node ID mapping (std vs flat hash map);
//   SetPol  — sampling-without-replacement set structure;
//   Fused   — fuse sampling with MFG construction (relabel inline) vs the
//             PyG-style two-phase sample-then-relabel;
//   Reserve — pre-size containers from the fanout bound vs grow organically;
//   Rng     — random generator type.
//
// Semantics follow PyG's NeighborSampler.sample_adj chain: the hop-h
// destination set is the *entire* hop-(h-1) source set, local IDs are global
// within the MFG (dedup across hops), and each level's destinations are a
// prefix of its sources.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.h"
#include "sampling/id_map.h"
#include "sampling/mfg.h"
#include "sampling/sample_set.h"

namespace salient {

/// Sample one hop: expand `locals[0..num_dst)` with `fanout` neighbors each,
/// relabeling through `map` / `locals`, producing a destination-major CSR
/// level. Exposed separately so the Figure 2 microbenchmark can time
/// individual hops of a fixed reference trace.
template <class IdMap, class SetPol, bool Fused, bool Reserve, class Rng>
MfgLevel sample_one_hop(const CsrGraph& g, IdMap& map,
                        std::vector<NodeId>& locals, std::int64_t num_dst,
                        std::int64_t fanout, Rng& rng) {
  auto indptr = std::make_shared<std::vector<std::int64_t>>();
  auto indices = std::make_shared<std::vector<std::int64_t>>();
  indptr->reserve(static_cast<std::size_t>(num_dst) + 1);
  indptr->push_back(0);

  if constexpr (Reserve) {
    const auto expected = static_cast<std::size_t>(num_dst * fanout);
    indices->reserve(expected);
    locals.reserve(locals.size() + expected);
    map.reserve(locals.size() + expected);
  }

  thread_local std::vector<NodeId> sampled;

  if constexpr (Fused) {
    // One pass: relabel each sampled neighbor as it is drawn.
    for (std::int64_t i = 0; i < num_dst; ++i) {
      const NodeId v = locals[static_cast<std::size_t>(i)];
      sampled.clear();
      SetPol::sample(g.neighbors(v), fanout, rng, sampled);
      for (const NodeId u : sampled) {
        indices->push_back(map.get_or_insert(u, locals));
      }
      indptr->push_back(static_cast<std::int64_t>(indices->size()));
    }
  } else {
    // Two phases, PyG style: collect global neighbor IDs for the whole hop,
    // then relabel in a second pass.
    thread_local std::vector<NodeId> hop_globals;
    hop_globals.clear();
    for (std::int64_t i = 0; i < num_dst; ++i) {
      const NodeId v = locals[static_cast<std::size_t>(i)];
      sampled.clear();
      SetPol::sample(g.neighbors(v), fanout, rng, sampled);
      hop_globals.insert(hop_globals.end(), sampled.begin(), sampled.end());
      indptr->push_back(static_cast<std::int64_t>(hop_globals.size()));
    }
    indices->reserve(hop_globals.size());
    for (const NodeId u : hop_globals) {
      indices->push_back(map.get_or_insert(u, locals));
    }
  }

  MfgLevel level;
  level.num_dst = num_dst;
  level.num_src = static_cast<std::int64_t>(locals.size());
  level.indptr = std::move(indptr);
  level.indices = std::move(indices);
  return level;
}

/// Sample a complete MFG for `batch` with per-hop `fanouts`.
template <class IdMap, class SetPol, bool Fused, bool Reserve, class Rng>
Mfg sample_mfg(const CsrGraph& g, std::span<const NodeId> batch,
               std::span<const std::int64_t> fanouts, Rng& rng) {
  IdMap map;
  std::vector<NodeId> locals;
  locals.reserve(batch.size());
  if constexpr (Reserve) {
    map.reserve(batch.size());
  }
  for (const NodeId b : batch) {
    map.get_or_insert(b, locals);
  }

  std::vector<MfgLevel> levels_rev;
  levels_rev.reserve(fanouts.size());
  for (const std::int64_t d : fanouts) {
    const auto num_dst = static_cast<std::int64_t>(locals.size());
    levels_rev.push_back(sample_one_hop<IdMap, SetPol, Fused, Reserve, Rng>(
        g, map, locals, num_dst, d, rng));
  }

  Mfg mfg;
  mfg.levels.assign(levels_rev.rbegin(), levels_rev.rend());
  mfg.n_ids = std::move(locals);
  mfg.batch_size = static_cast<std::int64_t>(batch.size());
  return mfg;
}

}  // namespace salient
