#include "sampling/trace.h"

#include "sampling/sampler_impl.h"

namespace salient {

SampleTrace record_trace(const CsrGraph& graph, std::span<const NodeId> batch,
                         std::span<const std::int64_t> fanouts,
                         std::uint64_t seed) {
  SampleTrace trace;
  Xoshiro256ss rng(seed);
  FlatIdMap map;
  std::vector<NodeId> locals;
  for (const NodeId b : batch) map.get_or_insert(b, locals);
  for (const std::int64_t d : fanouts) {
    HopTrace hop;
    hop.frontier = locals;  // frontier *before* expansion
    hop.fanout = d;
    const auto num_dst = static_cast<std::int64_t>(locals.size());
    (void)sample_one_hop<FlatIdMap, ArraySetSampler, true, true>(
        graph, map, locals, num_dst, d, rng);
    trace.hops.push_back(std::move(hop));
  }
  return trace;
}

}  // namespace salient
