// Reference hop-by-hop sampling traces for the Figure 2 microbenchmark.
//
// "This exploration was done using a microbenchmark which executed the
// parameterized code on a reference hop-by-hop trace of the nodes which made
// up a sampled MFG for a mini-batch ... To mitigate sampling variability, we
// benchmark each individual hop of the reference trace instead of an
// end-to-end execution." (§4.1)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace salient {

/// One hop of a recorded trace: the fixed frontier (destination set) the hop
/// expands, and the fanout it was expanded with.
struct HopTrace {
  std::vector<NodeId> frontier;
  std::int64_t fanout = 0;
};

/// A full reference trace for one mini-batch.
struct SampleTrace {
  std::vector<HopTrace> hops;
};

/// Record the frontier at each hop of a reference sampling run (using the
/// fast sampler's semantics, which all variants share).
SampleTrace record_trace(const CsrGraph& graph, std::span<const NodeId> batch,
                         std::span<const std::int64_t> fanouts,
                         std::uint64_t seed);

}  // namespace salient
