#include "serve/micro_batcher.h"

#include <algorithm>

#include "obs/metrics.h"

namespace salient::serve {

MicroBatcher::MicroBatcher(RequestQueue& queue, BatchPolicy policy)
    : queue_(queue), policy_(policy) {
  if (policy_.max_batch_nodes < 1) policy_.max_batch_nodes = 1;
}

std::optional<MicroBatch> MicroBatcher::next() {
  auto& reg = obs::Registry::global();
  static obs::Counter& m_batches = reg.counter("serve.batches");
  static obs::Histogram& m_batch_nodes = reg.histogram(
      "serve.batch_nodes", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});

  MicroBatch mb;
  mb.seq = seq_;
  std::int64_t nodes = 0;

  // Seed the batch: the carried-over request, or block for the first one.
  if (carry_.has_value()) {
    nodes += static_cast<std::int64_t>(carry_->nodes.size());
    mb.requests.push_back(std::move(*carry_));
    carry_.reset();
  } else {
    auto first = queue_.pop();
    if (!first.has_value()) return std::nullopt;  // closed and drained
    nodes += static_cast<std::int64_t>(first->nodes.size());
    mb.requests.push_back(std::move(*first));
  }

  // Coalesce until the size bound or the wait bound trips. The deadline runs
  // from the first request's *arrival*; once it has passed (e.g. the request
  // sat in a backlogged queue), pop_for degenerates to a poll, so a backlog
  // is still drained greedily into full batches instead of singletons.
  const auto deadline =
      mb.requests.front().admitted_at +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          policy_.max_wait);
  while (nodes < policy_.max_batch_nodes) {
    const auto now = std::chrono::steady_clock::now();
    const auto remaining =
        now < deadline
            ? std::chrono::duration_cast<std::chrono::microseconds>(deadline -
                                                                    now)
            : std::chrono::microseconds(0);
    auto r = queue_.pop_for(remaining);
    if (!r.has_value()) break;  // wait bound hit (or poll empty), or closed
    const auto r_nodes = static_cast<std::int64_t>(r->nodes.size());
    if (nodes > 0 && nodes + r_nodes > policy_.max_batch_nodes) {
      carry_ = std::move(r);  // would overflow: starts the next batch
      break;
    }
    nodes += r_nodes;
    mb.requests.push_back(std::move(*r));
  }

  mb.closed_at = std::chrono::steady_clock::now();
  ++seq_;
  m_batches.add();
  m_batch_nodes.observe(static_cast<double>(nodes));
  return mb;
}

}  // namespace salient::serve
