// Dynamic micro-batching of concurrent prediction requests.
//
// GNN inference cost is dominated by per-batch fixed overheads (sampling
// setup, slicing, transfer issue), so serving single-node requests one at a
// time wastes most of the pipeline. The MicroBatcher coalesces whatever is
// in the admission queue into one micro-batch under a classic max-size /
// max-wait policy:
//   * a batch closes as soon as its accumulated node count reaches
//     max_batch_nodes (throughput bound), or
//   * max_wait after its first request arrived (latency bound) — an idle
//     server serves a lone request with at most max_wait of added delay.
// A request never spans two batches; one that would overflow the current
// batch is carried into the next.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "serve/request_queue.h"

namespace salient::serve {

struct BatchPolicy {
  /// Close a batch once it holds this many requested nodes.
  std::int64_t max_batch_nodes = 256;
  /// Close a batch this long after its first request arrived.
  std::chrono::microseconds max_wait{2000};
};

struct MicroBatch {
  std::int64_t seq = -1;  ///< monotone batch number (drives the sampler seed)
  std::vector<Request> requests;
  std::chrono::steady_clock::time_point closed_at;

  std::int64_t total_nodes() const {
    std::int64_t n = 0;
    for (const Request& r : requests) {
      n += static_cast<std::int64_t>(r.nodes.size());
    }
    return n;
  }
};

class MicroBatcher {
 public:
  MicroBatcher(RequestQueue& queue, BatchPolicy policy);

  /// Block until the next micro-batch closes; nullopt once the queue is
  /// closed and fully drained.
  std::optional<MicroBatch> next();

 private:
  RequestQueue& queue_;
  BatchPolicy policy_;
  std::int64_t seq_ = 0;
  std::optional<Request> carry_;  ///< overflow request from the last batch
};

}  // namespace salient::serve
