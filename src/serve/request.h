// Online-serving request/response types (docs/SERVING.md).
//
// A Request asks for class predictions of a set of nodes under the current
// model. Responses are delivered through a std::future so callers can run
// open-loop (fire many, collect later) or closed-loop (submit + wait). All
// latency accounting uses the steady clock and is reported in microseconds,
// matching the obs registry's serve.* histograms.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <vector>

#include "graph/csr.h"

namespace salient::serve {

enum class RequestStatus : std::uint8_t {
  kOk,       ///< predictions filled for every requested node
  kShed,     ///< rejected at admission (queue full) — no work was done
  kClosed,   ///< server shut down before the request could be served
  kInvalid,  ///< rejected at validation (e.g. out-of-range node id)
  kFailed,   ///< a pipeline stage failed for this request's micro-batch;
             ///< the server degraded gracefully instead of wedging (retry)
};

const char* to_string(RequestStatus s);

struct Response {
  RequestStatus status = RequestStatus::kOk;
  /// Predicted class per node, aligned with the request's node order.
  /// Empty unless status == kOk.
  std::vector<std::int64_t> predictions;
  /// Model generation the predictions were computed under (or served from
  /// the result cache for); see InferenceServer::notify_model_updated().
  std::uint64_t model_generation = 0;
  /// Nodes answered from the ResultCache without touching the pipeline.
  std::int64_t nodes_from_cache = 0;
  /// Admission -> micro-batch close (time spent waiting for batching).
  double queue_us = 0;
  /// Admission -> response completion (the end-to-end serving latency).
  double total_us = 0;

  bool ok() const { return status == RequestStatus::kOk; }
};

struct Request {
  std::uint64_t id = 0;
  std::vector<NodeId> nodes;
  std::chrono::steady_clock::time_point admitted_at;
  std::promise<Response> promise;
};

}  // namespace salient::serve
