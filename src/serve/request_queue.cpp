#include "serve/request_queue.h"

#include "obs/metrics.h"

namespace salient::serve {

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kShed:
      return "shed";
    case RequestStatus::kClosed:
      return "closed";
    case RequestStatus::kInvalid:
      return "invalid";
    case RequestStatus::kFailed:
      return "failed";
  }
  return "?";
}

RequestQueue::RequestQueue(std::size_t capacity) : queue_(capacity) {}

std::future<Response> RequestQueue::submit(std::vector<NodeId> nodes) {
  auto& reg = obs::Registry::global();
  static obs::Counter& m_admitted = reg.counter("serve.admitted");
  static obs::Counter& m_shed = reg.counter("serve.shed");
  static obs::Gauge& m_depth = reg.gauge("serve.queue_depth");

  Request req;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.nodes = std::move(nodes);
  req.admitted_at = std::chrono::steady_clock::now();
  std::future<Response> fut = req.promise.get_future();

  if (queue_.try_push(req)) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    m_admitted.add();
    m_depth.set(static_cast<double>(queue_.size()));
    return fut;
  }

  // Shed: the request was not moved from; complete it right here.
  Response resp;
  resp.status = queue_.closed() ? RequestStatus::kClosed : RequestStatus::kShed;
  if (resp.status == RequestStatus::kShed) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    m_shed.add();
  }
  req.promise.set_value(std::move(resp));
  return fut;
}

std::optional<Request> RequestQueue::pop() {
  auto r = queue_.pop();
  static obs::Gauge& m_depth = obs::Registry::global().gauge("serve.queue_depth");
  m_depth.set(static_cast<double>(queue_.size()));
  return r;
}

std::optional<Request> RequestQueue::pop_for(std::chrono::microseconds timeout) {
  auto r = queue_.try_pop_for(timeout);
  if (r.has_value()) {
    static obs::Gauge& m_depth =
        obs::Registry::global().gauge("serve.queue_depth");
    m_depth.set(static_cast<double>(queue_.size()));
  }
  return r;
}

void RequestQueue::close() { queue_.close(); }

}  // namespace salient::serve
