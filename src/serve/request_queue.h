// Bounded admission queue with load shedding (docs/SERVING.md).
//
// The serving front door: submit() either admits a request into a bounded
// BlockingQueue (backpressure for the batcher) or sheds it immediately when
// the queue is full — the server never buffers unbounded work, so latency
// under overload stays bounded instead of growing without limit. Shedding
// completes the request's future right away with RequestStatus::kShed, which
// lets clients retry against another replica.
//
// Instrumented through obs: serve.admitted / serve.shed counters and a
// serve.queue_depth gauge.
//
// Concurrency: no mutex of its own — admission control composes the
// annotated BlockingQueue (util/blocking_queue.h) with independent atomic
// counters, so every guarded field lives behind that queue's capability.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <vector>

#include "serve/request.h"
#include "util/blocking_queue.h"

namespace salient::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admit a prediction request for `nodes`. Always returns a valid future:
  /// it resolves with kOk once served, immediately with kShed when the queue
  /// is full, or with kClosed when the server is shutting down.
  std::future<Response> submit(std::vector<NodeId> nodes);

  /// Consumer side (the MicroBatcher): block until a request is available.
  /// nullopt once the queue is closed and drained.
  std::optional<Request> pop();
  /// Bounded wait; nullopt on timeout or closed-and-drained.
  std::optional<Request> pop_for(std::chrono::microseconds timeout);

  /// Stop admission: subsequent submits resolve kClosed; consumers drain.
  void close();

  std::size_t depth() const { return queue_.size(); }
  std::size_t capacity() const { return queue_.capacity(); }
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  BlockingQueue<Request> queue_;
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace salient::serve
