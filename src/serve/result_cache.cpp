#include "serve/result_cache.h"

#include "obs/metrics.h"

namespace salient::serve {

ResultCache::ResultCache(std::int64_t capacity)
    : capacity_(capacity < 0 ? 0 : capacity) {}

std::optional<std::int64_t> ResultCache::lookup(NodeId v) {
  auto& reg = obs::Registry::global();
  static obs::Counter& m_hits = reg.counter("serve.result_cache.hits");
  static obs::Counter& m_misses = reg.counter("serve.result_cache.misses");

  if (capacity_ == 0) {
    m_misses.add();
    return std::nullopt;
  }
  check::LockGuard lock(mu_);
  // Load the generation under mu_: a pre-lock read could race invalidate()
  // and return a prediction from a generation the caller already retired.
  const std::uint64_t cur = gen_.load(std::memory_order_acquire);
  auto it = map_.find(v);
  if (it == map_.end()) {
    m_misses.add();
    return std::nullopt;
  }
  if (it->second.gen != cur) {
    // Stale under the current model: evict on touch.
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    m_misses.add();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  m_hits.add();
  return it->second.pred;
}

void ResultCache::insert(NodeId v, std::int64_t pred, std::uint64_t gen) {
  if (capacity_ == 0) return;
  check::LockGuard lock(mu_);
  // Same discipline as lookup(): the staleness check must share the critical
  // section with the map write, or an insert racing invalidate() can admit
  // an entry for a generation that was just retired.
  if (gen != gen_.load(std::memory_order_acquire)) return;
  auto it = map_.find(v);
  if (it != map_.end()) {
    it->second.pred = pred;
    it->second.gen = gen;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  if (static_cast<std::int64_t>(map_.size()) >= capacity_) {
    const NodeId victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(v);
  map_.emplace(v, Entry{pred, gen, lru_.begin()});
}

std::uint64_t ResultCache::invalidate() {
  // Entries are evicted lazily on the next touch; only the generation moves.
  // Bumping under mu_ orders the bump against in-flight lookup()/insert()
  // critical sections: once invalidate() returns, no later lookup can serve
  // and no later insert can admit a prediction from the retired generation.
  check::LockGuard lock(mu_);
  return gen_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

std::int64_t ResultCache::size() const {
  check::LockGuard lock(mu_);
  return static_cast<std::int64_t>(map_.size());
}

}  // namespace salient::serve
