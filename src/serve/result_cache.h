// LRU cache over recent per-node predictions (docs/SERVING.md).
//
// Online traffic is heavily skewed toward popular nodes; a small LRU of
// their latest predicted classes answers repeats without sampling or a
// forward pass. Entries carry the model generation they were computed under:
// notify_model_updated() bumps the generation, which lazily invalidates
// every older entry (a stale hit is treated as a miss and evicted on touch)
// — no stop-the-world flush on model update.
//
// Thread-safe (one mutex); lookups come from the batcher thread and inserts
// from the retire side of the pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "check/shim.h"
#include "graph/csr.h"
#include "util/thread_annotations.h"

namespace salient::serve {

class ResultCache {
 public:
  /// `capacity` is the number of node entries retained; 0 disables the cache
  /// (lookups always miss, inserts are dropped).
  explicit ResultCache(std::int64_t capacity);

  /// The cached prediction for `v` under the current generation, or nullopt.
  /// Fresh hits are moved to the LRU front; stale entries are evicted.
  std::optional<std::int64_t> lookup(NodeId v);

  /// Record `pred` for `v` under generation `gen`. Ignored when `gen` is no
  /// longer current (a batch that retired across a model update must not
  /// poison the cache).
  void insert(NodeId v, std::int64_t pred, std::uint64_t gen);

  /// Invalidate all entries by advancing the generation; returns the new
  /// generation. Called by InferenceServer::notify_model_updated().
  std::uint64_t invalidate();

  std::uint64_t generation() const {
    return gen_.load(std::memory_order_acquire);
  }
  std::int64_t capacity() const { return capacity_; }
  std::int64_t size() const;

 private:
  struct Entry {
    std::int64_t pred = 0;
    std::uint64_t gen = 0;
    std::list<NodeId>::iterator lru_it;
  };

  std::int64_t capacity_ = 0;  // unguarded: immutable after construction
  /// Atomic so generation() can answer without the lock, but lookup()/
  /// insert() must (re)load it *inside* mu_: reading it before locking lets
  /// an invalidate() slip in between, serving/admitting a prediction from a
  /// generation that was already retired (see tests/test_serve.cpp).
  check::atomic<std::uint64_t> gen_{0};
  mutable check::Mutex mu_;
  std::list<NodeId> lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<NodeId, Entry> map_ GUARDED_BY(mu_);
};

}  // namespace salient::serve
