#include "serve/server.h"

#include <deque>
#include <sstream>
#include <unordered_map>

#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prep/slicing.h"
#include "sampling/fast_sampler.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace salient::serve {

namespace {

/// Same per-batch seed mixing as the training loader: predictions depend on
/// the batch sequence number only, never on worker scheduling.
std::uint64_t mix_seed(std::uint64_t seed, std::int64_t index) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ull *
                        static_cast<std::uint64_t>(index + 1)));
  return sm.next();
}

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

const std::vector<double>& latency_bounds_us() {
  static const std::vector<double> bounds{
      100,  200,  500,  1000, 2000, 5000, 1e4, 2e4,
      5e4,  1e5,  2e5,  5e5,  1e6,  2e6,  5e6, 1e7};
  return bounds;
}

struct ServeInstruments {
  obs::Counter& completed;
  obs::Counter& nodes_served;
  obs::Counter& nodes_computed;
  obs::Counter& slo_ok;
  obs::Counter& slo_miss;
  obs::Histogram& latency_us;
  obs::Histogram& queue_us;

  static ServeInstruments& get() {
    auto& reg = obs::Registry::global();
    static ServeInstruments inst{
        reg.counter("serve.completed"),
        reg.counter("serve.nodes_served"),
        reg.counter("serve.nodes_computed"),
        reg.counter("serve.slo.ok"),
        reg.counter("serve.slo.miss"),
        reg.histogram("serve.latency_us", latency_bounds_us()),
        reg.histogram("serve.queue_us", latency_bounds_us()),
    };
    return inst;
  }
};

}  // namespace

InferenceServer::InferenceServer(const Dataset& dataset,
                                 std::shared_ptr<nn::GnnModel> model,
                                 DeviceSim& device, ServeConfig config)
    : dataset_(dataset),
      model_(std::move(model)),
      device_(device),
      config_(std::move(config)),
      pool_(std::make_shared<PinnedPool>()),
      cache_(config_.result_cache_capacity),
      queue_(config_.queue_capacity),
      batcher_(queue_, config_.batch),
      prep_in_(config_.stage_queue_capacity),
      device_in_(config_.stage_queue_capacity) {
  prep_in_.set_fault_site("serve_prep");
  device_in_.set_fault_site("serve_device");
  if (!config_.feature_cache && config_.cache_percentage > 0) {
    // Build the server's own cache; warmup sampling mirrors the serving
    // workload (test-split seeds, serve fanouts and batch cap).
    CachePolicyConfig policy;
    policy.kind = config_.cache_policy;
    policy.presample_epochs = config_.presample_epochs;
    policy.presample_workers = config_.num_prep_workers;
    policy.presample_seeds = PresampleSeeds::kTest;
    policy.fanouts = config_.fanouts;
    policy.batch_size =
        std::max<std::int64_t>(1, config_.batch.max_batch_nodes);
    policy.seed = config_.seed;
    const auto capacity = static_cast<std::int64_t>(
        config_.cache_percentage *
        static_cast<double>(dataset.graph.num_nodes()));
    config_.feature_cache =
        std::make_shared<const FeatureCache>(dataset, capacity, policy);
  }
  model_->train(false);
  batcher_thread_ = std::thread([this] { batcher_loop(); });
  const int workers = std::max(1, config_.num_prep_workers);
  prep_threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    prep_threads_.emplace_back([this, w] { prep_loop(w); });
  }
  device_thread_ = std::thread([this] { device_loop(); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<Response> InferenceServer::submit(std::vector<NodeId> nodes) {
  // Validate before admission: an out-of-range node would read past the CSR
  // arrays deep inside a prep worker, poisoning a whole micro-batch. Reject
  // it at the front door instead — the cheapest possible failure.
  const auto num_nodes = dataset_.graph.num_nodes();
  for (const NodeId v : nodes) {
    if (v < 0 || v >= num_nodes) {
      static obs::Counter& m_invalid =
          obs::Registry::global().counter("serve.faults.invalid");
      m_invalid.add();
      SALIENT_TRACE_INSTANT("serve.fault.invalid");
      std::promise<Response> promise;
      Response resp;
      resp.status = RequestStatus::kInvalid;
      promise.set_value(std::move(resp));
      return promise.get_future();
    }
  }
  return queue_.submit(std::move(nodes));
}

Response InferenceServer::predict(std::vector<NodeId> nodes) {
  return submit(std::move(nodes)).get();
}

std::uint64_t InferenceServer::notify_model_updated() {
  model_->train(false);
  return cache_.invalidate();
}

void InferenceServer::shutdown() {
  LockGuard lock(shutdown_mu_);
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  // Tear down front to back: each stage drains its input queue, exits, and
  // only then is the next stage's input closed — nothing in flight is lost.
  queue_.close();
  batcher_thread_.join();
  prep_in_.close();
  for (auto& t : prep_threads_) t.join();
  device_in_.close();
  device_thread_.join();
}

void InferenceServer::batcher_loop() {
  SALIENT_TRACE_THREAD_NAME("serve-batcher");
  while (auto maybe_mb = batcher_.next()) {
    // `serve.batcher.wedge` models a stalled batcher (e.g. a slow request
    // preprocessing step): the admission queue backs up and load shedding —
    // not unbounded buffering — absorbs the overload.
    SALIENT_FAILPOINT_WEDGE("serve.batcher.wedge");
    SALIENT_TRACE_SCOPE_ARG("serve.batch.close", maybe_mb->seq);
    MicroBatch mb = std::move(*maybe_mb);

    ComputeBatch cb;
    cb.seq = mb.seq;
    cb.closed_at = mb.closed_at;
    cb.generation = cache_.generation();
    cb.requests = std::move(mb.requests);
    cb.preds.resize(cb.requests.size());
    cb.cache_hits.assign(cb.requests.size(), 0);

    // Resolve each requested node against the result cache; dedup the rest
    // into the compute set (a node asked for by two requests — or twice by
    // one — is sampled and computed once).
    std::unordered_map<NodeId, std::uint32_t> node_index;
    for (std::size_t r = 0; r < cb.requests.size(); ++r) {
      const auto& nodes = cb.requests[r].nodes;
      cb.preds[r].assign(nodes.size(), -1);
      for (std::size_t s = 0; s < nodes.size(); ++s) {
        if (auto cached = cache_.lookup(nodes[s])) {
          cb.preds[r][s] = *cached;
          ++cb.cache_hits[r];
          continue;
        }
        auto [it, inserted] = node_index.try_emplace(
            nodes[s], static_cast<std::uint32_t>(cb.nodes.size()));
        if (inserted) cb.nodes.push_back(nodes[s]);
        cb.refs.push_back({static_cast<std::uint32_t>(r),
                           static_cast<std::uint32_t>(s), it->second});
      }
    }

    if (cb.nodes.empty()) {
      // Every node answered from the cache: respond without touching the
      // pipeline (the serving fast path).
      complete(std::move(cb), nullptr);
      continue;
    }
    SALIENT_TRACE_ASYNC_BEGIN("serve.batch", cb.seq);
    if (!prep_in_.push(std::move(cb))) break;  // server torn down
  }
}

void InferenceServer::prep_loop(int worker_index) {
  SALIENT_TRACE_THREAD_NAME("serve-prep-" + std::to_string(worker_index));
  FastSampler sampler(dataset_.graph, config_.fanouts);
  while (auto maybe_cb = prep_in_.pop()) {
    ComputeBatch cb = std::move(*maybe_cb);
    // `serve.prep.fail` simulates a batch-preparation fault (sampler error,
    // staging allocation failure). Degrade gracefully: resolve the batch's
    // requests with kFailed so clients can retry, and keep the worker alive
    // for the next batch — one poisoned micro-batch must not wedge the
    // pipeline or take the worker down.
    if (SALIENT_FAILPOINT("serve.prep.fail")) {
      fail_batch(std::move(cb));
      continue;
    }
    cb.prep.index = cb.seq;
    {
      SALIENT_TRACE_SCOPE_ARG("serve.sample", cb.seq);
      cb.prep.mfg = sampler.sample(cb.nodes, mix_seed(config_.seed, cb.seq));
    }
    {
      SALIENT_TRACE_SCOPE_ARG("serve.slice", cb.seq);
      // Rows ship in config_.feature_dtype (converted or int8-quantized
      // during the gather), same wire formats as the training loaders.
      if (config_.feature_cache) {
        auto plan = std::make_shared<CachePlan>(
            plan_cached_batch(cb.prep.mfg, *config_.feature_cache));
        const std::vector<NodeId> missing =
            missing_node_ids(cb.prep.mfg, *plan);
        stage_feature_rows(dataset_.features, missing, config_.feature_dtype,
                           *pool_, cb.prep);
        cb.prep.cache_plan = std::move(plan);
      } else {
        stage_feature_rows(dataset_.features, cb.prep.mfg.n_ids,
                           config_.feature_dtype, *pool_, cb.prep);
      }
      // Serving needs no labels, but the device transfer path expects a y
      // tensor; slice the (tiny) label rows so DeviceBatch stays uniform.
      cb.prep.y = pool_->acquire({cb.prep.mfg.batch_size}, DType::kI64);
      slice_labels(dataset_.labels,
                   {cb.prep.mfg.n_ids.data(),
                    static_cast<std::size_t>(cb.prep.mfg.batch_size)},
                   cb.prep.y);
    }
    if (!device_in_.push(std::move(cb))) return;  // server torn down
  }
}

void InferenceServer::device_loop() {
  SALIENT_TRACE_THREAD_NAME("serve-device");
  static obs::Gauge& m_inflight =
      obs::Registry::global().gauge("serve.inflight");

  struct Inflight {
    ComputeBatch cb;
    std::shared_ptr<DeviceBatch> dev;
    std::shared_ptr<std::vector<std::int64_t>> preds;
    Event done;
  };
  std::deque<Inflight> inflight;

  auto retire_front = [&] {
    Inflight f = std::move(inflight.front());
    inflight.pop_front();
    {
      SALIENT_TRACE_SCOPE_ARG("serve.retire.wait", f.cb.seq);
      f.done.synchronize();
    }
    SALIENT_TRACE_ASYNC_END("serve.batch", f.cb.seq);
    release_batch_buffers(*pool_, std::move(f.cb.prep));
    complete(std::move(f.cb), f.preds->data());
    m_inflight.set(static_cast<double>(inflight.size()));
  };

  while (true) {
    std::optional<ComputeBatch> maybe_cb;
    if (inflight.empty()) {
      maybe_cb = device_in_.pop();
      if (!maybe_cb.has_value()) break;  // closed and drained
    } else {
      // Keep the pipeline fed when new work is already waiting, but never
      // hold a finished batch hostage to future traffic: with nothing
      // immediately available, retire the oldest in-flight batch (bounded by
      // its compute time) instead of blocking on the queue.
      maybe_cb = device_in_.try_pop_for(std::chrono::microseconds(0));
      if (!maybe_cb.has_value()) {
        retire_front();
        continue;
      }
    }
    ComputeBatch cb = std::move(*maybe_cb);
    Inflight item;
    Event ready;
    {
      SALIENT_TRACE_SCOPE_ARG("serve.issue", cb.seq);
      item.dev = std::make_shared<DeviceBatch>(
          cb.prep.cache_plan
              ? device_.transfer_batch_cached(cb.prep, *cb.prep.cache_plan,
                                              *config_.feature_cache,
                                              /*blocking=*/false, &ready)
              : device_.transfer_batch(cb.prep, /*blocking=*/false, &ready));
    }
    item.preds = std::make_shared<std::vector<std::int64_t>>();
    auto dev = item.dev;
    auto preds = item.preds;
    auto model = model_;
    // FIFO stream order puts this after the batch's f16->f32 conversion, so
    // the forward sees complete device-resident data (§4.3 semantics).
    device_.compute_stream().enqueue([dev, preds, model] {
      Variable logp = model->forward(Variable(dev->x_f32), dev->mfg);
      Tensor p = ops::argmax_rows(logp.data());
      const std::int64_t* pp = p.data<std::int64_t>();
      preds->assign(pp, pp + p.size(0));
    }, "serve.forward");
    item.done = device_.compute_stream().record();
    item.cb = std::move(cb);
    inflight.push_back(std::move(item));
    m_inflight.set(static_cast<double>(inflight.size()));
    while (static_cast<int>(inflight.size()) > config_.pipeline_depth) {
      retire_front();
    }
  }
  while (!inflight.empty()) retire_front();
}

void InferenceServer::fail_batch(ComputeBatch&& cb) {
  static obs::Counter& m_prep_faults =
      obs::Registry::global().counter("serve.faults.prep");
  SALIENT_TRACE_INSTANT("serve.fault.prep");
  SALIENT_TRACE_ASYNC_END("serve.batch", cb.seq);
  for (Request& req : cb.requests) {
    Response resp;
    resp.status = RequestStatus::kFailed;
    resp.model_generation = cb.generation;
    m_prep_faults.add();
    req.promise.set_value(std::move(resp));
  }
}

void InferenceServer::complete(ComputeBatch&& cb,
                               const std::int64_t* computed) {
  ServeInstruments& m = ServeInstruments::get();

  // Scatter computed predictions to their request slots and refresh the
  // result cache (once per unique node).
  if (computed != nullptr) {
    for (const ComputeBatch::Ref& ref : cb.refs) {
      cb.preds[ref.req][ref.slot] = computed[ref.node_index];
    }
    for (std::size_t i = 0; i < cb.nodes.size(); ++i) {
      cache_.insert(cb.nodes[i], computed[i], cb.generation);
    }
    m.nodes_computed.add(static_cast<std::int64_t>(cb.nodes.size()));
  }

  const auto now = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < cb.requests.size(); ++r) {
    Request& req = cb.requests[r];
    Response resp;
    resp.status = RequestStatus::kOk;
    resp.predictions = std::move(cb.preds[r]);
    resp.model_generation = cb.generation;
    resp.nodes_from_cache = cb.cache_hits[r];
    resp.queue_us = us_between(req.admitted_at, cb.closed_at);
    resp.total_us = us_between(req.admitted_at, now);
    m.completed.add();
    m.nodes_served.add(static_cast<std::int64_t>(resp.predictions.size()));
    m.latency_us.observe(resp.total_us);
    m.queue_us.observe(resp.queue_us);
    (resp.total_us <= config_.slo_us ? m.slo_ok : m.slo_miss).add();
    req.promise.set_value(std::move(resp));
  }
}

ServeStats InferenceServer::stats() const {
  ServeInstruments& m = ServeInstruments::get();
  auto& reg = obs::Registry::global();
  ServeStats s;
  s.admitted = static_cast<std::int64_t>(queue_.admitted());
  s.shed = static_cast<std::int64_t>(queue_.shed());
  s.completed = m.completed.value();
  s.batches = reg.counter("serve.batches").value();
  s.p50_us = m.latency_us.quantile(0.50);
  s.p95_us = m.latency_us.quantile(0.95);
  s.p99_us = m.latency_us.quantile(0.99);
  s.mean_us = m.latency_us.mean();
  s.slo_ok = m.slo_ok.value();
  s.slo_miss = m.slo_miss.value();
  s.result_cache_hits = reg.counter("serve.result_cache.hits").value();
  s.result_cache_misses = reg.counter("serve.result_cache.misses").value();
  s.invalid = reg.counter("serve.faults.invalid").value();
  s.prep_faults = reg.counter("serve.faults.prep").value();
  if (config_.feature_cache) {
    const auto hits = reg.counter("prep.cache.row_hits").value();
    const auto misses = reg.counter("prep.cache.row_misses").value();
    s.feature_cache_hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;
  }
  return s;
}

std::string ServeStats::summary() const {
  std::ostringstream os;
  os << "admitted=" << admitted << " shed=" << shed
     << " completed=" << completed << " batches=" << batches
     << " p50=" << p50_us / 1000.0 << "ms p95=" << p95_us / 1000.0
     << "ms p99=" << p99_us / 1000.0 << "ms mean=" << mean_us / 1000.0
     << "ms slo_ok=" << slo_ok << " slo_miss=" << slo_miss;
  if (invalid > 0) os << " invalid=" << invalid;
  if (prep_faults > 0) os << " prep_faults=" << prep_faults;
  if (result_cache_hits + result_cache_misses > 0) {
    os << " result_cache_hit="
       << static_cast<double>(result_cache_hits) /
              static_cast<double>(result_cache_hits + result_cache_misses);
  }
  if (feature_cache_hit_rate > 0) {
    os << " feature_cache_hit=" << feature_cache_hit_rate;
  }
  return os.str();
}

}  // namespace salient::serve
