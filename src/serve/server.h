// Online GNN inference server (docs/SERVING.md).
//
// Turns the repo's batch pipeline into a request/response system, reusing
// the exact machinery the paper builds for training (the §5 unification is
// what makes this cheap): FastSampler workers, cache-aware pinned slicing,
// and overlapped copy/compute device streams. Stages, each on its own
// thread(s), connected by bounded queues:
//
//   submit() -> RequestQueue (admission control + shedding, serve.shed)
//     -> batcher thread: MicroBatcher coalesces requests; ResultCache
//        answers repeat nodes; fully cached requests return without compute
//     -> prep workers (xN): one-shot neighborhood sampling (seeded by batch
//        sequence number, so results are worker-count independent) + pinned,
//        FeatureCache-aware feature slicing
//     -> device thread: H2D transfer on the copy stream, forward + argmax on
//        the compute stream, pipeline_depth batches in flight
//     -> retire: scatter per-node predictions to each request's future,
//        insert into the ResultCache, record serve.latency_us/queue_us.
//
// p50/p95/p99 latency comes from the obs histogram registry
// (serve.latency_us, Histogram::quantile); every stage also emits trace
// spans, so a --trace-out capture shows a request's life the same way
// Figure 1(b) shows a training batch's.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "device/device_sim.h"
#include "graph/dataset.h"
#include "nn/models.h"
#include "prep/batch.h"
#include "prep/pinned_pool.h"
#include "serve/micro_batcher.h"
#include "serve/request_queue.h"
#include "serve/result_cache.h"
#include "util/blocking_queue.h"

namespace salient::serve {

struct ServeConfig {
  /// Per-layer inference fanouts (the paper's one-shot sampled inference
  /// uses (20,20,20)).
  std::vector<std::int64_t> fanouts{20, 20, 20};
  /// Admission bound: requests buffered beyond this are shed.
  std::size_t queue_capacity = 256;
  BatchPolicy batch;
  /// Sampling + slicing workers (the serving analogue of loader workers).
  int num_prep_workers = 2;
  /// Micro-batches buffered between batcher and prep, and between prep and
  /// the device stage (backpressure bounds, like the loader's output queue).
  std::size_t stage_queue_capacity = 4;
  /// Device batches in flight past transfer issue (the §4.3 overlap depth).
  int pipeline_depth = 2;
  /// LRU entries of recent per-node predictions; 0 disables the cache.
  std::int64_t result_cache_capacity = 0;
  /// Optional device-resident feature cache shared with training (§8). When
  /// null and cache_percentage > 0, the server builds its own cache from
  /// cache_policy/cache_percentage below.
  std::shared_ptr<const FeatureCache> feature_cache;
  /// Placement policy for a server-built feature cache (docs/CACHING.md).
  /// Presample warmup seeds from the test split — the serving workload.
  CachePolicyKind cache_policy = CachePolicyKind::kDegree;
  /// Capacity of a server-built feature cache as a fraction of |V| in
  /// [0, 1]; 0 leaves the cache to `feature_cache` (possibly disabled).
  double cache_percentage = 0.0;
  /// Presample warmup epochs for a server-built cache.
  int presample_epochs = 2;
  /// On-the-wire feature dtype for host->device transfers (kF16 default,
  /// kF32, or kInt8Q per-row affine; see LoaderConfig::feature_dtype — the
  /// serving pipeline compresses sliced rows the same way training does).
  DType feature_dtype = DType::kF16;
  /// Latency target for the serve.slo.{ok,miss} counters, microseconds.
  double slo_us = 50'000;
  /// Seed of the per-batch sampling RNG (mixed with the batch sequence
  /// number, so predictions are independent of worker count/scheduling).
  std::uint64_t seed = 0x5eed;
};

/// Snapshot of the serving metrics (read from the obs registry).
struct ServeStats {
  std::int64_t admitted = 0;
  std::int64_t shed = 0;
  std::int64_t completed = 0;
  std::int64_t batches = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0, mean_us = 0;
  std::int64_t slo_ok = 0, slo_miss = 0;
  std::int64_t result_cache_hits = 0, result_cache_misses = 0;
  /// Graceful-degradation counters (serve.faults.*): requests rejected at
  /// validation, and requests completed kFailed after a prep-stage fault.
  std::int64_t invalid = 0, prep_faults = 0;
  /// Device feature-cache row hit rate (prep.cache.* counters); 0 when no
  /// feature cache is attached.
  double feature_cache_hit_rate = 0;

  std::string summary() const;
};

class InferenceServer {
 public:
  /// The server borrows dataset/device and shares the model; all must
  /// outlive it. Serving starts immediately. The model must not be trained
  /// concurrently with serving — pause submission, update, then call
  /// notify_model_updated().
  InferenceServer(const Dataset& dataset, std::shared_ptr<nn::GnnModel> model,
                  DeviceSim& device, ServeConfig config);
  /// Drains in-flight work (shutdown()) and joins the serving threads.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Asynchronous entry point: validate, then admit or shed. A request
  /// naming an out-of-range node (a "poison" request that would corrupt
  /// sampling) resolves immediately with kInvalid — it never enters the
  /// pipeline. See RequestQueue::submit for admission semantics.
  std::future<Response> submit(std::vector<NodeId> nodes);

  /// Synchronous convenience wrapper: submit + wait.
  Response predict(std::vector<NodeId> nodes);

  /// Invalidate the result cache after the model's weights changed; returns
  /// the new model generation.
  std::uint64_t notify_model_updated();

  /// Stop admission, drain everything in flight, join threads. Idempotent;
  /// runs automatically at destruction. Futures of drained requests resolve
  /// normally; nothing is dropped.
  void shutdown();

  ServeStats stats() const;
  std::uint64_t model_generation() const { return cache_.generation(); }
  std::size_t queue_depth() const { return queue_.depth(); }
  const ServeConfig& config() const { return config_; }

 private:
  /// A micro-batch flowing through the compute stages.
  struct ComputeBatch {
    std::int64_t seq = -1;
    std::vector<Request> requests;
    std::chrono::steady_clock::time_point closed_at;
    std::uint64_t generation = 0;
    /// Per request, per node slot: the prediction; -1 while pending compute.
    std::vector<std::vector<std::int64_t>> preds;
    std::vector<std::int64_t> cache_hits;  ///< per request
    /// Unique nodes needing compute (the sampler's destination set).
    std::vector<NodeId> nodes;
    /// Scatter plan: preds[req][slot] = computed[node_index].
    struct Ref {
      std::uint32_t req, slot, node_index;
    };
    std::vector<Ref> refs;
    PreparedBatch prep;  ///< filled by a prep worker
  };

  void batcher_loop();
  void prep_loop(int worker_index);
  void device_loop();
  void complete(ComputeBatch&& cb, const std::int64_t* computed);
  /// Graceful degradation: resolve every request of a batch whose pipeline
  /// stage faulted with kFailed (clients retry) instead of wedging.
  void fail_batch(ComputeBatch&& cb);

  const Dataset& dataset_;
  std::shared_ptr<nn::GnnModel> model_;
  DeviceSim& device_;
  ServeConfig config_;
  std::shared_ptr<PinnedPool> pool_;
  ResultCache cache_;
  RequestQueue queue_;
  MicroBatcher batcher_;
  BlockingQueue<ComputeBatch> prep_in_;
  BlockingQueue<ComputeBatch> device_in_;
  std::thread batcher_thread_;
  std::vector<std::thread> prep_threads_;
  std::thread device_thread_;
  std::atomic<bool> shut_down_{false};
  /// Serializes concurrent shutdown() calls; the threads/queues it covers
  /// are otherwise construction-immutable, so only the teardown sequence
  /// (join + close ordering) needs the capability.
  Mutex shutdown_mu_;
};

}  // namespace salient::serve
