#include "sim/calibration.h"

#include <algorithm>
#include <cstring>

#include "nn/loss.h"
#include "nn/models.h"
#include "prep/batch.h"
#include "prep/slicing.h"
#include "sampling/baseline_sampler.h"
#include "sampling/fast_sampler.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace salient::sim {

WorkloadModel calibrate(const Dataset& dataset, const CalibrationConfig& cfg) {
  WorkloadModel w;
  w.dataset = dataset.name;
  const auto n = static_cast<std::int64_t>(dataset.train_idx.size());
  w.num_batches = std::max<std::int64_t>(1, n / cfg.batch_size);
  const int k =
      std::max(1, std::min<int>(cfg.measure_batches,
                                static_cast<int>(w.num_batches)));

  BaselineSampler pyg(dataset.graph, cfg.fanouts);
  FastSampler fast(dataset.graph, cfg.fanouts);

  double t_pyg = 0, t_fast = 0, t_slice = 0, t_pin = 0, t_ipc = 0;
  double bytes = 0;
  std::vector<Mfg> mfgs;
  for (int b = 0; b < k; ++b) {
    const std::int64_t begin = b * cfg.batch_size;
    const std::span<const NodeId> nodes(
        dataset.train_idx.data() + begin,
        static_cast<std::size_t>(
            std::min<std::int64_t>(cfg.batch_size, n - begin)));
    WallTimer t;
    Mfg m_pyg = pyg.sample(nodes, cfg.seed + static_cast<unsigned>(b));
    t_pyg += t.seconds();
    t.reset();
    Mfg m = fast.sample(nodes, cfg.seed + static_cast<unsigned>(b));
    t_fast += t.seconds();

    // Slicing (serial, one pass) and the baseline's extra pin-memory copy.
    Tensor x({m.num_input_nodes(), dataset.feature_dim},
             dataset.features.dtype());
    t.reset();
    slice_rows_serial(dataset.features, m.n_ids, x);
    t_slice += t.seconds();
    Tensor pinned(x.shape(), x.dtype(), /*pinned=*/true);
    t.reset();
    std::memcpy(pinned.raw(), x.raw(), x.nbytes());
    t_pin += t.seconds();

    // IPC emulation cost: serialize + deserialize of the MFG blob.
    t.reset();
    auto blob = serialize_mfg(m_pyg);
    Mfg copy = deserialize_mfg(blob);
    t_ipc += t.seconds();

    bytes += static_cast<double>(m.adjacency_bytes() + x.nbytes() +
                                 static_cast<std::size_t>(m.batch_size) * 8);
    mfgs.push_back(std::move(m));
  }
  w.sample_pyg_s = t_pyg / k;
  w.sample_salient_s = t_fast / k;
  w.slice_s = t_slice / k;
  w.pin_copy_s = t_pin / k;
  w.ipc_s = t_ipc / k;
  w.transfer_mb = bytes / k / 1e6;
  w.slice_parallel_cap = 6.0;  // memory-bandwidth bound (Table 2 shape)

  if (cfg.measure_train) {
    nn::ModelConfig mc;
    mc.in_channels = dataset.feature_dim;
    mc.hidden_channels = cfg.hidden_channels;
    mc.out_channels = dataset.num_classes;
    mc.num_layers = static_cast<int>(cfg.fanouts.size());
    auto model = nn::make_model(cfg.arch, mc);
    model->train(true);
    const Mfg& m = mfgs.front();
    Tensor x({m.num_input_nodes(), dataset.feature_dim},
             dataset.features.dtype());
    slice_rows_serial(dataset.features, m.n_ids, x);
    Tensor y({m.batch_size}, DType::kI64);
    slice_labels(dataset.labels,
                 {m.n_ids.data(), static_cast<std::size_t>(m.batch_size)}, y);
    Tensor x32 = x.to(DType::kF32);
    WallTimer t;
    Variable logp = model->forward(Variable(x32), m);
    Variable loss = nn::nll_loss(logp, y);
    model->zero_grad();
    loss.backward();
    w.train_gpu_s = t.seconds();
    w.grad_mb = static_cast<double>(model->num_parameters()) * 4 / 1e6;
  }
  return w;
}

}  // namespace salient::sim
