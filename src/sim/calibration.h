// Calibration: measure per-batch component costs from this repository's real
// implementation, producing a WorkloadModel for the cluster simulator.
//
// The SALIENT-vs-PyG *ratios* (sampler speedup, slicing cost, IPC overhead)
// are measured, not assumed; only hardware-scale constants (core counts,
// link bandwidths, GPU speed) come from the HwProfile. See DESIGN.md §2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dataset.h"
#include "sim/pipeline_model.h"

namespace salient::sim {

struct CalibrationConfig {
  std::int64_t batch_size = 1024;
  std::vector<std::int64_t> fanouts{15, 10, 5};
  /// Mini-batches to sample when measuring (averaged).
  int measure_batches = 4;
  std::uint64_t seed = 7;
  /// Measure the real model's forward+backward as the GPU train cost.
  bool measure_train = true;
  std::string arch = "sage";
  std::int64_t hidden_channels = 64;
};

/// Measure sampling/slicing/IPC/transfer/train costs per mini-batch on the
/// given dataset with this machine's implementation.
WorkloadModel calibrate(const Dataset& dataset, const CalibrationConfig& cfg);

}  // namespace salient::sim
