#include "sim/pipeline_model.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/resources.h"

namespace salient::sim {

namespace {

double mb_to_seconds(double mb, double gb_per_s, double efficiency) {
  return (mb * 1e6) / (gb_per_s * 1e9 * efficiency);
}

/// Ring all-reduce duration for R participants over the bottleneck link.
double allreduce_seconds(const HwProfile& hw, double grad_mb, int gpus) {
  if (gpus <= 1) return 0;
  const int machines =
      (gpus + hw.gpus_per_machine - 1) / hw.gpus_per_machine;
  // Cross-machine rings bottleneck on the NIC; single-machine rings ride
  // the (much faster) PCIe fabric.
  const double link = machines > 1 ? hw.nic_gb_per_s : hw.pcie_gb_per_s;
  const double steps = 2.0 * (gpus - 1);
  return steps / gpus * mb_to_seconds(grad_mb, link, 1.0) +
         steps * hw.nic_latency_s;
}

struct GpuState {
  // Baseline-structure state.
  std::vector<double> worker_free;         // per worker
  std::vector<std::vector<double>> worker_consumed;  // consume time per slot
  // SALIENT-structure state.
  std::unique_ptr<PoolResource> pool;
  std::vector<double> prep_done;
  std::vector<double> xfer_end;
  std::vector<double> train_end;
  std::vector<double> consumed;
  FifoResource pcie;
  FifoResource gpu;
  double main_t = 0;
  double blocked_prep = 0;
  double blocked_transfer = 0;
  double blocked_train = 0;
  double sampler_busy = 0;
  double gpu_busy = 0;
  double pcie_busy = 0;
};

}  // namespace

EpochSimResult simulate_epoch(const WorkloadModel& w, const HwProfile& hw,
                              const SystemOptions& opts, int num_workers,
                              int num_gpus) {
  if (num_workers < 1 || num_gpus < 1 || w.num_batches < 1) {
    throw std::invalid_argument("simulate_epoch: bad arguments");
  }
  const std::int64_t batches_per_gpu =
      (w.num_batches + num_gpus - 1) / num_gpus;
  // Worker-side costs, inflated for parallel-efficiency loss beyond the
  // memory-bandwidth cap: P workers achieve at most cap x aggregate speedup,
  // so each worker's effective per-batch latency grows by P/min(P, cap).
  const double contention_pyg =
      static_cast<double>(num_workers) /
      std::min(static_cast<double>(num_workers), w.sample_parallel_cap);
  const double contention_salient =
      static_cast<double>(num_workers) /
      std::min(static_cast<double>(num_workers), w.prep_parallel_cap);
  const double sample_s =
      (opts.fast_sampling ? w.sample_salient_s : w.sample_pyg_s) *
      (opts.shared_memory_prep ? contention_salient : contention_pyg);
  const double worker_slice_s = w.slice_s * contention_salient;
  const double train_s = w.train_gpu_s / hw.gpu_relative_speed;
  const double pcie_eff = opts.pipelined_transfers
                              ? hw.pcie_efficiency_salient
                              : hw.pcie_efficiency_baseline;
  const double xfer_s = mb_to_seconds(w.transfer_mb, hw.pcie_gb_per_s,
                                      pcie_eff);
  // Per-step synchronization cost of data parallelism: the ring all-reduce
  // plus the straggler penalty of advancing in lockstep with the slowest
  // replica's batch preparation.
  const double supply_interval =
      ((opts.shared_memory_prep
            ? (opts.fast_sampling ? w.sample_salient_s : w.sample_pyg_s) *
                      contention_salient +
                  w.slice_s * contention_salient
            : (opts.fast_sampling ? w.sample_salient_s : w.sample_pyg_s) *
                  contention_pyg)) /
      static_cast<double>(num_workers);
  const double straggler_s =
      num_gpus > 1 ? hw.straggler_cv *
                         std::sqrt(2.0 * std::log(static_cast<double>(
                                             num_gpus))) *
                         supply_interval
                   : 0.0;
  const double ar_s =
      allreduce_seconds(hw, w.grad_mb, num_gpus) + straggler_s;
  // Parallel slicing on the baseline's main side: capped by the memory
  // bandwidth (Table 2's sub-linear slicing scaling). The pin-memory copy
  // runs in the DataLoader's dedicated pinning thread and overlaps; it is
  // not charged to the main thread (it contributes bandwidth pressure,
  // folded into the slice cap).
  const double slice_main_s =
      w.slice_s /
      std::min(static_cast<double>(num_workers), w.slice_parallel_cap);
  constexpr int kPrefetch = 2;      // DataLoader prefetch_factor
  constexpr int kQueueCap = 4;      // SALIENT output queue
  constexpr int kPipelineDepth = 2; // device batches in flight

  EpochSimResult result;
  std::vector<GpuState> gpus(static_cast<std::size_t>(num_gpus));
  for (auto& g : gpus) {
    if (opts.shared_memory_prep) {
      g.pool = std::make_unique<PoolResource>(num_workers);
    } else {
      g.worker_free.assign(static_cast<std::size_t>(num_workers), 0.0);
      g.worker_consumed.assign(static_cast<std::size_t>(num_workers), {});
    }
    g.prep_done.assign(static_cast<std::size_t>(batches_per_gpu), 0.0);
    g.xfer_end.assign(static_cast<std::size_t>(batches_per_gpu), 0.0);
    g.train_end.assign(static_cast<std::size_t>(batches_per_gpu), 0.0);
    g.consumed.assign(static_cast<std::size_t>(batches_per_gpu), 0.0);
  }

  auto lane = [](const char* base, int g) {
    return std::string(base) + std::to_string(g);
  };

  // Process batch index j in lock step across GPUs (the all-reduce couples
  // them; within one GPU the order is the consumption order anyway).
  for (std::int64_t j = 0; j < batches_per_gpu; ++j) {
    double ar_gate = 0;  // max train end across GPUs for this step
    for (int gi = 0; gi < num_gpus; ++gi) {
      auto& g = gpus[static_cast<std::size_t>(gi)];
      const auto ju = static_cast<std::size_t>(j);

      // ---- batch preparation -------------------------------------------
      if (opts.shared_memory_prep) {
        // Dynamic worker pool; bounded output queue gates re-use.
        // A worker holds one batch in flight and the output queue holds
        // kQueueCap more, so preparation of batch j is gated on the
        // consumption of batch j - (workers + capacity).
        const std::int64_t window = kQueueCap + num_workers;
        const double gate = j >= window ? g.consumed[ju - window] : 0.0;
        const double prep_cost = sample_s + worker_slice_s;
        int unit = 0;
        const double start = g.pool->acquire(gate, prep_cost, &unit);
        g.prep_done[ju] = start + prep_cost;
        g.sampler_busy += prep_cost;
        result.timeline.add(lane("w", gi) + "." + std::to_string(unit),
                            "sample", j, start, start + sample_s);
        result.timeline.add(lane("w", gi) + "." + std::to_string(unit),
                            "Y-slice", j, start + sample_s,
                            g.prep_done[ju]);
      } else {
        // Static round-robin worker, prefetch-capped.
        const auto wi = static_cast<std::size_t>(j % num_workers);
        auto& consumed = g.worker_consumed[wi];
        const double gate = consumed.size() >= kPrefetch
                                ? consumed[consumed.size() - kPrefetch]
                                : 0.0;
        // The worker pays sampling plus the IPC serialization; the consumer
        // side of PyTorch's shm transport maps tensors without a bulk copy.
        const double start =
            std::max(g.worker_free[wi], gate);
        const double done = start + sample_s + w.ipc_s;
        g.worker_free[wi] = done;
        g.prep_done[ju] = done;
        g.sampler_busy += sample_s;
        result.timeline.add(
            lane("w", gi) + "." + std::to_string(wi), "sample", j, start,
            done);
      }

      // ---- main-thread consumption -------------------------------------
      double wait = std::max(0.0, g.prep_done[ju] - g.main_t);
      g.blocked_prep += wait;
      g.main_t = std::max(g.main_t, g.prep_done[ju]);
      if (!opts.shared_memory_prep) {
        // Parallel slicing blocks the main thread (Listing 1 line 3).
        const double cons = slice_main_s;
        result.timeline.add(lane("main", gi), "Y-slice", j, g.main_t,
                            g.main_t + cons);
        g.main_t += cons;
        g.blocked_prep += cons;
        auto& consumed_vec = g.worker_consumed[
            static_cast<std::size_t>(j % num_workers)];
        consumed_vec.push_back(g.main_t);
      }

      // ---- transfer ------------------------------------------------------
      if (opts.pipelined_transfers) {
        // Async: gated by pipeline depth, overlaps GPU compute.
        const double depth_gate =
            j >= kPipelineDepth ? g.train_end[ju - kPipelineDepth] : 0.0;
        const double xstart =
            g.pcie.acquire(std::max(g.main_t, depth_gate), xfer_s);
        g.xfer_end[ju] = xstart + xfer_s;
        result.timeline.add(lane("pcie", gi), "xfer", j, xstart,
                            g.xfer_end[ju]);
        g.consumed[ju] = g.xfer_end[ju];  // pinned buffer freed after copy
        // Main thread only throttles on depth.
        const double throttle =
            j >= kPipelineDepth
                ? std::max(0.0, g.train_end[ju - kPipelineDepth] - g.main_t)
                : 0.0;
        g.blocked_train += throttle;
        g.main_t += throttle;
      } else {
        // Blocking `.to(device)`.
        const double xstart = g.pcie.acquire(g.main_t, xfer_s);
        g.xfer_end[ju] = xstart + xfer_s;
        result.timeline.add(lane("pcie", gi), "xfer", j, xstart,
                            g.xfer_end[ju]);
        g.blocked_transfer += g.xfer_end[ju] - g.main_t;
        g.main_t = g.xfer_end[ju];
        g.consumed[ju] = g.main_t;
      }
      g.pcie_busy += xfer_s;

      // ---- GPU training ---------------------------------------------------
      const double tstart = g.gpu.acquire(g.xfer_end[ju], train_s);
      g.train_end[ju] = tstart + train_s;
      g.gpu_busy += train_s;
      result.timeline.add(lane("gpu", gi), "train", j, tstart,
                          g.train_end[ju]);
      if (!opts.pipelined_transfers) {
        // Blocking execution: main waits for the training step.
        g.blocked_train += std::max(0.0, g.train_end[ju] - g.main_t);
        g.main_t = std::max(g.main_t, g.train_end[ju]);
      }
      ar_gate = std::max(ar_gate, g.train_end[ju]);
    }

    // ---- gradient all-reduce (couples all GPUs) --------------------------
    if (num_gpus > 1) {
      const double ar_end = ar_gate + ar_s;
      result.timeline.add("net", "allreduce", j, ar_gate, ar_end);
      for (auto& g : gpus) {
        const auto ju = static_cast<std::size_t>(j);
        g.train_end[ju] = ar_end;  // optimizer steps after the reduce
        g.gpu.acquire(ar_end, 0.0);
        if (!opts.pipelined_transfers) {
          g.blocked_train += std::max(0.0, ar_end - g.main_t);
          g.main_t = std::max(g.main_t, ar_end);
        }
      }
    }
  }

  // Drain: every GPU's main thread waits for its last training step.
  double epoch_end = 0;
  for (auto& g : gpus) {
    const double last = g.train_end[static_cast<std::size_t>(
        batches_per_gpu - 1)];
    g.blocked_train += std::max(0.0, last - g.main_t);
    g.main_t = std::max(g.main_t, last);
    epoch_end = std::max(epoch_end, g.main_t);
    result.blocked_prep_s = std::max(result.blocked_prep_s, g.blocked_prep);
    result.blocked_transfer_s =
        std::max(result.blocked_transfer_s, g.blocked_transfer);
    result.blocked_train_s =
        std::max(result.blocked_train_s, g.blocked_train);
    result.sampler_busy_s += g.sampler_busy;
    result.gpu_busy_s += g.gpu_busy;
    result.pcie_busy_s += g.pcie_busy;
  }
  result.epoch_seconds = epoch_end;
  return result;
}

WorkloadModel paper_workload(const std::string& dataset) {
  // Distilled from the paper's published measurements. Per-batch costs are
  // epoch totals divided by the number of mini-batches (train nodes / 1024):
  //   arxiv: 91K train nodes -> 89 batches;  products: 197K -> 193;
  //   papers: 1.2M -> 1172.
  // Table 1 gives PyG blocking prep/transfer/train; Table 2 gives 1-thread
  // sampling/slicing for products (71.1s / 7.6s PyG, 28.3s / 7.3s SALIENT;
  // sampling ratio 2.51x, slicing ~1.04x + the pin copy). §3.3: 164 GB per
  // papers epoch at 9.2 GB/s baseline. Train times are Table 1's GPU column.
  WorkloadModel w;
  w.dataset = dataset;
  const double sampler_ratio = 71.1 / 28.3;  // 2.51x (Table 2)
  if (dataset == "arxiv") {
    // Serial sampling back-derived from Table 1's 1.7s epoch (sampling-
    // bound at 20 workers with the Table 2 scaling cap): ~17s serial.
    w.num_batches = 89;
    w.sample_pyg_s = 16.8 / 89;
    w.slice_s = 0.9 / 89;
    w.transfer_mb = 0.3 * 12.3 * 0.75 * 1000 / 89;  // from Table 1 transfer
    w.train_gpu_s = 0.5 / 89;
    w.grad_mb = 1.2;
  } else if (dataset == "products") {
    w.num_batches = 193;
    w.sample_pyg_s = 71.1 / 193;
    w.slice_s = 7.6 / 193;
    w.transfer_mb = 2.2 * 12.3 * 0.75 * 1000 / 193;
    w.train_gpu_s = 2.4 / 193;
    w.grad_mb = 1.1;
    w.sample_parallel_cap = 71.1 / 7.2;   // Table 2, P=20
    w.prep_parallel_cap = 35.6 / 2.5;     // Table 2 "Both", P=20
  } else if (dataset == "papers") {
    // Serial sampling back-derived from Table 1: the 50.4s baseline epoch
    // with 18.6s of blocked prep implies ~500s serial sampling under the
    // Table 2 parallel-efficiency cap.
    w.num_batches = 1172;
    w.sample_pyg_s = 500.0 / 1172;
    w.slice_s = 18.2 / 1172;
    w.transfer_mb = 164.0 * 1000 / 1172;  // §3.3: 164 GB per epoch
    w.train_gpu_s = 13.9 / 1172;
    w.grad_mb = 1.2;
  } else {
    throw std::invalid_argument("paper_workload: unknown dataset " + dataset);
  }
  w.sample_salient_s = w.sample_pyg_s / sampler_ratio;
  w.pin_copy_s = w.slice_s;      // the extra pass through memory
  w.ipc_s = w.slice_s * 0.5;     // MFG blob is small next to features
  w.slice_parallel_cap = 6.0;
  return w;
}

}  // namespace salient::sim
