// Epoch-level pipeline models for the PyG baseline and SALIENT, evaluated on
// a configurable hardware profile — the calibrated discrete-event simulator
// that regenerates the paper's multi-core / multi-GPU results (Tables 1 & 3,
// Figures 1, 4, 5) on hardware we do not have. See DESIGN.md §2 for the
// substitution rationale: per-operation costs are *measured* from this
// repository's real components (sim/calibration.h), while core counts, GPU
// counts and link bandwidths come from the hardware profile.
#pragma once

#include <cstdint>
#include <string>

#include "sim/timeline.h"

namespace salient::sim {

/// Hardware profile; defaults model the paper's testbed (§6): nodes with
/// 2x20-core Xeon 6248, 2 V100 GPUs, 12.3 GB/s host->GPU DMA, 10 GigE.
struct HwProfile {
  std::string name = "paper-testbed";
  int cores_per_machine = 40;
  int gpus_per_machine = 2;
  double pcie_gb_per_s = 12.3;
  /// Transfer efficiency with PyG's blocking sparse-tensor assertions (§3.3).
  double pcie_efficiency_baseline = 0.75;
  /// Efficiency once the redundant assertions are skipped (§4.3).
  double pcie_efficiency_salient = 0.99;
  double nic_gb_per_s = 1.25;  ///< 10 GigE
  double nic_latency_s = 30e-6;
  /// Simulated-GPU speed relative to the machine that produced the
  /// calibrated train cost (train time is divided by this).
  double gpu_relative_speed = 1.0;
  /// Coefficient of variation of per-batch preparation time. Data-parallel
  /// steps advance at the pace of the slowest replica; the expected extreme
  /// of R draws adds ~cv*sqrt(2 ln R) of the supply interval per step
  /// (sampled neighborhood sizes vary strongly across mini-batches, §6).
  double straggler_cv = 0.15;
};

/// The ablation toggles of Table 3.
struct SystemOptions {
  bool fast_sampling = false;       ///< §4.1 sampler in the workers
  bool shared_memory_prep = false;  ///< §4.2 end-to-end threads, no IPC
  bool pipelined_transfers = false; ///< §4.3 overlap + no round trips

  static SystemOptions pyg() { return {false, false, false}; }
  static SystemOptions salient() { return {true, true, true}; }
};

/// Calibrated per-batch costs for one dataset/model configuration.
/// All *_s values are single-thread seconds per mini-batch.
struct WorkloadModel {
  std::string dataset;
  std::int64_t num_batches = 0;  ///< per epoch across ALL GPUs
  double sample_pyg_s = 0;
  double sample_salient_s = 0;
  double slice_s = 0;             ///< one serial slicing pass
  double pin_copy_s = 0;          ///< baseline's extra pin_memory copy
  double ipc_s = 0;               ///< serialize+deserialize of one MFG
  /// Parallel-slicing speedup cap (memory-bandwidth bound; Table 2 shows
  /// ~6x at 20 threads for the two-pass PyG path).
  double slice_parallel_cap = 6.0;
  /// Aggregate parallel-speedup cap of the multiprocessing sampling workers
  /// (Table 2: PyG sampling 71.1s -> 7.2s at 20 workers, ~9.9x — memory
  /// bandwidth and process overheads bound the scaling).
  double sample_parallel_cap = 9.9;
  /// Same cap for SALIENT's end-to-end preparation threads (Table 2 "Both":
  /// 35.6s -> 2.5s at 20 threads, ~14.2x).
  double prep_parallel_cap = 14.2;
  double transfer_mb = 0;         ///< bytes moved per batch (MB)
  double train_gpu_s = 0;         ///< train step on the reference device
  double grad_mb = 0;             ///< gradient bytes all-reduced per step
};

struct EpochSimResult {
  double epoch_seconds = 0;
  /// Main-thread blocking time per phase (the Table 1 measurement).
  double blocked_prep_s = 0;
  double blocked_transfer_s = 0;
  double blocked_train_s = 0;
  /// Aggregate busy time of components (for utilization analyses).
  double sampler_busy_s = 0;
  double gpu_busy_s = 0;
  double pcie_busy_s = 0;
  Timeline timeline;
};

/// Simulate one training epoch.
/// `num_workers` preparation workers per GPU; `num_gpus` data-parallel
/// replicas (allreduce after every step when > 1). Machines are derived from
/// hw.gpus_per_machine.
EpochSimResult simulate_epoch(const WorkloadModel& w, const HwProfile& hw,
                              const SystemOptions& opts, int num_workers,
                              int num_gpus);

/// Workload models distilled from the paper's published measurements
/// (Tables 1, 2 and §3.3), for full-scale validation of the simulator
/// against the paper's numbers. `dataset` is "arxiv", "products" or
/// "papers".
WorkloadModel paper_workload(const std::string& dataset);

}  // namespace salient::sim
