#include "sim/resources.h"

#include <stdexcept>

namespace salient::sim {

PoolResource::PoolResource(int units) {
  if (units < 1) throw std::invalid_argument("PoolResource: units < 1");
  free_.assign(static_cast<std::size_t>(units), 0.0);
}

double PoolResource::acquire(double ready, double duration, int* unit_out) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < free_.size(); ++i) {
    if (free_[i] < free_[best]) best = i;
  }
  const double start = ready > free_[best] ? ready : free_[best];
  free_[best] = start + duration;
  if (unit_out != nullptr) *unit_out = static_cast<int>(best);
  return start;
}

double PoolResource::earliest_free() const {
  double t = free_[0];
  for (const double f : free_) t = f < t ? f : t;
  return t;
}

}  // namespace salient::sim
