// Discrete-event scheduling primitives for the cluster simulator.
//
// The simulator advances virtual time by resolving, for each task, the
// earliest start permitted by (a) its data dependencies (ready time) and
// (b) the availability of the contended resource it runs on. Two resource
// flavours cover everything in the pipeline models:
//   * FifoResource  — a single serially-reusable unit (a PCIe link, a GPU,
//     the Python main thread);
//   * PoolResource  — k interchangeable units (a pool of CPU cores /
//     preparation workers), always granting the earliest-available unit.
#pragma once

#include <queue>
#include <vector>

namespace salient::sim {

/// One exclusive unit; requests are served in call order.
class FifoResource {
 public:
  /// Reserve the resource for `duration` starting no earlier than `ready`.
  /// Returns the actual start time.
  double acquire(double ready, double duration) {
    const double start = ready > free_ ? ready : free_;
    free_ = start + duration;
    return start;
  }

  /// Next time the resource is idle.
  double free_time() const { return free_; }

 private:
  double free_ = 0;
};

/// k interchangeable units; each acquire takes the earliest-free unit.
class PoolResource {
 public:
  explicit PoolResource(int units);

  /// Reserve one unit for `duration` starting no earlier than `ready`.
  /// Returns the start time; `unit_out` (optional) receives the unit index.
  double acquire(double ready, double duration, int* unit_out = nullptr);

  int units() const { return static_cast<int>(free_.size()); }
  /// Earliest time any unit becomes idle.
  double earliest_free() const;

 private:
  std::vector<double> free_;  // free time per unit (small k: linear scan)
};

}  // namespace salient::sim
