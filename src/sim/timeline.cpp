#include "sim/timeline.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace salient::sim {

void Timeline::add(std::string lane, std::string label, std::int64_t batch,
                   double start, double end) {
  spans_.push_back(
      {std::move(lane), std::move(label), batch, start, std::max(start, end)});
}

double Timeline::end_time() const {
  double t = 0;
  for (const auto& s : spans_) t = std::max(t, s.end);
  return t;
}

std::string Timeline::render_ascii(int columns) const {
  const double total = end_time();
  if (total <= 0 || spans_.empty()) return "(empty timeline)\n";
  // Stable lane order: first appearance.
  std::vector<std::string> lane_order;
  std::map<std::string, std::string> rows;
  std::size_t width = 0;
  for (const auto& s : spans_) {
    if (rows.find(s.lane) == rows.end()) {
      lane_order.push_back(s.lane);
      rows[s.lane] = std::string(static_cast<std::size_t>(columns), '.');
      width = std::max(width, s.lane.size());
    }
  }
  for (const auto& s : spans_) {
    auto& row = rows[s.lane];
    const int b = std::clamp(
        static_cast<int>(s.start / total * columns), 0, columns - 1);
    const int e = std::clamp(static_cast<int>(s.end / total * columns), b,
                             columns - 1);
    const char c = s.label.empty() ? '?' : s.label[0];
    for (int i = b; i <= e; ++i) {
      auto& cell = row[static_cast<std::size_t>(i)];
      cell = (cell == '.' || cell == c) ? c : '#';
    }
  }
  std::ostringstream os;
  for (const auto& lane : lane_order) {
    os << lane << std::string(width - lane.size() + 1, ' ') << '|'
       << rows[lane] << "|\n";
  }
  os << "(total " << total << "s; key: first letter of phase, '#' overlap)\n";
  return os.str();
}

void Timeline::write_csv(std::ostream& os) const {
  os << "lane,label,batch,start,end\n";
  for (const auto& s : spans_) {
    os << s.lane << ',' << s.label << ',' << s.batch << ',' << s.start << ','
       << s.end << '\n';
  }
}

}  // namespace salient::sim
