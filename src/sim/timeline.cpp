#include "sim/timeline.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/chrome_trace.h"

namespace salient::sim {

void Timeline::add(std::string lane, std::string label, std::int64_t batch,
                   double start, double end) {
  spans_.push_back(
      {std::move(lane), std::move(label), batch, start, std::max(start, end)});
}

double Timeline::end_time() const {
  double t = 0;
  for (const auto& s : spans_) t = std::max(t, s.end);
  return t;
}

std::string Timeline::render_ascii(int columns) const {
  const double total = end_time();
  if (total <= 0 || spans_.empty()) return "(empty timeline)\n";
  // Stable lane order: first appearance.
  std::vector<std::string> lane_order;
  std::map<std::string, std::string> rows;
  std::size_t width = 0;
  for (const auto& s : spans_) {
    if (rows.find(s.lane) == rows.end()) {
      lane_order.push_back(s.lane);
      rows[s.lane] = std::string(static_cast<std::size_t>(columns), '.');
      width = std::max(width, s.lane.size());
    }
  }
  for (const auto& s : spans_) {
    auto& row = rows[s.lane];
    const int b = std::clamp(
        static_cast<int>(s.start / total * columns), 0, columns - 1);
    const int e = std::clamp(static_cast<int>(s.end / total * columns), b,
                             columns - 1);
    const char c = s.label.empty() ? '?' : s.label[0];
    for (int i = b; i <= e; ++i) {
      auto& cell = row[static_cast<std::size_t>(i)];
      cell = (cell == '.' || cell == c) ? c : '#';
    }
  }
  std::ostringstream os;
  for (const auto& lane : lane_order) {
    os << lane << std::string(width - lane.size() + 1, ' ') << '|'
       << rows[lane] << "|\n";
  }
  os << "(total " << total << "s; key: first letter of phase, '#' overlap)\n";
  return os.str();
}

void Timeline::write_chrome_trace(std::ostream& os) const {
  using obs::chrome_trace::append_escaped;
  // Distinct pid from the live tracer so a merged view keeps simulated and
  // measured tracks apart.
  constexpr int kSimPid = 2;
  std::string out = "{\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" +
         std::to_string(kSimPid) +
         ",\"tid\":0,\"args\":{\"name\":\"sim-cluster\"}}";

  // Lane -> tid, in first-appearance order (matches render_ascii rows).
  std::map<std::string, int> tids;
  for (const auto& s : spans_) {
    if (tids.find(s.lane) != tids.end()) continue;
    const int tid = static_cast<int>(tids.size()) + 1;
    tids[s.lane] = tid;
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" +
           std::to_string(kSimPid) + ",\"tid\":" + std::to_string(tid) +
           ",\"args\":{\"name\":\"";
    append_escaped(out, s.lane);
    out += "\"}}";
  }

  char buf[64];
  for (const auto& s : spans_) {
    out += ",\n{\"name\":\"";
    append_escaped(out, s.label);
    out += "\",\"ph\":\"X\",\"ts\":";
    std::snprintf(buf, sizeof(buf), "%.3f", s.start * 1e6);  // sim s -> us
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f", (s.end - s.start) * 1e6);
    out += buf;
    out += ",\"pid\":" + std::to_string(kSimPid) +
           ",\"tid\":" + std::to_string(tids[s.lane]);
    if (s.batch >= 0) {
      out += ",\"args\":{\"batch\":" + std::to_string(s.batch) + "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  os << out;
}

bool Timeline::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

void Timeline::write_csv(std::ostream& os) const {
  os << "lane,label,batch,start,end\n";
  for (const auto& s : spans_) {
    os << s.lane << ',' << s.label << ',' << s.batch << ',' << s.start << ','
       << s.end << '\n';
  }
}

}  // namespace salient::sim
