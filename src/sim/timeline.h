// Timeline traces for the cluster simulator.
//
// Every simulated activity (sampling, slicing, transfer, training, ...)
// records a span on a named lane. Rendering the lanes as ASCII regenerates
// Figure 1 of the paper — the visual comparison of the standard PyTorch
// workflow against SALIENT's overlapped pipeline.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace salient::sim {

struct TimelineSpan {
  std::string lane;   ///< e.g. "worker0", "main", "gpu0", "pcie0"
  std::string label;  ///< e.g. "sample", "slice", "xfer", "train"
  std::int64_t batch = -1;
  double start = 0;
  double end = 0;
};

class Timeline {
 public:
  void add(std::string lane, std::string label, std::int64_t batch,
           double start, double end);

  const std::vector<TimelineSpan>& spans() const { return spans_; }
  /// Latest span end (the simulated makespan).
  double end_time() const;

  /// Render as fixed-width ASCII art, one row per lane (Figure 1 style).
  /// `columns` characters represent [0, end_time()]. Spans are drawn with
  /// the first letter of their label; overlaps on one lane show '#'.
  std::string render_ascii(int columns = 100) const;

  /// CSV dump: lane,label,batch,start,end.
  void write_csv(std::ostream& os) const;

  /// Chrome trace_event JSON dump in the same format as the live tracer
  /// (obs/chrome_trace.h): one named track per lane, one complete ('X')
  /// event per span, simulated seconds mapped to trace microseconds. A
  /// simulated cluster timeline therefore opens in chrome://tracing or
  /// Perfetto exactly like a captured run.
  void write_chrome_trace(std::ostream& os) const;
  /// write_chrome_trace() to a file; false when the file cannot be written.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  std::vector<TimelineSpan> spans_;
};

}  // namespace salient::sim
