#include "tensor/dtype.h"

namespace salient {

std::size_t dtype_size(DType dt) {
  switch (dt) {
    case DType::kF16:
      return 2;
    case DType::kF32:
      return 4;
    case DType::kF64:
      return 8;
    case DType::kI64:
      return 8;
    case DType::kInt8Q:
      return 1;
  }
  return 0;
}

const char* dtype_name(DType dt) {
  switch (dt) {
    case DType::kF16:
      return "f16";
    case DType::kF32:
      return "f32";
    case DType::kF64:
      return "f64";
    case DType::kI64:
      return "i64";
    case DType::kInt8Q:
      return "i8q";
  }
  return "?";
}

}  // namespace salient
