// Element types supported by the tensor library.
//
// F16 is a storage-only type (the host-side feature store keeps features in
// half precision, as in the paper); compute happens in F32 (the "GPU" compute
// precision) or F64 (used by gradient checking). I64 is the index/label type.
// Int8Q is a storage-only per-row affine-quantized type: a [rows, cols]
// kInt8Q tensor is meaningless without its companion per-row scale/zero-point
// tensors (see tensor/quantize.h); generic Tensor::to() conversions therefore
// reject it and quantized data moves through the explicit quantize /
// dequantize entry points.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/half.h"

namespace salient {

enum class DType : std::uint8_t {
  kF16 = 0,
  kF32 = 1,
  kF64 = 2,
  kI64 = 3,
  kInt8Q = 4,
};

/// Size in bytes of one element of `dt`.
std::size_t dtype_size(DType dt);

/// Human-readable name: "f16", "f32", "f64", "i64".
const char* dtype_name(DType dt);

/// Maps a C++ scalar type to its DType tag.
template <typename T>
struct DTypeOf;
template <>
struct DTypeOf<Half> {
  static constexpr DType value = DType::kF16;
};
template <>
struct DTypeOf<float> {
  static constexpr DType value = DType::kF32;
};
template <>
struct DTypeOf<double> {
  static constexpr DType value = DType::kF64;
};
template <>
struct DTypeOf<std::int64_t> {
  static constexpr DType value = DType::kI64;
};
template <>
struct DTypeOf<std::int8_t> {
  static constexpr DType value = DType::kInt8Q;
};

}  // namespace salient
