// Fused GEMM store-phase epilogues (bias / ReLU / dropout).
#pragma once

#include <cstdint>

/// \file
/// \brief Store-phase epilogues fused into the optimized GEMM, plus the
/// counter-based dropout decision they (and ops::dropout_mask_counter) share.
///
/// The unfused Linear-forward path costs three extra full-tensor passes
/// after the GEMM: add the bias row, apply ReLU (plus a mask write for the
/// backward), and multiply by a dropout mask. All three are pure
/// memory-bandwidth — on an activation of M·N floats they move ~8·M·N
/// bytes beyond the GEMM itself. Fusing them into the microkernel's store
/// phase applies the elementwise math while the output tile is still in
/// registers, so the activation is written exactly once and the only extra
/// traffic is the saved backward mask (docs/PERFORMANCE.md, bytes-moved
/// section).
///
/// Determinism: the epilogue is elementwise over the finished accumulator
/// tile, and the dropout decision is a pure hash of (seed, element index) —
/// no sequential RNG stream — so fused results are bitwise identical across
/// pool sizes and chunkings, and bitwise identical to the unfused optimized
/// sequence composed with ops::dropout_mask_counter under the same seed
/// (tests/test_kernels.cpp locks both in).

namespace salient::ops {

/// Which elementwise tail the GEMM store phase applies to each output
/// element `pre = (A·B)[i][j] (+ bias[j])`.
enum class Epilogue : std::uint8_t {
  /// Plain GEMM store: `y = pre` (no bias read).
  kNone = 0,
  /// Bias add only: `y = pre` with `pre` including the bias row.
  kBias = 1,
  /// Bias + ReLU: `y = pre > 0 ? pre : 0`; the saved mask is 1 or 0.
  kBiasRelu = 2,
  /// Bias + ReLU + inverted dropout: `y = pre > 0 && keep ? pre/(1-p) : 0`;
  /// the saved mask is the combined derivative d y/d pre in {0, 1/(1-p)}.
  kBiasReluDropout = 3,
};

namespace detail {

/// SplitMix64 finalizer: the stateless mixing function behind the
/// counter-based dropout decision. Full-avalanche, so consecutive element
/// indices decorrelate completely.
inline std::uint64_t epi_mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace detail

/// Map a drop probability `p` in [0, 1) to the 64-bit hash threshold below
/// which an element is dropped. p = 0 maps to 0 (nothing ever dropped).
inline std::uint64_t dropout_drop_threshold(double p) {
  // p < 1, so p * 2^64 < 2^64 and the conversion is exact enough: the
  // quantization error is < 1 part in 2^52 of the probability.
  return static_cast<std::uint64_t>(p * 18446744073709551616.0);
}

/// Counter-based dropout decision for the element at flat index `index`:
/// true when the element is KEPT. Pure function of (seed, index) — the same
/// element gets the same decision whatever thread, chunk, or kernel
/// evaluates it, which is what lets the fused epilogue and the standalone
/// ops::dropout_mask_counter agree bitwise.
inline bool dropout_keep(std::uint64_t seed, std::int64_t index,
                         std::uint64_t drop_threshold) {
  return detail::epi_mix64(seed ^
                           static_cast<std::uint64_t>(index) *
                               0x9e3779b97f4a7c15ull) >= drop_threshold;
}

}  // namespace salient::ops
