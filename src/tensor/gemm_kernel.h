// Register-blocked GEMM microkernel over packed panels.
//
// The optimized matmul path (tensor/matmul.cpp) computes C[M,N] = A[M,K] *
// B[K,N] as a grid of MR×NR register tiles, GotoBLAS-style:
//
//   * B is packed once into NR-wide column panels, laid out so the inner
//     loop reads NR contiguous values per k step (unit stride, zero-padded
//     at the right edge);
//   * each row panel of A (MR rows) is packed into [k][MR] order so the k
//     loop reads MR contiguous values per step;
//   * the microkernel keeps an MR×NR accumulator block in registers and
//     walks k start-to-finish with a single fused multiply-add per element.
//
// On GCC/Clang the accumulators are explicit vector-extension values sized
// to exactly one machine vector register (64 bytes under AVX-512, 32 under
// AVX, 16 otherwise), two per tile row — so NR depends on the element type:
// 2 × (register bytes / sizeof(T)) lanes. Oversized vector types or plain
// `T acc[MR][NR]` arrays both get lowered to stack memory by GCC, turning
// every k step into a store/reload chain; one-register vectors held in
// named locals are what actually pins the accumulator block in registers.
// The k loop is branch-free (unlike the reference kernel's `if (a == 0)
// continue;`): per k step it is MR broadcasts and 2·MR FMAs — twelve
// independent FMA chains, enough to cover FMA latency on two-port cores
// (chains >= latency x ports with slack; eight chains measurably stall).
// Other compilers fall back to a plain-array form of the same computation.
//
// Each output element has exactly one accumulator walked in ascending-k
// order, so results are bitwise deterministic regardless of how row panels
// are distributed across threads — the property tests/test_kernels.cpp
// locks in. Lanes are independent accumulators, so the vector and fallback
// forms also agree bitwise with each other.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "tensor/epilogue.h"

#if defined(__GNUC__) || defined(__clang__)
#define SALIENT_GEMM_VECTOR_EXT 1
#endif

namespace salient::ops::detail {

inline constexpr std::int64_t kGemmMR = 6;  ///< rows per register tile

/// Bytes in one machine vector register (the only width GCC reliably keeps
/// in registers for vector-extension values).
#if defined(__AVX512F__)
inline constexpr std::int64_t kGemmVecBytes = 64;
#elif defined(__AVX__)
inline constexpr std::int64_t kGemmVecBytes = 32;
#else
inline constexpr std::int64_t kGemmVecBytes = 16;
#endif

/// Lanes of T per machine vector.
template <typename T>
inline constexpr std::int64_t kGemmLanes =
    kGemmVecBytes / static_cast<std::int64_t>(sizeof(T));

/// Columns per register tile: two machine vectors per tile row.
template <typename T>
inline constexpr std::int64_t kGemmNR = 2 * kGemmLanes<T>;

/// Number of NR-wide column panels covering n columns.
template <typename T>
inline std::int64_t gemm_num_col_panels(std::int64_t n) {
  return (n + kGemmNR<T> - 1) / kGemmNR<T>;
}

/// Pack rows [i0, i0+h), inner-dim slice [k0, k0+kc) of row-major A[M,lda]
/// into [kc][MR] order (columns of the panel are the h rows, zero-padded up
/// to MR). `packed` holds kc * MR.
template <typename T>
void gemm_pack_a(const T* a, std::int64_t lda, T* packed, std::int64_t i0,
                 std::int64_t h, std::int64_t k0, std::int64_t kc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    T* dst = packed + p * kGemmMR;
    for (std::int64_t r = 0; r < h; ++r) dst[r] = a[(i0 + r) * lda + k0 + p];
    for (std::int64_t r = h; r < kGemmMR; ++r) dst[r] = T(0);
  }
}

#ifdef SALIENT_GEMM_VECTOR_EXT
/// One machine vector of T.
template <typename T>
struct GemmVec;
template <>
struct GemmVec<float> {
  typedef float type __attribute__((vector_size(kGemmVecBytes)));
};
template <>
struct GemmVec<double> {
  typedef double type __attribute__((vector_size(kGemmVecBytes)));
};
#endif

/// C-tile (+)= packed-A-panel * packed-B-panel for one MR×NR tile.
/// `ap` is [k][MR], `bp` is [k][NR]; the tile is accumulated in registers
/// and written to C rows [i0, i0+h), columns [j0, j0+w) — added when
/// `accumulate` (later k blocks), stored when not (first k block, which
/// saves re-reading C).
template <typename T>
void gemm_microkernel(const T* ap, const T* bp, std::int64_t k, T* c,
                      std::int64_t ldc, std::int64_t i0, std::int64_t h,
                      std::int64_t j0, std::int64_t w, bool accumulate) {
  static_assert(kGemmMR == 6, "microkernel unrolls exactly six tile rows");
  constexpr std::int64_t NR = kGemmNR<T>;
  T tile[kGemmMR][NR];
#ifdef SALIENT_GEMM_VECTOR_EXT
  constexpr std::int64_t L = kGemmLanes<T>;
  using V = typename GemmVec<T>::type;
  V a00{}, a01{}, a10{}, a11{}, a20{}, a21{}, a30{}, a31{}, a40{}, a41{},
      a50{}, a51{};
  for (std::int64_t p = 0; p < k; ++p) {
    V b0, b1;
    std::memcpy(&b0, bp + p * NR, sizeof(V));  // unaligned vector loads
    std::memcpy(&b1, bp + p * NR + L, sizeof(V));
    const T* arow = ap + p * kGemmMR;
    a00 += arow[0] * b0;
    a01 += arow[0] * b1;
    a10 += arow[1] * b0;
    a11 += arow[1] * b1;
    a20 += arow[2] * b0;
    a21 += arow[2] * b1;
    a30 += arow[3] * b0;
    a31 += arow[3] * b1;
    a40 += arow[4] * b0;
    a41 += arow[4] * b1;
    a50 += arow[5] * b0;
    a51 += arow[5] * b1;
  }
  if (h == kGemmMR && w == NR) {
    // Full tile: write the accumulators straight to C, skipping the
    // stack-staging round trip below.
    V* const accs[kGemmMR][2] = {{&a00, &a01}, {&a10, &a11}, {&a20, &a21},
                                 {&a30, &a31}, {&a40, &a41}, {&a50, &a51}};
    for (std::int64_t r = 0; r < kGemmMR; ++r) {
      T* crow = c + (i0 + r) * ldc + j0;
      if (accumulate) {
        V c0, c1;
        std::memcpy(&c0, crow, sizeof(V));
        std::memcpy(&c1, crow + L, sizeof(V));
        c0 += *accs[r][0];
        c1 += *accs[r][1];
        std::memcpy(crow, &c0, sizeof(V));
        std::memcpy(crow + L, &c1, sizeof(V));
      } else {
        std::memcpy(crow, accs[r][0], sizeof(V));
        std::memcpy(crow + L, accs[r][1], sizeof(V));
      }
    }
    return;
  }
  std::memcpy(&tile[0][0], &a00, sizeof(V));
  std::memcpy(&tile[0][L], &a01, sizeof(V));
  std::memcpy(&tile[1][0], &a10, sizeof(V));
  std::memcpy(&tile[1][L], &a11, sizeof(V));
  std::memcpy(&tile[2][0], &a20, sizeof(V));
  std::memcpy(&tile[2][L], &a21, sizeof(V));
  std::memcpy(&tile[3][0], &a30, sizeof(V));
  std::memcpy(&tile[3][L], &a31, sizeof(V));
  std::memcpy(&tile[4][0], &a40, sizeof(V));
  std::memcpy(&tile[4][L], &a41, sizeof(V));
  std::memcpy(&tile[5][0], &a50, sizeof(V));
  std::memcpy(&tile[5][L], &a51, sizeof(V));
#else
  T acc[kGemmMR][NR] = {};
  for (std::int64_t p = 0; p < k; ++p) {
    const T* arow = ap + p * kGemmMR;
    const T* brow = bp + p * NR;
    for (std::int64_t r = 0; r < kGemmMR; ++r) {
      const T av = arow[r];
      for (std::int64_t cix = 0; cix < NR; ++cix) {
        acc[r][cix] += av * brow[cix];
      }
    }
  }
  std::memcpy(tile, acc, sizeof(tile));
#endif
  for (std::int64_t r = 0; r < h; ++r) {
    T* crow = c + (i0 + r) * ldc + j0;
    if (accumulate) {
      if (w == NR) {
        for (std::int64_t cix = 0; cix < NR; ++cix) crow[cix] += tile[r][cix];
      } else {
        for (std::int64_t cix = 0; cix < w; ++cix) crow[cix] += tile[r][cix];
      }
    } else {
      if (w == NR) {
        for (std::int64_t cix = 0; cix < NR; ++cix) crow[cix] = tile[r][cix];
      } else {
        for (std::int64_t cix = 0; cix < w; ++cix) crow[cix] = tile[r][cix];
      }
    }
  }
}

/// Runtime parameters for the fused store-phase epilogue
/// (tensor/epilogue.h). Bound once per GEMM call; the microkernel indexes
/// `bias` by absolute output column and `mask` by absolute flat element
/// index, so results do not depend on tile traversal order.
template <typename T>
struct GemmEpilogue {
  Epilogue kind = Epilogue::kNone;
  const T* bias = nullptr;  ///< [n] bias row (kBias and stronger)
  T* mask = nullptr;        ///< optional [m*n] d y/d pre (kBiasRelu and up)
  T keep_scale = T(1);      ///< 1/(1-p) inverted-dropout scale
  std::uint64_t seed = 0;   ///< dropout decision seed
  std::uint64_t drop_threshold = 0;  ///< dropout_drop_threshold(p)
  std::int64_t n = 0;       ///< output columns (flat-index stride)
};

/// Same accumulation as gemm_microkernel (identical ascending-k register
/// tiling, so fused and unfused outputs are bitwise equal given equal
/// inputs), but the store phase applies a fused epilogue: the finished tile
/// (plus prior-k-block partials from C when `accumulate`) gets bias, ReLU
/// and counter-based dropout applied in one pass while it is still on-core,
/// and the combined backward mask streams out alongside. Called only for a
/// GEMM's final k block; earlier blocks use the plain microkernel. A
/// separate function (not a flag on gemm_microkernel) so the plain kernel's
/// store phase stays branch-free.
template <typename T>
void gemm_microkernel_epi(const T* ap, const T* bp, std::int64_t k, T* c,
                          std::int64_t ldc, std::int64_t i0, std::int64_t h,
                          std::int64_t j0, std::int64_t w, bool accumulate,
                          const GemmEpilogue<T>& epi) {
  static_assert(kGemmMR == 6, "microkernel unrolls exactly six tile rows");
  constexpr std::int64_t NR = kGemmNR<T>;
  T tile[kGemmMR][NR];
#ifdef SALIENT_GEMM_VECTOR_EXT
  constexpr std::int64_t L = kGemmLanes<T>;
  using V = typename GemmVec<T>::type;
  V a00{}, a01{}, a10{}, a11{}, a20{}, a21{}, a30{}, a31{}, a40{}, a41{},
      a50{}, a51{};
  for (std::int64_t p = 0; p < k; ++p) {
    V b0, b1;
    std::memcpy(&b0, bp + p * NR, sizeof(V));  // unaligned vector loads
    std::memcpy(&b1, bp + p * NR + L, sizeof(V));
    const T* arow = ap + p * kGemmMR;
    a00 += arow[0] * b0;
    a01 += arow[0] * b1;
    a10 += arow[1] * b0;
    a11 += arow[1] * b1;
    a20 += arow[2] * b0;
    a21 += arow[2] * b1;
    a30 += arow[3] * b0;
    a31 += arow[3] * b1;
    a40 += arow[4] * b0;
    a41 += arow[4] * b1;
    a50 += arow[5] * b0;
    a51 += arow[5] * b1;
  }
  std::memcpy(&tile[0][0], &a00, sizeof(V));
  std::memcpy(&tile[0][L], &a01, sizeof(V));
  std::memcpy(&tile[1][0], &a10, sizeof(V));
  std::memcpy(&tile[1][L], &a11, sizeof(V));
  std::memcpy(&tile[2][0], &a20, sizeof(V));
  std::memcpy(&tile[2][L], &a21, sizeof(V));
  std::memcpy(&tile[3][0], &a30, sizeof(V));
  std::memcpy(&tile[3][L], &a31, sizeof(V));
  std::memcpy(&tile[4][0], &a40, sizeof(V));
  std::memcpy(&tile[4][L], &a41, sizeof(V));
  std::memcpy(&tile[5][0], &a50, sizeof(V));
  std::memcpy(&tile[5][L], &a51, sizeof(V));
#else
  T acc[kGemmMR][NR] = {};
  for (std::int64_t p = 0; p < k; ++p) {
    const T* arow = ap + p * kGemmMR;
    const T* brow = bp + p * NR;
    for (std::int64_t r = 0; r < kGemmMR; ++r) {
      const T av = arow[r];
      for (std::int64_t cix = 0; cix < NR; ++cix) {
        acc[r][cix] += av * brow[cix];
      }
    }
  }
  std::memcpy(tile, acc, sizeof(tile));
#endif
  for (std::int64_t r = 0; r < h; ++r) {
    T* crow = c + (i0 + r) * ldc + j0;
    T* mrow = epi.mask != nullptr ? epi.mask + (i0 + r) * epi.n + j0 : nullptr;
    const std::int64_t flat0 = (i0 + r) * epi.n + j0;
    // Fold prior-k-block partials and the bias into the tile first, then
    // apply each epilogue kind in its own tight loop. Keeping a per-element
    // switch (and a data-dependent ternary compiled as a branch) here costs
    // ~3x the whole GEMM in mispredicted branches on random-sign
    // activations; the split loops compile to compare+blend vector code.
    // The addition order (partials, then bias) matches the old fused loop
    // and the reference path, so outputs stay bitwise identical.
    if (accumulate) {
      for (std::int64_t cix = 0; cix < w; ++cix) tile[r][cix] += crow[cix];
    }
    if (epi.kind != Epilogue::kNone) {
      for (std::int64_t cix = 0; cix < w; ++cix) {
        tile[r][cix] += epi.bias[j0 + cix];
      }
    }
    switch (epi.kind) {
      case Epilogue::kNone:
      case Epilogue::kBias:
        for (std::int64_t cix = 0; cix < w; ++cix) crow[cix] = tile[r][cix];
        break;
      case Epilogue::kBiasRelu:
        // Select (not pre * mask): -x * 0 would store -0.0 and break
        // bitwise parity with the unfused relu.
        if (mrow != nullptr) {
          for (std::int64_t cix = 0; cix < w; ++cix) {
            const T pre = tile[r][cix];
            const bool pos = pre > T(0);
            crow[cix] = pos ? pre : T(0);
            mrow[cix] = pos ? T(1) : T(0);
          }
        } else {
          for (std::int64_t cix = 0; cix < w; ++cix) {
            const T pre = tile[r][cix];
            crow[cix] = pre > T(0) ? pre : T(0);
          }
        }
        break;
      case Epilogue::kBiasReluDropout:
        for (std::int64_t cix = 0; cix < w; ++cix) {
          const T pre = tile[r][cix];
          const bool on =
              pre > T(0) &&
              dropout_keep(epi.seed, flat0 + cix, epi.drop_threshold);
          crow[cix] = on ? pre * epi.keep_scale : T(0);
          if (mrow != nullptr) mrow[cix] = on ? epi.keep_scale : T(0);
        }
        break;
    }
  }
}

}  // namespace salient::ops::detail
