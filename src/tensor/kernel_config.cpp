#include "tensor/kernel_config.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace salient::ops {

namespace {

KernelKind kind_from_env() {
  if (const char* env = std::getenv("SALIENT_KERNEL")) {
    if (std::strcmp(env, "ref") == 0) return KernelKind::kRef;
  }
  return KernelKind::kOpt;
}

std::atomic<int> g_kind{-1};  // -1 = not yet read from the environment
std::atomic<ThreadPool*> g_pool{nullptr};

}  // namespace

KernelKind kernel_kind() {
  int k = g_kind.load(std::memory_order_relaxed);
  if (k < 0) {
    k = static_cast<int>(kind_from_env());
    g_kind.store(k, std::memory_order_relaxed);
  }
  return static_cast<KernelKind>(k);
}

void set_kernel_kind(KernelKind kind) {
  g_kind.store(static_cast<int>(kind), std::memory_order_relaxed);
}

ThreadPool& kernel_pool() {
  ThreadPool* p = g_pool.load(std::memory_order_acquire);
  return p ? *p : ThreadPool::global();
}

void set_kernel_pool(ThreadPool* pool) {
  g_pool.store(pool, std::memory_order_release);
}

bool use_parallel(std::int64_t work) {
  return work >= kParallelGrain && kernel_pool().size() > 1;
}

bool use_parallel(std::int64_t work, GrainClass cls) {
  const std::int64_t grain =
      cls == GrainClass::kMemoryBound ? kMemoryBoundGrain : kParallelGrain;
  return work >= grain && kernel_pool().size() > 1;
}

}  // namespace salient::ops
