// Runtime configuration for the CPU kernel layer (tensor/ops.cpp,
// tensor/matmul.cpp).
//
// Two kernel implementations live behind the ops:: API:
//   * kRef — the straightforward serial loops the repo started with. They
//     are the ground truth for A/B testing and gradient checking.
//   * kOpt — vectorization-friendly, thread-pool-parallel kernels (packed
//     GEMM microkernel, destination-row-block SpMM, parallel elementwise).
//
// The optimized kernels are *bitwise deterministic*: every output element is
// accumulated by exactly one thread in a fixed order that does not depend on
// the pool size, so results are identical across runs and worker counts
// (tests/test_chaos.cpp and tests/test_kernels.cpp assert this). For the
// SpMM/elementwise family the fixed order matches the reference order, so
// kRef and kOpt agree bitwise; GEMM uses a different (register-tiled)
// accumulation order and agrees within a tight ULP bound instead.
//
// Selection: the SALIENT_KERNEL environment variable ("ref" or "opt", read
// once at first use, default "opt") or set_kernel_kind() from code. Tests
// and benchmarks can also redirect the kernels onto a private pool with
// set_kernel_pool() to measure scaling at fixed worker counts.
#pragma once

#include <cstdint>

#include "util/thread_pool.h"

namespace salient::ops {

enum class KernelKind {
  kRef,  ///< serial reference loops
  kOpt,  ///< vectorized + parallel kernels
};

/// Active kernel implementation. First call reads SALIENT_KERNEL ("ref"
/// selects the reference path; anything else, including unset, selects the
/// optimized path).
KernelKind kernel_kind();

/// Override the kernel selection (benchmarks/tests; not thread-safe with
/// concurrently running kernels).
void set_kernel_kind(KernelKind kind);

/// Pool the optimized kernels run on. Defaults to ThreadPool::global().
ThreadPool& kernel_pool();

/// Redirect kernels onto `pool` (nullptr restores the global pool). The
/// caller keeps ownership and must keep the pool alive while kernels run.
void set_kernel_pool(ThreadPool* pool);

/// Shared cost heuristic: one threshold below which every kernel stays
/// serial so small serve-path tensors never pay pool-dispatch latency.
/// `work` is the total number of scalar operations (≈ elements touched).
inline constexpr std::int64_t kParallelGrain = 1 << 14;

/// Per-op grain classes: kernels declare which cost regime they are in and
/// the table below picks the serial/parallel threshold.
///
///   * kCompute — FLOP-bound (GEMM, SpMM forward, softmax): each loaded byte
///     feeds multiple arithmetic ops, so extra threads buy real speedup as
///     soon as the range clears the dispatch cost (kParallelGrain).
///   * kMemoryBound — pure data movement or one-flop-per-byte streams
///     (gather/scatter rows, SpMM backward scatter, large elementwise). A
///     single core already saturates most of the sustainable memory
///     bandwidth on these, so splitting the range mostly adds dispatch +
///     cache-line handoff overhead — the BENCH_kernels ×8 regressions
///     (gather_rows 0.89x, scatter_add_rows 0.78x, spmm_*_bwd 0.76–0.84x)
///     were exactly this. Such ops stay serial until the range is large
///     enough (kMemoryBoundGrain) that per-thread streams are long enough to
///     amortize the handoff and win on multi-channel machines.
enum class GrainClass {
  kCompute,      ///< FLOP-bound: parallelize above kParallelGrain
  kMemoryBound,  ///< bandwidth-bound: parallelize above kMemoryBoundGrain
};

/// Threshold (total elements touched) for GrainClass::kMemoryBound ops. 2^24
/// elements ≈ 64 MB of f32 traffic — well past L2/LLC, where splitting
/// across cores can actually add memory channels instead of just contending
/// for one prefetch stream. Training-batch-sized gathers/scatters (a few
/// million elements) stay serial.
inline constexpr std::int64_t kMemoryBoundGrain = 1 << 24;

/// True when `work` clears the grain and the kernel pool has >1 worker.
bool use_parallel(std::int64_t work);

/// Grain-table overload: `work` is compared against the class threshold.
bool use_parallel(std::int64_t work, GrainClass cls);

/// Minimum *output columns* for column-decomposed reductions (sum_rows) to
/// parallelize. Those kernels split the output vector across threads and
/// sweep every input row, so a narrow output (e.g. 256 floats = 16 cache
/// lines shared by 8 threads over thousands of row passes) false-shares its
/// way to a slowdown regardless of total work — the BENCH_kernels
/// sum_rows_8kx256 regression. Below this width the reduction runs serial;
/// above it each thread owns >= ~2 KB of the output and sharing is confined
/// to block boundaries.
inline constexpr std::int64_t kReduceColumnGrain = 4096;

/// Run fn over [0, n) — chunked on the kernel pool when `work` clears the
/// cost heuristic, serially otherwise. fn receives (begin, end). fn must be
/// safe to run from pool workers and must write disjoint outputs per index
/// so results stay deterministic under any chunking.
template <typename Fn>
void parallel_for_n(std::int64_t n, std::int64_t work, const Fn& fn,
                    GrainClass cls = GrainClass::kCompute) {
  if (n <= 0) return;
  if (use_parallel(work, cls)) {
    kernel_pool().parallel_for(0, n, fn);
  } else {
    fn(0, n);
  }
}

}  // namespace salient::ops
