// Blocked dense matrix multiply.
//
// Stands in for the cuBLAS/ATen GEMMs that dominate the paper's GPU training
// phase. The kernel is a cache-blocked i-k-j loop (unit-stride inner loop so
// the compiler can vectorize) parallelized over row blocks with the global
// thread pool. Transposed operands are materialized into a packed buffer
// once, which keeps the hot loop unit-stride for every trans_a/trans_b combo.
#include <cstring>
#include <stdexcept>
#include <vector>

#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace salient::ops {

namespace {

constexpr std::int64_t kBlockK = 128;
constexpr std::int64_t kBlockJ = 256;

/// C[M,N] += A[M,K] * B[K,N], all row-major contiguous.
template <typename T>
void gemm_rowmajor(const T* a, const T* b, T* c, std::int64_t m,
                   std::int64_t k, std::int64_t n) {
  auto body = [&](std::int64_t i_begin, std::int64_t i_end) {
    for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
      const std::int64_t k_end = std::min(kk + kBlockK, k);
      for (std::int64_t jj = 0; jj < n; jj += kBlockJ) {
        const std::int64_t j_end = std::min(jj + kBlockJ, n);
        for (std::int64_t i = i_begin; i < i_end; ++i) {
          T* crow = c + i * n;
          const T* arow = a + i * k;
          for (std::int64_t p = kk; p < k_end; ++p) {
            const T av = arow[p];
            if (av == T(0)) continue;
            const T* brow = b + p * n;
            for (std::int64_t j = jj; j < j_end; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  };
  // Parallelize across row blocks; small problems stay serial.
  if (m * n * k >= (1 << 20) && ThreadPool::global().size() > 1) {
    ThreadPool::global().parallel_for(0, m, body);
  } else {
    body(0, m);
  }
}

/// Materialize the transpose of a row-major [r, c] matrix into out ([c, r]).
template <typename T>
void transpose_into(const T* src, T* out, std::int64_t r, std::int64_t c) {
  constexpr std::int64_t kTile = 32;
  for (std::int64_t ii = 0; ii < r; ii += kTile) {
    const std::int64_t i_end = std::min(ii + kTile, r);
    for (std::int64_t jj = 0; jj < c; jj += kTile) {
      const std::int64_t j_end = std::min(jj + kTile, c);
      for (std::int64_t i = ii; i < i_end; ++i) {
        for (std::int64_t j = jj; j < j_end; ++j) {
          out[j * r + i] = src[i * c + j];
        }
      }
    }
  }
}

template <typename T>
Tensor matmul_typed(const Tensor& a, const Tensor& b, bool trans_a,
                    bool trans_b) {
  const std::int64_t m = trans_a ? a.size(1) : a.size(0);
  const std::int64_t k = trans_a ? a.size(0) : a.size(1);
  const std::int64_t kb = trans_b ? b.size(1) : b.size(0);
  const std::int64_t n = trans_b ? b.size(0) : b.size(1);
  if (k != kb) {
    throw std::runtime_error("matmul: inner dimension mismatch: " + a.str() +
                             " x " + b.str());
  }
  Tensor out({m, n}, a.dtype());

  const T* pa = a.data<T>();
  const T* pb = b.data<T>();
  std::vector<T> a_packed, b_packed;
  if (trans_a) {
    a_packed.resize(static_cast<std::size_t>(m) * k);
    transpose_into(pa, a_packed.data(), a.size(0), a.size(1));
    pa = a_packed.data();
  }
  if (trans_b) {
    b_packed.resize(static_cast<std::size_t>(k) * n);
    transpose_into(pb, b_packed.data(), b.size(0), b.size(1));
    pb = b_packed.data();
  }
  gemm_rowmajor(pa, pb, out.data<T>(), m, k, n);
  return out;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  if (a.dim() != 2 || b.dim() != 2) {
    throw std::runtime_error("matmul: both operands must be 2-D");
  }
  if (a.dtype() != b.dtype()) {
    throw std::runtime_error("matmul: dtype mismatch");
  }
  switch (a.dtype()) {
    case DType::kF32:
      return matmul_typed<float>(a, b, trans_a, trans_b);
    case DType::kF64:
      return matmul_typed<double>(a, b, trans_a, trans_b);
    default:
      throw std::runtime_error("matmul: float tensor required");
  }
}

}  // namespace salient::ops
