// Dense matrix multiply with runtime kernel selection.
//
// Stands in for the cuBLAS/ATen GEMMs that dominate the paper's GPU training
// phase. Two implementations live behind ops::matmul (see
// tensor/kernel_config.h):
//
//   * reference (SALIENT_KERNEL=ref) — the original cache-blocked i-k-j
//     loop, kept as the ground truth for A/B benchmarks and gradcheck;
//   * optimized (default) — a register-blocked microkernel over packed
//     panels (tensor/gemm_kernel.h), parallelized across MR-row panels of C
//     on the kernel pool. Packing keeps every hot loop unit-stride for all
//     trans_a/trans_b combinations, and the branch-free k loop lets the
//     compiler emit FMA vector code.
//
// Determinism: each C element is accumulated by one thread in ascending-k
// order, so the optimized result is bitwise identical across runs and pool
// sizes. It differs from the reference only by floating-point association
// (register tiling), within a tight ULP bound (tests/test_kernels.cpp).
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "tensor/gemm_kernel.h"
#include "tensor/kernel_config.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace salient::ops {

namespace {

constexpr std::int64_t kBlockK = 128;
constexpr std::int64_t kBlockJ = 256;

/// Reference: C[M,N] += A[M,K] * B[K,N], all row-major contiguous.
template <typename T>
void gemm_ref(const T* a, const T* b, T* c, std::int64_t m, std::int64_t k,
              std::int64_t n) {
  auto body = [&](std::int64_t i_begin, std::int64_t i_end) {
    for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
      const std::int64_t k_end = std::min(kk + kBlockK, k);
      for (std::int64_t jj = 0; jj < n; jj += kBlockJ) {
        const std::int64_t j_end = std::min(jj + kBlockJ, n);
        for (std::int64_t i = i_begin; i < i_end; ++i) {
          T* crow = c + i * n;
          const T* arow = a + i * k;
          for (std::int64_t p = kk; p < k_end; ++p) {
            const T av = arow[p];
            if (av == T(0)) continue;
            const T* brow = b + p * n;
            for (std::int64_t j = jj; j < j_end; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  };
  // Parallelize across row blocks; small problems stay serial.
  if (m * n * k >= (1 << 20) && kernel_pool().size() > 1) {
    kernel_pool().parallel_for(0, m, body);
  } else {
    body(0, m);
  }
}

/// Inner-dimension block size for the optimized path: bounds one packed B
/// column panel to kKC * NR elements (32 KiB for f32 and f64 alike), small
/// enough to stay L1-resident while a thread sweeps its row panels.
constexpr std::int64_t kBlockKC = 256;

/// Optimized: packed panels + register-tiled microkernel, parallel over
/// MR-row panels of C.
///
/// Loop order is GotoBLAS-style: the k dimension is processed in kKC-sized
/// blocks; within a block each thread walks column panels in the outer loop
/// and its row panels in the inner loop, so the 32 KiB B panel it is
/// multiplying stays hot in L1 while the (smaller) A panels stream through.
/// The first cut of this kernel used the opposite order — every row panel
/// swept all of packed B — and was L2-bandwidth-bound at ~20% of FMA peak.
///
/// Determinism: C is partitioned into MR-row panels, each owned by exactly
/// one thread, and every element accumulates in ascending-k order (k blocks
/// in order, ascending k within a block), so the result is bitwise identical
/// across runs and pool sizes.
template <typename T>
void gemm_opt(const T* a, const T* b, T* c, std::int64_t m, std::int64_t k,
              std::int64_t n) {
  using namespace detail;
  constexpr std::int64_t kNR = kGemmNR<T>;
  const std::int64_t panels = gemm_num_col_panels<T>(n);
  const std::int64_t row_panels = (m + kGemmMR - 1) / kGemmMR;
  const std::int64_t kc_max = std::min(kBlockKC, k);
  // Reused per-thread scratch: a fresh allocation here costs a page-fault
  // storm on every call (the packing loops touch each page exactly once),
  // which at MFG sizes is a measurable slice of the whole GEMM. new[] (not
  // std::vector) so growth skips value-initialization — packing overwrites
  // every element. matmul never calls itself, so one buffer per thread is
  // safe even when GEMMs run from pool workers.
  struct Scratch {
    std::unique_ptr<T[]> buf;
    std::size_t cap = 0;
    T* get(std::size_t want) {
      if (cap < want) {
        buf.reset(new T[want]);
        cap = want;
      }
      return buf.get();
    }
  };
  thread_local Scratch scratch;
  const std::size_t b_elems = static_cast<std::size_t>(panels * kc_max * kNR);
  T* const b_packed = scratch.get(
      b_elems + static_cast<std::size_t>(row_panels * kc_max * kGemmMR));
  T* const a_packed = b_packed + b_elems;

  for (std::int64_t kk = 0; kk < k; kk += kBlockKC) {
    const std::int64_t kc = std::min(kBlockKC, k - kk);
    parallel_for_n(panels, kc * n, [&](std::int64_t pb, std::int64_t pe) {
      for (std::int64_t jp = pb; jp < pe; ++jp) {
        const std::int64_t j0 = jp * kNR;
        const std::int64_t w = std::min(kNR, n - j0);
        T* dst = b_packed + jp * kc * kNR;
        for (std::int64_t p = 0; p < kc; ++p) {
          const T* src = b + (kk + p) * n + j0;
          for (std::int64_t cix = 0; cix < w; ++cix) dst[cix] = src[cix];
          for (std::int64_t cix = w; cix < kNR; ++cix) dst[cix] = T(0);
          dst += kNR;
        }
      }
    });
    parallel_for_n(row_panels, m * kc, [&](std::int64_t pb, std::int64_t pe) {
      for (std::int64_t ip = pb; ip < pe; ++ip) {
        gemm_pack_a(a, k, a_packed + ip * kc * kGemmMR, ip * kGemmMR,
                    std::min(kGemmMR, m - ip * kGemmMR), kk, kc);
      }
    });
    parallel_for_n(row_panels, m * n * kc,
                   [&](std::int64_t pb, std::int64_t pe) {
                     for (std::int64_t jp = 0; jp < panels; ++jp) {
                       const std::int64_t j0 = jp * kNR;
                       const std::int64_t w = std::min(kNR, n - j0);
                       const T* bp = b_packed + jp * kc * kNR;
                       for (std::int64_t ip = pb; ip < pe; ++ip) {
                         const std::int64_t i0 = ip * kGemmMR;
                         const std::int64_t h = std::min(kGemmMR, m - i0);
                         gemm_microkernel(
                             a_packed + ip * kc * kGemmMR, bp, kc, c,
                             n, i0, h, j0, w, kk != 0);
                       }
                     }
                   });
  }
}

/// Materialize the transpose of a row-major [r, c] matrix into out ([c, r]).
template <typename T>
void transpose_into(const T* src, T* out, std::int64_t r, std::int64_t c) {
  constexpr std::int64_t kTile = 32;
  for (std::int64_t ii = 0; ii < r; ii += kTile) {
    const std::int64_t i_end = std::min(ii + kTile, r);
    for (std::int64_t jj = 0; jj < c; jj += kTile) {
      const std::int64_t j_end = std::min(jj + kTile, c);
      for (std::int64_t i = ii; i < i_end; ++i) {
        for (std::int64_t j = jj; j < j_end; ++j) {
          out[j * r + i] = src[i * c + j];
        }
      }
    }
  }
}

template <typename T>
Tensor matmul_typed(const Tensor& a, const Tensor& b, bool trans_a,
                    bool trans_b) {
  const std::int64_t m = trans_a ? a.size(1) : a.size(0);
  const std::int64_t k = trans_a ? a.size(0) : a.size(1);
  const std::int64_t kb = trans_b ? b.size(1) : b.size(0);
  const std::int64_t n = trans_b ? b.size(0) : b.size(1);
  if (k != kb) {
    throw std::runtime_error("matmul: inner dimension mismatch: " + a.str() +
                             " x " + b.str());
  }
  Tensor out({m, n}, a.dtype());

  const T* pa = a.data<T>();
  const T* pb = b.data<T>();
  std::vector<T> a_packed, b_packed;
  if (trans_a) {
    a_packed.resize(static_cast<std::size_t>(m) * k);
    transpose_into(pa, a_packed.data(), a.size(0), a.size(1));
    pa = a_packed.data();
  }
  if (trans_b) {
    b_packed.resize(static_cast<std::size_t>(k) * n);
    transpose_into(pb, b_packed.data(), b.size(0), b.size(1));
    pb = b_packed.data();
  }
  if (kernel_kind() == KernelKind::kRef) {
    gemm_ref(pa, pb, out.data<T>(), m, k, n);
  } else {
    gemm_opt(pa, pb, out.data<T>(), m, k, n);
  }
  return out;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  if (a.dim() != 2 || b.dim() != 2) {
    throw std::runtime_error("matmul: both operands must be 2-D");
  }
  if (a.dtype() != b.dtype()) {
    throw std::runtime_error("matmul: dtype mismatch");
  }
  switch (a.dtype()) {
    case DType::kF32:
      return matmul_typed<float>(a, b, trans_a, trans_b);
    case DType::kF64:
      return matmul_typed<double>(a, b, trans_a, trans_b);
    default:
      throw std::runtime_error("matmul: float tensor required");
  }
}

}  // namespace salient::ops
