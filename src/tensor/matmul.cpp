// Dense matrix multiply with runtime kernel selection.
//
// Stands in for the cuBLAS/ATen GEMMs that dominate the paper's GPU training
// phase. Two implementations live behind ops::matmul (see
// tensor/kernel_config.h):
//
//   * reference (SALIENT_KERNEL=ref) — the original cache-blocked i-k-j
//     loop, kept as the ground truth for A/B benchmarks and gradcheck;
//   * optimized (default) — a register-blocked microkernel over packed
//     panels (tensor/gemm_kernel.h), parallelized across MR-row panels of C
//     on the kernel pool. Packing keeps every hot loop unit-stride for all
//     trans_a/trans_b combinations, and the branch-free k loop lets the
//     compiler emit FMA vector code.
//
// Determinism: each C element is accumulated by one thread in ascending-k
// order, so the optimized result is bitwise identical across runs and pool
// sizes. It differs from the reference only by floating-point association
// (register tiling), within a tight ULP bound (tests/test_kernels.cpp).
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "tensor/gemm_kernel.h"
#include "tensor/kernel_config.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"
#include "util/half.h"
#include "util/thread_pool.h"

namespace salient::ops {

namespace {

constexpr std::int64_t kBlockK = 128;
constexpr std::int64_t kBlockJ = 256;

/// Reference: C[M,N] += A[M,K] * B[K,N], all row-major contiguous.
template <typename T>
void gemm_ref(const T* a, const T* b, T* c, std::int64_t m, std::int64_t k,
              std::int64_t n) {
  auto body = [&](std::int64_t i_begin, std::int64_t i_end) {
    for (std::int64_t kk = 0; kk < k; kk += kBlockK) {
      const std::int64_t k_end = std::min(kk + kBlockK, k);
      for (std::int64_t jj = 0; jj < n; jj += kBlockJ) {
        const std::int64_t j_end = std::min(jj + kBlockJ, n);
        for (std::int64_t i = i_begin; i < i_end; ++i) {
          T* crow = c + i * n;
          const T* arow = a + i * k;
          for (std::int64_t p = kk; p < k_end; ++p) {
            const T av = arow[p];
            if (av == T(0)) continue;
            const T* brow = b + p * n;
            for (std::int64_t j = jj; j < j_end; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  };
  // Parallelize across row blocks; small problems stay serial.
  if (m * n * k >= (1 << 20) && kernel_pool().size() > 1) {
    kernel_pool().parallel_for(0, m, body);
  } else {
    body(0, m);
  }
}

/// Inner-dimension block size for the optimized path: bounds one packed B
/// column panel to kKC * NR elements (32 KiB for f32 and f64 alike), small
/// enough to stay L1-resident while a thread sweeps its row panels.
constexpr std::int64_t kBlockKC = 256;

template <typename T>
void transpose_into(const T* src, T* out, std::int64_t r, std::int64_t c);

/// Optimized: packed panels + register-tiled microkernel, parallel over
/// MR-row panels of C.
///
/// Loop order is GotoBLAS-style: the k dimension is processed in kKC-sized
/// blocks; within a block each thread walks column panels in the outer loop
/// and its row panels in the inner loop, so the 32 KiB B panel it is
/// multiplying stays hot in L1 while the (smaller) A panels stream through.
/// The first cut of this kernel used the opposite order — every row panel
/// swept all of packed B — and was L2-bandwidth-bound at ~20% of FMA peak.
///
/// Determinism: C is partitioned into MR-row panels, each owned by exactly
/// one thread, and every element accumulates in ascending-k order (k blocks
/// in order, ascending k within a block), so the result is bitwise identical
/// across runs and pool sizes.
template <typename T>
void gemm_opt(const T* a, const T* b, T* c, std::int64_t m, std::int64_t k,
              std::int64_t n) {
  using namespace detail;
  constexpr std::int64_t kNR = kGemmNR<T>;
  const std::int64_t panels = gemm_num_col_panels<T>(n);
  const std::int64_t row_panels = (m + kGemmMR - 1) / kGemmMR;
  const std::int64_t kc_max = std::min(kBlockKC, k);
  // Reused per-thread scratch: a fresh allocation here costs a page-fault
  // storm on every call (the packing loops touch each page exactly once),
  // which at MFG sizes is a measurable slice of the whole GEMM. new[] (not
  // std::vector) so growth skips value-initialization — packing overwrites
  // every element. matmul never calls itself, so one buffer per thread is
  // safe even when GEMMs run from pool workers.
  struct Scratch {
    std::unique_ptr<T[]> buf;
    std::size_t cap = 0;
    T* get(std::size_t want) {
      if (cap < want) {
        buf.reset(new T[want]);
        cap = want;
      }
      return buf.get();
    }
  };
  thread_local Scratch scratch;
  const std::size_t b_elems = static_cast<std::size_t>(panels * kc_max * kNR);
  T* const b_packed = scratch.get(
      b_elems + static_cast<std::size_t>(row_panels * kc_max * kGemmMR));
  T* const a_packed = b_packed + b_elems;

  for (std::int64_t kk = 0; kk < k; kk += kBlockKC) {
    const std::int64_t kc = std::min(kBlockKC, k - kk);
    parallel_for_n(panels, kc * n, [&](std::int64_t pb, std::int64_t pe) {
      for (std::int64_t jp = pb; jp < pe; ++jp) {
        const std::int64_t j0 = jp * kNR;
        const std::int64_t w = std::min(kNR, n - j0);
        T* dst = b_packed + jp * kc * kNR;
        for (std::int64_t p = 0; p < kc; ++p) {
          const T* src = b + (kk + p) * n + j0;
          for (std::int64_t cix = 0; cix < w; ++cix) dst[cix] = src[cix];
          for (std::int64_t cix = w; cix < kNR; ++cix) dst[cix] = T(0);
          dst += kNR;
        }
      }
    });
    parallel_for_n(row_panels, m * kc, [&](std::int64_t pb, std::int64_t pe) {
      for (std::int64_t ip = pb; ip < pe; ++ip) {
        gemm_pack_a(a, k, a_packed + ip * kc * kGemmMR, ip * kGemmMR,
                    std::min(kGemmMR, m - ip * kGemmMR), kk, kc);
      }
    });
    parallel_for_n(row_panels, m * n * kc,
                   [&](std::int64_t pb, std::int64_t pe) {
                     for (std::int64_t jp = 0; jp < panels; ++jp) {
                       const std::int64_t j0 = jp * kNR;
                       const std::int64_t w = std::min(kNR, n - j0);
                       const T* bp = b_packed + jp * kc * kNR;
                       for (std::int64_t ip = pb; ip < pe; ++ip) {
                         const std::int64_t i0 = ip * kGemmMR;
                         const std::int64_t h = std::min(kGemmMR, m - i0);
                         gemm_microkernel(
                             a_packed + ip * kc * kGemmMR, bp, kc, c,
                             n, i0, h, j0, w, kk != 0);
                       }
                     }
                   });
  }
}

/// gemm_opt with a fused store-phase epilogue: identical packing, loop
/// order, and accumulation (so the product itself is bitwise equal to
/// gemm_opt's), but the final k block routes through gemm_microkernel_epi,
/// which applies bias/ReLU/dropout to each finished tile while it is still
/// on-core and streams out the combined backward mask. Earlier k blocks use
/// the plain microkernel — the epilogue must see the completed sum, so it
/// can only run once per output element.
template <typename T>
void gemm_opt_epi(const T* a, const T* b, T* c, std::int64_t m, std::int64_t k,
                  std::int64_t n, const detail::GemmEpilogue<T>& epi) {
  using namespace detail;
  constexpr std::int64_t kNR = kGemmNR<T>;
  const std::int64_t panels = gemm_num_col_panels<T>(n);
  const std::int64_t row_panels = (m + kGemmMR - 1) / kGemmMR;
  const std::int64_t kc_max = std::min(kBlockKC, k);
  struct Scratch {
    std::unique_ptr<T[]> buf;
    std::size_t cap = 0;
    T* get(std::size_t want) {
      if (cap < want) {
        buf.reset(new T[want]);
        cap = want;
      }
      return buf.get();
    }
  };
  thread_local Scratch scratch;
  const std::size_t b_elems = static_cast<std::size_t>(panels * kc_max * kNR);
  T* const b_packed = scratch.get(
      b_elems + static_cast<std::size_t>(row_panels * kc_max * kGemmMR));
  T* const a_packed = b_packed + b_elems;

  for (std::int64_t kk = 0; kk < k; kk += kBlockKC) {
    const std::int64_t kc = std::min(kBlockKC, k - kk);
    const bool last_block = kk + kc == k;
    parallel_for_n(panels, kc * n, [&](std::int64_t pb, std::int64_t pe) {
      for (std::int64_t jp = pb; jp < pe; ++jp) {
        const std::int64_t j0 = jp * kNR;
        const std::int64_t w = std::min(kNR, n - j0);
        T* dst = b_packed + jp * kc * kNR;
        for (std::int64_t p = 0; p < kc; ++p) {
          const T* src = b + (kk + p) * n + j0;
          for (std::int64_t cix = 0; cix < w; ++cix) dst[cix] = src[cix];
          for (std::int64_t cix = w; cix < kNR; ++cix) dst[cix] = T(0);
          dst += kNR;
        }
      }
    });
    parallel_for_n(row_panels, m * kc, [&](std::int64_t pb, std::int64_t pe) {
      for (std::int64_t ip = pb; ip < pe; ++ip) {
        gemm_pack_a(a, k, a_packed + ip * kc * kGemmMR, ip * kGemmMR,
                    std::min(kGemmMR, m - ip * kGemmMR), kk, kc);
      }
    });
    parallel_for_n(row_panels, m * n * kc,
                   [&](std::int64_t pb, std::int64_t pe) {
                     for (std::int64_t jp = 0; jp < panels; ++jp) {
                       const std::int64_t j0 = jp * kNR;
                       const std::int64_t w = std::min(kNR, n - j0);
                       const T* bp = b_packed + jp * kc * kNR;
                       for (std::int64_t ip = pb; ip < pe; ++ip) {
                         const std::int64_t i0 = ip * kGemmMR;
                         const std::int64_t h = std::min(kGemmMR, m - i0);
                         if (last_block) {
                           gemm_microkernel_epi(a_packed + ip * kc * kGemmMR,
                                                bp, kc, c, n, i0, h, j0, w,
                                                kk != 0, epi);
                         } else {
                           gemm_microkernel(a_packed + ip * kc * kGemmMR, bp,
                                            kc, c, n, i0, h, j0, w, kk != 0);
                         }
                       }
                     }
                   });
  }
}

/// Mixed-precision gemm_opt: operands are read through row loaders that
/// decompress a contiguous run of elements straight into the packing scratch
/// ([kc][MR] for A via a small row-major staging tile, [kc][NR] for B), so an
/// F32 copy of a compressed operand never materializes on this path. A row
/// loader has signature `void(row, k0, len, float* dst)` and writes `len`
/// decompressed elements of the given source row starting at column `k0`.
///
/// Loop order, panel ownership, and accumulation order are identical to
/// gemm_opt, so the result is bitwise reproducible across runs and pool
/// sizes — and bitwise identical to up-converting the operand to F32 first
/// and calling gemm_opt, because f16 -> f32 (and the affine int8
/// dequantization) yield the same f32 values either way.
template <typename ARowFn, typename BRowFn>
void gemm_opt_loaded(const ARowFn& arow, const BRowFn& brow, float* c,
                     std::int64_t m, std::int64_t k, std::int64_t n) {
  using namespace detail;
  using T = float;
  constexpr std::int64_t kNR = kGemmNR<T>;
  const std::int64_t panels = gemm_num_col_panels<T>(n);
  const std::int64_t row_panels = (m + kGemmMR - 1) / kGemmMR;
  const std::int64_t kc_max = std::min(kBlockKC, k);
  struct Scratch {
    std::unique_ptr<T[]> buf;
    std::size_t cap = 0;
    T* get(std::size_t want) {
      if (cap < want) {
        buf.reset(new T[want]);
        cap = want;
      }
      return buf.get();
    }
  };
  thread_local Scratch scratch;
  const std::size_t b_elems = static_cast<std::size_t>(panels * kc_max * kNR);
  T* const b_packed = scratch.get(
      b_elems + static_cast<std::size_t>(row_panels * kc_max * kGemmMR));
  T* const a_packed = b_packed + b_elems;

  for (std::int64_t kk = 0; kk < k; kk += kBlockKC) {
    const std::int64_t kc = std::min(kBlockKC, k - kk);
    parallel_for_n(panels, kc * n, [&](std::int64_t pb, std::int64_t pe) {
      for (std::int64_t jp = pb; jp < pe; ++jp) {
        const std::int64_t j0 = jp * kNR;
        const std::int64_t w = std::min(kNR, n - j0);
        T* dst = b_packed + jp * kc * kNR;
        for (std::int64_t p = 0; p < kc; ++p) {
          brow(kk + p, j0, w, dst);
          for (std::int64_t cix = w; cix < kNR; ++cix) dst[cix] = T(0);
          dst += kNR;
        }
      }
    });
    parallel_for_n(row_panels, m * kc, [&](std::int64_t pb, std::int64_t pe) {
      for (std::int64_t ip = pb; ip < pe; ++ip) {
        const std::int64_t i0 = ip * kGemmMR;
        const std::int64_t h = std::min(kGemmMR, m - i0);
        // Decompress each source row's kc-long segment contiguously (bulk
        // converters want unit stride), then transpose the tiny tile into
        // the [kc][MR] panel layout.
        T stage[kGemmMR][kBlockKC];
        for (std::int64_t r = 0; r < h; ++r) arow(i0 + r, kk, kc, stage[r]);
        T* packed = a_packed + ip * kc * kGemmMR;
        for (std::int64_t p = 0; p < kc; ++p) {
          T* dst = packed + p * kGemmMR;
          for (std::int64_t r = 0; r < h; ++r) dst[r] = stage[r][p];
          for (std::int64_t r = h; r < kGemmMR; ++r) dst[r] = T(0);
        }
      }
    });
    parallel_for_n(row_panels, m * n * kc,
                   [&](std::int64_t pb, std::int64_t pe) {
                     for (std::int64_t jp = 0; jp < panels; ++jp) {
                       const std::int64_t j0 = jp * kNR;
                       const std::int64_t w = std::min(kNR, n - j0);
                       const T* bp = b_packed + jp * kc * kNR;
                       for (std::int64_t ip = pb; ip < pe; ++ip) {
                         const std::int64_t i0 = ip * kGemmMR;
                         const std::int64_t h = std::min(kGemmMR, m - i0);
                         gemm_microkernel(
                             a_packed + ip * kc * kGemmMR, bp, kc, c,
                             n, i0, h, j0, w, kk != 0);
                       }
                     }
                   });
  }
}

/// Bulk-convert an f16 matrix to a freshly allocated f32 tensor (cold path:
/// the reference kernel and transposed mixed operands).
Tensor half_matrix_to_f32(const Tensor& a) {
  Tensor out(a.shape(), DType::kF32);
  half_to_float_n(a.data<Half>(), out.data<float>(),
                  static_cast<std::size_t>(a.numel()));
  return out;
}

/// Mixed f16/f32 matmul: either operand (or both) may be kF16; the result is
/// kF32. Untransposed f16 operands are decompressed inside the packing stage
/// by gemm_opt_loaded; transposed ones (backward-pass shapes, not the
/// feature hot path) are materialized as f32 first, exactly like
/// matmul_typed's transpose staging.
Tensor matmul_mixed(const Tensor& a, const Tensor& b, bool trans_a,
                    bool trans_b) {
  const std::int64_t m = trans_a ? a.size(1) : a.size(0);
  const std::int64_t k = trans_a ? a.size(0) : a.size(1);
  const std::int64_t kb = trans_b ? b.size(1) : b.size(0);
  const std::int64_t n = trans_b ? b.size(0) : b.size(1);
  if (k != kb) {
    throw std::runtime_error("matmul: inner dimension mismatch: " + a.str() +
                             " x " + b.str());
  }
  Tensor out({m, n}, DType::kF32);

  // Resolve each operand to either a raw f16 row source or an f32 one
  // (materializing a converted/transposed copy when needed).
  const Half* a16 = nullptr;
  const float* a32 = nullptr;
  std::vector<float> a_stage;
  if (a.dtype() == DType::kF16 && !trans_a) {
    a16 = a.data<Half>();
  } else {
    Tensor af = a.dtype() == DType::kF16 ? half_matrix_to_f32(a) : a;
    if (trans_a) {
      a_stage.resize(static_cast<std::size_t>(m) * k);
      transpose_into(af.data<float>(), a_stage.data(), a.size(0), a.size(1));
      a32 = a_stage.data();
    } else if (a.dtype() == DType::kF16) {
      a_stage.assign(af.data<float>(), af.data<float>() + af.numel());
      a32 = a_stage.data();
    } else {
      a32 = a.data<float>();
    }
  }
  const Half* b16 = nullptr;
  const float* b32 = nullptr;
  std::vector<float> b_stage;
  if (b.dtype() == DType::kF16 && !trans_b) {
    b16 = b.data<Half>();
  } else {
    Tensor bf = b.dtype() == DType::kF16 ? half_matrix_to_f32(b) : b;
    if (trans_b) {
      b_stage.resize(static_cast<std::size_t>(k) * n);
      transpose_into(bf.data<float>(), b_stage.data(), b.size(0), b.size(1));
      b32 = b_stage.data();
    } else if (b.dtype() == DType::kF16) {
      b_stage.assign(bf.data<float>(), bf.data<float>() + bf.numel());
      b32 = b_stage.data();
    } else {
      b32 = b.data<float>();
    }
  }

  if (kernel_kind() == KernelKind::kRef) {
    // Reference: materialize f32 copies and run the ground-truth loop.
    std::vector<float> a_ref, b_ref;
    const float* pa = a32;
    const float* pb = b32;
    if (a16 != nullptr) {
      a_ref.resize(static_cast<std::size_t>(m) * k);
      half_to_float_n(a16, a_ref.data(), a_ref.size());
      pa = a_ref.data();
    }
    if (b16 != nullptr) {
      b_ref.resize(static_cast<std::size_t>(k) * n);
      half_to_float_n(b16, b_ref.data(), b_ref.size());
      pb = b_ref.data();
    }
    gemm_ref(pa, pb, out.data<float>(), m, k, n);
    return out;
  }

  auto a_f32row = [a32, k](std::int64_t i, std::int64_t k0, std::int64_t len,
                           float* dst) {
    std::memcpy(dst, a32 + i * k + k0, static_cast<std::size_t>(len) *
                                           sizeof(float));
  };
  auto a_f16row = [a16, k](std::int64_t i, std::int64_t k0, std::int64_t len,
                           float* dst) {
    half_to_float_n(a16 + i * k + k0, dst, static_cast<std::size_t>(len));
  };
  auto b_f32row = [b32, n](std::int64_t p, std::int64_t j0, std::int64_t len,
                           float* dst) {
    std::memcpy(dst, b32 + p * n + j0, static_cast<std::size_t>(len) *
                                           sizeof(float));
  };
  auto b_f16row = [b16, n](std::int64_t p, std::int64_t j0, std::int64_t len,
                           float* dst) {
    half_to_float_n(b16 + p * n + j0, dst, static_cast<std::size_t>(len));
  };
  float* c = out.data<float>();
  if (a16 != nullptr && b16 != nullptr) {
    gemm_opt_loaded(a_f16row, b_f16row, c, m, k, n);
  } else if (a16 != nullptr) {
    gemm_opt_loaded(a_f16row, b_f32row, c, m, k, n);
  } else if (b16 != nullptr) {
    gemm_opt_loaded(a_f32row, b_f16row, c, m, k, n);
  } else {
    gemm_opt_loaded(a_f32row, b_f32row, c, m, k, n);
  }
  return out;
}

/// Materialize the transpose of a row-major [r, c] matrix into out ([c, r]).
template <typename T>
void transpose_into(const T* src, T* out, std::int64_t r, std::int64_t c) {
  constexpr std::int64_t kTile = 32;
  for (std::int64_t ii = 0; ii < r; ii += kTile) {
    const std::int64_t i_end = std::min(ii + kTile, r);
    for (std::int64_t jj = 0; jj < c; jj += kTile) {
      const std::int64_t j_end = std::min(jj + kTile, c);
      for (std::int64_t i = ii; i < i_end; ++i) {
        for (std::int64_t j = jj; j < j_end; ++j) {
          out[j * r + i] = src[i * c + j];
        }
      }
    }
  }
}

template <typename T>
Tensor matmul_typed(const Tensor& a, const Tensor& b, bool trans_a,
                    bool trans_b) {
  const std::int64_t m = trans_a ? a.size(1) : a.size(0);
  const std::int64_t k = trans_a ? a.size(0) : a.size(1);
  const std::int64_t kb = trans_b ? b.size(1) : b.size(0);
  const std::int64_t n = trans_b ? b.size(0) : b.size(1);
  if (k != kb) {
    throw std::runtime_error("matmul: inner dimension mismatch: " + a.str() +
                             " x " + b.str());
  }
  Tensor out({m, n}, a.dtype());

  const T* pa = a.data<T>();
  const T* pb = b.data<T>();
  std::vector<T> a_packed, b_packed;
  if (trans_a) {
    a_packed.resize(static_cast<std::size_t>(m) * k);
    transpose_into(pa, a_packed.data(), a.size(0), a.size(1));
    pa = a_packed.data();
  }
  if (trans_b) {
    b_packed.resize(static_cast<std::size_t>(k) * n);
    transpose_into(pb, b_packed.data(), b.size(0), b.size(1));
    pb = b_packed.data();
  }
  if (kernel_kind() == KernelKind::kRef) {
    gemm_ref(pa, pb, out.data<T>(), m, k, n);
  } else {
    gemm_opt(pa, pb, out.data<T>(), m, k, n);
  }
  return out;
}

template <typename T>
Tensor gemm_epilogue_typed(const Tensor& x, const Tensor& w,
                           const Tensor& bias, Epilogue ep, double dropout_p,
                           std::uint64_t seed, Tensor* mask_out) {
  const std::int64_t m = x.size(0), k = x.size(1), n = w.size(0);
  if (w.size(1) != k) {
    throw std::runtime_error("gemm_epilogue: inner dimension mismatch: " +
                             x.str() + " x " + w.str() + "^T");
  }
  if (ep != Epilogue::kNone &&
      (bias.dim() != 1 || bias.size(0) != n || bias.dtype() != x.dtype())) {
    throw std::runtime_error("gemm_epilogue: bias must be [N] of x's dtype");
  }
  if (ep == Epilogue::kBiasReluDropout && (dropout_p < 0 || dropout_p >= 1)) {
    throw std::invalid_argument("gemm_epilogue: bad dropout_p");
  }
  Tensor out({m, n}, x.dtype());
  T* pmask = nullptr;
  if (mask_out != nullptr &&
      (ep == Epilogue::kBiasRelu || ep == Epilogue::kBiasReluDropout)) {
    *mask_out = Tensor({m, n}, x.dtype());
    pmask = mask_out->data<T>();
  }
  // w is [N,K] (the nn::Linear layout); the packed path wants B row-major
  // [K,N], so materialize the transpose exactly like matmul(trans_b=true).
  std::vector<T> wt(static_cast<std::size_t>(k) * n);
  transpose_into(w.data<T>(), wt.data(), n, k);

  detail::GemmEpilogue<T> epi;
  epi.kind = ep;
  epi.bias = ep != Epilogue::kNone ? bias.data<T>() : nullptr;
  epi.mask = pmask;
  epi.n = n;
  if (ep == Epilogue::kBiasReluDropout) {
    epi.keep_scale = static_cast<T>(1.0 / (1.0 - dropout_p));
    epi.seed = seed;
    epi.drop_threshold = dropout_drop_threshold(dropout_p);
  }

  if (kernel_kind() == KernelKind::kRef) {
    // Reference: ground-truth GEMM, then the same epilogue math applied in
    // one serial elementwise pass (the branch-select forms mirror
    // gemm_microkernel_epi so ref and opt differ only by GEMM association).
    gemm_ref(x.data<T>(), wt.data(), out.data<T>(), m, k, n);
    T* pc = out.data<T>();
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        T pre = pc[i * n + j];
        if (ep != Epilogue::kNone) pre += epi.bias[j];
        switch (ep) {
          case Epilogue::kNone:
          case Epilogue::kBias:
            pc[i * n + j] = pre;
            break;
          case Epilogue::kBiasRelu: {
            const bool pos = pre > T(0);
            pc[i * n + j] = pos ? pre : T(0);
            if (pmask != nullptr) pmask[i * n + j] = pos ? T(1) : T(0);
            break;
          }
          case Epilogue::kBiasReluDropout: {
            const bool keep =
                dropout_keep(epi.seed, i * n + j, epi.drop_threshold);
            const bool pos = pre > T(0);
            pc[i * n + j] = pos && keep ? pre * epi.keep_scale : T(0);
            if (pmask != nullptr) {
              pmask[i * n + j] = pos && keep ? epi.keep_scale : T(0);
            }
            break;
          }
        }
      }
    }
  } else {
    gemm_opt_epi(x.data<T>(), wt.data(), out.data<T>(), m, k, n, epi);
  }
  return out;
}

}  // namespace

Tensor gemm_epilogue(const Tensor& x, const Tensor& w, const Tensor& bias,
                     Epilogue epilogue, double dropout_p, std::uint64_t seed,
                     Tensor* mask_out) {
  if (x.dim() != 2 || w.dim() != 2) {
    throw std::runtime_error("gemm_epilogue: x and w must be 2-D");
  }
  if (x.dtype() != w.dtype()) {
    throw std::runtime_error("gemm_epilogue: dtype mismatch");
  }
  switch (x.dtype()) {
    case DType::kF32:
      return gemm_epilogue_typed<float>(x, w, bias, epilogue, dropout_p, seed,
                                        mask_out);
    case DType::kF64:
      return gemm_epilogue_typed<double>(x, w, bias, epilogue, dropout_p,
                                         seed, mask_out);
    default:
      throw std::runtime_error("gemm_epilogue: float tensor required");
  }
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  if (a.dim() != 2 || b.dim() != 2) {
    throw std::runtime_error("matmul: both operands must be 2-D");
  }
  // Mixed precision: any combination of f16/f32 operands runs through the
  // decompress-in-pack path and yields f32 (the first-layer GEMM over a
  // half-precision feature batch, plus its backward shapes).
  const bool a_half = a.dtype() == DType::kF16;
  const bool b_half = b.dtype() == DType::kF16;
  if ((a_half || b_half) &&
      (a_half || a.dtype() == DType::kF32) &&
      (b_half || b.dtype() == DType::kF32)) {
    return matmul_mixed(a, b, trans_a, trans_b);
  }
  if (a.dtype() != b.dtype()) {
    throw std::runtime_error("matmul: dtype mismatch");
  }
  switch (a.dtype()) {
    case DType::kF32:
      return matmul_typed<float>(a, b, trans_a, trans_b);
    case DType::kF64:
      return matmul_typed<double>(a, b, trans_a, trans_b);
    default:
      throw std::runtime_error("matmul: float tensor required");
  }
}

Tensor matmul_compressed(const Tensor& a, const Tensor& a_scale,
                         const Tensor& a_zero, const Tensor& b, bool trans_b) {
  if (a.dim() != 2 || b.dim() != 2) {
    throw std::runtime_error("matmul_compressed: operands must be 2-D");
  }
  if (a.dtype() != DType::kInt8Q) {
    throw std::runtime_error("matmul_compressed: a must be i8q");
  }
  if (b.dtype() != DType::kF32) {
    throw std::runtime_error("matmul_compressed: b must be f32");
  }
  const std::int64_t m = a.size(0);
  const std::int64_t k = a.size(1);
  if (a_scale.dtype() != DType::kF32 || a_zero.dtype() != DType::kF32 ||
      a_scale.numel() != m || a_zero.numel() != m) {
    throw std::runtime_error(
        "matmul_compressed: a_scale/a_zero must be [M] f32");
  }
  const std::int64_t kb = trans_b ? b.size(1) : b.size(0);
  const std::int64_t n = trans_b ? b.size(0) : b.size(1);
  if (k != kb) {
    throw std::runtime_error("matmul_compressed: inner dimension mismatch: " +
                             a.str() + " x " + b.str());
  }
  if (kernel_kind() == KernelKind::kRef) {
    // Reference path: reconstruct the f32 matrix and reuse the ground-truth
    // pipeline (mixed matmul ref falls through to gemm_ref).
    return matmul(dequantize_rows(a, a_scale, a_zero), b, false, trans_b);
  }
  Tensor out({m, n}, DType::kF32);
  const std::int8_t* qa = a.data<std::int8_t>();
  const float* scales = a_scale.data<float>();
  const float* zeros = a_zero.data<float>();
  std::vector<float> b_stage;
  const float* pb = b.data<float>();
  if (trans_b) {
    b_stage.resize(static_cast<std::size_t>(k) * n);
    transpose_into(pb, b_stage.data(), b.size(0), b.size(1));
    pb = b_stage.data();
  }
  auto a_qrow = [qa, scales, zeros, k](std::int64_t i, std::int64_t k0,
                                       std::int64_t len, float* dst) {
    dequantize_row(qa + i * k + k0, len, scales[i], zeros[i], dst);
  };
  auto b_f32row = [pb, n](std::int64_t p, std::int64_t j0, std::int64_t len,
                          float* dst) {
    std::memcpy(dst, pb + p * n + j0,
                static_cast<std::size_t>(len) * sizeof(float));
  };
  gemm_opt_loaded(a_qrow, b_f32row, out.data<float>(), m, k, n);
  return out;
}

}  // namespace salient::ops
