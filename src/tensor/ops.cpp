// Dense + sparse CPU kernels with runtime selection (tensor/kernel_config.h).
//
// Every op has two implementations:
//   * reference (SALIENT_KERNEL=ref) — the original serial loops, kept
//     verbatim as ground truth for A/B benchmarks;
//   * optimized (default) — the same arithmetic restructured for
//     auto-vectorization (validation hoisted out of hot loops, branch-free
//     inner loops) and parallelized on the kernel pool.
//
// Determinism contract: the optimized kernels accumulate every output
// element in the same order as the reference — elementwise ops are
// trivially order-free, SpMM forwards parallelize over destination rows
// (per-row edge order unchanged), SpMM backwards scatter through an
// explicit CSR transpose whose per-source order equals the serial scatter
// order, and spmm_max_backward partitions by feature column. Results are
// therefore bitwise identical to the reference AND invariant to the pool
// size (tests/test_kernels.cpp asserts both; tests/test_chaos.cpp relies on
// the latter). The shared `parallel_for_n` cost heuristic keeps small
// serve-path tensors serial.
#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "tensor/kernel_config.h"
#include "util/rng.h"

namespace salient::ops {

namespace {

void check_float(const Tensor& t, const char* op) {
  if (t.dtype() != DType::kF32 && t.dtype() != DType::kF64) {
    throw std::runtime_error(std::string(op) + ": float tensor required");
  }
}

void check_same(const Tensor& a, const Tensor& b, const char* op) {
  if (a.dtype() != b.dtype() || a.shape() != b.shape()) {
    throw std::runtime_error(std::string(op) +
                             ": shape/dtype mismatch: " + a.str() + " vs " +
                             b.str());
  }
}

/// Run fn over [0, n): serial on the reference path, pool-parallel (above
/// the shared cost heuristic) on the optimized path. fn(begin, end) must
/// write disjoint outputs per index.
template <typename Fn>
void run_indexed(std::int64_t n, std::int64_t work, const Fn& fn,
                 GrainClass cls = GrainClass::kCompute) {
  if (kernel_kind() == KernelKind::kRef) {
    if (n > 0) fn(std::int64_t{0}, n);
  } else {
    parallel_for_n(n, work, fn, cls);
  }
}

/// Validate that every entry of `indices` lands in [0, limit) before the
/// hot loop runs, so the loop itself stays branch-free. Matches the
/// reference kernels' exception type and message.
void check_source_indices(const std::vector<std::int64_t>& indices,
                          std::int64_t limit, const char* name) {
  const auto lim = static_cast<std::uint64_t>(limit);
  std::uint64_t bad = 0;
  for (const std::int64_t ix : indices) {
    bad |= static_cast<std::uint64_t>(static_cast<std::uint64_t>(ix) >= lim);
  }
  if (bad) throw std::out_of_range(std::string(name) + ": source index");
}

/// Hint the next random source row into cache. The SpMM/gather family is
/// memory-latency-bound on x-row gathers (random rows of a matrix far larger
/// than L2); prefetching the head of a row a few edges ahead overlaps that
/// latency with the current row's accumulate. No semantic effect, so
/// bitwise determinism is untouched. The hardware prefetcher picks up the
/// rest of the row once the first lines are touched.
inline void prefetch_row_head(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
  __builtin_prefetch(static_cast<const char*>(p) + 64);
#else
  (void)p;
#endif
}

/// Edges to look ahead when prefetching gathered rows.
constexpr std::int64_t kPrefetchDist = 8;

/// Apply f elementwise over two same-shaped tensors into a new tensor.
template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, const char* name, F f) {
  check_float(a, name);
  check_same(a, b, name);
  Tensor out(a.shape(), a.dtype());
  const std::int64_t n = a.numel();
  // Three streams, one flop per element: memory-bound grain class.
  if (a.dtype() == DType::kF32) {
    const float* pa = a.data<float>();
    const float* pb = b.data<float>();
    float* po = out.data<float>();
    run_indexed(
        n, n,
        [&](std::int64_t ib, std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i) {
            po[i] = static_cast<float>(f(pa[i], pb[i]));
          }
        },
        GrainClass::kMemoryBound);
  } else {
    const double* pa = a.data<double>();
    const double* pb = b.data<double>();
    double* po = out.data<double>();
    run_indexed(
        n, n,
        [&](std::int64_t ib, std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i) po[i] = f(pa[i], pb[i]);
        },
        GrainClass::kMemoryBound);
  }
  return out;
}

template <typename F>
Tensor unary_op(const Tensor& x, const char* name, F f,
                GrainClass cls = GrainClass::kMemoryBound) {
  check_float(x, name);
  Tensor out(x.shape(), x.dtype());
  const std::int64_t n = x.numel();
  if (x.dtype() == DType::kF32) {
    const float* px = x.data<float>();
    float* po = out.data<float>();
    run_indexed(
        n, n,
        [&](std::int64_t ib, std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i) {
            po[i] = static_cast<float>(f(px[i]));
          }
        },
        cls);
  } else {
    const double* px = x.data<double>();
    double* po = out.data<double>();
    run_indexed(
        n, n,
        [&](std::int64_t ib, std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i) po[i] = f(px[i]);
        },
        cls);
  }
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "add", [](double x, double y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "sub", [](double x, double y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, "mul", [](double x, double y) { return x * y; });
}

Tensor scale(const Tensor& a, double alpha) {
  return unary_op(a, "scale", [alpha](double x) { return alpha * x; });
}

Tensor add_scaled(const Tensor& a, const Tensor& b, double alpha) {
  return binary_op(a, b, "add_scaled",
                   [alpha](double x, double y) { return x + alpha * y; });
}

void axpy_(Tensor& a, const Tensor& b, double alpha) {
  check_float(a, "axpy_");
  check_same(a, b, "axpy_");
  const std::int64_t n = a.numel();
  if (a.dtype() == DType::kF32) {
    float* pa = a.data<float>();
    const float* pb = b.data<float>();
    const auto al = static_cast<float>(alpha);
    run_indexed(
        n, n,
        [&](std::int64_t ib, std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i) pa[i] += al * pb[i];
        },
        GrainClass::kMemoryBound);
  } else {
    double* pa = a.data<double>();
    const double* pb = b.data<double>();
    run_indexed(
        n, n,
        [&](std::int64_t ib, std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i) pa[i] += alpha * pb[i];
        },
        GrainClass::kMemoryBound);
  }
}

Tensor relu(const Tensor& x) {
  return unary_op(x, "relu", [](double v) { return v > 0 ? v : 0.0; });
}

Tensor relu_mask(const Tensor& x) {
  return unary_op(x, "relu_mask", [](double v) { return v > 0 ? 1.0 : 0.0; });
}

Tensor leaky_relu(const Tensor& x, double slope) {
  return unary_op(x, "leaky_relu",
                  [slope](double v) { return v > 0 ? v : slope * v; });
}

Tensor leaky_relu_mask(const Tensor& x, double slope) {
  return unary_op(x, "leaky_relu_mask",
                  [slope](double v) { return v > 0 ? 1.0 : slope; });
}

Tensor exp(const Tensor& x) {
  // Transcendental per element — genuinely compute-bound.
  return unary_op(x, "exp", [](double v) { return std::exp(v); },
                  GrainClass::kCompute);
}

Tensor log(const Tensor& x) {
  return unary_op(x, "log", [](double v) { return std::log(v); },
                  GrainClass::kCompute);
}

Tensor sqrt(const Tensor& x) {
  return unary_op(x, "sqrt", [](double v) { return std::sqrt(v); });
}

Tensor add_row_broadcast(const Tensor& x, const Tensor& b) {
  check_float(x, "add_row_broadcast");
  if (x.dim() != 2 || b.dim() != 1 || b.size(0) != x.size(1) ||
      b.dtype() != x.dtype()) {
    throw std::runtime_error("add_row_broadcast: need [M,N] + [N]");
  }
  Tensor out(x.shape(), x.dtype());
  const std::int64_t m = x.size(0), n = x.size(1);
  auto run = [&](const auto* px, const auto* pb, auto* po) {
    run_indexed(
        m, m * n,
        [&](std::int64_t ib, std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
              po[i * n + j] = px[i * n + j] + pb[j];
            }
          }
        },
        GrainClass::kMemoryBound);
  };
  if (x.dtype() == DType::kF32) {
    run(x.data<float>(), b.data<float>(), out.data<float>());
  } else {
    run(x.data<double>(), b.data<double>(), out.data<double>());
  }
  return out;
}

Tensor sum_rows(const Tensor& x) {
  check_float(x, "sum_rows");
  if (x.dim() != 2) throw std::runtime_error("sum_rows: need [M,N]");
  const std::int64_t m = x.size(0), n = x.size(1);
  Tensor out({n}, x.dtype());
  // Parallel decomposition is by output column so each po[j] is owned by
  // one thread and accumulated in ascending-row order — the same order as
  // the serial loop, keeping the result bitwise identical. A narrow output
  // stays serial (kReduceColumnGrain): every row pass rewrites the whole
  // output vector, so threads sharing its few cache lines false-share it
  // into a slowdown however large m is.
  auto run = [&](const auto* px, auto* po) {
    run_indexed(n, n < kReduceColumnGrain ? 0 : m * n,
                [&](std::int64_t jb, std::int64_t je) {
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = jb; j < je; ++j) po[j] += px[i * n + j];
      }
    });
  };
  if (x.dtype() == DType::kF32) {
    run(x.data<float>(), out.data<float>());
  } else {
    run(x.data<double>(), out.data<double>());
  }
  return out;
}

double sum_all(const Tensor& x) {
  check_float(x, "sum_all");
  double s = 0;
  const std::int64_t n = x.numel();
  if (x.dtype() == DType::kF32) {
    const float* p = x.data<float>();
    for (std::int64_t i = 0; i < n; ++i) s += p[i];
  } else {
    const double* p = x.data<double>();
    for (std::int64_t i = 0; i < n; ++i) s += p[i];
  }
  return s;
}

double mean_all(const Tensor& x) {
  const std::int64_t n = x.numel();
  return n ? sum_all(x) / static_cast<double>(n) : 0.0;
}

Tensor gather_rows(const Tensor& x, const Tensor& idx) {
  if (x.dim() != 2 || idx.dim() != 1 || idx.dtype() != DType::kI64) {
    throw std::runtime_error("gather_rows: need x [M,N], idx [K] i64");
  }
  const std::int64_t m = x.size(0), n = x.size(1), k = idx.size(0);
  Tensor out({k, n}, x.dtype());
  const std::int64_t* pi = idx.data<std::int64_t>();
  // Validate every index up front so the copy loop is branch-free.
  {
    const auto lim = static_cast<std::uint64_t>(m);
    std::uint64_t bad = 0;
    for (std::int64_t r = 0; r < k; ++r) {
      bad |= static_cast<std::uint64_t>(static_cast<std::uint64_t>(pi[r]) >=
                                        lim);
    }
    if (bad) throw std::out_of_range("gather_rows: index");
  }
  const std::size_t row_bytes = static_cast<std::size_t>(n) * dtype_size(x.dtype());
  const char* src = static_cast<const char*>(x.raw());
  char* dst = static_cast<char*>(out.raw());
  // Pure row memcpy — bandwidth-bound, so use the memory-bound grain: on
  // benchmark-sized gathers (a few MB) splitting the copy across threads
  // only adds dispatch and cache-line handoff (the ×8 regression).
  run_indexed(
      k, k * n,
      [&](std::int64_t rb, std::int64_t re) {
        for (std::int64_t r = rb; r < re; ++r) {
          std::memcpy(dst + static_cast<std::size_t>(r) * row_bytes,
                      src + static_cast<std::size_t>(pi[r]) * row_bytes,
                      row_bytes);
        }
      },
      GrainClass::kMemoryBound);
  return out;
}

void scatter_add_rows_(Tensor& dst, const Tensor& idx, const Tensor& src) {
  check_float(dst, "scatter_add_rows_");
  if (dst.dim() != 2 || src.dim() != 2 || idx.dim() != 1 ||
      idx.dtype() != DType::kI64 || src.dtype() != dst.dtype() ||
      src.size(1) != dst.size(1) || idx.size(0) != src.size(0)) {
    throw std::runtime_error("scatter_add_rows_: shape mismatch");
  }
  const std::int64_t k = src.size(0), n = src.size(1), m = dst.size(0);
  const std::int64_t* pi = idx.data<std::int64_t>();
  // One add per loaded element — bandwidth-bound; the memory-bound grain
  // keeps benchmark-sized scatters serial (the inversion + handoff overhead
  // was the ×8 regression) while huge ones still fan out.
  const bool parallel = kernel_kind() == KernelKind::kOpt &&
                        use_parallel(k * n, GrainClass::kMemoryBound);
  if (!parallel) {
    auto run = [&](auto* pd, const auto* ps) {
      for (std::int64_t r = 0; r < k; ++r) {
        const std::int64_t i = pi[r];
        if (i < 0 || i >= m) {
          throw std::out_of_range("scatter_add_rows_: index");
        }
        for (std::int64_t j = 0; j < n; ++j) pd[i * n + j] += ps[r * n + j];
      }
    };
    if (dst.dtype() == DType::kF32) {
      run(dst.data<float>(), src.data<float>());
    } else {
      run(dst.data<double>(), src.data<double>());
    }
    return;
  }
  // Deterministic parallel scatter: invert the index map (stable counting
  // sort), then parallelize over destination rows. Each destination row is
  // owned by one thread and accumulates its source rows in ascending-r
  // order — exactly the serial order, so the result is bitwise identical
  // regardless of pool size.
  {
    const auto lim = static_cast<std::uint64_t>(m);
    std::uint64_t bad = 0;
    for (std::int64_t r = 0; r < k; ++r) {
      bad |= static_cast<std::uint64_t>(static_cast<std::uint64_t>(pi[r]) >=
                                        lim);
    }
    if (bad) throw std::out_of_range("scatter_add_rows_: index");
  }
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(m) + 1, 0);
  for (std::int64_t r = 0; r < k; ++r) ++offsets[pi[r] + 1];
  for (std::int64_t i = 0; i < m; ++i) offsets[i + 1] += offsets[i];
  std::vector<std::int64_t> rows(static_cast<std::size_t>(k));
  {
    std::vector<std::int64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::int64_t r = 0; r < k; ++r) rows[cursor[pi[r]]++] = r;
  }
  auto run = [&](auto* pd, const auto* ps) {
    kernel_pool().parallel_for(0, m, [&](std::int64_t ib, std::int64_t ie) {
      for (std::int64_t i = ib; i < ie; ++i) {
        auto* drow = pd + i * n;
        for (std::int64_t t = offsets[i]; t < offsets[i + 1]; ++t) {
          const auto* srow = ps + rows[t] * n;
          for (std::int64_t j = 0; j < n; ++j) drow[j] += srow[j];
        }
      }
    });
  };
  if (dst.dtype() == DType::kF32) {
    run(dst.data<float>(), src.data<float>());
  } else {
    run(dst.data<double>(), src.data<double>());
  }
}

Tensor concat_cols(const std::vector<Tensor>& xs) {
  if (xs.empty()) throw std::runtime_error("concat_cols: empty input");
  const std::int64_t m = xs[0].size(0);
  const DType dt = xs[0].dtype();
  std::int64_t total = 0;
  for (const auto& x : xs) {
    if (x.dim() != 2 || x.size(0) != m || x.dtype() != dt) {
      throw std::runtime_error("concat_cols: mismatched inputs");
    }
    total += x.size(1);
  }
  Tensor out({m, total}, dt);
  const std::size_t esz = dtype_size(dt);
  char* pd = static_cast<char*>(out.raw());
  std::int64_t col = 0;
  for (const auto& x : xs) {
    const std::int64_t n = x.size(1);
    const char* ps = static_cast<const char*>(x.raw());
    run_indexed(m, m * n, [&](std::int64_t ib, std::int64_t ie) {
      for (std::int64_t i = ib; i < ie; ++i) {
        std::memcpy(pd + (static_cast<std::size_t>(i) * total + col) * esz,
                    ps + static_cast<std::size_t>(i) * n * esz,
                    static_cast<std::size_t>(n) * esz);
      }
    });
    col += n;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& x) {
  check_float(x, "log_softmax_rows");
  if (x.dim() != 2) throw std::runtime_error("log_softmax_rows: need [M,N]");
  const std::int64_t m = x.size(0), n = x.size(1);
  Tensor out(x.shape(), x.dtype());
  auto run = [&](const auto* px, auto* po) {
    using T = std::remove_cv_t<std::remove_reference_t<decltype(px[0])>>;
    run_indexed(m, m * n, [&](std::int64_t ib, std::int64_t ie) {
      for (std::int64_t i = ib; i < ie; ++i) {
        const auto* row = px + i * n;
        auto* orow = po + i * n;
        T mx = row[0];
        for (std::int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
        double s = 0;
        for (std::int64_t j = 0; j < n; ++j) s += std::exp(double(row[j] - mx));
        const double lse = std::log(s) + double(mx);
        for (std::int64_t j = 0; j < n; ++j) {
          orow[j] = static_cast<T>(double(row[j]) - lse);
        }
      }
    });
  };
  if (x.dtype() == DType::kF32) {
    run(x.data<float>(), out.data<float>());
  } else {
    run(x.data<double>(), out.data<double>());
  }
  return out;
}

double nll_loss_mean(const Tensor& logp, const Tensor& target) {
  check_float(logp, "nll_loss_mean");
  if (logp.dim() != 2 || target.dim() != 1 ||
      target.dtype() != DType::kI64 || target.size(0) != logp.size(0)) {
    throw std::runtime_error("nll_loss_mean: need logp [M,C], target [M]");
  }
  const std::int64_t m = logp.size(0), c = logp.size(1);
  const std::int64_t* pt = target.data<std::int64_t>();
  double s = 0;
  if (logp.dtype() == DType::kF32) {
    const float* p = logp.data<float>();
    for (std::int64_t i = 0; i < m; ++i) {
      if (pt[i] < 0 || pt[i] >= c) throw std::out_of_range("nll: label");
      s -= p[i * c + pt[i]];
    }
  } else {
    const double* p = logp.data<double>();
    for (std::int64_t i = 0; i < m; ++i) {
      if (pt[i] < 0 || pt[i] >= c) throw std::out_of_range("nll: label");
      s -= p[i * c + pt[i]];
    }
  }
  return m ? s / static_cast<double>(m) : 0.0;
}

Tensor nll_loss_mean_backward(const Tensor& logp, const Tensor& target) {
  const std::int64_t m = logp.size(0), c = logp.size(1);
  Tensor g(logp.shape(), logp.dtype());
  const std::int64_t* pt = target.data<std::int64_t>();
  const double inv = m ? -1.0 / static_cast<double>(m) : 0.0;
  if (logp.dtype() == DType::kF32) {
    float* pg = g.data<float>();
    for (std::int64_t i = 0; i < m; ++i)
      pg[i * c + pt[i]] = static_cast<float>(inv);
  } else {
    double* pg = g.data<double>();
    for (std::int64_t i = 0; i < m; ++i) pg[i * c + pt[i]] = inv;
  }
  return g;
}

Tensor argmax_rows(const Tensor& x) {
  check_float(x, "argmax_rows");
  if (x.dim() != 2) throw std::runtime_error("argmax_rows: need [M,N]");
  const std::int64_t m = x.size(0), n = x.size(1);
  Tensor out({m}, DType::kI64);
  std::int64_t* po = out.data<std::int64_t>();
  auto run = [&](const auto* px) {
    // One compare per loaded element: memory-bound grain class.
    run_indexed(
        m, m * n,
        [&](std::int64_t ib, std::int64_t ie) {
          for (std::int64_t i = ib; i < ie; ++i) {
            const auto* row = px + i * n;
            std::int64_t best = 0;
            for (std::int64_t j = 1; j < n; ++j)
              if (row[j] > row[best]) best = j;
            po[i] = best;
          }
        },
        GrainClass::kMemoryBound);
  };
  if (x.dtype() == DType::kF32) {
    run(x.data<float>());
  } else {
    run(x.data<double>());
  }
  return out;
}

double accuracy(const Tensor& logits, const Tensor& target) {
  const Tensor pred = argmax_rows(logits);
  const std::int64_t m = pred.size(0);
  if (m == 0) return 0.0;
  const std::int64_t* pp = pred.data<std::int64_t>();
  const std::int64_t* pt = target.data<std::int64_t>();
  std::int64_t hit = 0;
  for (std::int64_t i = 0; i < m; ++i) hit += (pp[i] == pt[i]);
  return static_cast<double>(hit) / static_cast<double>(m);
}

Tensor dropout_mask(const std::vector<std::int64_t>& shape, double p,
                    std::uint64_t seed, DType dtype) {
  if (p < 0 || p >= 1) throw std::invalid_argument("dropout_mask: bad p");
  Tensor mask(shape, dtype);
  Xoshiro256ss rng(seed);
  const double keep = 1.0 - p;
  const double inv_keep = 1.0 / keep;
  const std::int64_t n = mask.numel();
  // Threshold in the generator's output range for the keep probability.
  const auto threshold = static_cast<std::uint64_t>(
      keep * static_cast<double>(Xoshiro256ss::max()));
  if (dtype == DType::kF32) {
    float* pm = mask.data<float>();
    for (std::int64_t i = 0; i < n; ++i)
      pm[i] = rng() <= threshold ? static_cast<float>(inv_keep) : 0.0f;
  } else if (dtype == DType::kF64) {
    double* pm = mask.data<double>();
    for (std::int64_t i = 0; i < n; ++i)
      pm[i] = rng() <= threshold ? inv_keep : 0.0;
  } else {
    throw std::runtime_error("dropout_mask: dtype must be f32/f64");
  }
  return mask;
}

Tensor dropout_mask_counter(const std::vector<std::int64_t>& shape, double p,
                            std::uint64_t seed, DType dtype) {
  if (p < 0 || p >= 1) {
    throw std::invalid_argument("dropout_mask_counter: bad p");
  }
  Tensor mask(shape, dtype);
  const double inv_keep = 1.0 / (1.0 - p);
  const std::uint64_t thr = dropout_drop_threshold(p);
  const std::int64_t n = mask.numel();
  // Each entry is a pure function of (seed, i): chunk-order independent, so
  // the parallel split cannot change the mask.
  if (dtype == DType::kF32) {
    float* pm = mask.data<float>();
    const auto scale = static_cast<float>(inv_keep);
    run_indexed(n, n, [&](std::int64_t ib, std::int64_t ie) {
      for (std::int64_t i = ib; i < ie; ++i) {
        pm[i] = dropout_keep(seed, i, thr) ? scale : 0.0f;
      }
    });
  } else if (dtype == DType::kF64) {
    double* pm = mask.data<double>();
    run_indexed(n, n, [&](std::int64_t ib, std::int64_t ie) {
      for (std::int64_t i = ib; i < ie; ++i) {
        pm[i] = dropout_keep(seed, i, thr) ? inv_keep : 0.0;
      }
    });
  } else {
    throw std::runtime_error("dropout_mask_counter: dtype must be f32/f64");
  }
  return mask;
}

namespace {

/// Incoming-edge view of a destination-major CSR: for each source row, the
/// incoming edges in ascending (destination, edge) order — i.e. exactly the
/// order the serial backward scatter visits them, which is what makes the
/// parallel backward bitwise identical to the reference.
struct CsrTranspose {
  std::vector<std::int64_t> indptr;  ///< num_src + 1
  std::vector<std::int64_t> dst;     ///< destination row per incoming edge
  std::vector<std::int64_t> edge;    ///< original edge id per incoming edge
};

CsrTranspose build_transpose(const std::vector<std::int64_t>& indptr,
                             const std::vector<std::int64_t>& indices,
                             std::int64_t num_src, std::int64_t d_count) {
  CsrTranspose t;
  const std::size_t nnz = indices.size();
  t.indptr.assign(static_cast<std::size_t>(num_src) + 1, 0);
  for (const std::int64_t src : indices) ++t.indptr[src + 1];
  for (std::int64_t i = 0; i < num_src; ++i) t.indptr[i + 1] += t.indptr[i];
  t.dst.resize(nnz);
  t.edge.resize(nnz);
  std::vector<std::int64_t> cursor(t.indptr.begin(), t.indptr.end() - 1);
  for (std::int64_t d = 0; d < d_count; ++d) {
    for (std::int64_t e = indptr[d]; e < indptr[d + 1]; ++e) {
      const std::int64_t slot = cursor[indices[static_cast<std::size_t>(e)]]++;
      t.dst[static_cast<std::size_t>(slot)] = d;
      t.edge[static_cast<std::size_t>(slot)] = e;
    }
  }
  return t;
}

template <bool Mean>
Tensor spmm_impl(const std::vector<std::int64_t>& indptr,
                 const std::vector<std::int64_t>& indices, const Tensor& x,
                 std::int64_t num_dst, const char* name) {
  check_float(x, name);
  if (x.dim() != 2) throw std::runtime_error(std::string(name) + ": x rank");
  if (static_cast<std::int64_t>(indptr.size()) != num_dst + 1) {
    throw std::runtime_error(std::string(name) + ": indptr size");
  }
  const std::int64_t s = x.size(0), f = x.size(1);
  Tensor out({num_dst, f}, x.dtype());
  if (kernel_kind() == KernelKind::kRef) {
    auto run = [&](const auto* px, auto* po) {
      using T = std::remove_cv_t<std::remove_reference_t<decltype(px[0])>>;
      for (std::int64_t d = 0; d < num_dst; ++d) {
        const std::int64_t b = indptr[d], e = indptr[d + 1];
        auto* orow = po + d * f;
        for (std::int64_t k = b; k < e; ++k) {
          const std::int64_t src = indices[static_cast<std::size_t>(k)];
          if (src < 0 || src >= s) {
            throw std::out_of_range(std::string(name) + ": source index");
          }
          const auto* row = px + src * f;
          for (std::int64_t j = 0; j < f; ++j) orow[j] += row[j];
        }
          if (Mean && e > b) {
            const T inv = static_cast<T>(1.0 / static_cast<double>(e - b));
          for (std::int64_t j = 0; j < f; ++j) orow[j] *= inv;
        }
      }
    };
    if (x.dtype() == DType::kF32) {
      run(x.data<float>(), out.data<float>());
    } else {
      run(x.data<double>(), out.data<double>());
    }
    return out;
  }
  // Optimized: validate up front, then destination-row-block parallelism
  // with a branch-free, vectorizable accumulate loop. Per-row edge order is
  // unchanged, so the result matches the reference bitwise.
  check_source_indices(indices, s, name);
  const auto work =
      static_cast<std::int64_t>(indices.size()) * std::max<std::int64_t>(f, 1);
  auto run = [&](const auto* px, auto* po) {
    using T = std::remove_cv_t<std::remove_reference_t<decltype(px[0])>>;
    // One add per gathered element — bandwidth-bound (the ROADMAP's "spmm
    // mean/sum sit at <=1x" family), so the memory-bound grain applies.
    parallel_for_n(
        num_dst, work,
        [&](std::int64_t db, std::int64_t de) {
          const std::int64_t chunk_end = indptr[de];
          for (std::int64_t d = db; d < de; ++d) {
            const std::int64_t b = indptr[d], e = indptr[d + 1];
            auto* orow = po + d * f;
            for (std::int64_t k = b; k < e; ++k) {
              const std::int64_t pf = k + kPrefetchDist;
              if (pf < chunk_end) {
                prefetch_row_head(px +
                                  indices[static_cast<std::size_t>(pf)] * f);
              }
              const auto* row = px + indices[static_cast<std::size_t>(k)] * f;
              for (std::int64_t j = 0; j < f; ++j) orow[j] += row[j];
            }
            if (Mean && e > b) {
              const T inv = static_cast<T>(1.0 / static_cast<double>(e - b));
              for (std::int64_t j = 0; j < f; ++j) orow[j] *= inv;
            }
          }
        },
        GrainClass::kMemoryBound);
  };
  if (x.dtype() == DType::kF32) {
    run(x.data<float>(), out.data<float>());
  } else {
    run(x.data<double>(), out.data<double>());
  }
  return out;
}

template <bool Mean>
Tensor spmm_backward_impl(const std::vector<std::int64_t>& indptr,
                          const std::vector<std::int64_t>& indices,
                          const Tensor& grad_out, std::int64_t num_src,
                          const char* name) {
  check_float(grad_out, name);
  const std::int64_t d_count = grad_out.size(0), f = grad_out.size(1);
  if (static_cast<std::int64_t>(indptr.size()) != d_count + 1) {
    throw std::runtime_error(std::string(name) + ": indptr size");
  }
  Tensor gx({num_src, f}, grad_out.dtype());
  const auto work =
      static_cast<std::int64_t>(indices.size()) * std::max<std::int64_t>(f, 1);
  // The backward scatter is one multiply-add per streamed element —
  // bandwidth-bound, so the memory-bound grain applies (the ×8 pool was
  // regressing 0.76–0.84x on benchmark-sized graphs).
  const bool parallel = kernel_kind() == KernelKind::kOpt &&
                        use_parallel(work, GrainClass::kMemoryBound);
  if (!parallel) {
    auto run = [&](const auto* pg, auto* px) {
      using T = std::remove_cv_t<std::remove_reference_t<decltype(pg[0])>>;
      for (std::int64_t d = 0; d < d_count; ++d) {
        const std::int64_t b = indptr[d], e = indptr[d + 1];
        if (e == b) continue;
        const T w =
            Mean ? static_cast<T>(1.0 / static_cast<double>(e - b)) : T(1);
        const auto* grow = pg + d * f;
        for (std::int64_t k = b; k < e; ++k) {
          const std::int64_t src = indices[static_cast<std::size_t>(k)];
          if (src < 0 || src >= num_src) {
            throw std::out_of_range(std::string(name) + ": source index");
          }
          auto* xrow = px + src * f;
          for (std::int64_t j = 0; j < f; ++j) xrow[j] += w * grow[j];
        }
      }
    };
    if (grad_out.dtype() == DType::kF32) {
      run(grad_out.data<float>(), gx.data<float>());
    } else {
      run(grad_out.data<double>(), gx.data<double>());
    }
    return gx;
  }
  // Deterministic parallel scatter: segment by source-row ownership through
  // an explicit transpose. Each source row is accumulated by one thread in
  // ascending (destination, edge) order — the serial scatter order — so the
  // result is bitwise identical to the reference for any pool size.
  check_source_indices(indices, num_src, name);
  const CsrTranspose t = build_transpose(indptr, indices, num_src, d_count);
  auto run = [&](const auto* pg, auto* px) {
    using T = std::remove_cv_t<std::remove_reference_t<decltype(pg[0])>>;
    kernel_pool().parallel_for(
        0, num_src, [&](std::int64_t sb, std::int64_t se) {
          for (std::int64_t src = sb; src < se; ++src) {
            auto* xrow = px + src * f;
            for (std::int64_t e2 = t.indptr[src]; e2 < t.indptr[src + 1];
                 ++e2) {
              const std::int64_t d = t.dst[static_cast<std::size_t>(e2)];
              const T w = Mean ? static_cast<T>(1.0 / static_cast<double>(
                                                          indptr[d + 1] -
                                                          indptr[d]))
                               : T(1);
              const auto* grow = pg + d * f;
              for (std::int64_t j = 0; j < f; ++j) xrow[j] += w * grow[j];
            }
          }
        });
  };
  if (grad_out.dtype() == DType::kF32) {
    run(grad_out.data<float>(), gx.data<float>());
  } else {
    run(grad_out.data<double>(), gx.data<double>());
  }
  return gx;
}

}  // namespace

Tensor spmm_mean(const std::vector<std::int64_t>& indptr,
                 const std::vector<std::int64_t>& indices, const Tensor& x,
                 std::int64_t num_dst) {
  return spmm_impl<true>(indptr, indices, x, num_dst, "spmm_mean");
}

Tensor spmm_sum(const std::vector<std::int64_t>& indptr,
                const std::vector<std::int64_t>& indices, const Tensor& x,
                std::int64_t num_dst) {
  return spmm_impl<false>(indptr, indices, x, num_dst, "spmm_sum");
}

Tensor spmm_mean_backward(const std::vector<std::int64_t>& indptr,
                          const std::vector<std::int64_t>& indices,
                          const Tensor& grad_out, std::int64_t num_src) {
  return spmm_backward_impl<true>(indptr, indices, grad_out, num_src,
                                  "spmm_mean_backward");
}

Tensor spmm_sum_backward(const std::vector<std::int64_t>& indptr,
                         const std::vector<std::int64_t>& indices,
                         const Tensor& grad_out, std::int64_t num_src) {
  return spmm_backward_impl<false>(indptr, indices, grad_out, num_src,
                                   "spmm_sum_backward");
}

Tensor spmm_weighted(const std::vector<std::int64_t>& indptr,
                     const std::vector<std::int64_t>& indices,
                     const std::vector<double>& weights, const Tensor& x,
                     std::int64_t num_dst) {
  check_float(x, "spmm_weighted");
  if (weights.size() != indices.size()) {
    throw std::invalid_argument("spmm_weighted: weights size");
  }
  if (static_cast<std::int64_t>(indptr.size()) != num_dst + 1) {
    throw std::invalid_argument("spmm_weighted: indptr size");
  }
  const std::int64_t s = x.size(0), f = x.size(1);
  Tensor out({num_dst, f}, x.dtype());
  if (kernel_kind() == KernelKind::kRef) {
    auto run = [&](const auto* px, auto* po) {
      using T = std::remove_cv_t<std::remove_reference_t<decltype(px[0])>>;
      for (std::int64_t d = 0; d < num_dst; ++d) {
        auto* orow = po + d * f;
        for (std::int64_t e = indptr[static_cast<std::size_t>(d)];
             e < indptr[static_cast<std::size_t>(d) + 1]; ++e) {
          const std::int64_t src = indices[static_cast<std::size_t>(e)];
          if (src < 0 || src >= s) {
            throw std::out_of_range("spmm_weighted: source index");
          }
          const T w = static_cast<T>(weights[static_cast<std::size_t>(e)]);
          const auto* row = px + src * f;
          for (std::int64_t j = 0; j < f; ++j) orow[j] += w * row[j];
        }
      }
    };
    if (x.dtype() == DType::kF32) {
      run(x.data<float>(), out.data<float>());
    } else {
      run(x.data<double>(), out.data<double>());
    }
    return out;
  }
  check_source_indices(indices, s, "spmm_weighted");
  const auto work =
      static_cast<std::int64_t>(indices.size()) * std::max<std::int64_t>(f, 1);
  auto run = [&](const auto* px, auto* po) {
    using T = std::remove_cv_t<std::remove_reference_t<decltype(px[0])>>;
    // Same bandwidth-bound profile as the mean/sum forward.
    parallel_for_n(
        num_dst, work,
        [&](std::int64_t db, std::int64_t de) {
          for (std::int64_t d = db; d < de; ++d) {
            auto* orow = po + d * f;
            for (std::int64_t e = indptr[static_cast<std::size_t>(d)];
                 e < indptr[static_cast<std::size_t>(d) + 1]; ++e) {
              const T w = static_cast<T>(weights[static_cast<std::size_t>(e)]);
              const auto* row = px + indices[static_cast<std::size_t>(e)] * f;
              for (std::int64_t j = 0; j < f; ++j) orow[j] += w * row[j];
            }
          }
        },
        GrainClass::kMemoryBound);
  };
  if (x.dtype() == DType::kF32) {
    run(x.data<float>(), out.data<float>());
  } else {
    run(x.data<double>(), out.data<double>());
  }
  return out;
}

Tensor spmm_weighted_backward(const std::vector<std::int64_t>& indptr,
                              const std::vector<std::int64_t>& indices,
                              const std::vector<double>& weights,
                              const Tensor& grad_out, std::int64_t num_src) {
  check_float(grad_out, "spmm_weighted_backward");
  const std::int64_t d_count = grad_out.size(0), f = grad_out.size(1);
  Tensor gx({num_src, f}, grad_out.dtype());
  const auto work =
      static_cast<std::int64_t>(indices.size()) * std::max<std::int64_t>(f, 1);
  // Bandwidth-bound scatter, same grain-class reasoning as
  // spmm_backward_impl above.
  const bool parallel = kernel_kind() == KernelKind::kOpt &&
                        use_parallel(work, GrainClass::kMemoryBound);
  if (!parallel) {
    auto run = [&](const auto* pg, auto* px) {
      using T = std::remove_cv_t<std::remove_reference_t<decltype(pg[0])>>;
      for (std::int64_t d = 0; d < d_count; ++d) {
        const auto* grow = pg + d * f;
        for (std::int64_t e = indptr[static_cast<std::size_t>(d)];
             e < indptr[static_cast<std::size_t>(d) + 1]; ++e) {
          const std::int64_t src = indices[static_cast<std::size_t>(e)];
          if (src < 0 || src >= num_src) {
            throw std::out_of_range("spmm_weighted_backward: source index");
          }
          const T w = static_cast<T>(weights[static_cast<std::size_t>(e)]);
          auto* xrow = px + src * f;
          for (std::int64_t j = 0; j < f; ++j) xrow[j] += w * grow[j];
        }
      }
    };
    if (grad_out.dtype() == DType::kF32) {
      run(grad_out.data<float>(), gx.data<float>());
    } else {
      run(grad_out.data<double>(), gx.data<double>());
    }
    return gx;
  }
  // Same source-ownership decomposition as spmm_sum_backward; the packed
  // edge ids recover each contribution's weight.
  check_source_indices(indices, num_src, "spmm_weighted_backward");
  const CsrTranspose t = build_transpose(indptr, indices, num_src, d_count);
  auto run = [&](const auto* pg, auto* px) {
    using T = std::remove_cv_t<std::remove_reference_t<decltype(pg[0])>>;
    kernel_pool().parallel_for(
        0, num_src, [&](std::int64_t sb, std::int64_t se) {
          for (std::int64_t src = sb; src < se; ++src) {
            auto* xrow = px + src * f;
            for (std::int64_t e2 = t.indptr[src]; e2 < t.indptr[src + 1];
                 ++e2) {
              const std::int64_t d = t.dst[static_cast<std::size_t>(e2)];
              const T w = static_cast<T>(
                  weights[static_cast<std::size_t>(
                      t.edge[static_cast<std::size_t>(e2)])]);
              const auto* grow = pg + d * f;
              for (std::int64_t j = 0; j < f; ++j) xrow[j] += w * grow[j];
            }
          }
        });
  };
  if (grad_out.dtype() == DType::kF32) {
    run(grad_out.data<float>(), gx.data<float>());
  } else {
    run(grad_out.data<double>(), gx.data<double>());
  }
  return gx;
}

Tensor spmm_max(const std::vector<std::int64_t>& indptr,
                const std::vector<std::int64_t>& indices, const Tensor& x,
                std::int64_t num_dst, std::vector<std::int64_t>* argmax_out) {
  check_float(x, "spmm_max");
  if (static_cast<std::int64_t>(indptr.size()) != num_dst + 1) {
    throw std::invalid_argument("spmm_max: indptr size");
  }
  const std::int64_t s = x.size(0), f = x.size(1);
  Tensor out({num_dst, f}, x.dtype());
  if (argmax_out != nullptr) {
    argmax_out->assign(static_cast<std::size_t>(num_dst * f), -1);
  }
  if (kernel_kind() == KernelKind::kRef) {
    auto run = [&](const auto* px, auto* po) {
      for (std::int64_t d = 0; d < num_dst; ++d) {
        const std::int64_t b = indptr[static_cast<std::size_t>(d)];
        const std::int64_t e = indptr[static_cast<std::size_t>(d) + 1];
        if (b == e) continue;  // empty row stays zero
        auto* orow = po + d * f;
        for (std::int64_t j = 0; j < f; ++j) {
          double best = -1e300;
          std::int64_t arg = -1;
          for (std::int64_t k = b; k < e; ++k) {
            const std::int64_t src = indices[static_cast<std::size_t>(k)];
            if (src < 0 || src >= s) {
              throw std::out_of_range("spmm_max: source index");
            }
            const double v = double(px[src * f + j]);
            if (v > best) {
              best = v;
              arg = src;
            }
          }
          orow[j] = static_cast<std::remove_reference_t<decltype(orow[0])>>(
              best);
          if (argmax_out != nullptr) {
            (*argmax_out)[static_cast<std::size_t>(d * f + j)] = arg;
          }
        }
      }
    };
    if (x.dtype() == DType::kF32) {
      run(x.data<float>(), out.data<float>());
    } else {
      run(x.data<double>(), out.data<double>());
    }
    return out;
  }
  // Optimized: edge-outer / feature-inner order so the inner loop is
  // unit-stride over both the candidate row and the running max. The strict
  // `>` keeps the first maximum in edge order, matching the reference's
  // winner (and the reference compares exact float values widened to
  // double, so the selected maxima are identical).
  check_source_indices(indices, s, "spmm_max");
  const auto work =
      static_cast<std::int64_t>(indices.size()) * std::max<std::int64_t>(f, 1);
  auto run = [&](const auto* px, auto* po) {
    parallel_for_n(num_dst, work, [&](std::int64_t db, std::int64_t de) {
      for (std::int64_t d = db; d < de; ++d) {
        const std::int64_t b = indptr[static_cast<std::size_t>(d)];
        const std::int64_t e = indptr[static_cast<std::size_t>(d) + 1];
        if (b == e) continue;  // empty row stays zero
        auto* orow = po + d * f;
        std::int64_t* arow =
            argmax_out ? argmax_out->data() + d * f : nullptr;
        const std::int64_t src0 = indices[static_cast<std::size_t>(b)];
        const auto* row0 = px + src0 * f;
        for (std::int64_t j = 0; j < f; ++j) orow[j] = row0[j];
        if (arow != nullptr) {
          for (std::int64_t j = 0; j < f; ++j) arow[j] = src0;
        }
        for (std::int64_t k = b + 1; k < e; ++k) {
          const std::int64_t src = indices[static_cast<std::size_t>(k)];
          const auto* row = px + src * f;
          if (arow != nullptr) {
            for (std::int64_t j = 0; j < f; ++j) {
              if (row[j] > orow[j]) {
                orow[j] = row[j];
                arow[j] = src;
              }
            }
          } else {
            for (std::int64_t j = 0; j < f; ++j) {
              orow[j] = std::max(orow[j], row[j]);
            }
          }
        }
      }
    });
  };
  if (x.dtype() == DType::kF32) {
    run(x.data<float>(), out.data<float>());
  } else {
    run(x.data<double>(), out.data<double>());
  }
  return out;
}

Tensor spmm_max_backward(const std::vector<std::int64_t>& argmax,
                         const Tensor& grad_out, std::int64_t num_src) {
  check_float(grad_out, "spmm_max_backward");
  const std::int64_t d_count = grad_out.size(0), f = grad_out.size(1);
  if (static_cast<std::int64_t>(argmax.size()) != d_count * f) {
    throw std::invalid_argument("spmm_max_backward: argmax size");
  }
  Tensor gx({num_src, f}, grad_out.dtype());
  const bool parallel = kernel_kind() == KernelKind::kOpt &&
                        use_parallel(d_count * std::max<std::int64_t>(f, 1));
  if (!parallel) {
    auto run = [&](const auto* pg, auto* px) {
      for (std::int64_t d = 0; d < d_count; ++d) {
        for (std::int64_t j = 0; j < f; ++j) {
          const std::int64_t src = argmax[static_cast<std::size_t>(d * f + j)];
          if (src < 0) continue;
          if (src >= num_src) {
            throw std::out_of_range("spmm_max_backward: source index");
          }
          px[src * f + j] += pg[d * f + j];
        }
      }
    };
    if (grad_out.dtype() == DType::kF32) {
      run(grad_out.data<float>(), gx.data<float>());
    } else {
      run(grad_out.data<double>(), gx.data<double>());
    }
    return gx;
  }
  // Deterministic parallel scatter: partition by feature column. Element
  // (src, j) is only ever written by the thread owning column j, in
  // ascending-d order — the serial order — so results are bitwise identical
  // for any pool size.
  {
    // Negative entries flag empty rows and are skipped (as in the reference
    // loop); only src >= num_src is an error.
    std::int64_t mx = -1;
    for (const std::int64_t src : argmax) mx = std::max(mx, src);
    if (mx >= num_src) {
      throw std::out_of_range("spmm_max_backward: source index");
    }
  }
  auto run = [&](const auto* pg, auto* px) {
    kernel_pool().parallel_for(0, f, [&](std::int64_t jb, std::int64_t je) {
      for (std::int64_t d = 0; d < d_count; ++d) {
        for (std::int64_t j = jb; j < je; ++j) {
          const std::int64_t src = argmax[static_cast<std::size_t>(d * f + j)];
          if (src < 0) continue;
          px[src * f + j] += pg[d * f + j];
        }
      }
    });
  };
  if (grad_out.dtype() == DType::kF32) {
    run(grad_out.data<float>(), gx.data<float>());
  } else {
    run(grad_out.data<double>(), gx.data<double>());
  }
  return gx;
}

}  // namespace salient::ops
