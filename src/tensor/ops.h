// Dense tensor operations (forward kernels).
//
// All ops allocate and return fresh tensors unless suffixed with `_` (in
// place) or documented otherwise. Float ops support f32 and f64 so the same
// kernels serve both training (f32, the simulated-GPU precision) and gradient
// checking (f64). Shapes are validated and mismatches throw.
//
// Every hot op has a reference and an optimized (vectorized, pool-parallel,
// bitwise-deterministic) implementation behind this API, selected at runtime
// via SALIENT_KERNEL=ref|opt or ops::set_kernel_kind(); pool parallelism is
// opted into with ops::set_kernel_pool(). See tensor/kernel_config.h and
// docs/PERFORMANCE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/epilogue.h"
#include "tensor/tensor.h"

namespace salient::ops {

// --- elementwise -----------------------------------------------------------

/// c = a + b (same shape, same float dtype).
Tensor add(const Tensor& a, const Tensor& b);
/// c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// c = a * b (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);
/// c = alpha * a.
Tensor scale(const Tensor& a, double alpha);
/// c = a + alpha * b.
Tensor add_scaled(const Tensor& a, const Tensor& b, double alpha);
/// a += alpha * b, in place.
void axpy_(Tensor& a, const Tensor& b, double alpha);

// --- unary -----------------------------------------------------------------

/// max(x, 0).
Tensor relu(const Tensor& x);
/// x > 0 ? 1 : 0, as the same float dtype (used by relu backward).
Tensor relu_mask(const Tensor& x);
/// x > 0 ? x : slope * x.
Tensor leaky_relu(const Tensor& x, double slope);
/// d/dx leaky_relu: x > 0 ? 1 : slope.
Tensor leaky_relu_mask(const Tensor& x, double slope);
/// elementwise exp.
Tensor exp(const Tensor& x);
/// elementwise natural log.
Tensor log(const Tensor& x);
/// elementwise square root.
Tensor sqrt(const Tensor& x);

// --- broadcast / reductions -------------------------------------------------

/// y[i,j] = x[i,j] + b[j]; x is [M,N], b is [N].
Tensor add_row_broadcast(const Tensor& x, const Tensor& b);
/// column sums of a [M,N] tensor -> [N].
Tensor sum_rows(const Tensor& x);
/// sum of all elements (returned as double).
double sum_all(const Tensor& x);
/// mean of all elements.
double mean_all(const Tensor& x);

// --- row indexing -----------------------------------------------------------

/// out[k,:] = x[idx[k],:]; idx is i64, x is [M,N] (any dtype incl. f16).
Tensor gather_rows(const Tensor& x, const Tensor& idx);
/// dst[idx[k],:] += src[k,:] (float dtypes). Rows may repeat in idx.
void scatter_add_rows_(Tensor& dst, const Tensor& idx, const Tensor& src);
/// Horizontal concatenation of [M,Ni] tensors -> [M, sum Ni].
Tensor concat_cols(const std::vector<Tensor>& xs);

// --- softmax / classification ------------------------------------------------

/// Row-wise log-softmax of a [M,N] tensor (numerically stabilized).
Tensor log_softmax_rows(const Tensor& x);
/// Mean negative log-likelihood: logp is [M,C] log-probabilities, target is
/// [M] i64 class indices. Returns a scalar.
double nll_loss_mean(const Tensor& logp, const Tensor& target);
/// Gradient of nll_loss_mean w.r.t. logp: -1/M at (i, target[i]).
Tensor nll_loss_mean_backward(const Tensor& logp, const Tensor& target);
/// Row-wise argmax of a [M,N] float tensor -> [M] i64.
Tensor argmax_rows(const Tensor& x);
/// Fraction of rows where argmax(logits[i]) == target[i].
double accuracy(const Tensor& logits, const Tensor& target);

// --- dropout ------------------------------------------------------------------

/// Inverted-dropout mask: entries are 0 with probability p, else 1/(1-p).
Tensor dropout_mask(const std::vector<std::int64_t>& shape, double p,
                    std::uint64_t seed, DType dtype = DType::kF32);

/// Counter-based inverted-dropout mask: entry i is 0 when
/// dropout_keep(seed, i, dropout_drop_threshold(p)) drops it, else 1/(1-p).
/// Unlike dropout_mask (a sequential RNG stream), each entry is a pure hash
/// of (seed, flat index), so the mask is identical however the tensor is
/// chunked — the property that lets the fused GEMM epilogue
/// (tensor/epilogue.h) evaluate the same decisions tile-by-tile and agree
/// bitwise with this standalone op.
Tensor dropout_mask_counter(const std::vector<std::int64_t>& shape, double p,
                            std::uint64_t seed, DType dtype = DType::kF32);

// --- sparse (CSR) neighborhood aggregation -----------------------------------
//
// These implement the AGG step of message passing over one MFG level: the
// bipartite graph is stored destination-major as CSR (indptr has D+1 entries,
// indices[e] is the *local* source row of edge e). They are the C++ analogue
// of PyG's SpMM on the sampled adjacency.

/// out[d,:] = mean over e in [indptr[d], indptr[d+1]) of x[indices[e],:].
/// Rows with no incoming edges yield zeros. x is [S,F]; result is [D,F].
Tensor spmm_mean(const std::vector<std::int64_t>& indptr,
                 const std::vector<std::int64_t>& indices, const Tensor& x,
                 std::int64_t num_dst);
/// Same with sum instead of mean.
Tensor spmm_sum(const std::vector<std::int64_t>& indptr,
                const std::vector<std::int64_t>& indices, const Tensor& x,
                std::int64_t num_dst);
/// Backward of spmm_mean w.r.t. x: scatter grad_out[d]/deg(d) to sources.
Tensor spmm_mean_backward(const std::vector<std::int64_t>& indptr,
                          const std::vector<std::int64_t>& indices,
                          const Tensor& grad_out, std::int64_t num_src);
/// Backward of spmm_sum w.r.t. x.
Tensor spmm_sum_backward(const std::vector<std::int64_t>& indptr,
                         const std::vector<std::int64_t>& indices,
                         const Tensor& grad_out, std::int64_t num_src);

/// Edge-weighted aggregation: out[d,:] = sum_e w[e] * x[indices[e],:]
/// (the SpMM of a weighted adjacency, e.g. GCN's normalized matrix).
/// `weights` has one entry per edge.
Tensor spmm_weighted(const std::vector<std::int64_t>& indptr,
                     const std::vector<std::int64_t>& indices,
                     const std::vector<double>& weights, const Tensor& x,
                     std::int64_t num_dst);
/// Backward of spmm_weighted w.r.t. x (weights are constants).
Tensor spmm_weighted_backward(const std::vector<std::int64_t>& indptr,
                              const std::vector<std::int64_t>& indices,
                              const std::vector<double>& weights,
                              const Tensor& grad_out, std::int64_t num_src);

/// Elementwise-max aggregation: out[d,:] = max over edges of x[src,:]
/// (zeros for empty rows — GraphSAGE's "pooling" aggregator core, §2.1).
/// `argmax_out` (size num_dst * F) records the winning source row per
/// output element (-1 for empty rows), for the backward pass.
Tensor spmm_max(const std::vector<std::int64_t>& indptr,
                const std::vector<std::int64_t>& indices, const Tensor& x,
                std::int64_t num_dst, std::vector<std::int64_t>* argmax_out);
/// Backward of spmm_max: route each output gradient to its argmax source.
Tensor spmm_max_backward(const std::vector<std::int64_t>& argmax,
                         const Tensor& grad_out, std::int64_t num_src);

// --- matmul (see matmul.cpp) ---------------------------------------------------

/// C = op(A) * op(B), where op transposes when the flag is set.
/// A is [M,K] (or [K,M] when trans_a), B is [K,N] (or [N,K] when trans_b).
///
/// Both operands f32 or both f64 give a same-dtype result. In addition,
/// either operand (or both) may be kF16 while the other is kF32: the result
/// is f32, and the optimized kernel decompresses the half-precision rows
/// directly into its packing scratch (no f32 copy of the compressed operand
/// materializes — the paper's compressed-feature hot path). The mixed
/// product is bitwise identical to up-converting first, since f16 -> f32 is
/// exact.
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// C = dequantize(A) * op(B) for a per-row affine int8-quantized A
/// (tensor/quantize.h): A is [M,K] kInt8Q with [M] f32 scales/zero-points,
/// B is f32 [K,N] (or [N,K] when trans_b), C is f32. The optimized kernel
/// dequantizes A's rows inside the [kc][MR] packing stage, so the f32
/// feature matrix never materializes; the reference kernel reconstructs it
/// with dequantize_rows first (ground truth for the A/B tests).
Tensor matmul_compressed(const Tensor& a, const Tensor& a_scale,
                         const Tensor& a_zero, const Tensor& b,
                         bool trans_b = false);

/// Fused Linear forward: y = epilogue(x @ w^T), with x [M,K] and w [N,K]
/// (the nn::Linear weight layout). The epilogue (tensor/epilogue.h) applies
/// bias / ReLU / counter-based dropout in the GEMM's store phase — one pass
/// over the output instead of three full-tensor passes after it.
///
/// * `bias` must be a [N] vector for Epilogue::kBias and stronger; it is
///   ignored (may be empty) for kNone.
/// * For kBiasRelu / kBiasReluDropout, `mask_out` (when non-null) is
///   overwritten with the [M,N] combined derivative d y/d pre — 1/0 for
///   ReLU, scaled by 1/(1-p) under dropout — which is exactly the factor
///   the backward pass multiplies the output gradient by.
/// * `dropout_p` in [0, 1) and `seed` drive the counter-based decisions
///   (kBiasReluDropout only).
///
/// The optimized path fuses into the microkernel store; the reference path
/// composes the same math serially. Fused output is bitwise identical to
/// the unfused optimized sequence {matmul, add_row_broadcast, relu,
/// mul(dropout_mask_counter)} under the same seed, and run-to-run
/// deterministic across pool sizes (tests/test_kernels.cpp).
Tensor gemm_epilogue(const Tensor& x, const Tensor& w, const Tensor& bias,
                     Epilogue epilogue, double dropout_p, std::uint64_t seed,
                     Tensor* mask_out);

}  // namespace salient::ops
