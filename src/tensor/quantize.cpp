#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/kernel_config.h"

namespace salient::ops {

Tensor quantize_rows(const Tensor& x, Tensor* scale_out, Tensor* zero_out) {
  if (x.dim() != 2) throw std::invalid_argument("quantize_rows: x must be 2-D");
  if (x.dtype() != DType::kF32) {
    throw std::invalid_argument("quantize_rows: x must be f32");
  }
  if (scale_out == nullptr || zero_out == nullptr) {
    throw std::invalid_argument("quantize_rows: scale/zero outputs required");
  }
  const std::int64_t rows = x.size(0);
  const std::int64_t cols = x.size(1);
  Tensor q({rows, cols}, DType::kInt8Q);
  *scale_out = Tensor({rows}, DType::kF32);
  *zero_out = Tensor({rows}, DType::kF32);
  const float* src = x.data<float>();
  std::int8_t* dst = q.data<std::int8_t>();
  float* scales = scale_out->data<float>();
  float* zeros = zero_out->data<float>();
  parallel_for_n(
      rows, rows * cols,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          quantize_row(src + i * cols, cols, dst + i * cols, scales + i,
                       zeros + i);
        }
      },
      GrainClass::kMemoryBound);
  return q;
}

void quantize_row(const float* row, std::int64_t cols, std::int8_t* q,
                  float* scale, float* zero) {
  float lo = row[0];
  float hi = row[0];
  for (std::int64_t j = 1; j < cols; ++j) {
    lo = std::min(lo, row[j]);
    hi = std::max(hi, row[j]);
  }
  const float s = (hi - lo) / 255.0f;
  *scale = s;
  *zero = lo;
  if (s == 0.0f) {
    // Constant row: every element reconstructs exactly as the zero-point.
    std::fill(q, q + cols, static_cast<std::int8_t>(-128));
    return;
  }
  for (std::int64_t j = 0; j < cols; ++j) {
    const long code = std::lround((row[j] - lo) / s);
    const long clamped = std::min(255l, std::max(0l, code));
    q[j] = static_cast<std::int8_t>(clamped - 128);
  }
}

void dequantize_row(const std::int8_t* q, std::int64_t cols, float scale,
                    float zero, float* out) {
  for (std::int64_t j = 0; j < cols; ++j) {
    out[j] = static_cast<float>(q[j] + 128) * scale + zero;
  }
}

Tensor dequantize_rows(const Tensor& q, const Tensor& scale,
                       const Tensor& zero) {
  if (q.dim() != 2) throw std::invalid_argument("dequantize_rows: q not 2-D");
  if (q.dtype() != DType::kInt8Q) {
    throw std::invalid_argument("dequantize_rows: q must be i8q");
  }
  const std::int64_t rows = q.size(0);
  const std::int64_t cols = q.size(1);
  if (scale.dtype() != DType::kF32 || zero.dtype() != DType::kF32 ||
      scale.numel() != rows || zero.numel() != rows) {
    throw std::invalid_argument(
        "dequantize_rows: scale/zero must be [rows] f32");
  }
  Tensor out({rows, cols}, DType::kF32);
  const std::int8_t* src = q.data<std::int8_t>();
  const float* scales = scale.data<float>();
  const float* zeros = zero.data<float>();
  float* dst = out.data<float>();
  parallel_for_n(
      rows, rows * cols,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          dequantize_row(src + i * cols, cols, scales[i], zeros[i],
                         dst + i * cols);
        }
      },
      GrainClass::kMemoryBound);
  return out;
}

}  // namespace salient::ops
