/// \file
/// \brief Per-row affine int8 quantization for the compressed feature path.
///
/// A quantized feature matrix is a triple: a `[rows, cols]` DType::kInt8Q
/// tensor plus two `[rows]` kF32 tensors holding each row's scale and
/// zero-point. Row `i` of the original matrix is reconstructed as
///
///     x[i][j] ~= (q[i][j] + 128) * scale[i] + zero[i]
///
/// with `scale[i] = (max_i - min_i) / 255` and `zero[i] = min_i`, where
/// `min_i`/`max_i` are the row's extrema. Stored codes therefore span the
/// full int8 range [-128, 127] and the reconstruction error of any element
/// is at most `scale/2 = (max - min) / 510`. A constant row quantizes with
/// `scale = 0` and reconstructs exactly as its zero-point.
///
/// These helpers are the only sanctioned way in or out of kInt8Q storage:
/// generic Tensor::to() refuses the dtype because the codes are meaningless
/// without their companion scale/zero tensors. The hot path never calls
/// dequantize_rows on a full batch — the GEMM packing loader dequantizes
/// rows directly into its packed panels (see tensor/matmul.cpp), so an F32
/// copy of the feature matrix never materializes.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace salient::ops {

/// \brief Quantize each row of a 2-D kF32 tensor to per-row affine int8.
///
/// \param x          `[rows, cols]` kF32 input.
/// \param scale_out  Receives a `[rows]` kF32 tensor of per-row scales.
/// \param zero_out   Receives a `[rows]` kF32 tensor of per-row zero-points.
/// \return `[rows, cols]` DType::kInt8Q tensor of codes.
///
/// Codes are computed as `round((x - zero) / scale) - 128`, clamped to
/// [-128, 127]; rounding is round-half-away-from-zero (std::lround), which
/// is deterministic and identical on every code path. All elements of the
/// input must be finite.
Tensor quantize_rows(const Tensor& x, Tensor* scale_out, Tensor* zero_out);

/// \brief Reconstruct a full kF32 matrix from per-row affine int8 codes.
///
/// \param q      `[rows, cols]` DType::kInt8Q codes.
/// \param scale  `[rows]` kF32 per-row scales.
/// \param zero   `[rows]` kF32 per-row zero-points.
/// \return `[rows, cols]` kF32 reconstruction.
///
/// Intended for tests and cold paths; the GEMM pack loader dequantizes
/// per-panel instead of materializing this.
Tensor dequantize_rows(const Tensor& q, const Tensor& scale,
                       const Tensor& zero);

/// \brief Quantize one F32 row to per-row affine int8.
///
/// \param row    Pointer to `cols` finite floats.
/// \param cols   Number of elements in the row (must be > 0).
/// \param q      Destination for `cols` int8 codes.
/// \param scale  Receives the row's scale, `(max - min) / 255`.
/// \param zero   Receives the row's zero-point, `min`.
///
/// Building block for quantize_rows and the loaders' quantizing slice path
/// (prep/slicing.h), which compresses feature rows as they are gathered into
/// pinned staging.
void quantize_row(const float* row, std::int64_t cols, std::int8_t* q,
                  float* scale, float* zero);

/// \brief Dequantize one row of int8 codes into an F32 destination.
///
/// \param q     Pointer to `cols` int8 codes of one row.
/// \param cols  Number of elements in the row.
/// \param scale The row's scale.
/// \param zero  The row's zero-point.
/// \param out   Destination for `cols` floats; `out[j] = (q[j] + 128) *
///              scale + zero`.
///
/// Building block for the dequantizing GEMM pack loader and for
/// dequantize_rows.
void dequantize_row(const std::int8_t* q, std::int64_t cols, float scale,
                    float zero, float* out);

}  // namespace salient::ops
