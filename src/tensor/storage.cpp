#include "tensor/storage.h"

#include <cstdlib>
#include <cstring>
#include <new>

namespace salient {

Storage::Storage(std::size_t nbytes, bool pinned)
    : nbytes_(nbytes), pinned_(pinned) {
  // Round the allocation up to a multiple of the alignment as required by
  // std::aligned_alloc, and always allocate at least one cache line so that
  // zero-sized tensors still have a valid non-null pointer.
  const std::size_t alloc = ((nbytes + 63) / 64) * 64;
  data_ = std::aligned_alloc(64, alloc ? alloc : 64);
  if (data_ == nullptr) throw std::bad_alloc();
  std::memset(data_, 0, alloc ? alloc : 64);
}

Storage::~Storage() { std::free(data_); }

}  // namespace salient
