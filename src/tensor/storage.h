// Reference-counted, 64-byte-aligned raw buffers backing tensors.
//
// A Storage may be marked "pinned": in the real system pinned (page-locked)
// host memory enables asynchronous DMA to the GPU. Our device simulator gives
// pinned buffers the full modelled DMA bandwidth and penalizes pageable ones,
// mirroring the paper's use of pinned memory for batch staging.
#pragma once

#include <cstddef>
#include <memory>

namespace salient {

class Storage {
 public:
  /// Allocate `nbytes` of zero-initialized, 64-byte aligned memory.
  explicit Storage(std::size_t nbytes, bool pinned = false);
  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  void* data() { return data_; }
  const void* data() const { return data_; }
  std::size_t nbytes() const { return nbytes_; }
  bool pinned() const { return pinned_; }

 private:
  void* data_ = nullptr;
  std::size_t nbytes_ = 0;
  bool pinned_ = false;
};

using StoragePtr = std::shared_ptr<Storage>;

}  // namespace salient
