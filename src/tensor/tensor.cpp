#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <random>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace salient {

namespace {

std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension in shape");
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape, DType dtype, bool pinned)
    : dtype_(dtype), shape_(std::move(shape)) {
  const std::int64_t n = shape_numel(shape_);
  storage_ = std::make_shared<Storage>(
      static_cast<std::size_t>(n) * dtype_size(dtype_), pinned);
}

std::int64_t Tensor::size(std::int64_t d) const {
  const auto rank = dim();
  if (d < 0) d += rank;
  if (d < 0 || d >= rank) throw std::out_of_range("Tensor::size: bad dim");
  return shape_[static_cast<std::size_t>(d)];
}

std::int64_t Tensor::numel() const { return shape_numel(shape_); }

void* Tensor::raw() {
  return static_cast<char*>(storage_->data()) +
         static_cast<std::size_t>(offset_) * dtype_size(dtype_);
}

const void* Tensor::raw() const {
  return static_cast<const char*>(storage_->data()) +
         static_cast<std::size_t>(offset_) * dtype_size(dtype_);
}

void Tensor::check_type(DType expected) const {
  if (!defined()) throw std::runtime_error("Tensor: accessing null tensor");
  if (dtype_ != expected) {
    throw std::runtime_error(std::string("Tensor dtype mismatch: have ") +
                             dtype_name(dtype_) + ", want " +
                             dtype_name(expected));
  }
}

std::int64_t Tensor::check_index1(std::int64_t i) const {
  if (dim() != 1) throw std::runtime_error("at(i): tensor is not 1-D");
  if (i < 0 || i >= shape_[0]) throw std::out_of_range("at(i): out of range");
  return i;
}

std::int64_t Tensor::check_index2(std::int64_t i, std::int64_t j) const {
  if (dim() != 2) throw std::runtime_error("at(i,j): tensor is not 2-D");
  if (i < 0 || i >= shape_[0] || j < 0 || j >= shape_[1]) {
    throw std::out_of_range("at(i,j): out of range");
  }
  return i * shape_[1] + j;
}

std::int64_t Tensor::row_stride() const {
  std::int64_t s = 1;
  for (std::size_t d = 1; d < shape_.size(); ++d) s *= shape_[d];
  return s;
}

Tensor Tensor::clone(bool pinned) const {
  Tensor out(shape_, dtype_, pinned);
  std::memcpy(out.raw(), raw(), nbytes());
  return out;
}

Tensor Tensor::to(DType dtype) const {
  if (dtype == dtype_) return *this;
  Tensor out(shape_, dtype);
  const std::int64_t n = numel();
  auto convert = [&](auto read) {
    switch (dtype) {
      case DType::kF16: {
        Half* d = out.data<Half>();
        for (std::int64_t i = 0; i < n; ++i)
          d[i] = float_to_half(static_cast<float>(read(i)));
        break;
      }
      case DType::kF32: {
        float* d = out.data<float>();
        for (std::int64_t i = 0; i < n; ++i)
          d[i] = static_cast<float>(read(i));
        break;
      }
      case DType::kF64: {
        double* d = out.data<double>();
        for (std::int64_t i = 0; i < n; ++i)
          d[i] = static_cast<double>(read(i));
        break;
      }
      case DType::kI64: {
        std::int64_t* d = out.data<std::int64_t>();
        for (std::int64_t i = 0; i < n; ++i)
          d[i] = static_cast<std::int64_t>(read(i));
        break;
      }
      case DType::kInt8Q:
        throw std::runtime_error(
            "to(): i8q requires per-row scale/zero; use ops::quantize_rows");
    }
  };
  switch (dtype_) {
    case DType::kF16: {
      const Half* s = data<Half>();
      convert([s](std::int64_t i) { return half_to_float(s[i]); });
      break;
    }
    case DType::kF32: {
      const float* s = data<float>();
      convert([s](std::int64_t i) { return s[i]; });
      break;
    }
    case DType::kF64: {
      const double* s = data<double>();
      convert([s](std::int64_t i) { return s[i]; });
      break;
    }
    case DType::kI64: {
      const std::int64_t* s = data<std::int64_t>();
      convert([s](std::int64_t i) { return s[i]; });
      break;
    }
    case DType::kInt8Q:
      throw std::runtime_error(
          "to(): i8q requires per-row scale/zero; use ops::dequantize_rows");
  }
  return out;
}

Tensor Tensor::narrow_rows(std::int64_t begin, std::int64_t len) const {
  if (dim() < 1) throw std::runtime_error("narrow_rows: rank-0 tensor");
  if (begin < 0 || len < 0 || begin + len > shape_[0]) {
    throw std::out_of_range("narrow_rows: range out of bounds");
  }
  Tensor out = *this;
  out.shape_[0] = len;
  out.offset_ = offset_ + begin * row_stride();
  return out;
}

Tensor Tensor::reshape(std::vector<std::int64_t> new_shape) const {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape: element count mismatch");
  }
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

void Tensor::zero_() { std::memset(raw(), 0, nbytes()); }

void Tensor::fill_(double v) {
  const std::int64_t n = numel();
  switch (dtype_) {
    case DType::kF32: {
      float* d = data<float>();
      std::fill(d, d + n, static_cast<float>(v));
      break;
    }
    case DType::kF64: {
      double* d = data<double>();
      std::fill(d, d + n, v);
      break;
    }
    case DType::kI64: {
      std::int64_t* d = data<std::int64_t>();
      std::fill(d, d + n, static_cast<std::int64_t>(v));
      break;
    }
    default:
      throw std::runtime_error("fill_: unsupported dtype");
  }
}

Tensor Tensor::zeros(std::vector<std::int64_t> shape, DType dtype) {
  return Tensor(std::move(shape), dtype);
}

Tensor Tensor::ones(std::vector<std::int64_t> shape, DType dtype) {
  return full(std::move(shape), 1.0, dtype);
}

Tensor Tensor::full(std::vector<std::int64_t> shape, double v, DType dtype) {
  Tensor t(std::move(shape), dtype);
  t.fill_(v);
  return t;
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, std::uint64_t seed,
                     double std_dev, DType dtype) {
  Tensor t(std::move(shape), dtype);
  Xoshiro256ss rng(seed);
  std::normal_distribution<double> dist(0.0, std_dev);
  const std::int64_t n = t.numel();
  if (dtype == DType::kF32) {
    float* d = t.data<float>();
    for (std::int64_t i = 0; i < n; ++i) d[i] = static_cast<float>(dist(rng));
  } else if (dtype == DType::kF64) {
    double* d = t.data<double>();
    for (std::int64_t i = 0; i < n; ++i) d[i] = dist(rng);
  } else {
    throw std::runtime_error("randn: dtype must be f32/f64");
  }
  return t;
}

Tensor Tensor::uniform(std::vector<std::int64_t> shape, std::uint64_t seed,
                       double lo, double hi, DType dtype) {
  Tensor t(std::move(shape), dtype);
  Xoshiro256ss rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  const std::int64_t n = t.numel();
  if (dtype == DType::kF32) {
    float* d = t.data<float>();
    for (std::int64_t i = 0; i < n; ++i) d[i] = static_cast<float>(dist(rng));
  } else if (dtype == DType::kF64) {
    double* d = t.data<double>();
    for (std::int64_t i = 0; i < n; ++i) d[i] = dist(rng);
  } else {
    throw std::runtime_error("uniform: dtype must be f32/f64");
  }
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t({n}, DType::kI64);
  std::int64_t* d = t.data<std::int64_t>();
  std::iota(d, d + n, 0);
  return t;
}

Tensor Tensor::wrap_storage(StoragePtr storage,
                            std::vector<std::int64_t> shape, DType dtype) {
  const std::int64_t n = shape_numel(shape);
  if (!storage ||
      storage->nbytes() < static_cast<std::size_t>(n) * dtype_size(dtype)) {
    throw std::invalid_argument("wrap_storage: storage too small");
  }
  Tensor t;
  t.storage_ = std::move(storage);
  t.dtype_ = dtype;
  t.shape_ = std::move(shape);
  t.offset_ = 0;
  return t;
}

std::string Tensor::str() const {
  std::ostringstream os;
  os << "Tensor<" << dtype_name(dtype_) << ">[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  os << "]{";
  const std::int64_t n = std::min<std::int64_t>(numel(), 8);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    switch (dtype_) {
      case DType::kF16:
        os << half_to_float(data<Half>()[i]);
        break;
      case DType::kF32:
        os << data<float>()[i];
        break;
      case DType::kF64:
        os << data<double>()[i];
        break;
      case DType::kI64:
        os << data<std::int64_t>()[i];
        break;
      case DType::kInt8Q:
        os << static_cast<int>(data<std::int8_t>()[i]);
        break;
    }
  }
  if (numel() > n) os << ", ...";
  os << '}';
  return os.str();
}

bool allclose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (!a.defined() || !b.defined()) return a.defined() == b.defined();
  if (a.dtype() != b.dtype() || a.shape() != b.shape()) return false;
  const std::int64_t n = a.numel();
  switch (a.dtype()) {
    case DType::kI64: {
      const auto* pa = a.data<std::int64_t>();
      const auto* pb = b.data<std::int64_t>();
      return std::equal(pa, pa + n, pb);
    }
    case DType::kInt8Q: {
      const auto* pa = a.data<std::int8_t>();
      const auto* pb = b.data<std::int8_t>();
      return std::equal(pa, pa + n, pb);
    }
    case DType::kF32: {
      const float* pa = a.data<float>();
      const float* pb = b.data<float>();
      for (std::int64_t i = 0; i < n; ++i) {
        if (std::abs(double(pa[i]) - double(pb[i])) >
            atol + rtol * std::abs(double(pb[i]))) {
          return false;
        }
      }
      return true;
    }
    case DType::kF64: {
      const double* pa = a.data<double>();
      const double* pb = b.data<double>();
      for (std::int64_t i = 0; i < n; ++i) {
        if (std::abs(pa[i] - pb[i]) > atol + rtol * std::abs(pb[i])) {
          return false;
        }
      }
      return true;
    }
    case DType::kF16: {
      const Half* pa = a.data<Half>();
      const Half* pb = b.data<Half>();
      for (std::int64_t i = 0; i < n; ++i) {
        const double va = half_to_float(pa[i]);
        const double vb = half_to_float(pb[i]);
        if (std::abs(va - vb) > atol + rtol * std::abs(vb)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace salient
