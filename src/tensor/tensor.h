// A minimal dense tensor: contiguous, row-major, up to rank 2 in practice.
//
// This is the numeric substrate standing in for the ATen tensors that PyG
// manipulates. Design constraints kept deliberately tight:
//   * always contiguous (row-major); views are only taken over leading rows,
//     which preserves contiguity — exactly the pattern `x[:size]` used by the
//     paper's model code (Appendix A);
//   * storage is shared (copying a Tensor is O(1) and aliases memory);
//   * `clone()` deep-copies, `to(dtype)` converts.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/storage.h"

namespace salient {

class Tensor {
 public:
  /// Empty (null) tensor.
  Tensor() = default;

  /// Allocate a zero-initialized tensor of the given shape and dtype.
  /// `pinned` requests page-locked-style staging memory (see Storage).
  explicit Tensor(std::vector<std::int64_t> shape, DType dtype = DType::kF32,
                  bool pinned = false);

  /// True when this tensor has no storage (default-constructed).
  bool defined() const { return storage_ != nullptr; }

  DType dtype() const { return dtype_; }
  /// Number of dimensions.
  std::int64_t dim() const { return static_cast<std::int64_t>(shape_.size()); }
  /// Extent of dimension `d` (supports negative indices).
  std::int64_t size(std::int64_t d) const;
  const std::vector<std::int64_t>& shape() const { return shape_; }
  /// Total number of elements.
  std::int64_t numel() const;
  /// Total bytes of the viewed region.
  std::size_t nbytes() const { return static_cast<std::size_t>(numel()) * dtype_size(dtype_); }
  /// Whether the backing storage is pinned staging memory.
  bool pinned() const { return storage_ && storage_->pinned(); }

  /// Typed pointer to the first viewed element. T must match dtype.
  template <typename T>
  T* data() {
    check_type(DTypeOf<T>::value);
    return static_cast<T*>(raw()) ;
  }
  template <typename T>
  const T* data() const {
    check_type(DTypeOf<T>::value);
    return static_cast<const T*>(raw());
  }

  /// Untyped pointer to the first viewed element.
  void* raw();
  const void* raw() const;

  /// Convenient typed span over all viewed elements.
  template <typename T>
  std::span<T> span() {
    return {data<T>(), static_cast<std::size_t>(numel())};
  }
  template <typename T>
  std::span<const T> span() const {
    return {data<T>(), static_cast<std::size_t>(numel())};
  }

  /// Element accessors for 1-D and 2-D tensors (bounds-checked).
  template <typename T>
  T& at(std::int64_t i) {
    return data<T>()[check_index1(i)];
  }
  template <typename T>
  T at(std::int64_t i) const {
    return data<T>()[check_index1(i)];
  }
  template <typename T>
  T& at(std::int64_t i, std::int64_t j) {
    return data<T>()[check_index2(i, j)];
  }
  template <typename T>
  T at(std::int64_t i, std::int64_t j) const {
    return data<T>()[check_index2(i, j)];
  }

  /// Deep copy (optionally into pinned memory).
  Tensor clone(bool pinned = false) const;

  /// Dtype conversion; returns *this unchanged if dtype already matches.
  Tensor to(DType dtype) const;

  /// Zero-copy view of rows [begin, begin+len) of a 1-D or 2-D tensor.
  Tensor narrow_rows(std::int64_t begin, std::int64_t len) const;

  /// Zero-copy reshape (product of dims must equal numel()).
  Tensor reshape(std::vector<std::int64_t> new_shape) const;

  /// Set every element to zero.
  void zero_();
  /// Set every element of a float tensor to `v` (f32/f64 only).
  void fill_(double v);

  // --- factories -----------------------------------------------------------

  static Tensor zeros(std::vector<std::int64_t> shape,
                      DType dtype = DType::kF32);
  static Tensor ones(std::vector<std::int64_t> shape,
                     DType dtype = DType::kF32);
  static Tensor full(std::vector<std::int64_t> shape, double v,
                     DType dtype = DType::kF32);
  /// i.i.d. N(0, std^2) entries (f32/f64).
  static Tensor randn(std::vector<std::int64_t> shape, std::uint64_t seed,
                      double std_dev = 1.0, DType dtype = DType::kF32);
  /// i.i.d. U[lo, hi) entries (f32/f64).
  static Tensor uniform(std::vector<std::int64_t> shape, std::uint64_t seed,
                        double lo = 0.0, double hi = 1.0,
                        DType dtype = DType::kF32);
  /// [0, 1, ..., n-1] as i64.
  static Tensor arange(std::int64_t n);
  /// Copy from a host vector; shape defaults to {v.size()}.
  template <typename T>
  static Tensor from_vector(const std::vector<T>& v,
                            std::vector<std::int64_t> shape = {});

  /// Wrap an existing storage buffer (must be at least as large as the
  /// requested shape) with fresh shape/dtype metadata. Used by the pinned
  /// staging-buffer pool to recycle allocations across mini-batches.
  static Tensor wrap_storage(StoragePtr storage,
                             std::vector<std::int64_t> shape, DType dtype);

  /// The backing storage (shared; for pooling/aliasing checks).
  const StoragePtr& storage() const { return storage_; }

  /// Debug string: dtype, shape, and the first few elements.
  std::string str() const;

 private:
  void check_type(DType expected) const;
  std::int64_t check_index1(std::int64_t i) const;
  std::int64_t check_index2(std::int64_t i, std::int64_t j) const;
  /// Elements per row (product of dims 1..rank).
  std::int64_t row_stride() const;

  StoragePtr storage_;
  DType dtype_ = DType::kF32;
  std::vector<std::int64_t> shape_;
  std::int64_t offset_ = 0;  // element offset into storage
};

template <typename T>
Tensor Tensor::from_vector(const std::vector<T>& v,
                           std::vector<std::int64_t> shape) {
  if (shape.empty()) shape = {static_cast<std::int64_t>(v.size())};
  Tensor t(shape, DTypeOf<T>::value);
  std::copy(v.begin(), v.end(), t.data<T>());
  return t;
}

/// True when a and b have identical shape/dtype and elementwise
/// |a-b| <= atol + rtol*|b| (float types) or exact equality (i64).
bool allclose(const Tensor& a, const Tensor& b, double rtol = 1e-5,
              double atol = 1e-8);

}  // namespace salient
