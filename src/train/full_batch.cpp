#include "train/full_batch.h"

#include "autograd/functions.h"
#include "nn/loss.h"
#include "tensor/ops.h"
#include "util/timer.h"

namespace salient {

FullBatchGcn::FullBatchGcn(std::int64_t in_channels,
                           std::int64_t hidden_channels,
                           std::int64_t out_channels, int num_layers,
                           double dropout, std::uint64_t seed) {
  if (num_layers < 2) {
    throw std::invalid_argument("FullBatchGcn: num_layers < 2");
  }
  convs_.push_back(register_module(
      "conv0",
      std::make_shared<nn::GcnConv>(in_channels, hidden_channels, true,
                                    seed)));
  for (int i = 1; i < num_layers - 1; ++i) {
    convs_.push_back(register_module(
        "conv" + std::to_string(i),
        std::make_shared<nn::GcnConv>(hidden_channels, hidden_channels, true,
                                      seed + static_cast<unsigned>(i))));
  }
  convs_.push_back(register_module(
      "conv" + std::to_string(num_layers - 1),
      std::make_shared<nn::GcnConv>(hidden_channels, out_channels, true,
                                    seed + 97)));
  dropout_ = register_module("dropout",
                             std::make_shared<nn::Dropout>(dropout));
  set_seed(seed);
}

Variable FullBatchGcn::forward(const Variable& x,
                               const nn::NormalizedAdjacency& adj) {
  Variable h = x;
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    h = convs_[i]->forward(h, adj);
    if (i + 1 != convs_.size()) {
      h = nn::relu(h);
      h = dropout_->forward(h);
    }
  }
  return nn::log_softmax(h);
}

FullBatchGcnTrainer::FullBatchGcnTrainer(const Dataset& dataset,
                                         FullBatchConfig config)
    : dataset_(dataset),
      config_(config),
      adj_(nn::normalize_adjacency(dataset.graph)),
      features_f32_(dataset.features.to(DType::kF32)) {
  train_idx_ = Tensor::from_vector(dataset.train_idx);
  train_labels_ = Tensor({static_cast<std::int64_t>(dataset.train_idx.size())},
                         DType::kI64);
  const std::int64_t* labels = dataset.labels.data<std::int64_t>();
  std::int64_t* out = train_labels_.data<std::int64_t>();
  for (std::size_t i = 0; i < dataset.train_idx.size(); ++i) {
    out[i] = labels[dataset.train_idx[i]];
  }
  model_ = std::make_shared<FullBatchGcn>(
      dataset.feature_dim, config_.hidden_channels, dataset.num_classes,
      config_.num_layers, config_.dropout, config_.seed);
  optimizer_ = std::make_unique<optim::Adam>(model_->parameters(),
                                             config_.lr);
}

EpochStats FullBatchGcnTrainer::train_epoch(int epoch) {
  EpochStats stats;
  stats.epoch = epoch;
  WallTimer timer;
  model_->train(true);
  Variable logp_all = model_->forward(Variable(features_f32_), adj_);
  Variable logp_train = autograd::gather_rows(logp_all, train_idx_);
  Variable loss = nn::nll_loss(logp_train, train_labels_);
  model_->zero_grad();
  loss.backward();
  optimizer_->step();
  stats.epoch_seconds = timer.seconds();
  stats.blocking.add(Phase::kTrain, stats.epoch_seconds);
  stats.num_batches = 1;  // the whole graph is one batch
  stats.mean_loss = static_cast<double>(loss.data().data<float>()[0]);
  stats.train_accuracy = ops::accuracy(logp_train.data(), train_labels_);
  return stats;
}

double FullBatchGcnTrainer::accuracy(std::span<const NodeId> nodes) {
  model_->train(false);
  Variable logp_all = model_->forward(Variable(features_f32_), adj_);
  Tensor idx = Tensor::from_vector(
      std::vector<NodeId>(nodes.begin(), nodes.end()));
  Tensor logp = ops::gather_rows(logp_all.data(), idx);
  Tensor y({static_cast<std::int64_t>(nodes.size())}, DType::kI64);
  const std::int64_t* labels = dataset_.labels.data<std::int64_t>();
  std::int64_t* py = y.data<std::int64_t>();
  for (std::size_t i = 0; i < nodes.size(); ++i) py[i] = labels[nodes[i]];
  return ops::accuracy(logp, y);
}

std::size_t FullBatchGcnTrainer::activation_bytes() const {
  // input + (L-1) hidden layers + output, all [N, *] f32, held at once by
  // the autograd tape during backward.
  const auto n = static_cast<std::size_t>(dataset_.graph.num_nodes());
  std::size_t per_node = static_cast<std::size_t>(dataset_.feature_dim) +
                         static_cast<std::size_t>(config_.num_layers - 1) *
                             static_cast<std::size_t>(config_.hidden_channels) +
                         static_cast<std::size_t>(dataset_.num_classes);
  return n * per_node * 4;
}

}  // namespace salient
