// Full-batch GCN training — the batching scheme of the Table 7 systems
// NeuGraph, Roc and DeepGalois, implemented as a comparison baseline to
// SALIENT's mini-batch training ("these two batching schemes have drastically
// different computation patterns and may suffer different bottlenecks", §7).
//
// One epoch = one forward/backward over the ENTIRE graph: no sampling, no
// batch preparation, no transfer pipeline — but the whole feature matrix and
// every layer's activations must be materialized at once (the scalability
// wall that motivates mini-batch training on large graphs).
#pragma once

#include <memory>
#include <vector>

#include "graph/dataset.h"
#include "nn/activations.h"
#include "nn/gcn_conv.h"
#include "optim/adam.h"
#include "train/metrics.h"

namespace salient {

/// An L-layer GCN applied to the full graph.
class FullBatchGcn : public nn::Module {
 public:
  FullBatchGcn(std::int64_t in_channels, std::int64_t hidden_channels,
               std::int64_t out_channels, int num_layers, double dropout,
               std::uint64_t seed);

  /// Full-graph forward: x [N, in] -> log-probabilities [N, out].
  Variable forward(const Variable& x, const nn::NormalizedAdjacency& adj);

 private:
  std::vector<std::shared_ptr<nn::GcnConv>> convs_;
  std::shared_ptr<nn::Dropout> dropout_;
};

struct FullBatchConfig {
  int num_layers = 2;
  std::int64_t hidden_channels = 64;
  double lr = 1e-2;
  double dropout = 0.5;
  std::uint64_t seed = 7;
};

class FullBatchGcnTrainer {
 public:
  FullBatchGcnTrainer(const Dataset& dataset, FullBatchConfig config);

  /// One full-graph gradient step (the "epoch" of full-batch systems).
  /// Loss/accuracy are over the training split.
  EpochStats train_epoch(int epoch);

  /// Full-graph inference accuracy over `nodes`.
  double accuracy(std::span<const NodeId> nodes);

  const std::shared_ptr<FullBatchGcn>& model() const { return model_; }

  /// Bytes of layer activations one epoch materializes simultaneously
  /// (the memory argument against full-batch at papers100M scale).
  std::size_t activation_bytes() const;

 private:
  const Dataset& dataset_;
  FullBatchConfig config_;
  nn::NormalizedAdjacency adj_;
  Tensor features_f32_;  // [N, in] full feature matrix in compute precision
  Tensor train_idx_;     // i64 tensor of training nodes
  Tensor train_labels_;  // i64 labels of training nodes
  std::shared_ptr<FullBatchGcn> model_;
  std::unique_ptr<optim::Adam> optimizer_;
};

}  // namespace salient
