#include "train/inference.h"

#include <cstring>
#include <stdexcept>

#include "obs/trace.h"
#include "prep/slicing.h"
#include "sampling/fast_sampler.h"
#include "tensor/ops.h"

namespace salient {

namespace {

/// Gather f32 feature rows for `ids` from the (possibly f16) host store.
Tensor gather_features_f32(const Dataset& dataset,
                           std::span<const NodeId> ids) {
  Tensor sliced({static_cast<std::int64_t>(ids.size()), dataset.feature_dim},
                dataset.features.dtype());
  slice_rows_serial(dataset.features, ids, sliced);
  return sliced.to(DType::kF32);
}

}  // namespace

InferenceResult evaluate_sampled(nn::GnnModel& model, const Dataset& dataset,
                                 std::span<const NodeId> nodes,
                                 std::span<const std::int64_t> fanouts,
                                 std::int64_t batch_size, std::uint64_t seed) {
  model.train(false);
  FastSampler sampler(dataset.graph,
                      std::vector<std::int64_t>(fanouts.begin(), fanouts.end()));
  InferenceResult result;
  result.predictions.reserve(nodes.size());
  std::int64_t hits = 0;
  const auto n = static_cast<std::int64_t>(nodes.size());
  const std::int64_t* labels = dataset.labels.data<std::int64_t>();
  for (std::int64_t begin = 0; begin < n; begin += batch_size) {
    const std::int64_t end = std::min(n, begin + batch_size);
    const std::span<const NodeId> batch_nodes(
        nodes.data() + begin, static_cast<std::size_t>(end - begin));
    Mfg mfg = sampler.sample(batch_nodes,
                             seed + static_cast<std::uint64_t>(begin) + 1);
    Tensor x;
    {
      SALIENT_TRACE_SCOPE_ARG("infer.slice", mfg.num_input_nodes());
      x = gather_features_f32(dataset, mfg.n_ids);
    }
    Variable logp;
    {
      SALIENT_TRACE_SCOPE_ARG("infer.forward", end - begin);
      logp = model.forward(Variable(x), mfg);
    }
    Tensor pred = ops::argmax_rows(logp.data());
    const std::int64_t* pp = pred.data<std::int64_t>();
    for (std::int64_t i = 0; i < end - begin; ++i) {
      result.predictions.push_back(pp[i]);
      hits += (pp[i] == labels[batch_nodes[static_cast<std::size_t>(i)]]);
    }
  }
  result.accuracy = n ? static_cast<double>(hits) / static_cast<double>(n) : 0;
  return result;
}

InferenceResult evaluate_layerwise(nn::GnnModel& model, const Dataset& dataset,
                                   std::span<const NodeId> nodes,
                                   std::int64_t chunk_size) {
  if (!model.supports_layerwise()) {
    throw std::invalid_argument(
        "evaluate_layerwise: model does not support layer-wise inference");
  }
  model.train(false);
  const CsrGraph& g = dataset.graph;
  const std::int64_t n = g.num_nodes();

  // h holds the current layer's representation for every node (host memory).
  Tensor h = dataset.features.to(DType::kF32);

  for (int layer = 0; layer < model.num_layers(); ++layer) {
    Tensor next;  // allocated after the first chunk reveals the output width
    for (std::int64_t begin = 0; begin < n; begin += chunk_size) {
      const std::int64_t end = std::min(n, begin + chunk_size);
      const std::int64_t dst_count = end - begin;
      // Build a full-neighborhood bipartite level for this chunk:
      // sources = [chunk nodes..., their neighbors...] (global IDs relabeled
      // chunk-locally; the prefix property holds by construction).
      std::vector<NodeId> src_ids;
      src_ids.reserve(static_cast<std::size_t>(dst_count) * 8);
      for (std::int64_t v = begin; v < end; ++v) src_ids.push_back(v);
      auto indptr = std::make_shared<std::vector<std::int64_t>>();
      auto indices = std::make_shared<std::vector<std::int64_t>>();
      indptr->reserve(static_cast<std::size_t>(dst_count) + 1);
      indptr->push_back(0);
      // Local relabeling: chunk nodes take [0, dst_count); neighbors append.
      // A per-chunk hash map would dedup across destinations; a simple
      // append suffices for correctness and keeps this path simple.
      for (std::int64_t v = begin; v < end; ++v) {
        for (const NodeId u : g.neighbors(v)) {
          if (u >= begin && u < end) {
            indices->push_back(u - begin);
          } else {
            indices->push_back(static_cast<std::int64_t>(src_ids.size()));
            src_ids.push_back(u);
          }
        }
        indptr->push_back(static_cast<std::int64_t>(indices->size()));
      }
      MfgLevel level;
      level.num_dst = dst_count;
      level.num_src = static_cast<std::int64_t>(src_ids.size());
      level.indptr = std::move(indptr);
      level.indices = std::move(indices);

      // Gather the source representations from the full h matrix.
      Tensor x_src({level.num_src, h.size(1)}, DType::kF32);
      slice_rows_serial(h, src_ids, x_src);
      Variable out = model.apply_layer(layer, Variable(x_src), level);
      if (!next.defined()) {
        next = Tensor({n, out.data().size(1)}, DType::kF32);
      }
      Tensor dst_view = next.narrow_rows(begin, dst_count);
      std::memcpy(dst_view.raw(), out.data().raw(), out.data().nbytes());
    }
    h = std::move(next);
  }

  InferenceResult result;
  result.predictions.reserve(nodes.size());
  std::int64_t hits = 0;
  const std::int64_t* labels = dataset.labels.data<std::int64_t>();
  // Finalize on the queried nodes only.
  std::vector<NodeId> ids(nodes.begin(), nodes.end());
  Tensor h_query({static_cast<std::int64_t>(ids.size()), h.size(1)},
                 DType::kF32);
  slice_rows_serial(h, ids, h_query);
  Variable logp = model.finalize(Variable(h_query));
  Tensor pred = ops::argmax_rows(logp.data());
  const std::int64_t* pp = pred.data<std::int64_t>();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    result.predictions.push_back(pp[i]);
    hits += (pp[i] == labels[ids[i]]);
  }
  result.accuracy =
      ids.empty() ? 0 : static_cast<double>(hits) / static_cast<double>(ids.size());
  return result;
}

std::size_t layerwise_memory_bytes(const nn::GnnModel& model,
                                   const Dataset& dataset,
                                   std::int64_t hidden_channels) {
  // One [N, hidden] f32 matrix per retained layer; models without dense
  // connections keep two (current + next), dense ones keep all L.
  const auto per_layer = static_cast<std::size_t>(dataset.graph.num_nodes()) *
                         static_cast<std::size_t>(hidden_channels) * 4;
  const auto layers = model.supports_layerwise()
                          ? 2u
                          : static_cast<unsigned>(model.num_layers()) + 1u;
  return per_layer * layers;
}

}  // namespace salient
