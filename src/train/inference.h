// Inference paths (paper §5):
//   * evaluate_sampled — mini-batch inference with neighborhood sampling,
//     reusing the exact training forward (the unification the paper argues
//     for). One-shot sampling per node, like the paper's inference runs.
//   * evaluate_layerwise — full-neighborhood inference computed layer by
//     layer over ALL graph nodes, storing each layer's representations in
//     host memory (the conventional alternative; Table 6's "fanout: all").
// Both return accuracy over the requested node set; predictions can
// optionally be captured for per-node analyses (Figure 3).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "graph/dataset.h"
#include "nn/models.h"

namespace salient {

struct InferenceResult {
  double accuracy = 0;
  /// predicted class per queried node (aligned with the `nodes` argument).
  std::vector<std::int64_t> predictions;
};

/// Mini-batch sampled inference over `nodes`. `fanouts` may differ from the
/// training fanout (Table 6 sweeps it). The model is switched to eval mode.
InferenceResult evaluate_sampled(nn::GnnModel& model, const Dataset& dataset,
                                 std::span<const NodeId> nodes,
                                 std::span<const std::int64_t> fanouts,
                                 std::int64_t batch_size, std::uint64_t seed);

/// Layer-wise full-neighborhood inference. Computes representations for all
/// graph nodes level by level (chunked), then evaluates `nodes`. Requires
/// model.supports_layerwise(). `chunk_size` bounds peak memory per step.
InferenceResult evaluate_layerwise(nn::GnnModel& model, const Dataset& dataset,
                                   std::span<const NodeId> nodes,
                                   std::int64_t chunk_size = 4096);

/// Host-memory bytes the layer-wise approach must hold for intermediate
/// representations (the memory argument of §5).
std::size_t layerwise_memory_bytes(const nn::GnnModel& model,
                                   const Dataset& dataset,
                                   std::int64_t hidden_channels);

}  // namespace salient
