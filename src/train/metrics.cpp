#include "train/metrics.h"

#include <sstream>

namespace salient {

std::string EpochStats::summary() const {
  std::ostringstream os;
  os.precision(4);
  os << "epoch " << epoch << ": " << epoch_seconds << "s"
     << " [prep=" << blocking.total(Phase::kSample) + blocking.total(Phase::kSlice)
     << "s transfer=" << blocking.total(Phase::kTransfer)
     << "s train=" << blocking.total(Phase::kTrain) << "s]"
     << " loss=" << mean_loss << " acc=" << train_accuracy << " batches="
     << num_batches << " bytes=" << static_cast<double>(transfer_bytes) / 1e6
     << "MB";
  return os.str();
}

}  // namespace salient
