// Per-epoch statistics: the blocking per-phase breakdown of Table 1 plus
// learning metrics.
#pragma once

#include <cstdint>
#include <string>

#include "util/timer.h"

namespace salient {

struct EpochStats {
  int epoch = 0;
  double epoch_seconds = 0;   ///< wall time of the epoch
  PhaseTimer blocking;        ///< main-thread blocking time per phase
  std::int64_t num_batches = 0;
  std::size_t transfer_bytes = 0;
  double mean_loss = 0;
  double train_accuracy = 0;  ///< accuracy over the epoch's training batches

  /// One-line summary for logs.
  std::string summary() const;
};

}  // namespace salient
