#include "train/trainer.h"

#include <algorithm>
#include <atomic>
#include <deque>

#include "autograd/functions.h"
#include "obs/trace.h"
#include "nn/loss.h"
#include "prep/baseline_loader.h"
#include "prep/salient_loader.h"
#include "tensor/ops.h"

namespace salient {

Trainer::Trainer(const Dataset& dataset, std::shared_ptr<nn::GnnModel> model,
                 DeviceSim& device, TrainConfig config)
    : dataset_(dataset),
      model_(std::move(model)),
      device_(device),
      config_(std::move(config)),
      optimizer_(model_->parameters(), config_.lr),
      pool_(std::make_shared<PinnedPool>()) {
  const auto pct_nodes = static_cast<std::int64_t>(
      config_.loader.cache_percentage *
      static_cast<double>(dataset_.graph.num_nodes()));
  const std::int64_t cache_nodes =
      std::max(config_.feature_cache_nodes, pct_nodes);
  if (cache_nodes > 0) {
    // The warmup/probe sampling of the presample and auto policies mirrors
    // the training workload: same fanouts, batch size, and seed family.
    CachePolicyConfig policy;
    policy.kind = config_.loader.cache_policy;
    policy.presample_epochs = config_.loader.presample_epochs;
    policy.presample_workers = config_.loader.num_workers;
    policy.presample_seeds = PresampleSeeds::kTrain;
    policy.fanouts = config_.loader.fanouts;
    policy.batch_size = config_.loader.batch_size;
    policy.seed = config_.loader.seed;
    cache_ = std::make_shared<const FeatureCache>(dataset_, cache_nodes,
                                                  policy);
  }
}

double Trainer::train_step(const DeviceBatch& batch, double* accuracy) {
  Variable x(batch.x_f32, /*requires_grad=*/false);
  Variable logp = model_->forward(x, batch.mfg);
  Variable loss = nn::nll_loss(logp, batch.y);
  model_->zero_grad();
  loss.backward();
  optimizer_.step();
  if (accuracy != nullptr) {
    *accuracy = ops::accuracy(logp.data(), batch.y);
  }
  return static_cast<double>(loss.data().data<float>()[0]);
}

EpochStats Trainer::train_epoch(int epoch) {
  LoaderConfig epoch_cfg = config_.loader;
  epoch_cfg.seed = config_.loader.seed * 0x10001ull +
                   static_cast<std::uint64_t>(epoch) + 1;
  model_->train(true);

  if (config_.execution == ExecutionMode::kPipelined) {
    if (config_.sampling_period > 1 &&
        epoch % config_.sampling_period != 0 && !replay_batches_.empty()) {
      return run_replay(epoch);  // LazyGCN: reuse the stored mega-batch
    }
    if (config_.sampling_period > 1) replay_batches_.clear();
    return run_pipelined(epoch, epoch_cfg);
  }
  if (config_.loader_kind == LoaderKind::kBaseline) {
    BaselineLoader loader(dataset_, dataset_.train_idx, epoch_cfg, pool_);
    return run_blocking(loader, epoch);
  }
  SalientLoader loader(dataset_, dataset_.train_idx, epoch_cfg, pool_,
                       cache_);
  return run_blocking(loader, epoch);
}

template <class Loader>
EpochStats Trainer::run_blocking(Loader& loader, int epoch) {
  EpochStats stats;
  stats.epoch = epoch;
  WallTimer epoch_timer;
  SALIENT_TRACE_THREAD_NAME("main");
  double loss_sum = 0, acc_sum = 0;

  for (;;) {
    // 1. Batch preparation (blocking on the loader).
    WallTimer t;
    std::optional<PreparedBatch> maybe_batch;
    {
      SALIENT_TRACE_SCOPE("loader.next");
      maybe_batch = loader.next();
    }
    if (!maybe_batch.has_value()) break;
    stats.blocking.add(Phase::kSample, t.seconds());
    PreparedBatch batch = std::move(*maybe_batch);
    stats.transfer_bytes += batch.transfer_bytes();

    // 2. Blocking transfer (Listing 1's `batch.to(GPU)`).
    t.reset();
    SALIENT_TRACE_ASYNC_BEGIN("device-batch", batch.index);
    DeviceBatch dev;
    {
      SALIENT_TRACE_SCOPE_ARG("transfer.blocking", batch.index);
      dev = batch.cache_plan
                ? device_.transfer_batch_cached(batch, *batch.cache_plan,
                                                *cache_,
                                                /*blocking=*/true, nullptr)
                : device_.transfer_batch(batch, /*blocking=*/true,
                                         /*ready=*/nullptr);
    }
    stats.blocking.add(Phase::kTransfer, t.seconds());
    loader.recycle(std::move(batch));

    // 3. Training step on the compute stream, synchronized.
    t.reset();
    double acc = 0, loss = 0;
    device_.compute_stream().enqueue([this, &dev, &acc, &loss] {
      loss = train_step(dev, &acc);
    }, "train.step");
    {
      SALIENT_TRACE_SCOPE_ARG("train.wait", dev.index);
      device_.compute_stream().synchronize();
    }
    SALIENT_TRACE_ASYNC_END("device-batch", dev.index);
    stats.blocking.add(Phase::kTrain, t.seconds());

    loss_sum += loss;
    acc_sum += acc;
    ++stats.num_batches;
  }
  stats.epoch_seconds = epoch_timer.seconds();
  if (stats.num_batches > 0) {
    stats.mean_loss = loss_sum / static_cast<double>(stats.num_batches);
    stats.train_accuracy = acc_sum / static_cast<double>(stats.num_batches);
  }
  return stats;
}

EpochStats Trainer::run_replay(int epoch) {
  EpochStats stats;
  stats.epoch = epoch;
  WallTimer epoch_timer;
  double loss_sum = 0, acc_sum = 0;

  // Reshuffle the stored batches so replay epochs still decorrelate the
  // optimizer's update order (LazyGCN shuffles within the mega-batch).
  std::vector<std::size_t> order(replay_batches_.size());
  std::iota(order.begin(), order.end(), 0);
  Xoshiro256ss rng(config_.loader.seed * 131 +
                   static_cast<std::uint64_t>(epoch));
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[bounded_rand(rng, i)]);
  }

  for (const std::size_t idx : order) {
    const PreparedBatch& batch = replay_batches_[idx];
    stats.transfer_bytes += batch.transfer_bytes();
    WallTimer t;
    DeviceBatch dev =
        batch.cache_plan
            ? device_.transfer_batch_cached(batch, *batch.cache_plan, *cache_,
                                            true, nullptr)
            : device_.transfer_batch(batch, true, nullptr);
    stats.blocking.add(Phase::kTransfer, t.seconds());
    t.reset();
    double acc = 0, loss = 0;
    device_.compute_stream().enqueue(
        [this, &dev, &acc, &loss] { loss = train_step(dev, &acc); },
        "train.step");
    device_.compute_stream().synchronize();
    stats.blocking.add(Phase::kTrain, t.seconds());
    loss_sum += loss;
    acc_sum += acc;
    ++stats.num_batches;
  }
  stats.epoch_seconds = epoch_timer.seconds();
  if (stats.num_batches > 0) {
    stats.mean_loss = loss_sum / static_cast<double>(stats.num_batches);
    stats.train_accuracy = acc_sum / static_cast<double>(stats.num_batches);
  }
  return stats;
}

Trainer::InferenceEpoch Trainer::inference_epoch(
    std::span<const NodeId> nodes, std::span<const std::int64_t> fanouts,
    std::uint64_t seed) {
  InferenceEpoch result;
  WallTimer timer;
  SALIENT_TRACE_THREAD_NAME("main");
  model_->train(false);

  LoaderConfig cfg = config_.loader;
  cfg.fanouts.assign(fanouts.begin(), fanouts.end());
  cfg.seed = seed;
  cfg.shuffle = false;  // inference order is the caller's node order
  SalientLoader loader(dataset_, nodes, cfg, pool_, cache_);

  struct Inflight {
    std::shared_ptr<DeviceBatch> dev;
    PreparedBatch host;
    Event done;
    std::shared_ptr<std::pair<std::int64_t, std::int64_t>> hits;  // hit, n
  };
  std::deque<Inflight> inflight;
  std::int64_t hits = 0, total = 0;

  auto retire_front = [&] {
    Inflight f = std::move(inflight.front());
    inflight.pop_front();
    {
      SALIENT_TRACE_SCOPE_ARG("infer.wait", f.dev->index);
      f.done.synchronize();
    }
    SALIENT_TRACE_ASYNC_END("batch", f.dev->index);
    loader.recycle(std::move(f.host));
    hits += f.hits->first;
    total += f.hits->second;
    ++result.num_batches;
  };

  while (auto maybe_batch = loader.next()) {
    PreparedBatch batch = std::move(*maybe_batch);
    result.transfer_bytes += batch.transfer_bytes();
    Inflight item;
    Event ready;
    item.dev = std::make_shared<DeviceBatch>(
        batch.cache_plan
            ? device_.transfer_batch_cached(batch, *batch.cache_plan, *cache_,
                                            false, &ready)
            : device_.transfer_batch(batch, false, &ready));
    item.host = std::move(batch);
    item.hits = std::make_shared<std::pair<std::int64_t, std::int64_t>>(0, 0);
    auto dev = item.dev;
    auto hit_slot = item.hits;
    auto model = model_;
    device_.compute_stream().enqueue([dev, hit_slot, model] {
      Variable logp = model->forward(Variable(dev->x_f32), dev->mfg);
      Tensor pred = ops::argmax_rows(logp.data());
      const std::int64_t* pp = pred.data<std::int64_t>();
      const std::int64_t* py = dev->y.data<std::int64_t>();
      std::int64_t h = 0;
      for (std::int64_t i = 0; i < pred.size(0); ++i) h += (pp[i] == py[i]);
      hit_slot->first = h;
      hit_slot->second = pred.size(0);
    }, "infer.forward");
    item.done = device_.compute_stream().record();
    inflight.push_back(std::move(item));
    while (static_cast<int>(inflight.size()) > config_.pipeline_depth) {
      retire_front();
    }
  }
  while (!inflight.empty()) retire_front();

  result.seconds = timer.seconds();
  result.accuracy =
      total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0;
  return result;
}

EpochStats Trainer::run_pipelined(int epoch, const LoaderConfig& epoch_cfg) {
  EpochStats stats;
  stats.epoch = epoch;
  WallTimer epoch_timer;
  SALIENT_TRACE_THREAD_NAME("main");

  SalientLoader loader(dataset_, dataset_.train_idx, epoch_cfg, pool_,
                       cache_);

  struct Inflight {
    std::shared_ptr<DeviceBatch> dev;
    PreparedBatch host;    // recycled once copies completed
    Event copies_done;     // copy-stream completion for this batch
    Event train_done;      // compute-stream completion for this batch
    std::shared_ptr<std::pair<double, double>> result;  // loss, acc
  };
  std::deque<Inflight> inflight;
  double loss_sum = 0, acc_sum = 0;

  auto retire_front = [&] {
    Inflight f = std::move(inflight.front());
    inflight.pop_front();
    WallTimer t;
    {
      SALIENT_TRACE_SCOPE_ARG("train.wait", f.dev->index);
      f.train_done.synchronize();
    }
    SALIENT_TRACE_ASYNC_END("batch", f.dev->index);
    stats.blocking.add(Phase::kTrain, t.seconds());
    if (config_.sampling_period > 1) {
      // LazyGCN schedule: keep an unpinned deep copy for replay epochs
      // (the pinned staging buffers still return to the pool).
      PreparedBatch copy;
      copy.index = f.host.index;
      copy.mfg = f.host.mfg;
      copy.x = f.host.x.clone();
      copy.y = f.host.y.clone();
      copy.cache_plan = f.host.cache_plan;
      replay_batches_.push_back(std::move(copy));
    }
    loader.recycle(std::move(f.host));
    loss_sum += f.result->first;
    acc_sum += f.result->second;
    ++stats.num_batches;
    SALIENT_TRACE_COUNTER("pipeline.inflight",
                          static_cast<std::int64_t>(inflight.size()));
  };

  for (;;) {
    WallTimer t;
    std::optional<PreparedBatch> maybe_batch;
    {
      SALIENT_TRACE_SCOPE("loader.wait");
      maybe_batch = loader.next();
    }
    if (!maybe_batch.has_value()) break;
    stats.blocking.add(Phase::kSample, t.seconds());
    PreparedBatch batch = std::move(*maybe_batch);
    stats.transfer_bytes += batch.transfer_bytes();

    // Enqueue the H2D transfer on the copy stream (returns immediately) and
    // chain the training step behind the per-batch ready event.
    t.reset();
    Inflight item;
    Event ready;
    item.dev = std::make_shared<DeviceBatch>(
        batch.cache_plan
            ? device_.transfer_batch_cached(batch, *batch.cache_plan, *cache_,
                                            /*blocking=*/false, &ready)
            : device_.transfer_batch(batch, /*blocking=*/false, &ready));
    item.copies_done = device_.copy_stream().record();
    item.host = std::move(batch);
    item.result = std::make_shared<std::pair<double, double>>(0.0, 0.0);
    auto dev = item.dev;
    auto result = item.result;
    device_.compute_stream().enqueue([this, dev, result] {
      double acc = 0;
      result->first = train_step(*dev, &acc);
      result->second = acc;
    }, "train.step");
    item.train_done = device_.compute_stream().record();
    stats.blocking.add(Phase::kTransfer, t.seconds());
    inflight.push_back(std::move(item));
    SALIENT_TRACE_COUNTER("pipeline.inflight",
                          static_cast<std::int64_t>(inflight.size()));

    // Throttle the pipeline depth: block on the oldest batch's training.
    while (static_cast<int>(inflight.size()) > config_.pipeline_depth) {
      retire_front();
    }
  }
  while (!inflight.empty()) retire_front();

  stats.epoch_seconds = epoch_timer.seconds();
  if (stats.num_batches > 0) {
    stats.mean_loss = loss_sum / static_cast<double>(stats.num_batches);
    stats.train_accuracy = acc_sum / static_cast<double>(stats.num_batches);
  }
  return stats;
}

}  // namespace salient
