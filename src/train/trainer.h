// End-to-end training loops: the blocking baseline workflow of Listing 1 and
// SALIENT's pipelined workflow (Figure 1a vs 1b).
//
// Baseline (execution = kBlocking, loader = kBaseline): the main thread
// serially (1) blocks on the DataLoader-style loader for the next batch
// (sampling in workers, slicing + pin-copy inline), (2) performs a blocking
// `.to(device)` transfer, (3) runs the training step and synchronizes. The
// per-phase blocking times recorded in EpochStats reproduce the measurement
// methodology of Table 1.
//
// SALIENT (execution = kPipelined, loader = kSalient): preparation threads
// run ahead through the lock-free work queue; transfers are enqueued on the
// copy stream and the compute stream waits on per-batch events, so transfer
// overlaps training (§4.3); the main thread only throttles the pipeline
// depth. Pinned staging buffers are recycled once their copies completed.
#pragma once

#include <memory>

#include "device/device_sim.h"
#include "graph/dataset.h"
#include "nn/models.h"
#include "optim/adam.h"
#include "prep/loader_config.h"
#include "prep/pinned_pool.h"
#include "train/metrics.h"

namespace salient {

enum class LoaderKind { kBaseline, kSalient };
enum class ExecutionMode { kBlocking, kPipelined };

struct TrainConfig {
  LoaderConfig loader;
  LoaderKind loader_kind = LoaderKind::kSalient;
  ExecutionMode execution = ExecutionMode::kPipelined;
  double lr = 3e-3;
  /// Maximum device batches in flight in pipelined mode.
  int pipeline_depth = 2;
  /// When > 0, keep the features of this many highest-degree nodes resident
  /// on the device and transfer only cache misses (paper §8 feature
  /// caching). Applies to the SALIENT loader paths.
  std::int64_t feature_cache_nodes = 0;
  /// Lazy sampling schedule (LazyGCN, Ramezani et al. 2020; paper §2.2):
  /// sample fresh mini-batches every `sampling_period` epochs and replay the
  /// stored batches (reshuffled) in between, trading sampling freshness for
  /// batch-preparation cost. 1 = resample every epoch (the paper's setting).
  /// Pipelined execution only.
  int sampling_period = 1;
};

class Trainer {
 public:
  /// The trainer borrows dataset/device and shares the model; all must
  /// outlive it. The Adam optimizer is created over the model parameters.
  Trainer(const Dataset& dataset, std::shared_ptr<nn::GnnModel> model,
          DeviceSim& device, TrainConfig config);

  /// Run one training epoch over the dataset's training split.
  /// The epoch seed is derived from (config.loader.seed, epoch).
  EpochStats train_epoch(int epoch);

  /// Result of a pipelined inference pass (paper Table 7's "Infer" row:
  /// mini-batch inference runs through the same prepared-batch pipeline).
  struct InferenceEpoch {
    double seconds = 0;
    double accuracy = 0;
    std::int64_t num_batches = 0;
    std::size_t transfer_bytes = 0;
  };

  /// Sampled inference over `nodes` through the full SALIENT pipeline
  /// (loader workers + overlapped transfers + forward-only compute), with
  /// `fanouts` (the paper uses (20,20,20)). Model is left in eval mode.
  InferenceEpoch inference_epoch(std::span<const NodeId> nodes,
                                 std::span<const std::int64_t> fanouts,
                                 std::uint64_t seed = 0x1f3a);

  optim::Adam& optimizer() { return optimizer_; }
  const TrainConfig& config() const { return config_; }
  /// The device feature cache, when enabled (null otherwise).
  const std::shared_ptr<const FeatureCache>& feature_cache() const {
    return cache_;
  }

 private:
  template <class Loader>
  EpochStats run_blocking(Loader& loader, int epoch);
  EpochStats run_pipelined(int epoch, const LoaderConfig& epoch_cfg);
  /// Replay the lazily cached epoch (no sampling/slicing; LazyGCN schedule).
  EpochStats run_replay(int epoch);

  /// Forward/backward/step for one device-resident batch; returns loss.
  double train_step(const DeviceBatch& batch, double* accuracy);

  const Dataset& dataset_;
  std::shared_ptr<nn::GnnModel> model_;
  DeviceSim& device_;
  TrainConfig config_;
  optim::Adam optimizer_;
  std::shared_ptr<PinnedPool> pool_;
  std::shared_ptr<const FeatureCache> cache_;
  /// Stored batches of the last sampling epoch (sampling_period > 1 only).
  std::vector<PreparedBatch> replay_batches_;
};

}  // namespace salient
