// A bounded blocking queue (mutex + condition variables) used for the
// prepared-batch *output* side of the loaders, where the consumer (the main
// training thread) wants to block until a batch is ready. The *input* side of
// SALIENT's loader uses the lock-free MpmcQueue, as in the paper.
//
// Locking discipline is machine-checked: every guarded field carries
// GUARDED_BY(mu_) and a Clang -Wthread-safety build rejects undisciplined
// access (docs/STATIC_ANALYSIS.md).
#pragma once

#include <chrono>
#include <deque>
#include <optional>

#include "check/shim.h"
#include "fault/failpoint.h"
#include "util/thread_annotations.h"

namespace salient {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Name this queue as a fault-injection site: producers then consult the
  /// failpoint `queue.<site>.push.wedge` and consumers
  /// `queue.<site>.pop.wedge`, each a scripted stall (the failpoint's @arg is
  /// the stall in microseconds) injected *outside* the queue lock — the
  /// thread wedges, the queue stays live. Dead code unless the build sets
  /// SALIENT_FAILPOINTS=ON.
  void set_fault_site(const std::string& site) {
#if defined(SALIENT_FAILPOINTS_ENABLED)
    auto& reg = fault::Registry::global();
    push_wedge_ = &reg.failpoint("queue." + site + ".push.wedge");
    pop_wedge_ = &reg.failpoint("queue." + site + ".pop.wedge");
#else
    (void)site;
#endif
  }

  /// Block until space is available, then enqueue. Returns false if the
  /// queue was closed.
  bool push(T value) {
#if defined(SALIENT_FAILPOINTS_ENABLED)
    if (push_wedge_) fault::maybe_wedge(*push_wedge_);
#endif
    check::UniqueLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) cv_not_full_.wait(lock);
    if (closed_) return false;
    items_.push_back(std::move(value));
    cv_not_empty_.notify_one();
    return true;
  }

  /// Non-blocking enqueue: fails (without moving from `value`) when the
  /// queue is full or closed. This is the admission-control primitive — a
  /// producer that must not stall behind a slow consumer sheds instead.
  bool try_push(T& value) {
    check::LockGuard lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    cv_not_empty_.notify_one();
    return true;
  }
  bool try_push(T&& value) { return try_push(value); }

  /// Wait up to `timeout` for an item. Returns nullopt on timeout, or once
  /// the queue is closed *and* drained. A zero (or negative) timeout polls.
  template <class Rep, class Period>
  std::optional<T> try_pop_for(std::chrono::duration<Rep, Period> timeout) {
#if defined(SALIENT_FAILPOINTS_ENABLED)
    if (pop_wedge_) fault::maybe_wedge(*pop_wedge_);
#endif
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    check::UniqueLock lock(mu_);
    while (!closed_ && items_.empty()) {
      if (cv_not_empty_.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    cv_not_full_.notify_one();
    return value;
  }

  /// Block until an item is available; returns nullopt once the queue is
  /// closed *and* drained.
  std::optional<T> pop() {
#if defined(SALIENT_FAILPOINTS_ENABLED)
    if (pop_wedge_) fault::maybe_wedge(*pop_wedge_);
#endif
    check::UniqueLock lock(mu_);
    while (!closed_ && items_.empty()) cv_not_empty_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    cv_not_full_.notify_one();
    return value;
  }

  /// Close the queue: producers fail, consumers drain then get nullopt.
  void close() {
    check::LockGuard lock(mu_);
    closed_ = true;
    cv_not_empty_.notify_all();
    cv_not_full_.notify_all();
  }

  std::size_t size() const {
    check::LockGuard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    check::LockGuard lock(mu_);
    return closed_;
  }

 private:
  mutable check::Mutex mu_;
  check::CondVar cv_not_full_;
  check::CondVar cv_not_empty_;
  std::deque<T> items_ GUARDED_BY(mu_);
  std::size_t capacity_;  // unguarded: immutable after construction
  bool closed_ GUARDED_BY(mu_) = false;
#if defined(SALIENT_FAILPOINTS_ENABLED)
  fault::Failpoint* push_wedge_ = nullptr;  // unguarded: set_fault_site once
  fault::Failpoint* pop_wedge_ = nullptr;   // unguarded: set_fault_site once
#endif
};

}  // namespace salient
