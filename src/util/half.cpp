#include "util/half.h"

#include <bit>
#include <cstring>

namespace salient {

namespace {

inline std::uint32_t as_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
inline float from_bits32(std::uint32_t u) { return std::bit_cast<float>(u); }

}  // namespace

Half float_to_half(float f) {
  const std::uint32_t x = as_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf or NaN. Preserve NaN-ness; quiet the payload.
    const std::uint16_t mant = (abs > 0x7f800000u) ? 0x0200u : 0x0000u;
    return Half::from_bits(static_cast<std::uint16_t>(sign | 0x7c00u | mant));
  }
  if (abs >= 0x477ff000u) {
    // Rounds to a magnitude >= 65520 -> overflow to infinity.
    return Half::from_bits(static_cast<std::uint16_t>(sign | 0x7c00u));
  }
  if (abs < 0x38800000u) {
    // Subnormal half (or zero). Shift the implicit bit into the mantissa and
    // round to nearest even at the appropriate bit position.
    if (abs < 0x33000001u) {
      // Too small: rounds to (signed) zero.
      return Half::from_bits(static_cast<std::uint16_t>(sign));
    }
    const int exp = static_cast<int>(abs >> 23);
    const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
    // Subnormal half = q * 2^-24 with q = round(mant / 2^shift).
    const int shift = 126 - exp;  // in [14, 24]
    const std::uint32_t q = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half_ulp = 1u << (shift - 1);
    std::uint32_t out = q;
    if (rem > half_ulp || (rem == half_ulp && (q & 1u))) ++out;
    return Half::from_bits(static_cast<std::uint16_t>(sign | out));
  }
  // Normal half. Round the 23-bit mantissa to 10 bits, to nearest even.
  std::uint32_t out = (abs + 0xfffu + ((abs >> 13) & 1u)) >> 13;
  out -= (112u << 10);  // rebias exponent 127 -> 15
  return Half::from_bits(static_cast<std::uint16_t>(sign | out));
}

float half_to_float(Half h) {
  const std::uint32_t x = h.bits;
  const std::uint32_t sign = (x & 0x8000u) << 16;
  const std::uint32_t exp = (x >> 10) & 0x1fu;
  const std::uint32_t mant = x & 0x3ffu;

  if (exp == 0x1fu) {
    // Inf / NaN.
    return from_bits32(sign | 0x7f800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return from_bits32(sign);  // +/- 0
    // Subnormal: scale by 2^-24 via float arithmetic (exact).
    const float mag = static_cast<float>(mant) * 5.9604644775390625e-8f;
    return (sign != 0) ? -mag : mag;
  }
  return from_bits32(sign | ((exp + 112u) << 23) | (mant << 13));
}

void float_to_half_n(const float* src, Half* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_half(src[i]);
}

void half_to_float_n(const Half* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = half_to_float(src[i]);
}

}  // namespace salient
