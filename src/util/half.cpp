#include "util/half.h"

#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define SALIENT_HALF_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define SALIENT_HALF_NEON 1
#include <arm_neon.h>
#endif

namespace salient {

namespace {

inline std::uint32_t as_bits(float f) { return std::bit_cast<std::uint32_t>(f); }
inline float from_bits32(std::uint32_t u) { return std::bit_cast<float>(u); }

}  // namespace

Half float_to_half(float f) {
  const std::uint32_t x = as_bits(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  std::uint32_t abs = x & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf or NaN. Preserve NaN-ness; quiet the payload.
    const std::uint16_t mant = (abs > 0x7f800000u) ? 0x0200u : 0x0000u;
    return Half::from_bits(static_cast<std::uint16_t>(sign | 0x7c00u | mant));
  }
  if (abs >= 0x477ff000u) {
    // Rounds to a magnitude >= 65520 -> overflow to infinity.
    return Half::from_bits(static_cast<std::uint16_t>(sign | 0x7c00u));
  }
  if (abs < 0x38800000u) {
    // Subnormal half (or zero). Shift the implicit bit into the mantissa and
    // round to nearest even at the appropriate bit position.
    if (abs < 0x33000001u) {
      // Too small: rounds to (signed) zero.
      return Half::from_bits(static_cast<std::uint16_t>(sign));
    }
    const int exp = static_cast<int>(abs >> 23);
    const std::uint32_t mant = (abs & 0x7fffffu) | 0x800000u;
    // Subnormal half = q * 2^-24 with q = round(mant / 2^shift).
    const int shift = 126 - exp;  // in [14, 24]
    const std::uint32_t q = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1);
    const std::uint32_t half_ulp = 1u << (shift - 1);
    std::uint32_t out = q;
    if (rem > half_ulp || (rem == half_ulp && (q & 1u))) ++out;
    return Half::from_bits(static_cast<std::uint16_t>(sign | out));
  }
  // Normal half. Round the 23-bit mantissa to 10 bits, to nearest even.
  std::uint32_t out = (abs + 0xfffu + ((abs >> 13) & 1u)) >> 13;
  out -= (112u << 10);  // rebias exponent 127 -> 15
  return Half::from_bits(static_cast<std::uint16_t>(sign | out));
}

float half_to_float(Half h) {
  const std::uint32_t x = h.bits;
  const std::uint32_t sign = (x & 0x8000u) << 16;
  const std::uint32_t exp = (x >> 10) & 0x1fu;
  const std::uint32_t mant = x & 0x3ffu;

  if (exp == 0x1fu) {
    // Inf / NaN.
    return from_bits32(sign | 0x7f800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return from_bits32(sign);  // +/- 0
    // Subnormal: scale by 2^-24 via float arithmetic (exact).
    const float mag = static_cast<float>(mant) * 5.9604644775390625e-8f;
    return (sign != 0) ? -mag : mag;
  }
  return from_bits32(sign | ((exp + 112u) << 23) | (mant << 13));
}

// ---------------------------------------------------------------------------
// Bulk converters.
//
// The slice/transfer hot path converts whole feature rows at a time, so the
// bulk entry points carry hardware conversion paths (x86 F16C, AArch64 NEON)
// behind a one-time runtime check, with the scalar loops as both the fallback
// and the ground truth (tests/test_util.cpp checks exact bit parity over all
// 65536 half patterns and a large float sweep).
//
// Parity notes, scalar vs hardware:
//   * finite values: both implement IEEE round-to-nearest-even (VCVTPS2PH
//     with an explicit RNE immediate ignores MXCSR rounding/FTZ/DAZ, and
//     VCVTPH2PS is exact), so results are bit-identical;
//   * NaN: the hardware instructions quiet signaling NaNs and carry input
//     payload bits, while the scalar converters canonicalize payloads
//     (float_to_half emits 0x0200, half_to_float shifts the payload). Any
//     8-element block containing a NaN therefore falls back to the scalar
//     loop, keeping the bulk output byte-identical to the scalar output for
//     every possible input. Feature data is NaN-free, so the hot path never
//     takes this branch; the movemask test costs ~1 cycle per block.
// ---------------------------------------------------------------------------

namespace {

#if defined(SALIENT_HALF_X86)

bool cpu_has_f16c() {
  static const bool has = __builtin_cpu_supports("f16c") != 0;
  return has;
}

__attribute__((target("f16c,avx"))) void float_to_half_n_f16c(
    const float* src, Half* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    // NaN lanes (unordered self-compare) take the scalar block so payload
    // canonicalization matches the scalar converter exactly.
    const __m256 unord = _mm256_cmp_ps(v, v, _CMP_UNORD_Q);
    if (_mm256_movemask_ps(unord) != 0) {
      for (std::size_t j = i; j < i + 8; ++j) dst[j] = float_to_half(src[j]);
      continue;
    }
    const __m128i h = _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = float_to_half(src[i]);
}

__attribute__((target("f16c,avx"))) void half_to_float_n_f16c(
    const Half* src, float* dst, std::size_t n) {
  const __m128i abs_mask = _mm_set1_epi16(0x7fff);
  const __m128i inf_bits = _mm_set1_epi16(0x7c00);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    // NaN iff (bits & 0x7fff) > 0x7c00; both sides are <= 0x7fff so the
    // signed 16-bit compare is exact.
    const __m128i isnan =
        _mm_cmpgt_epi16(_mm_and_si128(h, abs_mask), inf_bits);
    if (_mm_movemask_epi8(isnan) != 0) {
      for (std::size_t j = i; j < i + 8; ++j) dst[j] = half_to_float(src[j]);
      continue;
    }
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = half_to_float(src[i]);
}

#elif defined(SALIENT_HALF_NEON)

// AArch64 mandates the half-precision conversion instructions.
bool cpu_has_f16c() { return true; }

void float_to_half_n_f16c(const float* src, Half* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t v = vld1q_f32(src + i);
    const uint32x4_t unord = vmvnq_u32(vceqq_f32(v, v));  // NaN lanes
    if (vmaxvq_u32(unord) != 0) {
      for (std::size_t j = i; j < i + 4; ++j) dst[j] = float_to_half(src[j]);
      continue;
    }
    const float16x4_t h = vcvt_f16_f32(v);
    vst1_u16(reinterpret_cast<std::uint16_t*>(dst + i),
             vreinterpret_u16_f16(h));
  }
  for (; i < n; ++i) dst[i] = float_to_half(src[i]);
}

void half_to_float_n_f16c(const Half* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint16x4_t bits =
        vld1_u16(reinterpret_cast<const std::uint16_t*>(src + i));
    const uint16x4_t abs = vand_u16(bits, vdup_n_u16(0x7fff));
    const uint16x4_t isnan = vcgt_u16(abs, vdup_n_u16(0x7c00));
    if (vmaxv_u16(isnan) != 0) {
      for (std::size_t j = i; j < i + 4; ++j) dst[j] = half_to_float(src[j]);
      continue;
    }
    vst1q_f32(dst + i, vcvt_f32_f16(vreinterpret_f16_u16(bits)));
  }
  for (; i < n; ++i) dst[i] = half_to_float(src[i]);
}

#endif

}  // namespace

void float_to_half_n(const float* src, Half* dst, std::size_t n) {
#if defined(SALIENT_HALF_X86) || defined(SALIENT_HALF_NEON)
  if (cpu_has_f16c()) {
    float_to_half_n_f16c(src, dst, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) dst[i] = float_to_half(src[i]);
}

void half_to_float_n(const Half* src, float* dst, std::size_t n) {
#if defined(SALIENT_HALF_X86) || defined(SALIENT_HALF_NEON)
  if (cpu_has_f16c()) {
    half_to_float_n_f16c(src, dst, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) dst[i] = half_to_float(src[i]);
}

}  // namespace salient
