// Software IEEE-754 binary16 ("half") conversion.
//
// The SALIENT paper stores node features in host memory as half-precision
// floats to reduce memory-bandwidth pressure during slicing and CPU-to-GPU
// transfer, while GPU compute remains single precision (paper §3, conventional
// optimization (iii)). This header provides the float<->half conversions used
// by the feature store and the slicing kernels.
//
// The conversion implements round-to-nearest-even, handles subnormals,
// infinities and NaN, and round-trips every finite half value exactly.
#pragma once

#include <cstdint>
#include <cstddef>

namespace salient {

/// Opaque 16-bit storage type for IEEE binary16 values.
/// Not an arithmetic type on purpose: all math happens in float.
struct Half {
  std::uint16_t bits = 0;

  Half() = default;
  /// Construct from the raw bit pattern.
  static Half from_bits(std::uint16_t b) {
    Half h;
    h.bits = b;
    return h;
  }

  friend bool operator==(Half a, Half b) { return a.bits == b.bits; }
};

static_assert(sizeof(Half) == 2, "Half must be exactly 16 bits");

/// Convert a single-precision float to binary16 with round-to-nearest-even.
/// Values above the half range become +/-infinity; NaN is preserved (quieted).
Half float_to_half(float f);

/// Convert a binary16 value to single precision. Exact for all inputs.
float half_to_float(Half h);

/// Bulk conversion: dst[i] = half(src[i]) for i in [0, n).
///
/// Uses the hardware conversion instructions (x86 F16C / AArch64 NEON) when
/// the CPU has them — checked once at runtime — and is bit-identical to the
/// scalar converter for every input, NaN included (NaN-containing blocks
/// take the scalar path so payload canonicalization matches). All row-wise
/// conversion outside util/ must go through these bulk entry points (lint
/// rule `scalar-half-loop`).
void float_to_half_n(const float* src, Half* dst, std::size_t n);

/// Bulk conversion: dst[i] = float(src[i]) for i in [0, n). Same hardware
/// acceleration and exact-parity contract as float_to_half_n.
void half_to_float_n(const Half* src, float* dst, std::size_t n);

}  // namespace salient
