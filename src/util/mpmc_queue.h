// Bounded lock-free multi-producer/multi-consumer queue (Dmitry Vyukov's
// classic bounded MPMC ring).
//
// SALIENT's batch-preparation threads "balance load dynamically via a
// lock-free input queue that contains the destination nodes for each
// mini-batch" (paper §4.2). This queue is that structure: the trainer pushes
// mini-batch node ranges, the C++ preparation workers pop them.
//
// Properties: FIFO per producer, lock-free (no mutex on the fast path),
// bounded capacity (power of two), each slot carries a sequence number that
// arbitrates producers and consumers.
//
// Concurrency verification note (docs/STATIC_ANALYSIS.md): this queue holds
// no capability, so Clang's -Wthread-safety analysis has nothing to check
// here — its correctness argument is the per-slot acquire/release sequence
// protocol. The atomics go through check::atomic so the model checker
// (tests/test_model_check.cpp, SALIENT_MODEL_CHECK=ON) explores the SC
// interleavings of that protocol systematically; the TSan chaos job remains
// the dynamic check below SC.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

#include "check/shim.h"
#include "fault/failpoint.h"

namespace salient {

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Name this queue as a fault-injection site: try_push then consults
  /// `mpmc.<site>.push_full` (spurious "queue full") and try_pop
  /// `mpmc.<site>.pop_empty` (spurious "queue empty"). These model transient
  /// contention/latency the lock-free fast path can exhibit under load;
  /// hardened callers must retry rather than drop work (the property
  /// tests/test_chaos.cpp verifies for the loader). Dead code unless the
  /// build sets SALIENT_FAILPOINTS=ON.
  void set_fault_site(const std::string& site) {
#if defined(SALIENT_FAILPOINTS_ENABLED)
    auto& reg = fault::Registry::global();
    push_full_ = &reg.failpoint("mpmc." + site + ".push_full");
    pop_empty_ = &reg.failpoint("mpmc." + site + ".pop_empty");
#else
    (void)site;
#endif
  }

  /// Attempt to enqueue; returns false when the queue is full.
  bool try_push(T value) {
#if defined(SALIENT_FAILPOINTS_ENABLED)
    if (push_full_ && push_full_->should_fire()) return false;
#endif
    Slot* slot;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const std::size_t seq = slot->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(value);
    slot->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Attempt to dequeue; returns false when the queue is empty.
  bool try_pop(T& out) {
#if defined(SALIENT_FAILPOINTS_ENABLED)
    if (pop_empty_ && pop_empty_->should_fire()) return false;
#endif
    Slot* slot;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const std::size_t seq = slot->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(slot->value);
    slot->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Approximate number of enqueued items (racy; for monitoring only).
  std::size_t approx_size() const {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t h = head_.load(std::memory_order_relaxed);
    return t >= h ? t - h : 0;
  }

 private:
  struct Slot {
    check::atomic<std::size_t> seq;
    T value;
  };

  // Separate cache lines for head and tail to avoid false sharing.
  alignas(64) check::atomic<std::size_t> head_;
  alignas(64) check::atomic<std::size_t> tail_;
  alignas(64) std::unique_ptr<Slot[]> slots_;
  std::size_t mask_;
#if defined(SALIENT_FAILPOINTS_ENABLED)
  fault::Failpoint* push_full_ = nullptr;
  fault::Failpoint* pop_empty_ = nullptr;
#endif
};

}  // namespace salient
