// Fast pseudo-random number generators used by the neighborhood samplers.
//
// The sampler design space explored in the paper (Figure 2) includes the
// choice of RNG among its implementation parameters. We provide three
// generators with the UniformRandomBitGenerator interface:
//   * StdMt19937   — std::mt19937_64, the "library default" choice;
//   * Xoshiro256ss — xoshiro256**, a small fast general-purpose generator;
//   * Pcg32        — PCG-XSH-RR 64/32.
// plus an unbiased bounded-integer helper (Lemire's method) that avoids the
// modulo bias and the division cost of std::uniform_int_distribution.
#pragma once

#include <cstdint>
#include <limits>
#include <random>

namespace salient {

/// SplitMix64: used for seeding the other generators from a single seed.
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

/// xoshiro256** by Blackman & Vigna. All-purpose, very fast, 256-bit state.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bull) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// PCG-XSH-RR 64/32 by O'Neill: 64-bit state, 32-bit output.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0xda3e39cb94b95bdbull,
                 std::uint64_t stream = 0xcafef00dd15ea5e5ull)
      : state_(0), inc_((stream << 1) | 1u) {
    operator()();
    state_ += seed;
    operator()();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    const auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Wrapper giving std::mt19937_64 the same construction interface as the
/// fast generators above (single 64-bit seed).
class StdMt19937 {
 public:
  using result_type = std::mt19937_64::result_type;

  explicit StdMt19937(std::uint64_t seed = 5489ull) : eng_(seed) {}

  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }

  result_type operator()() { return eng_(); }

 private:
  std::mt19937_64 eng_;
};

/// Unbiased uniform integer in [0, bound) using Lemire's multiply-shift
/// rejection method. `bound` must be > 0.
template <class Rng>
inline std::uint64_t bounded_rand(Rng& rng, std::uint64_t bound) {
  // Widen 32-bit generators to 64 bits of entropy only when necessary; for
  // sampling neighbor indices (bound << 2^32) one draw suffices.
  if constexpr (sizeof(typename Rng::result_type) >= 8) {
    __uint128_t m = static_cast<__uint128_t>(rng()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(rng()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  } else {
    std::uint64_t m =
        static_cast<std::uint64_t>(rng()) * static_cast<std::uint64_t>(bound);
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const auto b32 = static_cast<std::uint32_t>(bound);
      const std::uint32_t threshold = (-b32) % b32;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(rng()) *
            static_cast<std::uint64_t>(bound);
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return m >> 32;
  }
}

}  // namespace salient
