// Compile-time concurrency verification (docs/STATIC_ANALYSIS.md).
//
// Two pieces, both zero-cost at run time:
//
//   1. The standard Clang capability-analysis macros (Hutchins et al.,
//      "C/C++ Thread Safety Analysis"): GUARDED_BY declares which mutex
//      protects a field, REQUIRES/ACQUIRE/RELEASE declare a function's
//      locking contract, and a Clang build with -Wthread-safety (CI runs it
//      as -Werror=thread-safety -Werror=thread-safety-beta) rejects any
//      access that violates the declared discipline — at compile time, for
//      every interleaving, unlike TSan which only sees the schedules a test
//      happens to execute. Under GCC (or with
//      SALIENT_NO_THREAD_SAFETY_ANALYSIS defined) every macro expands to
//      nothing.
//
//   2. Annotated drop-in wrappers over the std primitives: salient::Mutex,
//      salient::CondVar, salient::LockGuard, salient::UniqueLock. The std
//      types cannot carry capability attributes, so all library code outside
//      src/util/ must use these wrappers — a rule tools/salient_lint.cpp
//      enforces (`naked-mutex`). The wrappers add no state and no virtual
//      calls; optimized builds compile them to the exact std operations.
//
// Annotation conventions used across the repo:
//   * every mutex-protected field carries GUARDED_BY(mu_);
//   * private helpers that expect the caller to hold the lock carry
//     REQUIRES(mu_) instead of re-locking;
//   * condition-variable predicate waits are written as explicit
//     `while (!pred) cv.wait(lock);` loops — a predicate lambda would be
//     analyzed as a separate unlocked function and rejected;
//   * escapes from the analysis (TS_NO_ANALYSIS) must explain themselves
//     with an inline comment; there are currently none in the tree.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// The attribute carrier: Clang-only, and explicitly silenceable for exotic
// toolchains that define __clang__ without supporting the analysis.
#if defined(__clang__) && !defined(SALIENT_NO_THREAD_SAFETY_ANALYSIS)
#define SALIENT_TS_ATTR(x) __attribute__((x))
#else
#define SALIENT_TS_ATTR(x)  // expands to nothing outside Clang
#endif

// The standard macro vocabulary (names follow the Clang documentation's
// mutex.h so diagnostics read like the upstream examples). Guarded with
// ifndef so a TU that also sees another library's copy does not redefine.
#ifndef CAPABILITY
#define CAPABILITY(x) SALIENT_TS_ATTR(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY SALIENT_TS_ATTR(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) SALIENT_TS_ATTR(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) SALIENT_TS_ATTR(pt_guarded_by(x))
#endif
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) SALIENT_TS_ATTR(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) SALIENT_TS_ATTR(acquired_after(__VA_ARGS__))
#endif
#ifndef REQUIRES
#define REQUIRES(...) SALIENT_TS_ATTR(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  SALIENT_TS_ATTR(requires_shared_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) SALIENT_TS_ATTR(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  SALIENT_TS_ATTR(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) SALIENT_TS_ATTR(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  SALIENT_TS_ATTR(release_shared_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) SALIENT_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) SALIENT_TS_ATTR(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) SALIENT_TS_ATTR(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) SALIENT_TS_ATTR(lock_returned(x))
#endif
#ifndef TS_NO_ANALYSIS
#define TS_NO_ANALYSIS SALIENT_TS_ATTR(no_thread_safety_analysis)
#endif

namespace salient {

class CondVar;
class LockGuard;
class UniqueLock;

/// std::mutex carrying the `capability` attribute, so fields can declare
/// GUARDED_BY(mu_) and functions REQUIRES(mu_). Library code outside
/// src/util/ must use this instead of std::mutex (lint rule `naked-mutex`).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class LockGuard;
  friend class UniqueLock;
  std::mutex mu_;
};

/// std::lock_guard analogue: scope-locks a Mutex, never unlocks early.
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock analogue for condition-variable waits. Always holds the
/// lock for its full scope (CondVar::wait releases/reacquires internally,
/// which is invisible to — and sound for — the capability analysis).
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : lk_(mu.mu_) {}
  ~UniqueLock() RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// std::condition_variable over salient::Mutex (via UniqueLock).
///
/// Predicate waits must be explicit loops at the call site:
///   UniqueLock lock(mu_);
///   while (!ready_) cv_.wait(lock);
/// A predicate lambda (std-style `cv.wait(lock, [&]{ return ready_; })`)
/// would be analyzed as a separate function that reads guarded state with no
/// capability held, so the wrapper deliberately does not offer that overload.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(UniqueLock& lk) { cv_.wait(lk.lk_); }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lk,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lk.lk_, d);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      UniqueLock& lk, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lk.lk_, tp);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace salient
