#include "util/thread_pool.h"

#include <algorithm>

namespace salient {

namespace {
// Set while a thread is executing as a worker of some pool, so parallel_for
// can detect re-entrant use and fall back to serial execution.
thread_local const ThreadPool* t_current_pool = nullptr;
// Set on the caller thread while it runs chunk 0 of its own broadcast job; a
// nested parallel_for on the same pool from inside the job body must not try
// to take job_mu_ again (it is already held) — it degrades to serial.
thread_local const ThreadPool* t_job_owner = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  worker_state_ = std::make_unique<WorkerState[]>(num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    check::LockGuard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    check::LockGuard lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

std::uint64_t ThreadPool::worker_jobs_run(std::size_t i) const {
  return worker_state_[i].jobs_run.load(std::memory_order_relaxed);
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (t_current_pool == this || t_job_owner == this) {
    fn(begin, end);  // nested call from a worker or from inside our own job
    return;
  }
  const auto nchunks =
      std::min<std::int64_t>(n, static_cast<std::int64_t>(size()) + 1);
  if (nchunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::int64_t chunk = (n + nchunks - 1) / nchunks;

  // One broadcast job at a time; concurrent external callers queue here.
  check::LockGuard job_lock(job_mu_);
  job_exc_ = nullptr;
  job_has_exc_.store(false, std::memory_order_relaxed);
  pending_.store(nchunks - 1, std::memory_order_relaxed);
  {
    check::LockGuard lock(mu_);
    job_.fn = &fn;
    job_.begin = begin;
    job_.end = end;
    job_.chunk = chunk;
    job_.nchunks = nchunks;
    ++job_epoch_;
  }
  cv_.notify_all();

  // The caller owns chunk 0.
  t_job_owner = this;
  std::exception_ptr caller_exc;
  try {
    fn(begin, std::min(begin + chunk, end));
  } catch (...) {
    caller_exc = std::current_exception();
  }
  t_job_owner = nullptr;

  // Wait for the workers' chunks. Short jobs usually complete within the
  // spin; the condvar is the backstop for long tails. Under a model-check
  // controller the spin is pure schedule-space blowup (every pending_ load
  // is a yield point), so go straight to the condvar.
  if (!check::governed()) {
    for (int spin = 0;
         spin < 4096 && pending_.load(std::memory_order_acquire) != 0;
         ++spin) {
      std::this_thread::yield();
    }
  }
  if (pending_.load(std::memory_order_acquire) != 0) {
    check::UniqueLock lock(done_mu_);
    while (pending_.load(std::memory_order_acquire) != 0) {
      done_cv_.wait(lock);
    }
  }

  if (caller_exc) std::rethrow_exception(caller_exc);
  if (job_has_exc_.load(std::memory_order_acquire)) {
    std::rethrow_exception(job_exc_);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::run_job_chunk(const JobDesc& job, std::size_t index) {
  // Static partition: worker `index` always owns chunk index+1 (the caller
  // runs chunk 0). Workers beyond the chunk count have nothing to do and do
  // not touch pending_.
  const std::int64_t ci = static_cast<std::int64_t>(index) + 1;
  if (ci >= job.nchunks) return;
  const std::int64_t b = job.begin + ci * job.chunk;
  const std::int64_t e = std::min(b + job.chunk, job.end);
  try {
    (*job.fn)(b, e);
  } catch (...) {
    if (!job_has_exc_.exchange(true, std::memory_order_acq_rel)) {
      job_exc_ = std::current_exception();
    }
  }
  worker_state_[index].jobs_run.fetch_add(1, std::memory_order_relaxed);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    check::LockGuard lock(done_mu_);
    done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  t_current_pool = this;
  WorkerState& st = worker_state_[index];
  for (;;) {
    std::packaged_task<void()> task;
    JobDesc job;
    bool have_job = false;
    {
      check::UniqueLock lock(mu_);
      while (!stop_ && tasks_.empty() && job_epoch_ == st.seen_epoch) {
        cv_.wait(lock);
      }
      if (job_epoch_ != st.seen_epoch) {
        // A broadcast job takes priority over queued tasks (a blocked
        // parallel_for caller is latency-sensitive; submit() callers hold
        // futures and can wait). Also checked before the stop_ exit so a job
        // racing pool shutdown still completes its chunks.
        st.seen_epoch = job_epoch_;
        job = job_;
        have_job = true;
      } else if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      } else {
        return;  // stop_ && no tasks && no new job
      }
    }
    if (have_job) {
      run_job_chunk(job, index);
    } else {
      task();
    }
  }
}

}  // namespace salient
