#include "util/thread_pool.h"

#include <algorithm>

namespace salient {

namespace {
// Set while a thread is executing as a worker of some pool, so parallel_for
// can detect re-entrant use and fall back to serial execution.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    LockGuard lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (t_current_pool == this) {  // nested call from one of our own workers
    fn(begin, end);
    return;
  }
  const auto nchunks =
      std::min<std::int64_t>(n, static_cast<std::int64_t>(size()) + 1);
  if (nchunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::int64_t chunk = (n + nchunks - 1) / nchunks;
  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<std::size_t>(nchunks - 1));
  std::int64_t b = begin + chunk;  // first chunk runs on the caller
  for (; b < end; b += chunk) {
    const std::int64_t e = std::min(b + chunk, end);
    futs.push_back(submit([&fn, b, e] { fn(b, e); }));
  }
  fn(begin, std::min(begin + chunk, end));
  for (auto& f : futs) f.get();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      UniqueLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace salient
