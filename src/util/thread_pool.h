// A fixed-size thread pool with a parallel_for helper.
//
// Used for (a) the baseline "PyTorch OpenMP-style" parallel slicing path,
// (b) intra-device parallelism of the simulated-GPU compute kernels, and
// (c) miscellaneous data generation. SALIENT's own batch-preparation workers
// are *not* built on this pool — they are dedicated end-to-end threads fed by
// a lock-free queue (see prep/salient_loader.h), mirroring the paper's design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace salient {

class ThreadPool {
 public:
  /// Create a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task; the returned future resolves when it ran.
  std::future<void> submit(std::function<void()> fn);

  /// Run fn(begin..end) split into roughly `size()` contiguous chunks and
  /// block until all chunks completed. fn receives (chunk_begin, chunk_end).
  /// The calling thread participates in the work. Re-entrant calls from one
  /// of this pool's own workers degrade to a serial fn(begin, end) — nested
  /// parallelism would otherwise deadlock once every worker blocks waiting
  /// for chunks only other workers could run.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// A process-wide pool sized to the hardware concurrency; lazily created.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;  // written only during construction
  Mutex mu_;
  CondVar cv_;
  std::queue<std::packaged_task<void()>> tasks_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace salient
