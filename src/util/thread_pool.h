// A fixed-size thread pool with a persistent-worker parallel_for.
//
// Used for (a) the baseline "PyTorch OpenMP-style" parallel slicing path,
// (b) intra-device parallelism of the simulated-GPU compute kernels, and
// (c) miscellaneous data generation. SALIENT's own batch-preparation workers
// are *not* built on this pool — they are dedicated end-to-end threads fed by
// a lock-free queue (see prep/salient_loader.h), mirroring the paper's design.
//
// Two execution paths share the worker threads:
//
//   * submit(fn): the classic task queue — one std::packaged_task per call,
//     any free worker picks it up. Used for heterogeneous, coarse work
//     (loader slicing jobs, background generation).
//
//   * parallel_for(begin, end, fn): a *broadcast job*. Instead of enqueuing
//     one task object per chunk (an allocation, a future, and a queue
//     round-trip each — dispatch overhead that dominated the bandwidth-bound
//     kernels at 8 threads), the caller publishes a single job descriptor and
//     wakes every worker once. The range is statically partitioned: worker i
//     always owns chunk i+1 and the caller runs chunk 0, so no two pool sizes
//     ever split an element between threads differently than the fixed
//     ceil-division rule — the property the kernel layer's bitwise-
//     determinism contract (docs/PERFORMANCE.md) relies on. Completion is a
//     single atomic countdown, not a futures loop.
//
// Concurrent external callers (e.g. the cluster trainer runs one thread per
// simulated node, each invoking kernels on the shared kernel pool) are
// serialized by an internal job mutex — jobs run one at a time, callers queue
// on the mutex. Re-entrant calls from a pool worker, or from inside a running
// job on the caller thread, degrade to serial execution exactly like before.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "check/shim.h"
#include "util/thread_annotations.h"

namespace salient {

class ThreadPool {
 public:
  /// Create a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task; the returned future resolves when it ran.
  std::future<void> submit(std::function<void()> fn);

  /// Run fn(begin..end) split into roughly `size()` contiguous chunks and
  /// block until all chunks completed. fn receives (chunk_begin, chunk_end).
  /// The calling thread participates in the work (it runs chunk 0; worker i
  /// runs chunk i+1). Chunking is the fixed ceil-division of the range over
  /// min(n, size()+1) chunks — independent of scheduling, so deterministic
  /// kernels stay bitwise-reproducible for a given pool size.
  ///
  /// Re-entrant calls — from one of this pool's own workers, or from inside
  /// fn on the caller thread — degrade to a serial fn(begin, end): nested
  /// parallelism would otherwise deadlock once every worker blocks waiting
  /// for chunks only other workers could run. The first exception thrown by
  /// any chunk is rethrown on the caller after all chunks finished.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Total broadcast jobs executed by worker `i` (test/diagnostic hook for
  /// verifying the persistent-worker path actually engaged).
  std::uint64_t worker_jobs_run(std::size_t i) const;

  /// A process-wide pool sized to the hardware concurrency; lazily created.
  static ThreadPool& global();

 private:
  // Per-worker state, one cache line each so a worker bumping its own
  // counters never invalidates a line another worker (or the caller's
  // completion spin) is reading.
  struct alignas(64) WorkerState {
    // Epoch of the last broadcast job this worker observed. Written only by
    // the owning worker, compared against job_epoch_ under mu_.
    std::uint64_t seen_epoch = 0;
    // Broadcast jobs in which this worker ran a chunk (diagnostics).
    check::atomic<std::uint64_t> jobs_run{0};
  };

  // The published broadcast job. Fields are written by the caller and copied
  // out by workers, both under mu_; the fn target stays alive because the
  // caller blocks in parallel_for until every chunk completed.
  struct JobDesc {
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t chunk = 0;
    std::int64_t nchunks = 0;
  };

  void worker_loop(std::size_t index);
  void run_job_chunk(const JobDesc& job, std::size_t index);

  std::vector<check::thread> workers_;  // unguarded: ctor-written only
  std::unique_ptr<WorkerState[]> worker_state_;  // unguarded: per-worker

  check::Mutex mu_;
  check::CondVar cv_;
  std::queue<std::packaged_task<void()>> tasks_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;

  // Broadcast-job channel. job_epoch_ increments once per parallel_for; a
  // worker whose seen_epoch lags picks up the job exactly once.
  JobDesc job_ GUARDED_BY(mu_);
  std::uint64_t job_epoch_ GUARDED_BY(mu_) = 0;

  // Serializes concurrent external parallel_for callers (one job in flight).
  check::Mutex job_mu_;

  // Chunks not yet finished by workers; the caller spins briefly then waits
  // on done_cv_. The worker that takes pending_ to zero notifies.
  check::atomic<std::int64_t> pending_{0};
  check::Mutex done_mu_;
  check::CondVar done_cv_;

  // First exception thrown by a worker chunk. job_exc_ is written exactly
  // once per job (publication ordered by the exchange on job_has_exc_ and
  // the release fetch_sub on pending_) and read by the caller only after
  // pending_ reached zero.
  check::atomic<bool> job_has_exc_{false};
  std::exception_ptr job_exc_;  // unguarded: see publication note above
};

}  // namespace salient
