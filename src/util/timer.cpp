#include "util/timer.h"

#include <sstream>

#include "obs/metrics.h"

namespace salient {

namespace {

/// Registry instruments mirrored by every PhaseTimer, resolved once.
struct PhaseInstruments {
  static constexpr int kN = static_cast<int>(Phase::kNumPhases);
  obs::Gauge* blocking_s[kN];
  obs::Histogram* block_ms[kN];

  PhaseInstruments() {
    auto& reg = obs::Registry::global();
    for (int i = 0; i < kN; ++i) {
      const std::string base =
          std::string("phase.") + phase_name(static_cast<Phase>(i));
      blocking_s[i] = &reg.gauge(base + ".blocking_s");
      block_ms[i] = &reg.histogram(
          base + ".block_ms", {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0});
    }
  }
};

PhaseInstruments& phase_instruments() {
  static PhaseInstruments instance;  // thread-safe magic static
  return instance;
}

}  // namespace

void PhaseTimer::add(Phase p, double seconds) {
  totals_[static_cast<int>(p)] += seconds;
  PhaseInstruments& ins = phase_instruments();
  ins.blocking_s[static_cast<int>(p)]->add(seconds);
  ins.block_ms[static_cast<int>(p)]->observe(seconds * 1e3);
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kSample:
      return "sample";
    case Phase::kSlice:
      return "slice";
    case Phase::kTransfer:
      return "transfer";
    case Phase::kTrain:
      return "train";
    case Phase::kOther:
      return "other";
    default:
      return "?";
  }
}

std::string PhaseTimer::summary() const {
  std::ostringstream os;
  for (int i = 0; i < static_cast<int>(Phase::kNumPhases); ++i) {
    if (i) os << ' ';
    os << phase_name(static_cast<Phase>(i)) << '='
       << total(static_cast<Phase>(i)) << 's';
  }
  return os.str();
}

}  // namespace salient
