#include "util/timer.h"

#include <sstream>

namespace salient {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kSample:
      return "sample";
    case Phase::kSlice:
      return "slice";
    case Phase::kTransfer:
      return "transfer";
    case Phase::kTrain:
      return "train";
    case Phase::kOther:
      return "other";
    default:
      return "?";
  }
}

std::string PhaseTimer::summary() const {
  std::ostringstream os;
  for (int i = 0; i < static_cast<int>(Phase::kNumPhases); ++i) {
    if (i) os << ' ';
    os << phase_name(static_cast<Phase>(i)) << '='
       << total(static_cast<Phase>(i)) << 's';
  }
  return os.str();
}

}  // namespace salient
