// Wall-clock timing utilities and a per-phase time accumulator.
//
// The paper's evaluation reports per-operation *blocking* time (Table 1):
// the time the main thread spends waiting on each of batch preparation,
// transfer, and GPU training. PhaseTimer accumulates exactly that view.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace salient {

/// Monotonic wall-clock stopwatch with nanosecond resolution.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Reset the epoch to now.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction / last reset.
  std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// The pipeline phases measured throughout the benchmarks. Matches the
/// operation categories of Listing 1 / Table 1 in the paper.
enum class Phase : int {
  kSample = 0,   // neighborhood sampling + MFG construction
  kSlice,        // feature/label tensor slicing
  kTransfer,     // host -> device copy
  kTrain,        // forward + backward + optimizer step on device
  kOther,        // everything else (epoch setup, bookkeeping)
  kNumPhases
};

/// Human-readable phase name ("sample", "slice", ...).
const char* phase_name(Phase p);

/// Accumulates blocking wall time per phase.
///
/// PhaseTimer is a thin view over the global metrics registry
/// (obs/metrics.h): each instance keeps its own per-epoch totals (the value
/// EpochStats reports), and every add() also accumulates into the
/// process-wide `phase.<name>.blocking_s` gauge and the
/// `phase.<name>.block_ms` histogram, so a `--metrics-out` dump contains the
/// whole-run Table 1 blocking breakdown without any extra bookkeeping.
class PhaseTimer {
 public:
  /// Add `seconds` of blocking time to phase `p` (also feeds the registry).
  void add(Phase p, double seconds);

  /// Time a callable and charge it to phase `p`; returns the callable result.
  template <class F>
  auto time(Phase p, F&& f) -> decltype(f()) {
    WallTimer t;
    if constexpr (std::is_void_v<decltype(f())>) {
      f();
      add(p, t.seconds());
    } else {
      auto r = f();
      add(p, t.seconds());
      return r;
    }
  }

  /// Accumulated seconds for phase `p`.
  double total(Phase p) const { return totals_[static_cast<int>(p)]; }

  /// Sum over all phases.
  double grand_total() const {
    double s = 0;
    for (double v : totals_) s += v;
    return s;
  }

  /// Zero all accumulators.
  void reset() { totals_.fill(0.0); }

  /// One-line summary, e.g. "sample=1.2s slice=0.3s ...".
  std::string summary() const;

 private:
  std::array<double, static_cast<int>(Phase::kNumPhases)> totals_{};
};

}  // namespace salient
